(* A replicated name service — one of §6's everyday replicated databases
   ("bibles, phone books, check books, mail systems, name servers").

   This example uses the storage substrate directly, instantiating the
   store functor at string values: each site holds a replica of the
   name -> address directory, binds names locally with Lamport-stamped
   writes, and exchanges lazy updates. Timestamped replace gives
   convergence (every site ends with the same directory) but not
   serializability: concurrent re-bindings of one name lose all but the
   newest — fine for a directory, fatal for a checkbook, which is the
   section's point.

   Run with: dune exec examples/name_service.exe *)

module Timestamp = Dangers_storage.Timestamp
module Oid = Dangers_storage.Oid

module String_value = struct
  type t = string

  let equal = String.equal
  let pp = Format.pp_print_string
end

module Directory = Dangers_storage.Store.Make (String_value)

(* The directory maps host ids (dense ints) to addresses. *)
let hosts = [| "db.example"; "mail.example"; "www.example"; "cache.example" |]

type site = {
  name : string;
  store : Directory.t;
  clock : Timestamp.Clock.t;
  mutable outbound : (Oid.t * string * Timestamp.t) list;
}

let make_site index name =
  {
    name;
    store = Directory.create ~db_size:(Array.length hosts) ~init:(fun _ -> "unbound");
    clock = Timestamp.Clock.create ~node:index;
    outbound = [];
  }

let bind site host address =
  let oid = Oid.of_int host in
  let stamp = Timestamp.Clock.tick site.clock in
  Directory.write site.store oid address stamp;
  site.outbound <- (oid, address, stamp) :: site.outbound;
  Printf.printf "%-10s binds %-13s -> %s\n" site.name hosts.(host) address

(* Lazy exchange: ship both sites' accumulated updates both ways; stale
   updates are discarded by the Thomas write rule. *)
let exchange a b =
  let apply site (oid, address, stamp) =
    Timestamp.Clock.witness site.clock stamp;
    ignore (Directory.apply_if_newer site.store oid address stamp)
  in
  List.iter (apply b) (List.rev a.outbound);
  List.iter (apply a) (List.rev b.outbound)

let dump site =
  Printf.printf "%s:\n" site.name;
  Directory.iter site.store (fun oid address stamp ->
      Printf.printf "  %-13s -> %-16s (%s)\n"
        hosts.(Oid.to_int oid)
        address
        (Format.asprintf "%a" Timestamp.pp stamp))

let () =
  let seattle = make_site 0 "seattle" in
  let boston = make_site 1 "boston" in
  let zurich = make_site 2 "zurich" in

  (* Independent updates at different sites: no conflict, all survive. *)
  bind seattle 0 "10.0.0.5";
  bind boston 1 "10.1.7.2";

  (* A concurrent re-binding of the same name at two sites: the newest
     timestamp will win everywhere, the other binding is lost. *)
  bind seattle 2 "10.0.9.9";
  bind zurich 2 "10.2.4.4";

  Printf.printf "\nexchanging updates pairwise until quiet...\n\n";
  exchange seattle boston;
  exchange boston zurich;
  exchange seattle zurich;
  exchange seattle boston;

  List.iter dump [ seattle; boston; zurich ];

  let converged =
    Directory.content_equal seattle.store boston.store
    && Directory.content_equal boston.store zurich.store
  in
  Printf.printf "\nall replicas converged: %b\n" converged;
  Printf.printf
    "note the www.example binding: one of the two concurrent updates was \
     silently discarded - convergence without serializability, which is \
     acceptable for a name service and disastrous for a bank account.\n"
