examples/tpcb_bank.mli:
