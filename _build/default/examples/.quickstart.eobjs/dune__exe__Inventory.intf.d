examples/inventory.mli:
