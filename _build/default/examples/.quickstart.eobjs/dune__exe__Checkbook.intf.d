examples/checkbook.mli:
