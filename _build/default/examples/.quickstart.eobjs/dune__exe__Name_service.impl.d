examples/name_service.ml: Array Dangers_storage Format List Printf String
