examples/mobile_sales.mli:
