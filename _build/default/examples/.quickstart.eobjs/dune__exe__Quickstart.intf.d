examples/quickstart.mli:
