lib/sim/heap.mli:
