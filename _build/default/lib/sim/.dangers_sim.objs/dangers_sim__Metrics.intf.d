lib/sim/metrics.mli: Dangers_util Engine
