lib/sim/metrics.ml: Dangers_util Engine Hashtbl List String
