(** The experiment registry: every paper table and figure, in report
    order. *)

val all : Experiment.t list
val find : string -> Experiment.t option
(** Lookup by id, case-insensitive ("e3", "T1", ...). *)

val ids : unit -> string list
