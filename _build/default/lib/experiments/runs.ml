module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group = Dangers_replication.Lazy_group
module Lazy_master = Dangers_replication.Lazy_master
module Two_tier = Dangers_core.Two_tier

let eager ?(ownership = Eager_impl.Group) ?profile ?delay params ~seed ~warmup
    ~span =
  let sys = Eager_impl.create ?profile ?delay ownership params ~seed in
  Eager_impl.start sys;
  Common.measure (Eager_impl.base sys) ~warmup ~span;
  let summary = Eager_impl.summary sys in
  Eager_impl.stop_load sys;
  summary

let lazy_group ?profile ?rule ?delay ?mobility ?mobile_nodes params ~seed
    ~warmup ~span =
  let sys =
    Lazy_group.create ?profile ?rule ?delay ?mobility ?mobile_nodes params ~seed
  in
  Lazy_group.start sys;
  Common.measure (Lazy_group.base sys) ~warmup ~span;
  let summary = Lazy_group.summary sys in
  Lazy_group.stop_load sys;
  summary

let lazy_master ?profile params ~seed ~warmup ~span =
  let sys = Lazy_master.create ?profile params ~seed in
  Lazy_master.start sys;
  Common.measure (Lazy_master.base sys) ~warmup ~span;
  let summary = Lazy_master.summary sys in
  Lazy_master.stop_load sys;
  summary

let two_tier ?profile ?acceptance ?mobility ?initial_value ~base_nodes params
    ~seed ~warmup ~span =
  let sys =
    Two_tier.create ?profile ?acceptance ?mobility ?initial_value ~base_nodes
      params ~seed
  in
  Two_tier.start sys;
  Common.measure (Two_tier.base sys) ~warmup ~span;
  let summary = Two_tier.summary sys in
  Two_tier.quiesce_and_sync sys;
  (summary, sys)

let seeds ~quick ~base =
  if quick then [ base ] else [ base; base + 101; base + 202 ]
