(* T2 — Table 2: the model's variables, their meanings, and the repository's
   default base point. An input table, regenerated for completeness. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params

let experiment =
  {
    Experiment.id = "T2";
    title = "Table 2: model variables and defaults";
    paper_ref = "Table 2, section 2";
    run =
      (fun ~quick:_ ~seed:_ ->
        let p = Params.default in
        let table =
          Table.create
            ~caption:"Table 2 variables (defaults used by every experiment)"
            [
              Table.column ~align:Table.Left "variable";
              Table.column ~align:Table.Left "meaning";
              Table.column "default";
            ]
        in
        let row name meaning value = Table.add_row table [ name; meaning; value ] in
        row "DB_Size" "distinct objects in the database"
          (Table.cell_int p.Params.db_size);
        row "Nodes" "nodes, each replicating all objects"
          (Table.cell_int p.Params.nodes);
        row "TPS" "transactions per second originating at a node"
          (Table.cell_float ~digits:1 p.Params.tps);
        row "Actions" "updates in a transaction" (Table.cell_int p.Params.actions);
        row "Action_Time" "seconds to perform an action"
          (Table.cell_float ~digits:3 p.Params.action_time);
        row "Time_Between_Disconnects" "mean connected time, seconds"
          (Table.cell_float ~digits:0 p.Params.time_between_disconnects);
        row "Disconnected_Time" "mean disconnected time, seconds"
          (Table.cell_float ~digits:0 p.Params.disconnected_time);
        row "Message_Delay" "propagation delay (ignored by the model)"
          (Table.cell_float ~digits:3 p.Params.message_delay);
        row "Message_CPU" "per-message processing (ignored by the model)"
          (Table.cell_float ~digits:3 p.Params.message_cpu);
        {
          Experiment.id = "T2";
          title = "Table 2: model variables and defaults";
          tables = [ table ];
          findings = [];
          notes =
            [
              "Input table: these defaults seed every other experiment; \
               sweeps override individual fields.";
            ];
        });
  }
