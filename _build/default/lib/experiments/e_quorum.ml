(* E10 — the availability mechanism section 3 assumes for eager systems:
   Gifford weighted voting. Availability of majority quorums vs
   read-one/write-all as the fleet grows, at two per-replica uptime
   levels. *)

module Table = Dangers_util.Table
module Quorum = Dangers_replication.Quorum
module Experiment_ = Experiment

let experiment =
  {
    Experiment.id = "E10";
    title = "Quorum availability (Gifford weighted voting)";
    paper_ref = "Section 3 (quorum assumption), Gifford SOSP'79";
    run =
      (fun ~quick:_ ~seed:_ ->
        let table =
          Table.create
            ~caption:"Probability the operation can proceed, per uptime p"
            [
              Table.column "replicas";
              Table.column "majority write, p=0.9";
              Table.column "majority write, p=0.99";
              Table.column "ROWA write, p=0.9";
              Table.column "ROWA read, p=0.9";
            ]
        in
        let rows =
          List.map
            (fun n ->
              let majority = Quorum.majority ~n in
              let rowa = Quorum.read_one_write_all ~n in
              let m90 = Quorum.write_availability majority ~p_up:0.9 in
              let m99 = Quorum.write_availability majority ~p_up:0.99 in
              Table.add_row table
                [
                  Table.cell_int n;
                  Table.cell_float ~digits:5 m90;
                  Table.cell_float ~digits:6 m99;
                  Table.cell_float ~digits:5 (Quorum.write_availability rowa ~p_up:0.9);
                  Table.cell_float ~digits:5 (Quorum.read_availability rowa ~p_up:0.9);
                ];
              (n, m99))
            [ 1; 3; 5; 7 ]
        in
        let m99_3 = List.assoc 3 rows and m99_7 = List.assoc 7 rows in
        {
          Experiment.id = "E10";
          title = "Quorum availability (Gifford weighted voting)";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "majority availability improves with replicas at p=0.99 \
                   (7 vs 3 replicas, difference > 0)";
                expected = 1.;
                actual = (if m99_7 > m99_3 then 1. else 0.);
                tolerance = 0.;
              };
              {
                Experiment_.label = "majority write availability, 3 replicas, p=0.9";
                expected = 0.972;
                actual = Quorum.write_availability (Quorum.majority ~n:3) ~p_up:0.9;
                tolerance = 1e-9;
              };
            ];
          notes =
            [
              "Replication helps availability only with quorum-style \
               update rules; read-one/write-all makes writes *less* \
               available as replicas are added.";
            ];
        });
  }
