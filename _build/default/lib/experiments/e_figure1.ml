(* F1 — Figure 1: a replicated transaction does N times as much work.
   One uncontended transaction per configuration: eager runs one big
   transaction of Actions x Nodes steps; lazy runs a root of Actions steps
   plus N-1 replica-update transactions. We measure durations and
   transaction counts and compare them with the figure's arithmetic. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Eager = Dangers_analytic.Eager
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Metrics = Dangers_sim.Metrics
module Stats = Dangers_util.Stats
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group = Dangers_replication.Lazy_group

let params_for nodes =
  { Params.default with nodes; db_size = 100; tps = 0.001; actions = 3 }

let ops = [ Op.Assign (Oid.of_int 0, 1.); Op.Assign (Oid.of_int 1, 2.);
            Op.Assign (Oid.of_int 2, 3.) ]

let eager_duration ~nodes ~seed =
  let sys = Eager_impl.create Eager_impl.Group (params_for nodes) ~seed in
  Eager_impl.submit sys ~node:0 ops;
  Common.drain (Eager_impl.base sys);
  Stats.mean
    (Metrics.sample_stats (Eager_impl.base sys).Common.metrics
       Repl_stats.duration_sample)

let lazy_counts ~nodes ~seed =
  let sys = Lazy_group.create (params_for nodes) ~seed in
  Lazy_group.submit sys ~node:0 ops;
  Common.drain (Lazy_group.base sys);
  let metrics = (Lazy_group.base sys).Common.metrics in
  let root_duration =
    Stats.mean (Metrics.sample_stats metrics Repl_stats.duration_sample)
  in
  (root_duration, Metrics.total_count metrics "replica_txns")

let experiment =
  {
    Experiment.id = "F1";
    title = "Figure 1: eager vs lazy work per replicated transaction";
    paper_ref = "Figure 1, section 2";
    run =
      (fun ~quick:_ ~seed ->
        let table =
          Table.create
            ~caption:"One 3-action transaction, uncontended (Action_Time 10ms)"
            [
              Table.column ~align:Table.Left "configuration";
              Table.column "txn size (model)";
              Table.column "duration model (s)";
              Table.column "duration measured (s)";
              Table.column "transactions run";
            ]
        in
        let findings = ref [] in
        let add_eager nodes =
          let p = params_for nodes in
          let measured = eager_duration ~nodes ~seed in
          let model = Eager.transaction_duration p in
          Table.add_row table
            [
              Printf.sprintf "eager, %d node%s" nodes (if nodes = 1 then "" else "s");
              Table.cell_float ~digits:0 (Eager.transaction_size p);
              Table.cell_float ~digits:3 model;
              Table.cell_float ~digits:3 measured;
              "1";
            ];
          findings :=
            {
              Experiment.label =
                Printf.sprintf "eager duration at %d nodes" nodes;
              expected = model;
              actual = measured;
              tolerance = 0.001;
            }
            :: !findings
        in
        add_eager 1;
        add_eager 3;
        let root_duration, replica_txns = lazy_counts ~nodes:3 ~seed in
        Table.add_row table
          [
            "lazy, 3 nodes (root)";
            "3";
            Table.cell_float ~digits:3 0.03;
            Table.cell_float ~digits:3 root_duration;
            Printf.sprintf "%d (1 root + %d lazy)" (1 + replica_txns) replica_txns;
          ];
        findings :=
          {
            Experiment.label = "lazy replica-update transactions at 3 nodes";
            expected = 2.;
            actual = float_of_int replica_txns;
            tolerance = 0.;
          }
          :: {
               Experiment.label = "lazy root duration";
               expected = 0.03;
               actual = root_duration;
               tolerance = 0.001;
             }
          :: !findings;
        {
          Experiment.id = "F1";
          title = "Figure 1: eager vs lazy work per replicated transaction";
          tables = [ table ];
          findings = List.rev !findings;
          notes =
            [
              "Eager: one transaction, N times the size and duration. Lazy: \
               same total work split into 1 root + (N-1) asynchronous \
               replica-update transactions.";
            ];
        });
  }
