lib/experiments/e_single_node.ml: Dangers_analytic Dangers_replication Dangers_util Experiment List Runs
