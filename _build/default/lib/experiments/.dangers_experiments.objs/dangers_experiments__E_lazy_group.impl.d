lib/experiments/e_lazy_group.ml: Dangers_analytic Dangers_replication Dangers_util Experiment List Runs
