lib/experiments/e_lazy_master.ml: Dangers_analytic Dangers_replication Dangers_util Experiment List Printf Runs
