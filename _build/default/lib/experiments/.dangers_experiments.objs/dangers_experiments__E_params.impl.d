lib/experiments/e_params.ml: Dangers_analytic Dangers_util Experiment
