lib/experiments/experiment.mli: Dangers_util Format
