lib/experiments/e_figure3.ml: Dangers_analytic Dangers_replication Dangers_util Experiment Runs
