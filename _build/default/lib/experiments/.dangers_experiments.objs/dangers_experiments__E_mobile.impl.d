lib/experiments/e_mobile.ml: Dangers_analytic Dangers_net Dangers_replication Dangers_util Experiment List Runs
