lib/experiments/e_tpcb.ml: Dangers_analytic Dangers_replication Dangers_util Dangers_workload Experiment Float List Runs
