lib/experiments/e_eager_deadlock.ml: Dangers_analytic Dangers_replication Dangers_util Experiment Float List Printf Runs
