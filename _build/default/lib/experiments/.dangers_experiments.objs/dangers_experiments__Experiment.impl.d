lib/experiments/experiment.ml: Dangers_util Float Format List
