lib/experiments/e_quorum.ml: Dangers_replication Dangers_util Experiment List
