lib/experiments/e_scaled_db.ml: E_eager_deadlock Experiment Runs
