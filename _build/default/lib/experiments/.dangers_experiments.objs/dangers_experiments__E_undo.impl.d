lib/experiments/e_undo.ml: Dangers_analytic Dangers_net Dangers_replication Dangers_sim Dangers_util Experiment List Printf
