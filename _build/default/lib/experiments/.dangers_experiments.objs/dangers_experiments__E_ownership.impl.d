lib/experiments/e_ownership.ml: Dangers_analytic Dangers_replication Dangers_util Experiment List Runs
