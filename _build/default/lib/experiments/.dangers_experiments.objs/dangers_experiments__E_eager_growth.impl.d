lib/experiments/e_eager_growth.ml: Dangers_analytic Dangers_replication Dangers_util Experiment List Runs
