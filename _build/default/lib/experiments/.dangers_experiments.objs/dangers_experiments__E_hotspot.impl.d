lib/experiments/e_hotspot.ml: Dangers_analytic Dangers_replication Dangers_util Dangers_workload Experiment List Runs
