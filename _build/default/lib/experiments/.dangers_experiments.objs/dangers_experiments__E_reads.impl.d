lib/experiments/e_reads.ml: Dangers_analytic Dangers_replication Dangers_util Dangers_workload Experiment List Printf Runs
