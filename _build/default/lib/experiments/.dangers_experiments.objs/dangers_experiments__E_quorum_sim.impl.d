lib/experiments/e_quorum_sim.ml: Dangers_analytic Dangers_replication Dangers_sim Dangers_util Experiment Float List
