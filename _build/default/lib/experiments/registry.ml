let all =
  [
    E_params.experiment;
    E_taxonomy.experiment;
    E_figure1.experiment;
    E_figure3.experiment;
    E_single_node.experiment;
    E_eager_growth.experiment;
    E_eager_deadlock.experiment;
    E_scaled_db.experiment;
    E_lazy_group.experiment;
    E_mobile.experiment;
    E_lazy_master.experiment;
    E_two_tier.experiment;
    E_convergence.experiment;
    E_quorum.experiment;
    E_delay.experiment;
    E_hotspot.experiment;
    E_reads.experiment;
    E_quorum_sim.experiment;
    E_ownership.experiment;
    E_delusion.experiment;
    E_undo.experiment;
    E_tpcb.experiment;
  ]

let find id =
  let wanted = String.lowercase_ascii id in
  List.find_opt
    (fun e -> String.lowercase_ascii e.Experiment.id = wanted)
    all

let ids () = List.map (fun e -> e.Experiment.id) all
