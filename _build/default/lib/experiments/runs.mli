(** Shared measurement drills for the scheme-backed experiments. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Connectivity = Dangers_net.Connectivity

val eager :
  ?ownership:Dangers_replication.Eager_impl.ownership ->
  ?profile:Profile.t ->
  ?delay:Dangers_net.Delay.t ->
  Params.t -> seed:int -> warmup:float -> span:float -> Repl_stats.summary
(** Run the eager simulator under generator load for [warmup + span]
    simulated seconds and return the measured-window summary. *)

val lazy_group :
  ?profile:Profile.t ->
  ?rule:Reconcile.rule ->
  ?delay:Dangers_net.Delay.t ->
  ?mobility:Connectivity.spec ->
  ?mobile_nodes:int list ->
  Params.t -> seed:int -> warmup:float -> span:float -> Repl_stats.summary

val lazy_master :
  ?profile:Profile.t ->
  Params.t -> seed:int -> warmup:float -> span:float -> Repl_stats.summary

val two_tier :
  ?profile:Profile.t ->
  ?acceptance:Dangers_core.Acceptance.t ->
  ?mobility:Connectivity.spec ->
  ?initial_value:float ->
  base_nodes:int ->
  Params.t -> seed:int -> warmup:float -> span:float ->
  Repl_stats.summary * Dangers_core.Two_tier.t
(** Also returns the quiesced system so callers can inspect acceptance
    counters and convergence. The summary is taken at the end of the
    measured window, before the final sync. *)

val seeds : quick:bool -> base:int -> int list
(** Three seeds normally, one in quick mode, derived from [base]. *)
