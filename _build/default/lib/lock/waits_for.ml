let find_cycle ~successors ~start =
  (* DFS with an explicit path; [visited] prunes nodes proven not to reach
     [start]. *)
  let visited = Hashtbl.create 64 in
  let rec dfs node path =
    let explore acc successor =
      match acc with
      | Some _ as found -> found
      | None ->
          if successor = start then Some (List.rev path)
          else if Hashtbl.mem visited successor then None
          else begin
            Hashtbl.add visited successor ();
            dfs successor (successor :: path)
          end
    in
    List.fold_left explore None (successors node)
  in
  dfs start [ start ]

let reachable ~successors ~start =
  let visited = Hashtbl.create 64 in
  let rec dfs node =
    List.iter
      (fun successor ->
        if not (Hashtbl.mem visited successor) then begin
          Hashtbl.add visited successor ();
          dfs successor
        end)
      (successors node)
  in
  dfs start;
  Hashtbl.fold (fun node () acc -> node :: acc) visited []
  |> List.sort Int.compare
