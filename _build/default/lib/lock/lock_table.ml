type waiter = { w_owner : int; w_mode : Mode.t; on_grant : unit -> unit }

type lock = {
  mutable granted : (int * Mode.t) list;
  mutable queue : waiter list; (* front of the queue first *)
}

type t = {
  locks : (int, lock) Hashtbl.t;
  held : (int, (int, Mode.t) Hashtbl.t) Hashtbl.t; (* owner -> resource -> mode *)
  waiting : (int, int) Hashtbl.t; (* owner -> resource *)
  mutable grants : int;
}

type outcome = Granted | Queued

let create () =
  { locks = Hashtbl.create 1024; held = Hashtbl.create 64;
    waiting = Hashtbl.create 64; grants = 0 }

let lock_for t resource =
  match Hashtbl.find_opt t.locks resource with
  | Some lock -> lock
  | None ->
      let lock = { granted = []; queue = [] } in
      Hashtbl.add t.locks resource lock;
      lock

let drop_if_empty t resource lock =
  if lock.granted = [] && lock.queue = [] then Hashtbl.remove t.locks resource

let held_table t owner =
  match Hashtbl.find_opt t.held owner with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 8 in
      Hashtbl.add t.held owner table;
      table

let record_grant t ~owner ~resource ~mode =
  Hashtbl.replace (held_table t owner) resource mode;
  t.grants <- t.grants + 1

let record_upgrade t ~owner ~resource =
  Hashtbl.replace (held_table t owner) resource Mode.X

(* A waiter is grantable when its mode is compatible with every grant held by
   a different owner (its own grant is ignored: that is the upgrade case). *)
let grantable lock waiter =
  List.for_all
    (fun (owner, mode) ->
      owner = waiter.w_owner || Mode.compatible mode waiter.w_mode)
    lock.granted

let grant_waiter t resource lock waiter =
  let upgrading = List.mem_assoc waiter.w_owner lock.granted in
  if upgrading then begin
    lock.granted <-
      List.map
        (fun (owner, mode) ->
          if owner = waiter.w_owner then (owner, waiter.w_mode) else (owner, mode))
        lock.granted;
    record_upgrade t ~owner:waiter.w_owner ~resource
  end
  else begin
    lock.granted <- (waiter.w_owner, waiter.w_mode) :: lock.granted;
    record_grant t ~owner:waiter.w_owner ~resource ~mode:waiter.w_mode
  end;
  Hashtbl.remove t.waiting waiter.w_owner

(* Strict FIFO pump: grant from the front until the first waiter that still
   conflicts. Returns the grant callbacks to run once state is settled. *)
let pump t resource lock =
  let rec loop acc =
    match lock.queue with
    | waiter :: rest when grantable lock waiter ->
        lock.queue <- rest;
        grant_waiter t resource lock waiter;
        loop (waiter.on_grant :: acc)
    | _ :: _ | [] -> List.rev acc
  in
  let callbacks = loop [] in
  drop_if_empty t resource lock;
  callbacks

let acquire t ~owner ~resource ~mode ~on_grant =
  if Hashtbl.mem t.waiting owner then
    invalid_arg "Lock_table.acquire: owner is already waiting";
  let lock = lock_for t resource in
  let held_mode = List.assoc_opt owner lock.granted in
  match held_mode with
  | Some held when Mode.covers ~held ~requested:mode ->
      drop_if_empty t resource lock;
      Granted
  | Some _held ->
      (* Upgrade S -> X. Sole holder upgrades in place; otherwise the upgrade
         waits at the front of the queue so it cannot deadlock behind new
         arrivals. *)
      if List.for_all (fun (o, _) -> o = owner) lock.granted then begin
        lock.granted <- List.map (fun (o, _) -> (o, Mode.X)) lock.granted;
        record_upgrade t ~owner ~resource;
        Granted
      end
      else begin
        lock.queue <- { w_owner = owner; w_mode = mode; on_grant } :: lock.queue;
        Hashtbl.replace t.waiting owner resource;
        Queued
      end
  | None ->
      let compatible_with_granted =
        List.for_all (fun (_, held) -> Mode.compatible held mode) lock.granted
      in
      if compatible_with_granted && lock.queue = [] then begin
        lock.granted <- (owner, mode) :: lock.granted;
        record_grant t ~owner ~resource ~mode;
        Granted
      end
      else begin
        lock.queue <- lock.queue @ [ { w_owner = owner; w_mode = mode; on_grant } ];
        Hashtbl.replace t.waiting owner resource;
        Queued
      end

let blockers t ~owner =
  match Hashtbl.find_opt t.waiting owner with
  | None -> []
  | Some resource ->
      let lock = Hashtbl.find t.locks resource in
      let rec ahead acc = function
        | [] -> acc (* the owner must be in the queue; defensive *)
        | waiter :: _ when waiter.w_owner = owner -> acc
        | waiter :: rest -> ahead (waiter :: acc) rest
      in
      let my_mode =
        let rec find = function
          | [] -> Mode.X
          | waiter :: rest -> if waiter.w_owner = owner then waiter.w_mode else find rest
        in
        find lock.queue
      in
      let from_granted =
        List.filter_map
          (fun (o, mode) ->
            if o <> owner && not (Mode.compatible mode my_mode) then Some o
            else None)
          lock.granted
      in
      let from_queue =
        List.filter_map
          (fun waiter ->
            if not (Mode.compatible waiter.w_mode my_mode) then Some waiter.w_owner
            else None)
          (ahead [] lock.queue)
      in
      List.sort_uniq Int.compare (from_granted @ from_queue)

let is_waiting t ~owner = Hashtbl.mem t.waiting owner
let waiting_resource t ~owner = Hashtbl.find_opt t.waiting owner

let cancel_wait t ~owner =
  match Hashtbl.find_opt t.waiting owner with
  | None -> ()
  | Some resource ->
      let lock = Hashtbl.find t.locks resource in
      lock.queue <- List.filter (fun w -> w.w_owner <> owner) lock.queue;
      Hashtbl.remove t.waiting owner;
      let callbacks = pump t resource lock in
      List.iter (fun callback -> callback ()) callbacks

let release_all t ~owner =
  cancel_wait t ~owner;
  match Hashtbl.find_opt t.held owner with
  | None -> ()
  | Some table ->
      Hashtbl.remove t.held owner;
      let resources = Hashtbl.fold (fun resource _ acc -> resource :: acc) table [] in
      let callbacks =
        List.concat_map
          (fun resource ->
            match Hashtbl.find_opt t.locks resource with
            | None -> []
            | Some lock ->
                lock.granted <- List.filter (fun (o, _) -> o <> owner) lock.granted;
                t.grants <- t.grants - 1;
                pump t resource lock)
          (List.sort Int.compare resources)
      in
      List.iter (fun callback -> callback ()) callbacks

let holds t ~owner ~resource =
  match Hashtbl.find_opt t.held owner with
  | None -> None
  | Some table -> Hashtbl.find_opt table resource

let held_resources t ~owner =
  match Hashtbl.find_opt t.held owner with
  | None -> []
  | Some table ->
      Hashtbl.fold (fun resource _ acc -> resource :: acc) table []
      |> List.sort Int.compare

let grants_outstanding t = t.grants
