(** Cycle detection over a waits-for relation.

    The relation is supplied as a successor function ("who blocks whom") and
    evaluated lazily at detection time, so there are no stale-edge hazards:
    the graph is always exactly the lock table's current state. Detection
    runs whenever a request blocks, which is the model's assumption of
    prompt deadlock detection. *)

val find_cycle : successors:(int -> int list) -> start:int -> int list option
(** Depth-first search from [start]; returns a cycle *through [start]* as the
    list of owners in waits-for order (starting with [start], without
    repeating it), or [None]. A victim-is-requester policy only needs cycles
    through the new waiter: any deadlock created by this request contains
    it. *)

val reachable : successors:(int -> int list) -> start:int -> int list
(** All owners transitively blocking [start], excluding [start] itself
    unless it lies on a cycle. For diagnostics and tests. *)
