type t = {
  locks : Lock_table.t;
  mutable wait_count : int;
  mutable deadlock_count : int;
}

type outcome = Granted | Waiting | Deadlock of int list

let create () = { locks = Lock_table.create (); wait_count = 0; deadlock_count = 0 }

let request t ~owner ~resource ~mode ~on_grant =
  match Lock_table.acquire t.locks ~owner ~resource ~mode ~on_grant with
  | Lock_table.Granted -> Granted
  | Lock_table.Queued ->
      t.wait_count <- t.wait_count + 1;
      let successors owner = Lock_table.blockers t.locks ~owner in
      (match Waits_for.find_cycle ~successors ~start:owner with
      | None -> Waiting
      | Some cycle ->
          t.deadlock_count <- t.deadlock_count + 1;
          Lock_table.cancel_wait t.locks ~owner;
          Deadlock cycle)

let release_all t ~owner = Lock_table.release_all t.locks ~owner
let table t = t.locks
let waits t = t.wait_count
let deadlocks t = t.deadlock_count

let reset_counters t =
  t.wait_count <- 0;
  t.deadlock_count <- 0
