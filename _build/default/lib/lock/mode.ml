type t = S | X

let compatible a b = match (a, b) with S, S -> true | S, X | X, S | X, X -> false

let covers ~held ~requested =
  match (held, requested) with
  | X, (S | X) -> true
  | S, S -> true
  | S, X -> false

let pp ppf = function S -> Format.pp_print_string ppf "S" | X -> Format.pp_print_string ppf "X"
