(** Lock modes. The model's workload is update-only (reads are ignored,
    Table 2), so the simulator takes X locks; S exists for the read-lock
    RPCs lazy-master serializability requires (§5) and for completeness. *)

type t = S | X

val compatible : t -> t -> bool
(** S/S is the only compatible pair. *)

val covers : held:t -> requested:t -> bool
(** A held X covers everything; a held S covers only S (an S holder
    requesting X is an upgrade). *)

val pp : Format.formatter -> t -> unit
