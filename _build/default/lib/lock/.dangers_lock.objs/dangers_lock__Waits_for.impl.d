lib/lock/waits_for.ml: Hashtbl Int List
