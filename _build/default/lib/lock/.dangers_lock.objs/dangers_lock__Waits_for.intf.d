lib/lock/waits_for.mli:
