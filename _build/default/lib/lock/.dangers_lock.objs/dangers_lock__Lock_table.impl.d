lib/lock/lock_table.ml: Hashtbl Int List Mode
