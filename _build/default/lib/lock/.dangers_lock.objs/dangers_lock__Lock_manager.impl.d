lib/lock/lock_manager.ml: Lock_table Waits_for
