lib/lock/lock_manager.mli: Lock_table Mode
