lib/lock/lock_table.mli: Mode
