type t = { weights : int array; read_quorum : int; write_quorum : int }

let create ~weights ~read_quorum ~write_quorum =
  if Array.length weights = 0 then invalid_arg "Quorum.create: no replicas";
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Quorum.create: negative weight";
  let total = Array.fold_left ( + ) 0 weights in
  if total = 0 then invalid_arg "Quorum.create: zero total votes";
  if read_quorum <= 0 || write_quorum <= 0 then
    invalid_arg "Quorum.create: quorums must be positive";
  if read_quorum + write_quorum <= total then
    invalid_arg "Quorum.create: need r + w > total votes";
  if 2 * write_quorum <= total then
    invalid_arg "Quorum.create: need 2w > total votes";
  { weights; read_quorum; write_quorum }

let majority ~n =
  if n <= 0 then invalid_arg "Quorum.majority: n must be positive";
  let q = (n / 2) + 1 in
  create ~weights:(Array.make n 1) ~read_quorum:q ~write_quorum:q

let read_one_write_all ~n =
  if n <= 0 then invalid_arg "Quorum.read_one_write_all: n must be positive";
  create ~weights:(Array.make n 1) ~read_quorum:1 ~write_quorum:n

let total_votes t = Array.fold_left ( + ) 0 t.weights
let replicas t = Array.length t.weights
let read_quorum t = t.read_quorum
let write_quorum t = t.write_quorum

let votes_up t ~up =
  if Array.length up <> Array.length t.weights then
    invalid_arg "Quorum: up-set size mismatch";
  let votes = ref 0 in
  Array.iteri (fun i is_up -> if is_up then votes := !votes + t.weights.(i)) up;
  !votes

let can_read t ~up = votes_up t ~up >= t.read_quorum
let can_write t ~up = votes_up t ~up >= t.write_quorum

let availability t ~p_up ~quorum =
  if p_up < 0. || p_up > 1. then invalid_arg "Quorum: p_up outside [0,1]";
  let n = Array.length t.weights in
  if n > 20 then invalid_arg "Quorum: availability enumeration limited to 20 replicas";
  (* Sum over all 2^n up/down patterns of P(pattern) where the up votes
     reach the quorum. *)
  let total = ref 0. in
  for pattern = 0 to (1 lsl n) - 1 do
    let votes = ref 0 and probability = ref 1. in
    for i = 0 to n - 1 do
      if pattern land (1 lsl i) <> 0 then begin
        votes := !votes + t.weights.(i);
        probability := !probability *. p_up
      end
      else probability := !probability *. (1. -. p_up)
    done;
    if !votes >= quorum then total := !total +. !probability
  done;
  !total

let read_availability t ~p_up = availability t ~p_up ~quorum:t.read_quorum
let write_availability t ~p_up = availability t ~p_up ~quorum:t.write_quorum
