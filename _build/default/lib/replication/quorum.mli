(** Gifford weighted voting (SOSP'79), the availability mechanism §3 assumes
    for eager replication ("a quorum or fault tolerance scheme is used to
    improve update availability").

    Each replica holds votes; a read needs [read_quorum] votes, a write
    [write_quorum]. Safety requires [r + w > total] (read/write overlap)
    and [2w > total] (write/write overlap). *)

type t

val create : weights:int array -> read_quorum:int -> write_quorum:int -> t
(** @raise Invalid_argument on empty/negative weights, non-positive quorums,
    or quorums violating the two overlap conditions. *)

val majority : n:int -> t
(** [n] nodes, one vote each, r = w = floor(n/2) + 1. *)

val read_one_write_all : n:int -> t
(** r = 1, w = n: fast reads, writes blocked by any failure. *)

val total_votes : t -> int
val replicas : t -> int
val read_quorum : t -> int
val write_quorum : t -> int

val can_read : t -> up:bool array -> bool
(** Whether the up-set gathers a read quorum.
    @raise Invalid_argument on a size mismatch. *)

val can_write : t -> up:bool array -> bool

val read_availability : t -> p_up:float -> float
(** Probability a read quorum exists when each replica is independently up
    with probability [p_up]. Exact (enumerates failure patterns); intended
    for small fleets (at most 20 replicas). @raise Invalid_argument on
    [p_up] outside [0,1] or more than 20 replicas. *)

val write_availability : t -> p_up:float -> float
