lib/replication/reconcile.ml: Array Dangers_storage
