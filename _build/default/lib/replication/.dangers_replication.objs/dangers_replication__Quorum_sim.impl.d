lib/replication/quorum_sim.ml: Array Common Dangers_analytic Dangers_net Dangers_storage Dangers_txn Dangers_util Fun List Quorum
