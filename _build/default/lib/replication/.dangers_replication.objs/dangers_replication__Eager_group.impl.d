lib/replication/eager_group.ml: Eager_impl
