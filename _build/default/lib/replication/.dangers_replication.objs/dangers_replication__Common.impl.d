lib/replication/common.ml: Array Dangers_analytic Dangers_sim Dangers_storage Dangers_txn Dangers_util Dangers_workload List Repl_stats
