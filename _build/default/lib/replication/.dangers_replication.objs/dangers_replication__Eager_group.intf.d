lib/replication/eager_group.mli: Common Dangers_analytic Dangers_txn Dangers_workload Eager_impl Repl_stats
