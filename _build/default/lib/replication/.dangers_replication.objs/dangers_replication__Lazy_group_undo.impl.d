lib/replication/lazy_group_undo.ml: Array Common Dangers_analytic Dangers_net Dangers_sim Dangers_storage Dangers_txn Dangers_util Dangers_workload Fun Hashtbl List Repl_stats
