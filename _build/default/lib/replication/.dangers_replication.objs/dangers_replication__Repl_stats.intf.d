lib/replication/repl_stats.mli: Dangers_sim Format
