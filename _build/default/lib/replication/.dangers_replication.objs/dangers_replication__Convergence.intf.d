lib/replication/convergence.mli: Dangers_storage
