lib/replication/convergence.ml: Array Dangers_storage Float Hashtbl List Set String
