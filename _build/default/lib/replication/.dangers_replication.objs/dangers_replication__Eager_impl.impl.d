lib/replication/eager_impl.ml: Array Common Dangers_analytic Dangers_lock Dangers_net Dangers_sim Dangers_storage Dangers_txn Dangers_util Dangers_workload Fun List Repl_stats
