lib/replication/quorum.ml: Array
