lib/replication/quorum_sim.mli: Common Dangers_analytic Dangers_net Dangers_storage Quorum
