lib/replication/eager_master.ml: Eager_impl
