lib/replication/reconcile.mli: Dangers_storage
