lib/replication/repl_stats.ml: Dangers_sim Dangers_util Format
