lib/replication/quorum.mli:
