lib/replication/lazy_group.ml: Array Common Dangers_analytic Dangers_lock Dangers_net Dangers_sim Dangers_storage Dangers_txn Dangers_util Dangers_workload Float Fun List Reconcile Repl_stats
