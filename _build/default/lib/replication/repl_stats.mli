(** Canonical metric names and the per-run summary every scheme reports.

    All schemes increment the same counter names in their {!Dangers_sim.Metrics.t},
    so experiments can compare them without per-scheme plumbing. *)

(** {1 Counter names} *)

val commits : string
(** User (root / master / base) transactions committed. *)

val waits : string
(** Lock requests that blocked. *)

val deadlocks : string
(** Transactions killed as deadlock victims. *)

val restarts : string
(** Deadlock victims resubmitted. *)

val reconciliations : string
(** Dangerous lazy-group updates (timestamp-chain mismatches) that needed a
    reconciliation rule, and two-tier base transactions failing acceptance. *)

val replica_applied : string
(** Replica updates applied at a non-originating node. *)

val stale_discards : string
(** Replica updates ignored because the replica already had a newer
    timestamp (lazy-master §5). *)

val lost_updates : string
(** Updates whose effect is absent from the converged state (§6's lost
    update problem). *)

val duration_sample : string
(** Sample-stream name for committed user-transaction durations. *)

(** {1 Summary} *)

type summary = {
  scheme : string;
  window : float;  (** measured sim-time, seconds *)
  commits : int;
  waits : int;
  deadlocks : int;
  restarts : int;
  reconciliations : int;
  commit_rate : float;
  wait_rate : float;
  deadlock_rate : float;
  reconciliation_rate : float;
  mean_duration : float;  (** mean committed transaction duration, seconds *)
}

val summarize : scheme:string -> Dangers_sim.Metrics.t -> summary
(** Read the current measurement window. *)

val pp_summary : Format.formatter -> summary -> unit
