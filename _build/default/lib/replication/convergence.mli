(** Non-transactional convergence schemes surveyed in §6.

    These are pure state-machine models (no simulation engine): replicas
    that exchange state pairwise and converge without serializability.
    {!Notes} reproduces Lotus Notes' two update forms — timestamped append
    and timestamped replace — and quantifies the lost-update problem via
    causal histories. {!Access} reproduces Microsoft Access "Wingman"
    record replication: a version vector per record, most recent update
    wins each pairwise exchange, rejected (concurrent) updates reported. *)

module Timestamp = Dangers_storage.Timestamp
module Version_vector = Dangers_storage.Version_vector
module Oid = Dangers_storage.Oid

module Notes : sig
  type t
  (** One replica of a Notes file: an append-set plus replaceable
      registers. *)

  val create : site:int -> t

  val append : t -> string -> unit
  (** Add a timestamped note; appends commute and are never lost. *)

  val replace : t -> key:string -> value:float -> unit
  (** Timestamped replace of a register: on exchange the newest timestamp
      wins and concurrent updates are silently discarded — the lost-update
      problem. *)

  val read_register : t -> key:string -> float option
  val notes : t -> string list
  (** Note bodies in timestamp order. *)

  val exchange : t -> t -> unit
  (** Bidirectional pairwise sync: unions the append-sets, resolves each
      register by latest-timestamp, and merges causal bookkeeping. *)

  val converged : t list -> bool
  (** All replicas have identical notes and registers. *)

  val lost_updates : t list -> int
  (** Replace-updates whose effect survives nowhere: updates outside the
      causal past of each register's current winner. Meaningful after the
      replicas have fully exchanged (e.g. [converged] holds); appends are
      never counted. *)

  val updates_issued : t list -> int
  (** Total replace-updates the fleet performed. *)
end

module Access : sig
  type t
  (** One replica of a record database with a version vector per record. *)

  val create : site:int -> db_size:int -> t

  val update : t -> Oid.t -> float -> unit
  (** Local record update: bumps the record's version vector at this
      site. *)

  val read : t -> Oid.t -> float
  val vector : t -> Oid.t -> Version_vector.t

  val exchange : t -> t -> int
  (** Pairwise sync. Causally ordered versions move forward silently;
      concurrent versions are a conflict: the most recent update (by
      timestamp) wins, the loser is rejected-and-reported. Returns the
      number of conflicts reported in this exchange. *)

  val converged : t list -> bool
  val conflicts_reported : t -> int
  (** Total conflicts this replica has reported across exchanges. *)
end
