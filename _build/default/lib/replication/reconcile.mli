(** Reconciliation rules for dangerous lazy-group updates.

    §6 observes that Oracle 7 shipped a dozen pluggable rules — site
    priority, time priority, value priority, commutative merges — and that
    such rules "make some transactions commutative". This module implements
    that rule family. A rule is consulted only when the timestamp chain is
    broken: the incoming update was made against a version the local
    replica no longer has (or never had).

    After any decision the object's timestamp advances to the maximum of
    the two timestamps, so replicas that see the same update set settle on
    the same (value, stamp) pair for the order-insensitive rules
    ([Timestamp_priority], [Value_priority], [Additive]). *)

module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp

type update = {
  oid : Oid.t;
  old_stamp : Timestamp.t;  (** origin's stamp before its update *)
  value : float;  (** absolute value after the update at the origin *)
  delta : float option;  (** the increment, when the op was commutative *)
  stamp : Timestamp.t;  (** the update's own stamp *)
  origin : int;  (** originating node *)
}

type decision =
  | Keep_current
  | Take_incoming
  | Merge of float  (** write this merged value *)
  | Drop
      (** no state change at all — not even the timestamp advances, so the
          replica's chain stays broken and every later update from the same
          lineage is dangerous too. This models *failed* reconciliation:
          the divergence it leaves behind accumulates into the paper's
          system delusion. *)

type rule =
  | Ignore
      (** reject every dangerous update outright ([Drop]) — the
          no-reconciliation strawman whose divergence grows without bound *)
  | Timestamp_priority  (** latest timestamp wins (Notes' replace; lossy) *)
  | Site_priority of int array
      (** earlier site in the array wins; unlisted sites lose to listed
          ones; ties fall back to timestamps *)
  | Value_priority of [ `Max | `Min ]  (** extremum wins (lossy) *)
  | Additive
      (** commutative merge: add the incoming delta to the current value;
          falls back to [Timestamp_priority] for updates with no delta *)
  | Custom of
      (current_value:float -> current_stamp:Timestamp.t -> update -> decision)

val resolve :
  rule -> current_value:float -> current_stamp:Timestamp.t -> update -> decision

val rule_name : rule -> string

val lossless : rule -> bool
(** [Additive] preserves every update's effect; the priority rules discard
    the loser (the lost-update problem). [Custom] is conservatively
    lossy. *)
