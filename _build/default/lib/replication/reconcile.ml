module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp

type update = {
  oid : Oid.t;
  old_stamp : Timestamp.t;
  value : float;
  delta : float option;
  stamp : Timestamp.t;
  origin : int;
}

type decision = Keep_current | Take_incoming | Merge of float | Drop

type rule =
  | Ignore
  | Timestamp_priority
  | Site_priority of int array
  | Value_priority of [ `Max | `Min ]
  | Additive
  | Custom of
      (current_value:float -> current_stamp:Timestamp.t -> update -> decision)

let by_timestamp ~current_stamp incoming =
  if Timestamp.newer incoming.stamp ~than:current_stamp then Take_incoming
  else Keep_current

let site_rank priorities site =
  let rec find i =
    if i >= Array.length priorities then Array.length priorities
    else if priorities.(i) = site then i
    else find (i + 1)
  in
  find 0

let resolve rule ~current_value ~current_stamp incoming =
  match rule with
  | Ignore -> Drop
  | Timestamp_priority -> by_timestamp ~current_stamp incoming
  | Site_priority priorities ->
      (* The current value's provenance is its stamp's node. *)
      let current_site = current_stamp.Timestamp.node in
      let incoming_rank = site_rank priorities incoming.origin in
      let current_rank = site_rank priorities current_site in
      if incoming_rank < current_rank then Take_incoming
      else if incoming_rank > current_rank then Keep_current
      else by_timestamp ~current_stamp incoming
  | Value_priority `Max ->
      if incoming.value > current_value then Take_incoming else Keep_current
  | Value_priority `Min ->
      if incoming.value < current_value then Take_incoming else Keep_current
  | Additive ->
      (match incoming.delta with
      | Some delta -> Merge (current_value +. delta)
      | None -> by_timestamp ~current_stamp incoming)
  | Custom f -> f ~current_value ~current_stamp incoming

let rule_name = function
  | Ignore -> "ignore"
  | Timestamp_priority -> "timestamp-priority"
  | Site_priority _ -> "site-priority"
  | Value_priority `Max -> "value-priority-max"
  | Value_priority `Min -> "value-priority-min"
  | Additive -> "additive"
  | Custom _ -> "custom"

let lossless = function
  | Additive -> true
  | Ignore | Timestamp_priority | Site_priority _ | Value_priority _ | Custom _ ->
      false
