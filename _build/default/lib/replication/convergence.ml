module Timestamp = Dangers_storage.Timestamp
module Version_vector = Dangers_storage.Version_vector
module Oid = Dangers_storage.Oid

module Stamp_set = Set.Make (struct
  type t = Timestamp.t

  let compare = Timestamp.compare
end)

module Notes = struct
  module Note_set = Set.Make (struct
    type t = Timestamp.t * string

    let compare (s1, b1) (s2, b2) =
      match Timestamp.compare s1 s2 with
      | 0 -> String.compare b1 b2
      | order -> order
  end)

  (* A register's [lineage] is the ids whose values flowed into the current
     value: an update's lineage is itself plus the lineage of the value it
     overwrote locally. When two registers meet and the newer stamp wins,
     loser-lineage ids outside the winner's lineage were overwritten
     *concurrently* — their effects vanish — and are recorded in [lost].
     An id can later turn out to have survived through another replica's
     lineage, so the final count subtracts the winner's lineage. *)
  type register = {
    mutable value : float;
    mutable stamp : Timestamp.t;
    mutable lineage : Stamp_set.t;
    mutable lost : Stamp_set.t;
  }

  type t = {
    clock : Timestamp.Clock.t;
    mutable note_set : Note_set.t;
    registers : (string, register) Hashtbl.t;
    mutable issued : int;
  }

  let create ~site =
    {
      clock = Timestamp.Clock.create ~node:site;
      note_set = Note_set.empty;
      registers = Hashtbl.create 16;
      issued = 0;
    }

  let append t body =
    let stamp = Timestamp.Clock.tick t.clock in
    t.note_set <- Note_set.add (stamp, body) t.note_set

  let register_for t key =
    match Hashtbl.find_opt t.registers key with
    | Some r -> r
    | None ->
        let r =
          {
            value = 0.;
            stamp = Timestamp.zero;
            lineage = Stamp_set.empty;
            lost = Stamp_set.empty;
          }
        in
        Hashtbl.add t.registers key r;
        r

  let replace t ~key ~value =
    let r = register_for t key in
    let stamp = Timestamp.Clock.tick t.clock in
    t.issued <- t.issued + 1;
    r.value <- value;
    r.stamp <- stamp;
    r.lineage <- Stamp_set.add stamp r.lineage

  let read_register t ~key =
    match Hashtbl.find_opt t.registers key with
    | Some r when not (Timestamp.equal r.stamp Timestamp.zero) -> Some r.value
    | Some _ | None -> None

  let notes t = Note_set.elements t.note_set |> List.map snd

  let merge_register ra rb =
    let winner, loser =
      if Timestamp.newer ra.stamp ~than:rb.stamp then (ra, rb) else (rb, ra)
    in
    let newly_lost = Stamp_set.diff loser.lineage winner.lineage in
    let lost = Stamp_set.union (Stamp_set.union ra.lost rb.lost) newly_lost in
    let value = winner.value and stamp = winner.stamp and lineage = winner.lineage in
    List.iter
      (fun r ->
        r.value <- value;
        r.stamp <- stamp;
        r.lineage <- lineage;
        r.lost <- lost)
      [ ra; rb ]

  let exchange a b =
    let union = Note_set.union a.note_set b.note_set in
    a.note_set <- union;
    b.note_set <- union;
    (* Lamport hygiene so later local updates outstamp whatever was seen. *)
    Note_set.iter (fun (stamp, _) ->
        Timestamp.Clock.witness a.clock stamp;
        Timestamp.Clock.witness b.clock stamp)
      union;
    let keys = Hashtbl.create 16 in
    let collect t = Hashtbl.iter (fun key _ -> Hashtbl.replace keys key ()) t.registers in
    collect a;
    collect b;
    Hashtbl.iter
      (fun key () ->
        let ra = register_for a key and rb = register_for b key in
        Timestamp.Clock.witness a.clock rb.stamp;
        Timestamp.Clock.witness b.clock ra.stamp;
        merge_register ra rb)
      keys

  let registers_equal a b =
    let check t other =
      Hashtbl.fold
        (fun key r acc ->
          acc
          &&
          match Hashtbl.find_opt other.registers key with
          | Some r' -> Float.equal r.value r'.value && Timestamp.equal r.stamp r'.stamp
          | None -> Timestamp.equal r.stamp Timestamp.zero)
        t.registers true
    in
    check a b && check b a

  let converged = function
    | [] | [ _ ] -> true
    | first :: rest ->
        List.for_all
          (fun t ->
            Note_set.equal first.note_set t.note_set && registers_equal first t)
          rest

  let lost_updates replicas =
    (* Per key: everything any replica recorded as lost, minus ids that
       turned out to survive through the global winner's lineage. *)
    let keys = Hashtbl.create 16 in
    List.iter
      (fun t -> Hashtbl.iter (fun key _ -> Hashtbl.replace keys key ()) t.registers)
      replicas;
    Hashtbl.fold
      (fun key () total ->
        let lost, winner =
          List.fold_left
            (fun (lost, winner) t ->
              match Hashtbl.find_opt t.registers key with
              | None -> (lost, winner)
              | Some r ->
                  let lost = Stamp_set.union lost r.lost in
                  let winner =
                    match winner with
                    | None -> Some r
                    | Some w ->
                        if Timestamp.newer r.stamp ~than:w.stamp then Some r
                        else Some w
                  in
                  (lost, winner))
            (Stamp_set.empty, None) replicas
        in
        match winner with
        | None -> total
        | Some w -> total + Stamp_set.cardinal (Stamp_set.diff lost w.lineage))
      keys 0

  let updates_issued replicas =
    List.fold_left (fun acc t -> acc + t.issued) 0 replicas
end

module Access = struct
  type record = {
    mutable value : float;
    mutable vv : Version_vector.t;
    mutable stamp : Timestamp.t; (* tie-break for concurrent versions *)
  }

  type t = {
    site : int;
    clock : Timestamp.Clock.t;
    records : record array;
    mutable conflicts : int;
  }

  let create ~site ~db_size =
    if db_size <= 0 then invalid_arg "Access.create: db_size must be positive";
    {
      site;
      clock = Timestamp.Clock.create ~node:site;
      records =
        Array.init db_size (fun _ ->
            { value = 0.; vv = Version_vector.empty; stamp = Timestamp.zero });
      conflicts = 0;
    }

  let record t oid = t.records.(Oid.to_int oid)

  let update t oid value =
    let r = record t oid in
    r.value <- value;
    r.vv <- Version_vector.increment r.vv ~node:t.site;
    r.stamp <- Timestamp.Clock.tick t.clock

  let read t oid = (record t oid).value
  let vector t oid = (record t oid).vv

  let exchange a b =
    if Array.length a.records <> Array.length b.records then
      invalid_arg "Access.exchange: different database sizes";
    let conflicts_here = ref 0 in
    Array.iteri
      (fun i ra ->
        let rb = b.records.(i) in
        Timestamp.Clock.witness a.clock rb.stamp;
        Timestamp.Clock.witness b.clock ra.stamp;
        let copy ~src ~dst =
          dst.value <- src.value;
          dst.stamp <- src.stamp
        in
        (match Version_vector.compare_causal ra.vv rb.vv with
        | Version_vector.Equal -> ()
        | Version_vector.Dominates -> copy ~src:ra ~dst:rb
        | Version_vector.Dominated -> copy ~src:rb ~dst:ra
        | Version_vector.Concurrent ->
            incr conflicts_here;
            if Timestamp.newer ra.stamp ~than:rb.stamp then copy ~src:ra ~dst:rb
            else copy ~src:rb ~dst:ra);
        let merged = Version_vector.merge ra.vv rb.vv in
        ra.vv <- merged;
        rb.vv <- merged)
      a.records;
    a.conflicts <- a.conflicts + !conflicts_here;
    b.conflicts <- b.conflicts + !conflicts_here;
    !conflicts_here

  let converged = function
    | [] | [ _ ] -> true
    | first :: rest ->
        List.for_all
          (fun t ->
            Array.length t.records = Array.length first.records
            && Array.for_all2
                 (fun r r' ->
                   Float.equal r.value r'.value
                   && Version_vector.equal r.vv r'.vv)
                 first.records t.records)
          rest

  let conflicts_reported t = t.conflicts
end
