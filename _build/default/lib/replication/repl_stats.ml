module Metrics = Dangers_sim.Metrics
module Stats = Dangers_util.Stats

let commits = "commits"
let waits = "waits"
let deadlocks = "deadlocks"
let restarts = "restarts"
let reconciliations = "reconciliations"
let replica_applied = "replica_applied"
let stale_discards = "stale_discards"
let lost_updates = "lost_updates"
let duration_sample = "txn_duration"

type summary = {
  scheme : string;
  window : float;
  commits : int;
  waits : int;
  deadlocks : int;
  restarts : int;
  reconciliations : int;
  commit_rate : float;
  wait_rate : float;
  deadlock_rate : float;
  reconciliation_rate : float;
  mean_duration : float;
}

let summarize ~scheme metrics =
  {
    scheme;
    window = Metrics.window_elapsed metrics;
    commits = Metrics.count metrics commits;
    waits = Metrics.count metrics waits;
    deadlocks = Metrics.count metrics deadlocks;
    restarts = Metrics.count metrics restarts;
    reconciliations = Metrics.count metrics reconciliations;
    commit_rate = Metrics.rate metrics commits;
    wait_rate = Metrics.rate metrics waits;
    deadlock_rate = Metrics.rate metrics deadlocks;
    reconciliation_rate = Metrics.rate metrics reconciliations;
    mean_duration = Stats.mean (Metrics.sample_stats metrics duration_sample);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s over %.1fs:@ commits=%d (%.3f/s) waits=%d (%.4f/s) deadlocks=%d \
     (%.5f/s)@ restarts=%d reconciliations=%d (%.5f/s) mean duration=%.4fs@]"
    s.scheme s.window s.commits s.commit_rate s.waits s.wait_rate s.deadlocks
    s.deadlock_rate s.restarts s.reconciliations s.reconciliation_rate
    s.mean_duration
