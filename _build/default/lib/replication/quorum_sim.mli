(** Eager replication under failures with weighted-voting quorums.

    §3: "Simple eager replication systems prohibit updates if any node is
    disconnected. For high availability, eager replication systems allow
    updates among members of the quorum ... When a node joins the quorum,
    the quorum sends the new node all replica updates since the node was
    disconnected."

    This simulator models exactly that availability layer (the locking
    layer is {!Eager_impl}'s job): nodes fail and recover on connectivity
    schedules; an update commits iff the up-set holds a write quorum, and
    then applies to every up replica; a recovering node catches up from a
    current replica before rejoining. Measured availability can be checked
    against {!Quorum}'s closed-form prediction. *)

module Params = Dangers_analytic.Params
module Connectivity = Dangers_net.Connectivity
module Fstore = Dangers_storage.Store.Fstore

type t

val create :
  ?initial_value:float ->
  quorum:Quorum.t ->
  uptime:float ->
  mean_downtime:float ->
  Params.t ->
  seed:int ->
  t
(** [uptime] is the long-run fraction of time each node is up (exponential
    up/down phases; mean downtime [mean_downtime] seconds, mean uptime
    derived). The quorum must have [params.nodes] replicas.
    @raise Invalid_argument on [uptime] outside (0,1), non-positive
    downtime, or a replica-count mismatch. *)

val start : t -> unit
(** Poisson update load per node (only up nodes originate). *)

val stop_load : t -> unit
val base : t -> Common.base

val committed : t -> int
val unavailable : t -> int
(** Updates refused because the up-set lacked a write quorum. *)

val availability : t -> float
(** committed / (committed + unavailable), over the whole run. *)

val catch_ups : t -> int
(** Recovery synchronisations performed. *)

val up_replicas_consistent : t -> bool
(** Every currently-up replica has identical content — the eager
    invariant the quorum protects. *)
