module Params = Dangers_analytic.Params
module Engine = Dangers_sim.Engine
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Profile = Dangers_workload.Profile
module Generator = Dangers_workload.Generator
module Rng = Dangers_util.Rng

type base = {
  params : Params.t;
  profile : Profile.t;
  initial_value : float;
  engine : Engine.t;
  metrics : Metrics.t;
  rng : Rng.t;
  stores : Fstore.t array;
  clocks : Timestamp.Clock.t array;
  txn_gen : Txn_id.Gen.t;
  mutable generators : Generator.t list;
}

let make ?profile ?(initial_value = 0.) params ~seed =
  Params.validate params;
  let profile =
    match profile with Some p -> p | None -> Profile.of_params params
  in
  let engine = Engine.create () in
  {
    params;
    profile;
    initial_value;
    engine;
    metrics = Metrics.create engine;
    rng = Rng.create ~seed;
    stores =
      Array.init params.Params.nodes (fun _ ->
          Fstore.create ~db_size:params.Params.db_size ~init:(fun _ -> initial_value));
    clocks =
      Array.init params.Params.nodes (fun node -> Timestamp.Clock.create ~node);
    txn_gen = Txn_id.Gen.create ();
    generators = [];
  }

let start_generators base ~submit =
  if base.generators <> [] then
    invalid_arg "Common.start_generators: generators already running";
  base.generators <-
    List.init base.params.Params.nodes (fun node ->
        let rng = Rng.split base.rng in
        Generator.start ~engine:base.engine ~rng ~tps:base.params.Params.tps
          ~profile:base.profile ~db_size:base.params.Params.db_size
          ~submit:(fun ops -> submit ~node ops))

let stop_generators base =
  List.iter Generator.stop base.generators;
  base.generators <- []

let backoff_delay base rng =
  let duration =
    float_of_int base.params.Params.actions *. base.params.Params.action_time
  in
  (0.5 +. Rng.float rng 1.0) *. duration

let commit_duration base ~started =
  Metrics.incr base.metrics Repl_stats.commits;
  Metrics.sample base.metrics Repl_stats.duration_sample
    (Engine.now base.engine -. started)

(* A drain that never ends is a bug (a generator or connectivity schedule
   left running); surface it instead of hanging. *)
let drain base = Engine.run ~max_events:200_000_000 base.engine

let measure base ~warmup ~span =
  Engine.run_for base.engine warmup;
  Metrics.start_window base.metrics;
  Engine.run_for base.engine span
