lib/workload/scenario.mli: Dangers_analytic Profile
