lib/workload/generator.ml: Dangers_sim Dangers_txn Dangers_util Profile
