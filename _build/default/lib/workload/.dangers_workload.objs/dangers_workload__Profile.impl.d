lib/workload/profile.ml: Array Dangers_analytic Dangers_storage Dangers_txn Dangers_util Hashtbl List
