lib/workload/profile.mli: Dangers_analytic Dangers_storage Dangers_txn Dangers_util
