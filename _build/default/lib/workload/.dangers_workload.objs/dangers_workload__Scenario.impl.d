lib/workload/scenario.ml: Dangers_analytic List Profile String
