lib/workload/generator.mli: Dangers_sim Dangers_txn Dangers_util Profile
