(** Named workload scenarios used by the examples and integration tests.

    Each bundles the paper-motivated story (checkbooks, salesmen, stock)
    with concrete model parameters and a transaction profile. *)

type t = {
  name : string;
  description : string;
  params : Dangers_analytic.Params.t;
  profile : Profile.t;
  initial_value : float;  (** starting value of every object *)
}

val checkbook : t
(** The paper's running example: a joint checking account replicated at
    your checkbook, your spouse's checkbook, and the bank. Few objects,
    assignment updates — the worst case for lazy-group. *)

val inventory : t
(** Warehouse stock counters debited/credited by increments — fully
    commutative, the two-tier sweet spot. *)

val sales : t
(** Disconnected salesmen quoting prices against a product catalog; mixed
    updates, long disconnects. *)

val tpcb : t
(** TPC-B-style bank (the benchmark family the paper cites for the
    scaled-database argument): account/teller/branch increments per
    transaction, branch rows as the built-in hotspot. *)

val all : t list
val find : string -> t option
