module Params = Dangers_analytic.Params

type t = {
  name : string;
  description : string;
  params : Params.t;
  profile : Profile.t;
  initial_value : float;
}

let checkbook =
  {
    name = "checkbook";
    description =
      "Joint checking accounts replicated at two checkbooks and the bank; \
       assignment updates collide and need reconciliation.";
    params =
      {
        Params.default with
        db_size = 100;
        nodes = 3;
        tps = 2.;
        actions = 2;
        time_between_disconnects = 120.;
        disconnected_time = 60.;
      };
    profile = Profile.create ~update_kind:Profile.Assigns ~actions:2 ();
    initial_value = 1000.;
  }

let inventory =
  {
    name = "inventory";
    description =
      "Warehouse stock adjusted by commutative increments; any application \
       order converges to the same counts.";
    params =
      {
        Params.default with
        db_size = 500;
        nodes = 4;
        tps = 5.;
        actions = 3;
        time_between_disconnects = 300.;
        disconnected_time = 120.;
      };
    profile =
      Profile.create ~update_kind:Profile.Increments ~magnitude:10. ~actions:3 ();
    initial_value = 10_000.;
  }

let sales =
  {
    name = "sales";
    description =
      "Disconnected salesmen write tentative orders and price quotes against \
       a product catalog; acceptance criteria guard the reconnect replay.";
    params =
      {
        Params.default with
        db_size = 1000;
        nodes = 5;
        tps = 1.;
        actions = 4;
        time_between_disconnects = 600.;
        disconnected_time = 3600.;
      };
    profile = Profile.create ~update_kind:(Profile.Mixed 0.7) ~actions:4 ();
    initial_value = 100.;
  }

let tpcb =
  let branches = 10 and tellers_per_branch = 10 in
  {
    name = "tpcb";
    description =
      "TPC-B-style bank: each transaction debits/credits an account and \
       updates its teller and branch totals - commutative increments with a \
       built-in branch hotspot.";
    params =
      {
        Params.default with
        db_size = 10_000 + 100 + 10; (* accounts + tellers + branches *)
        nodes = 2;
        tps = 10.;
        actions = 3;
      };
    profile =
      Profile.create
        ~update_kind:Profile.Increments ~magnitude:100.
        ~access:(Profile.Tpcb { branches; tellers_per_branch })
        ~actions:3 ();
    initial_value = 100_000.;
  }

let all = [ checkbook; inventory; sales; tpcb ]
let find name = List.find_opt (fun s -> String.equal s.name name) all
