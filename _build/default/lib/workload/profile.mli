(** Transaction profiles: what a generated transaction looks like.

    The model fixes the transaction shape (Actions updates on uniformly
    chosen distinct objects); the profile adds the semantic knobs the model
    abstracts away — whether updates are value assignments or commutative
    increments (§6), and optionally a Zipf hotspot (the model assumes
    uniform access; the hotspot is an ablation showing contention gets
    worse). *)

type update_kind =
  | Assigns  (** record-value updates: "change account from $200 to $150" *)
  | Increments  (** transformations: "debit the account by $50" — commute *)
  | Mixed of float
      (** fraction of increments, in [0,1]; the rest are assigns *)

type access =
  | Uniform  (** the model's equiprobable access *)
  | Zipf of float  (** hotspot skew theta > 0 *)
  | Tpcb of { branches : int; tellers_per_branch : int }
      (** TPC-B-style hierarchy (the benchmarks the paper cites when it
          scales DB_Size with the fleet): the object space is laid out as
          [branches | tellers | accounts]; each transaction picks a uniform
          account and touches its teller and branch too. Branch rows are
          the built-in hotspot: the effective database for branch conflicts
          is [branches], not [db_size]. Requires [actions = 3] and a
          database large enough to hold the three regions. *)

type t = {
  actions : int;  (** updates per transaction *)
  reads : int;
      (** read actions per transaction. Table 2's model ignores reads ("Reads
          are ignored"); they exist for the serializability extension — S
          locks locally (eager, lazy-group) or read-lock RPCs to masters
          (lazy-master, §5) *)
  update_kind : update_kind;
  access : access;
  magnitude : float;  (** |delta| bound for increments, value bound for assigns *)
}

val create :
  ?update_kind:update_kind -> ?access:access -> ?magnitude:float -> ?reads:int ->
  actions:int -> unit -> t
(** Defaults: [Assigns], [Uniform], magnitude 100, no reads.
    @raise Invalid_argument on a non-positive action count or magnitude, a
    negative read count, a [Mixed] fraction outside [0,1], or a
    non-positive Zipf theta. *)

val of_params : Dangers_analytic.Params.t -> t
(** The model's profile: [actions] from Table 2, assignments, uniform. *)

val generate :
  t -> Dangers_util.Rng.t -> db_size:int -> Dangers_txn.Op.t list
(** One transaction's operations: [actions] updates and [reads] reads on
    distinct objects, in shuffled order. Under [Tpcb] the three updates are
    account, teller, branch (reads still drawn uniformly).
    @raise Invalid_argument if [actions + reads > db_size], or under [Tpcb]
    if [actions <> 3] or the regions do not fit. *)

val tpcb_regions :
  branches:int -> tellers_per_branch:int -> db_size:int ->
  [ `Branch of int | `Teller of int | `Account of int ] -> Dangers_storage.Oid.t
(** Object-id layout helper for the [Tpcb] access pattern.
    @raise Invalid_argument when the index is outside its region. *)

val commutative : t -> bool
(** Whether every generated transaction commutes with every other
    ([Increments] only). *)
