module Rng = Dangers_util.Rng
module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op

type update_kind = Assigns | Increments | Mixed of float
type access =
  | Uniform
  | Zipf of float
  | Tpcb of { branches : int; tellers_per_branch : int }

type t = {
  actions : int;
  reads : int;
  update_kind : update_kind;
  access : access;
  magnitude : float;
}

let create ?(update_kind = Assigns) ?(access = Uniform) ?(magnitude = 100.)
    ?(reads = 0) ~actions () =
  if actions <= 0 then invalid_arg "Profile.create: actions must be positive";
  if reads < 0 then invalid_arg "Profile.create: reads must be >= 0";
  if magnitude <= 0. then invalid_arg "Profile.create: magnitude must be positive";
  (match update_kind with
  | Mixed fraction when fraction < 0. || fraction > 1. ->
      invalid_arg "Profile.create: Mixed fraction outside [0,1]"
  | Mixed _ | Assigns | Increments -> ());
  (match access with
  | Zipf theta when theta <= 0. ->
      invalid_arg "Profile.create: Zipf theta must be positive"
  | Tpcb { branches; tellers_per_branch } ->
      if branches <= 0 || tellers_per_branch <= 0 then
        invalid_arg "Profile.create: Tpcb layout must be positive";
      if actions <> 3 then
        invalid_arg "Profile.create: Tpcb requires exactly 3 actions"
  | Zipf _ | Uniform -> ());
  { actions; reads; update_kind; access; magnitude }

let of_params p = create ~actions:p.Dangers_analytic.Params.actions ()

let tpcb_regions ~branches ~tellers_per_branch ~db_size part =
  let tellers = branches * tellers_per_branch in
  let accounts = db_size - branches - tellers in
  if accounts <= 0 then invalid_arg "Profile.tpcb_regions: db too small";
  match part with
  | `Branch b ->
      if b < 0 || b >= branches then invalid_arg "Profile.tpcb_regions: branch";
      Oid.of_int b
  | `Teller i ->
      if i < 0 || i >= tellers then invalid_arg "Profile.tpcb_regions: teller";
      Oid.of_int (branches + i)
  | `Account a ->
      if a < 0 || a >= accounts then invalid_arg "Profile.tpcb_regions: account";
      Oid.of_int (branches + tellers + a)

let pick_oids t rng ~db_size =
  let k = t.actions + t.reads in
  match t.access with
  | Uniform ->
      Rng.sample_without_replacement rng ~n:db_size ~k
      |> Array.map Oid.of_int
  | Tpcb { branches; tellers_per_branch } ->
      let tellers = branches * tellers_per_branch in
      let accounts = db_size - branches - tellers in
      if accounts <= 0 then invalid_arg "Profile.generate: Tpcb db too small";
      let account = Rng.int rng accounts in
      let branch = Rng.int rng branches in
      let teller = (branch * tellers_per_branch) + Rng.int rng tellers_per_branch in
      let layout = tpcb_regions ~branches ~tellers_per_branch ~db_size in
      let updates =
        [| layout (`Account account); layout (`Teller teller); layout (`Branch branch) |]
      in
      if t.reads = 0 then updates
      else begin
        (* Extra reads come from the account region, distinct from the
           updated account. *)
        let read_oids =
          Rng.sample_without_replacement rng ~n:accounts ~k:(t.reads + 1)
          |> Array.to_list
          |> List.filter (fun a -> a <> account)
          |> (fun l -> List.filteri (fun i _ -> i < t.reads) l)
          |> List.map (fun a -> layout (`Account a))
        in
        Array.append updates (Array.of_list read_oids)
      end
  | Zipf theta ->
      (* Distinctness by rejection; hotspots make repeats likely, so cap the
         retries per slot and fall back to a uniform draw. *)
      let chosen = Hashtbl.create k in
      let draw_distinct () =
        let rec try_draw attempts =
          let candidate =
            if attempts >= 32 then Rng.int rng db_size
            else Rng.zipf rng ~n:db_size ~theta
          in
          if Hashtbl.mem chosen candidate then try_draw (attempts + 1)
          else begin
            Hashtbl.add chosen candidate ();
            candidate
          end
        in
        try_draw 0
      in
      Array.init k (fun _ -> Oid.of_int (draw_distinct ()))

let make_op t rng oid =
  let increment () =
    let delta = Rng.float rng (2. *. t.magnitude) -. t.magnitude in
    Op.Increment (oid, delta)
  in
  let assign () = Op.Assign (oid, Rng.float rng t.magnitude) in
  match t.update_kind with
  | Assigns -> assign ()
  | Increments -> increment ()
  | Mixed fraction -> if Rng.float rng 1.0 < fraction then increment () else assign ()

let generate t rng ~db_size =
  if t.actions + t.reads > db_size then
    invalid_arg "Profile.generate: actions exceed db_size";
  match t.access with
  | Tpcb _ ->
      (* Updates lead (account, teller, branch), reads follow. *)
      let oids = pick_oids t rng ~db_size in
      Array.to_list
        (Array.mapi
           (fun i oid -> if i < t.actions then make_op t rng oid else Op.Read oid)
           oids)
  | Uniform | Zipf _ ->
      let oids = pick_oids t rng ~db_size in
      let ops =
        Array.mapi
          (fun i oid -> if i < t.reads then Op.Read oid else make_op t rng oid)
          oids
      in
      Rng.shuffle rng ops;
      Array.to_list ops

let commutative t =
  match t.update_kind with
  | Increments -> true
  | Assigns | Mixed _ -> false
