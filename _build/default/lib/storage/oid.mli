(** Object identifiers.

    The model's database is a fixed set of [DB_Size] distinct objects;
    identifiers are dense integers in [0, DB_Size). *)

type t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val all : db_size:int -> t array
(** Every identifier of a database of the given size, in order. *)
