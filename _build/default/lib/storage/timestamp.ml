type t = { counter : int; node : int }

let zero = { counter = 0; node = -1 }

let compare a b =
  match Int.compare a.counter b.counter with
  | 0 -> Int.compare a.node b.node
  | order -> order

let equal a b = compare a b = 0
let newer a ~than = compare a than > 0
let pp ppf t = Format.fprintf ppf "%d@@n%d" t.counter t.node

module Clock = struct
  type ts = t
  type nonrec t = { clock_node : int; mutable last : int }

  let create ~node =
    if node < 0 then invalid_arg "Timestamp.Clock.create: negative node id";
    { clock_node = node; last = 0 }

  let node t = t.clock_node

  let tick t =
    t.last <- t.last + 1;
    { counter = t.last; node = t.clock_node }

  let witness t ts = if ts.counter > t.last then t.last <- ts.counter
end
