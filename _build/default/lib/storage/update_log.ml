(* The log is a growable buffer with a [base] offset: absolute position i is
   stored at [buffer.(i - base)]. Cursors hold absolute positions, so
   trimming never invalidates them. *)

type cursor = { mutable position : int; mutable registered : bool }

type 'a t = {
  mutable buffer : 'a option array;
  mutable base : int;
  mutable next : int;
  mutable consumers : cursor list;
}

let create () = { buffer = [||]; base = 0; next = 0; consumers = [] }

let stored t = t.next - t.base

let ensure_capacity t =
  let capacity = Array.length t.buffer in
  if stored t = capacity then begin
    let capacity' = if capacity = 0 then 16 else 2 * capacity in
    let buffer' = Array.make capacity' None in
    Array.blit t.buffer 0 buffer' 0 (stored t);
    t.buffer <- buffer'
  end

let append t x =
  ensure_capacity t;
  t.buffer.(stored t) <- Some x;
  t.next <- t.next + 1

let length t = t.next

let register t =
  let c = { position = t.next; registered = true } in
  t.consumers <- c :: t.consumers;
  c

let register_at_start t =
  let c = { position = t.base; registered = true } in
  t.consumers <- c :: t.consumers;
  c

let trim t =
  let min_position =
    List.fold_left
      (fun acc c -> if c.registered then Stdlib.min acc c.position else acc)
      t.next t.consumers
  in
  if min_position > t.base then begin
    let keep = t.next - min_position in
    let buffer' =
      if keep = 0 then [||]
      else Array.sub t.buffer (min_position - t.base) keep
    in
    t.buffer <- buffer';
    t.base <- min_position
  end

let entry t position =
  match t.buffer.(position - t.base) with
  | Some x -> x
  | None -> assert false

let read_new t c =
  if not c.registered then invalid_arg "Update_log.read_new: unregistered cursor";
  let rec collect position acc =
    if position >= t.next then List.rev acc
    else collect (position + 1) (entry t position :: acc)
  in
  let result = collect c.position [] in
  c.position <- t.next;
  trim t;
  result

let pending t c =
  if not c.registered then invalid_arg "Update_log.pending: unregistered cursor";
  t.next - c.position

let unregister t c =
  c.registered <- false;
  t.consumers <- List.filter (fun c' -> c' != c) t.consumers;
  trim t
