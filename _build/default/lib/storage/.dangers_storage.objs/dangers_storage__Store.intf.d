lib/storage/store.mli: Format Oid Timestamp
