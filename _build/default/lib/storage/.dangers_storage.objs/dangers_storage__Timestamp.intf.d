lib/storage/timestamp.mli: Format
