lib/storage/store.ml: Array Float Format Oid Timestamp
