lib/storage/update_log.ml: Array List Stdlib
