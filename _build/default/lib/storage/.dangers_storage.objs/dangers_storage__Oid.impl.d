lib/storage/oid.ml: Array Format Int
