lib/storage/version_vector.mli: Format
