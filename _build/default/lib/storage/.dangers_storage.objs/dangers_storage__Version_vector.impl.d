lib/storage/version_vector.ml: Format Int List Map Printf Stdlib String
