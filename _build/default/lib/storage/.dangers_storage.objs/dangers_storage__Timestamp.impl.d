lib/storage/timestamp.ml: Format Int
