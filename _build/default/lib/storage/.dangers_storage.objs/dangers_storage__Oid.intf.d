lib/storage/oid.mli: Format
