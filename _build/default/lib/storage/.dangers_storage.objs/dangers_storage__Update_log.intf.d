lib/storage/update_log.mli:
