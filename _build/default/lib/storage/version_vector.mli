(** Version vectors, as in Microsoft Access "Wingman" replication (§6).

    Access keeps a version vector with each replicated record; vectors are
    exchanged pairwise and the causally most recent update wins, with
    concurrent updates reported as conflicts. A vector maps node id to the
    count of updates that node has applied to the record. *)

type t

val empty : t

val increment : t -> node:int -> t
(** Record one more local update by [node]. *)

val get : t -> node:int -> int

val merge : t -> t -> t
(** Pointwise maximum — the join of the causal-history lattice. *)

type ordering = Equal | Dominates | Dominated | Concurrent

val compare_causal : t -> t -> ordering
(** [Dominates] when the first argument's history is a strict superset. Two
    [Concurrent] vectors are an Access-style conflict. *)

val dominates_or_equal : t -> t -> bool
val equal : t -> t -> bool
val nodes : t -> int list
(** Nodes with a non-zero component, ascending. *)

val of_list : (int * int) list -> t
(** @raise Invalid_argument on negative counts, negative node ids, or
    duplicate nodes. *)

val to_list : t -> (int * int) list
val pp : Format.formatter -> t -> unit
