type t = int

let of_int i =
  if i < 0 then invalid_arg "Oid.of_int: negative identifier";
  i

let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash i = i
let pp ppf i = Format.fprintf ppf "o%d" i
let all ~db_size = Array.init db_size (fun i -> i)
