(** Append-only update log with per-consumer cursors.

    Lazy replication stores committed updates for later propagation: a
    connected peer drains the log continuously, a disconnected mobile node
    drains everything since its last exchange at reconnect (§4's "deferred
    replica updates"). Entries are retained until every registered consumer
    has read past them. *)

type 'a t

val create : unit -> 'a t

val append : 'a t -> 'a -> unit

val length : 'a t -> int
(** Entries appended since creation (including already-trimmed ones). *)

type cursor

val register : 'a t -> cursor
(** A new consumer positioned at the current end of the log: it sees only
    subsequent appends. *)

val register_at_start : 'a t -> cursor
(** A consumer that replays retained history first. Retention only covers
    entries not yet read by all pre-existing consumers, so register
    consumers before appending if full history matters. *)

val read_new : 'a t -> cursor -> 'a list
(** Entries appended since this cursor last read, oldest first; advances the
    cursor and trims entries no longer needed by any consumer. *)

val pending : 'a t -> cursor -> int
(** How many entries [read_new] would return. *)

val unregister : 'a t -> cursor -> unit
(** Forget a consumer so it no longer holds back trimming. Reading from an
    unregistered cursor raises [Invalid_argument]. *)
