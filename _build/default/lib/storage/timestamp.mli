(** Update timestamps for lazy replication.

    The paper's lazy-group detection rule compares "the local replica's
    timestamp and the update's old timestamp" (§4); lazy-master slaves ignore
    updates older than the record timestamp (§5). Both need a total order
    that respects causality at the issuing node, so we use Lamport clocks:
    a counter advanced on every local update and on every timestamp
    witnessed, tie-broken by node id. *)

type t = { counter : int; node : int }

val zero : t
(** Initial timestamp of every replica of every object. *)

val compare : t -> t -> int
(** Lexicographic on [(counter, node)]: a total order. *)

val equal : t -> t -> bool
val newer : t -> than:t -> bool
val pp : Format.formatter -> t -> unit

(** Per-node Lamport clock. *)
module Clock : sig
  type ts = t
  type t

  val create : node:int -> t
  (** @raise Invalid_argument on a negative node id. *)

  val node : t -> int

  val tick : t -> ts
  (** Advance and return a timestamp strictly newer than every timestamp this
      clock has produced or witnessed. *)

  val witness : t -> ts -> unit
  (** Fold a received timestamp into the clock so later [tick]s sort after
      it. *)
end
