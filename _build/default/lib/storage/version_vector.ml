module Int_map = Map.Make (Int)

(* Invariant: no zero components are stored, so structural equality of the
   maps coincides with vector equality. *)
type t = int Int_map.t

let empty = Int_map.empty

let increment t ~node =
  if node < 0 then invalid_arg "Version_vector.increment: negative node id";
  Int_map.update node
    (function None -> Some 1 | Some n -> Some (n + 1))
    t

let get t ~node = match Int_map.find_opt node t with Some n -> n | None -> 0

let merge a b =
  Int_map.union (fun _node x y -> Some (Stdlib.max x y)) a b

type ordering = Equal | Dominates | Dominated | Concurrent

let leq a b = Int_map.for_all (fun node n -> n <= get b ~node) a

let compare_causal a b =
  let a_leq_b = leq a b and b_leq_a = leq b a in
  match (a_leq_b, b_leq_a) with
  | true, true -> Equal
  | false, true -> Dominates
  | true, false -> Dominated
  | false, false -> Concurrent

let dominates_or_equal a b =
  match compare_causal a b with
  | Dominates | Equal -> true
  | Dominated | Concurrent -> false

let equal a b = Int_map.equal Int.equal a b
let nodes t = Int_map.fold (fun node _ acc -> node :: acc) t [] |> List.rev

let of_list pairs =
  List.fold_left
    (fun acc (node, n) ->
      if node < 0 then invalid_arg "Version_vector.of_list: negative node id";
      if n < 0 then invalid_arg "Version_vector.of_list: negative count";
      if Int_map.mem node acc then
        invalid_arg "Version_vector.of_list: duplicate node";
      if n = 0 then acc else Int_map.add node n acc)
    empty pairs

let to_list t = Int_map.bindings t

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "; "
       (List.map (fun (node, n) -> Printf.sprintf "n%d:%d" node n) (to_list t)))
