module Engine = Dangers_sim.Engine
module Rng = Dangers_util.Rng

type 'msg parked = { p_src : int; p_dst : int; p_msg : 'msg }

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  delay : Delay.t;
  node_count : int;
  connected : bool array;
  parked : 'msg parked Queue.t array; (* indexed by the disconnected endpoint *)
  deliver : src:int -> dst:int -> 'msg -> unit;
  mutable observers : (node:int -> connected:bool -> unit) list;
  mutable sent : int;
  mutable delivered : int;
  mutable parked_count : int;
}

let create ~engine ~rng ~delay ~nodes ~deliver =
  if nodes <= 0 then invalid_arg "Network.create: nodes must be positive";
  Delay.validate delay;
  {
    engine;
    rng;
    delay;
    node_count = nodes;
    connected = Array.make nodes true;
    parked = Array.init nodes (fun _ -> Queue.create ());
    deliver;
    observers = [];
    sent = 0;
    delivered = 0;
    parked_count = 0;
  }

let nodes t = t.node_count

let check_node t node name =
  if node < 0 || node >= t.node_count then invalid_arg (name ^ ": node out of range")

let is_connected t ~node =
  check_node t node "Network.is_connected";
  t.connected.(node)

let park t ~at message =
  Engine.trace t.engine (Dangers_sim.Trace.Message_parked { at });
  Queue.add message t.parked.(at);
  t.parked_count <- t.parked_count + 1

(* Arrival: if the destination went down while the message was in flight, it
   parks there and is re-delivered after the reconnect flush. *)
let arrive t ({ p_src; p_dst; p_msg } as message) =
  if t.connected.(p_dst) then begin
    t.delivered <- t.delivered + 1;
    Engine.trace t.engine
      (Dangers_sim.Trace.Message_delivered { src = p_src; dst = p_dst });
    t.deliver ~src:p_src ~dst:p_dst p_msg
  end
  else park t ~at:p_dst message

let transmit t message =
  let delay = Delay.sample t.delay t.rng in
  ignore (Engine.schedule t.engine ~delay (fun () -> arrive t message))

let send t ~src ~dst msg =
  check_node t src "Network.send";
  check_node t dst "Network.send";
  if src = dst then invalid_arg "Network.send: src = dst";
  t.sent <- t.sent + 1;
  Engine.trace t.engine (Dangers_sim.Trace.Message_sent { src; dst });
  let message = { p_src = src; p_dst = dst; p_msg = msg } in
  if not t.connected.(src) then park t ~at:src message
  else if not t.connected.(dst) then park t ~at:dst message
  else transmit t message

let broadcast t ~src msg =
  for dst = 0 to t.node_count - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let set_connected t ~node state =
  check_node t node "Network.set_connected";
  if t.connected.(node) <> state then begin
    t.connected.(node) <- state;
    Engine.trace t.engine
      (if state then Dangers_sim.Trace.Node_connected { node }
       else Dangers_sim.Trace.Node_disconnected { node });
    if state then begin
      let queue = t.parked.(node) in
      let backlog = Queue.length queue in
      for _ = 1 to backlog do
        let message = Queue.pop queue in
        t.parked_count <- t.parked_count - 1;
        (* A flushed message may still face a down peer at the other end. *)
        let other = if message.p_src = node then message.p_dst else message.p_src in
        if t.connected.(other) then transmit t message
        else park t ~at:other message
      done
    end;
    List.iter (fun observer -> observer ~node ~connected:state) t.observers
  end

let on_connectivity_change t observer = t.observers <- observer :: t.observers

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_parked t = t.parked_count
