(** Simulated message network with store-and-forward for disconnected nodes.

    Nodes are integers in [0, nodes). A message is delivered by invoking the
    network's [deliver] callback after the sampled delay — but only when both
    endpoints are connected. Messages involving a disconnected endpoint are
    parked and flushed when that node reconnects; this models the paper's
    mobile pattern of exchanging deferred replica updates at reconnect
    (§2, §4). Base nodes simply never disconnect. *)

type 'msg t

val create :
  engine:Dangers_sim.Engine.t ->
  rng:Dangers_util.Rng.t ->
  delay:Delay.t ->
  nodes:int ->
  deliver:(src:int -> dst:int -> 'msg -> unit) ->
  'msg t
(** All nodes start connected. @raise Invalid_argument if [nodes <= 0] or
    the delay model is invalid. *)

val nodes : 'msg t -> int
val is_connected : 'msg t -> node:int -> bool

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. @raise Invalid_argument on out-of-range node ids or
    [src = dst]. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** Send to every other node. *)

val set_connected : 'msg t -> node:int -> bool -> unit
(** Reconnecting flushes messages parked for and by the node, each with a
    fresh delay sample. Observers registered with [on_connectivity_change]
    run after the flush is scheduled. Setting the current state is a
    no-op. *)

val on_connectivity_change : 'msg t -> (node:int -> connected:bool -> unit) -> unit

(** {1 Counters} *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int
val messages_parked : 'msg t -> int
(** Currently parked (waiting for a reconnect). *)
