lib/net/delay.mli: Dangers_util Format
