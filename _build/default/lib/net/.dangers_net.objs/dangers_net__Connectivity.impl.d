lib/net/connectivity.ml: Dangers_sim Dangers_util Float
