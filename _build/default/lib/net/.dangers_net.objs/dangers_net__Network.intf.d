lib/net/network.mli: Dangers_sim Dangers_util Delay
