lib/net/delay.ml: Dangers_util Format
