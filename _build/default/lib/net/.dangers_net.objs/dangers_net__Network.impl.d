lib/net/network.ml: Array Dangers_sim Dangers_util Delay List Queue
