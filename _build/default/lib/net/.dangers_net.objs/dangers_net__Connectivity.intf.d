lib/net/connectivity.mli: Dangers_sim Dangers_util
