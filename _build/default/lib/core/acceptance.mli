(** Acceptance criteria for two-tier base transactions (§7).

    A tentative transaction is re-executed at the base; its slightly
    different results are acceptable only if they pass the transaction's
    acceptance criterion. The paper's examples: "the bank balance must not
    go negative", "the price quote can not exceed the tentative quote",
    "the seats must be aisle seats". *)

module Oid = Dangers_storage.Oid

type outcome = {
  oid : Oid.t;
  tentative : float;  (** the value the mobile's tentative execution produced *)
  base : float;  (** the value the base re-execution would produce *)
}

type t =
  | Always  (** no test — any base result is acceptable *)
  | Exact_match
      (** base and tentative results must be identical — the paper's
          strictest test ("probably too pessimistic") *)
  | Within of float  (** |base - tentative| <= epsilon per object *)
  | Non_negative  (** every base post-value >= 0 (the bank-balance test) *)
  | At_most_tentative
      (** base result must not exceed the tentative result per object (the
          price-quote test) *)
  | All of t list  (** conjunction *)
  | Custom of string * (outcome list -> bool)  (** named predicate *)

val accept : t -> outcome list -> bool
val name : t -> string

val explain : t -> outcome list -> string option
(** [None] when accepted; otherwise a §7-style diagnostic naming the first
    failing object and criterion, to return to the mobile node. *)
