(** Commutative transaction design (§6–§7).

    "In certain cases transactions can be designed to commute, so that the
    database ends up in the same state no matter what transaction execution
    order is chosen." This module is that design vocabulary: constructors
    for commutative business transactions and a checker that a transaction
    set really is order-insensitive. *)

module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op
module Rng = Dangers_util.Rng

(** {1 Constructors} *)

val deposit : Oid.t -> float -> Op.t list
(** Credit an account: a single increment. @raise Invalid_argument on a
    negative amount. *)

val debit : Oid.t -> float -> Op.t list
(** Debit an account; commutes, so it may drive the balance negative — that
    is what the [Non_negative] acceptance criterion is for. *)

val transfer : from_:Oid.t -> to_:Oid.t -> float -> Op.t list
(** Debit one account, credit another, atomically; commutes with other
    transfers. @raise Invalid_argument on a negative amount or equal
    accounts. *)

val adjust_stock : Oid.t -> float -> Op.t list
(** Inventory delta (receipts positive, shipments negative). *)

(** {1 Checks} *)

val transaction_commutes : Op.t list -> bool
(** The transaction commutes with any transaction built from increments and
    reads — i.e. it contains no assignments. *)

val pairwise_commute : Op.t list list -> bool
(** Every pair of transactions in the set commutes. *)

val converges :
  ?trials:int -> rng:Rng.t -> db_size:int -> init:float ->
  Op.t list list -> bool
(** Empirical order-insensitivity: apply the whole transaction list to a
    fresh database in [trials] random orders (default 8) and compare final
    states. [pairwise_commute] implies [converges]; the converse is the
    empirical check used in tests. *)

val final_state :
  db_size:int -> init:float -> Op.t list list -> float array
(** The database after applying the transactions in the given order. *)
