module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op

type t = {
  seq : int;
  origin : int;
  ops : Op.t list;
  acceptance : Acceptance.t;
  tentative_results : (Oid.t * float) list;
  committed_at : float;
}

let make ~seq ~origin ~ops ~acceptance ~tentative_results ~committed_at =
  { seq; origin; ops; acceptance; tentative_results; committed_at }

let written_oids t =
  List.fold_left
    (fun acc op ->
      if Op.is_update op && not (List.exists (Oid.equal (Op.oid op)) acc) then
        Op.oid op :: acc
      else acc)
    [] t.ops
  |> List.rev

let commutes_with a b = Op.all_commute a.ops b.ops

let pp ppf t =
  Format.fprintf ppf "tentative#%d@@m%d [%s] (%s)" t.seq t.origin
    (String.concat "; " (List.map (Format.asprintf "%a" Op.pp) t.ops))
    (Acceptance.name t.acceptance)
