module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp

type t = {
  node : int;
  master : Fstore.t;
  tentative : Fstore.t;
  clock : Timestamp.Clock.t;
  mutable queue_rev : Tentative.t list;
  mutable requeued : Tentative.t list;
  mutable next_seq : int;
  mutable ran : int;
}

let create ~node ~db_size ~initial_value =
  {
    node;
    master = Fstore.create ~db_size ~init:(fun _ -> initial_value);
    tentative = Fstore.create ~db_size ~init:(fun _ -> initial_value);
    clock = Timestamp.Clock.create ~node;
    queue_rev = [];
    requeued = [];
    next_seq = 0;
    ran = 0;
  }

let node t = t.node
let master_store t = t.master
let tentative_store t = t.tentative

let run_tentative t ~ops ~acceptance ~now =
  let results =
    List.filter_map
      (fun op ->
        if not (Op.is_update op) then None
        else begin
          let oid = Op.oid op in
          let current = Fstore.read t.tentative oid in
          let value = Op.apply ~read:(Fstore.read t.tentative) ~current op in
          Fstore.write t.tentative oid value (Timestamp.Clock.tick t.clock);
          Some (oid, value)
        end)
      ops
  in
  let txn =
    Tentative.make ~seq:t.next_seq ~origin:t.node ~ops ~acceptance
      ~tentative_results:results ~committed_at:now
  in
  t.next_seq <- t.next_seq + 1;
  t.ran <- t.ran + 1;
  t.queue_rev <- txn :: t.queue_rev;
  txn

let pending t = t.requeued @ List.rev t.queue_rev
let pending_count t = List.length t.requeued + List.length t.queue_rev

let take_pending t =
  let all = pending t in
  t.queue_rev <- [];
  t.requeued <- [];
  all

let requeue_front t txns = t.requeued <- txns @ t.requeued

let apply_master_update t oid value stamp =
  Timestamp.Clock.witness t.clock stamp;
  let result = Fstore.apply_if_newer t.master oid value stamp in
  (* While no tentative work is pending, the tentative version tracks the
     master version; pending tentative writes take precedence locally. *)
  if pending_count t = 0 then
    ignore (Fstore.apply_if_newer t.tentative oid value stamp);
  result

let refresh_from t base =
  Fstore.overwrite_from t.master ~src:base;
  Fstore.overwrite_from t.tentative ~src:base;
  Fstore.iter base (fun _ _ stamp -> Timestamp.Clock.witness t.clock stamp)

let tentative_commits t = t.ran

let diverged t = not (Fstore.content_equal t.master t.tentative)
