module Oid = Dangers_storage.Oid

type outcome = { oid : Oid.t; tentative : float; base : float }

type t =
  | Always
  | Exact_match
  | Within of float
  | Non_negative
  | At_most_tentative
  | All of t list
  | Custom of string * (outcome list -> bool)

let rec accept t outcomes =
  match t with
  | Always -> true
  | Exact_match ->
      List.for_all (fun o -> Float.equal o.tentative o.base) outcomes
  | Within epsilon ->
      List.for_all (fun o -> Float.abs (o.base -. o.tentative) <= epsilon) outcomes
  | Non_negative -> List.for_all (fun o -> o.base >= 0.) outcomes
  | At_most_tentative -> List.for_all (fun o -> o.base <= o.tentative) outcomes
  | All criteria -> List.for_all (fun c -> accept c outcomes) criteria
  | Custom (_, f) -> f outcomes

let rec name = function
  | Always -> "always"
  | Exact_match -> "exact-match"
  | Within epsilon -> Printf.sprintf "within(%g)" epsilon
  | Non_negative -> "non-negative"
  | At_most_tentative -> "at-most-tentative"
  | All criteria -> "all[" ^ String.concat "; " (List.map name criteria) ^ "]"
  | Custom (label, _) -> "custom:" ^ label

let rec first_failure t outcomes =
  match t with
  | Always -> None
  | Exact_match ->
      List.find_opt (fun o -> not (Float.equal o.tentative o.base)) outcomes
      |> Option.map (fun o -> (o, "base result differs from tentative"))
  | Within epsilon ->
      List.find_opt (fun o -> Float.abs (o.base -. o.tentative) > epsilon) outcomes
      |> Option.map (fun o ->
             (o, Printf.sprintf "base result drifted more than %g" epsilon))
  | Non_negative ->
      List.find_opt (fun o -> o.base < 0.) outcomes
      |> Option.map (fun o -> (o, "base value would go negative"))
  | At_most_tentative ->
      List.find_opt (fun o -> o.base > o.tentative) outcomes
      |> Option.map (fun o -> (o, "base result exceeds the tentative quote"))
  | All criteria ->
      List.fold_left
        (fun acc c -> match acc with Some _ -> acc | None -> first_failure c outcomes)
        None criteria
  | Custom (label, f) ->
      if f outcomes then None
      else
        (match outcomes with
        | o :: _ -> Some (o, "custom criterion '" ^ label ^ "' failed")
        | [] -> None)

let explain t outcomes =
  if accept t outcomes then None
  else
    match first_failure t outcomes with
    | Some (o, why) ->
        Some
          (Format.asprintf
             "rejected at %a: %s (tentative %.4g, base %.4g; criterion %s)"
             Oid.pp o.oid why o.tentative o.base (name t))
    | None -> Some ("rejected: criterion " ^ name t ^ " failed")
