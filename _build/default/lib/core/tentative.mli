(** Tentative transactions (§7).

    A tentative transaction runs against the mobile node's tentative data
    and records everything needed to re-run it as a base transaction later:
    the operations (the "input parameters"), the acceptance criterion, the
    results the tentative execution produced, and the local commit order. *)

module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op

type t = {
  seq : int;  (** commit order at the originating mobile node *)
  origin : int;  (** the mobile node *)
  ops : Op.t list;
  acceptance : Acceptance.t;
  tentative_results : (Oid.t * float) list;
      (** post-value of every written object at the mobile *)
  committed_at : float;  (** local (simulated) commit time *)
}

val make :
  seq:int ->
  origin:int ->
  ops:Op.t list ->
  acceptance:Acceptance.t ->
  tentative_results:(Oid.t * float) list ->
  committed_at:float ->
  t

val written_oids : t -> Oid.t list
(** Objects the transaction updates, in op order, deduplicated. *)

val commutes_with : t -> t -> bool
(** Whether the two transactions' operations pairwise commute — §7's design
    rule for a zero reconciliation rate. *)

val pp : Format.formatter -> t -> unit
