module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op
module Rng = Dangers_util.Rng

let positive name amount =
  if amount < 0. then invalid_arg ("Commutative." ^ name ^ ": negative amount")

let deposit oid amount =
  positive "deposit" amount;
  [ Op.Increment (oid, amount) ]

let debit oid amount =
  positive "debit" amount;
  [ Op.Increment (oid, -.amount) ]

let transfer ~from_ ~to_ amount =
  positive "transfer" amount;
  if Oid.equal from_ to_ then invalid_arg "Commutative.transfer: same account";
  [ Op.Increment (from_, -.amount); Op.Increment (to_, amount) ]

let adjust_stock oid delta = [ Op.Increment (oid, delta) ]

let transaction_commutes ops =
  List.for_all
    (fun op ->
      match op with
      | Op.Increment _ | Op.Read _ -> true
      | Op.Assign _ | Op.Assign_from _ -> false)
    ops

let pairwise_commute txns =
  let rec check = function
    | [] -> true
    | txn :: rest ->
        List.for_all (fun other -> Op.all_commute txn other) rest && check rest
  in
  check txns

let final_state ~db_size ~init txns =
  let state = Array.make db_size init in
  List.iter
    (fun ops ->
      List.iter
        (fun op ->
          let i = Oid.to_int (Op.oid op) in
          let read oid = state.(Oid.to_int oid) in
          state.(i) <- Op.apply ~read ~current:state.(i) op)
        ops)
    txns;
  state

let converges ?(trials = 8) ~rng ~db_size ~init txns =
  let reference = final_state ~db_size ~init txns in
  let equal a b = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b in
  let arr = Array.of_list txns in
  let rec attempt k =
    if k = 0 then true
    else begin
      Rng.shuffle rng arr;
      let permuted = final_state ~db_size ~init (Array.to_list arr) in
      equal reference permuted && attempt (k - 1)
    end
  in
  attempt trials
