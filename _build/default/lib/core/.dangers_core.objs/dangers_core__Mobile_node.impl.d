lib/core/mobile_node.ml: Dangers_storage Dangers_txn List Tentative
