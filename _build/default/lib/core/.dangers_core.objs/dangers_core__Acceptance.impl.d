lib/core/acceptance.ml: Dangers_storage Float Format List Option Printf String
