lib/core/mobile_node.mli: Acceptance Dangers_storage Dangers_txn Tentative
