lib/core/commutative.ml: Array Dangers_storage Dangers_txn Dangers_util Float List
