lib/core/acceptance.mli: Dangers_storage
