lib/core/commutative.mli: Dangers_storage Dangers_txn Dangers_util
