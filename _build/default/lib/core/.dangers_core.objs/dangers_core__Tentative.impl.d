lib/core/tentative.ml: Acceptance Dangers_storage Dangers_txn Format List String
