lib/core/tentative.mli: Acceptance Dangers_storage Dangers_txn Format
