(** A mobile node's replicated state (§7).

    Each mobile node keeps two versions of every object:

    - the {e master version}, the most recent value received from the
      object masters (possibly stale while disconnected), and
    - the {e tentative version}, the master version plus the effects of the
      node's own not-yet-accepted tentative transactions.

    Local tentative transactions read and write tentative versions and are
    queued (with their input parameters and acceptance criteria) for replay
    at the base. On reconnect the tentative versions are discarded and both
    stores are refreshed from the base (protocol steps 1 and 4). *)

module Oid = Dangers_storage.Oid
module Op = Dangers_txn.Op
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp

type t

val create : node:int -> db_size:int -> initial_value:float -> t

val node : t -> int
val master_store : t -> Fstore.t
val tentative_store : t -> Fstore.t

val run_tentative :
  t -> ops:Op.t list -> acceptance:Acceptance.t -> now:float -> Tentative.t
(** Execute against the tentative versions, record the results, queue the
    transaction, and return it. *)

val pending : t -> Tentative.t list
(** Queued tentative transactions in commit order. *)

val pending_count : t -> int

val take_pending : t -> Tentative.t list
(** Remove and return the queue (reconnect protocol step 3 hands them to
    the host base node). *)

val requeue_front : t -> Tentative.t list -> unit
(** Put un-replayed transactions back (a disconnect interrupted the
    replay); they stay ahead of anything queued later. *)

val apply_master_update : t -> Oid.t -> float -> Timestamp.t ->
  [ `Applied | `Stale ]
(** A lazy-master slave update for this replica; also folds into the
    tentative version when no tentative transactions are pending (the
    stores coincide while connected). *)

val refresh_from : t -> Fstore.t -> unit
(** Steps 1 and 4: discard tentative versions and overwrite both stores
    from a base replica. Pending transactions are untouched. *)

val tentative_commits : t -> int
(** Tentative transactions this node ever ran. *)

val diverged : t -> bool
(** Tentative and master versions differ somewhere (there is uncommitted
    tentative work visible locally). *)
