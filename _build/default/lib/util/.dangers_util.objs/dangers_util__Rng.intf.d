lib/util/rng.mli:
