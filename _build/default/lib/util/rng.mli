(** Deterministic, splittable pseudo-random number generator.

    The simulator must be reproducible: the same seed yields the same event
    trace, byte for byte. The standard-library [Random] module offers no
    stable split, so we implement SplitMix64 (Steele, Lea & Flood, OOPSLA'14)
    directly. Each logical stream (per node, per generator) receives its own
    split so that adding a consumer never perturbs the draws of another. *)

type t
(** Mutable generator state. Not thread-safe; the simulator is
    single-threaded by design. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. The derived
    stream is statistically independent of the parent's subsequent
    output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). [bound] must be finite
    and positive. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for Poisson
    arrival inter-times. [mean] must be positive. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count with the given mean (Knuth's method below mean
    30, normal approximation above). *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from [0, n) with Zipfian skew [theta]
    (0 = uniform). Uses the rejection method of Gray et al. (SIGMOD'94
    quickly-generating billion-record databases). Used only by the hotspot
    workload extension; the paper's model is uniform. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] draws [k] distinct integers from
    [0, n), in draw order. @raise Invalid_argument if [k > n] or [k < 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
