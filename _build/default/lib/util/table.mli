(** ASCII table rendering for experiment reports.

    Every experiment emits rows of named columns; this module lines them up
    the way the paper prints its derivations: a header, aligned numeric
    columns, and an optional caption. *)

type align = Left | Right

type column
(** Column specification: header text plus alignment. *)

val column : ?align:align -> string -> column
(** Numeric columns default to [Right]; pass [~align:Left] for labels. *)

type t

val create : ?caption:string -> column list -> t
(** @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the cell count differs from the column
    count. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_markdown : t -> string
(** GitHub-flavoured markdown rendering (caption as bold paragraph,
    separators dropped) — used by the report generator. *)

(** {1 Cell formatting helpers} *)

val cell_float : ?digits:int -> float -> string
(** Fixed-point with [digits] decimals (default 4). *)

val cell_sci : float -> string
(** Scientific notation with three significant digits, e.g. [1.23e-05]. *)

val cell_int : int -> string

val cell_rate : float -> string
(** Adaptive: fixed-point for moderate magnitudes, scientific for extreme
    ones — readable across the 10^6 ranges the deadlock-rate sweeps span. *)
