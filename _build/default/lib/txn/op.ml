module Oid = Dangers_storage.Oid

type t =
  | Read of Oid.t
  | Assign of Oid.t * float
  | Increment of Oid.t * float
  | Assign_from of { target : Oid.t; source : Oid.t; offset : float }

let oid = function
  | Read oid | Assign (oid, _) | Increment (oid, _) -> oid
  | Assign_from { target; _ } -> target

let is_update = function
  | Read _ -> false
  | Assign _ | Increment _ | Assign_from _ -> true

let no_read _ = invalid_arg "Op.apply: derived op needs ~read"

let apply ?(read = no_read) ~current = function
  | Read _ -> current
  | Assign (_, value) -> value
  | Increment (_, delta) -> current +. delta
  | Assign_from { source; offset; _ } -> read source +. offset

(* Objects an update reads beyond the one it writes. *)
let extra_reads = function
  | Read _ | Assign _ | Increment _ -> []
  | Assign_from { source; _ } -> [ source ]

(* State-effect commutativity: reads always commute; updates commute unless
   one reads what the other writes, or they write the same object — with
   the increment/increment exception, the whole point of §6. *)
let commutes a b =
  match (a, b) with
  | Read _, _ | _, Read _ -> true
  | _ ->
      let read_write_conflict =
        List.exists (Oid.equal (oid b)) (extra_reads a)
        || List.exists (Oid.equal (oid a)) (extra_reads b)
      in
      if read_write_conflict then false
      else if not (Oid.equal (oid a) (oid b)) then true
      else
        (match (a, b) with
        | Increment _, Increment _ -> true
        | (Assign _ | Assign_from _ | Increment _ | Read _), _ -> false)

let all_commute xs ys =
  List.for_all (fun x -> List.for_all (fun y -> commutes x y) ys) xs

let equal a b =
  match (a, b) with
  | Read o1, Read o2 -> Oid.equal o1 o2
  | Assign (o1, v1), Assign (o2, v2) -> Oid.equal o1 o2 && Float.equal v1 v2
  | Increment (o1, d1), Increment (o2, d2) -> Oid.equal o1 o2 && Float.equal d1 d2
  | Assign_from a, Assign_from b ->
      Oid.equal a.target b.target && Oid.equal a.source b.source
      && Float.equal a.offset b.offset
  | Read _, (Assign _ | Increment _ | Assign_from _)
  | Assign _, (Read _ | Increment _ | Assign_from _)
  | Increment _, (Read _ | Assign _ | Assign_from _)
  | Assign_from _, (Read _ | Assign _ | Increment _) -> false

let pp ppf = function
  | Read oid -> Format.fprintf ppf "read %a" Oid.pp oid
  | Assign (oid, value) -> Format.fprintf ppf "%a := %g" Oid.pp oid value
  | Increment (oid, delta) -> Format.fprintf ppf "%a += %g" Oid.pp oid delta
  | Assign_from { target; source; offset } ->
      Format.fprintf ppf "%a := %a %+g" Oid.pp target Oid.pp source offset
