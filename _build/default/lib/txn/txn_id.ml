type t = int

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.fprintf ppf "t%d" t

module Gen = struct
  type id = t
  type nonrec t = { mutable next_id : int }

  let create () = { next_id = 0 }

  let next t =
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    id

  let issued t = t.next_id
end
