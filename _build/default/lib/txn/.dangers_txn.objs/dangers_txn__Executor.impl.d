lib/txn/executor.ml: Dangers_lock Dangers_sim Fun Option Txn_id
