lib/txn/op.ml: Dangers_storage Float Format List
