lib/txn/executor.mli: Dangers_lock Dangers_sim Txn_id
