lib/txn/txn_id.ml: Format Int
