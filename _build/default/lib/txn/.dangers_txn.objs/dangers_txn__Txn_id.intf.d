lib/txn/txn_id.mli: Format
