lib/txn/op.mli: Dangers_storage Format
