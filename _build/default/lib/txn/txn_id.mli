(** Transaction identifiers, unique per generator.

    The integer form doubles as the lock-manager owner id. Restarted
    transactions get a fresh id (a resubmitted deadlock victim is a new
    transaction, as in §7's "resubmitted and reprocessed until it
    succeeds"). *)

type t

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Gen : sig
  type id = t
  type t

  val create : unit -> t
  val next : t -> id
  val issued : t -> int
end
