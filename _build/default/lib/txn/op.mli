(** Transaction operations.

    The paper distinguishes record-value updates ("change account from $200
    to $150") from transactional transformations ("debit the account by
    $50") — §6. [Assign] is the former, [Increment] the latter; increments
    commute with each other, which is exactly what the two-tier scheme
    exploits to drive its reconciliation rate to zero. [Read] exists for
    scope rules and acceptance criteria; the model itself ignores reads. *)

module Oid = Dangers_storage.Oid

type t =
  | Read of Oid.t
  | Assign of Oid.t * float
  | Increment of Oid.t * float
  | Assign_from of { target : Oid.t; source : Oid.t; offset : float }
      (** [target := source + offset] — a derived write whose result
          depends on current data, so re-executing it at the base (§7) can
          produce a different value than the tentative run (e.g. a price
          quote recomputed from the current catalog). The source is read
          committed-read style, without a lock, matching the model's
          no-read-locks assumption. *)

val oid : t -> Oid.t
(** The object written (the target, for derived writes). *)

val is_update : t -> bool

val apply : ?read:(Oid.t -> float) -> current:float -> t -> float
(** The value after the operation ([Read] leaves it unchanged). [read]
    supplies other objects' current values for derived writes; it defaults
    to a function that raises, so plain ops never need it.
    @raise Invalid_argument when a derived op is applied without [read]. *)

val commutes : t -> t -> bool
(** Operations on distinct objects always commute; on the same object only
    increment/increment (and anything with a read) commutes. *)

val all_commute : t list -> t list -> bool
(** Pairwise commutativity of two op lists — the §7 design rule "the
    programmer must design the transactions to be commutative". *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
