let fi = float_of_int

let transaction_size p = fi p.Params.actions *. fi p.Params.nodes

let transaction_duration p =
  fi p.Params.actions *. fi p.Params.nodes *. p.Params.action_time

let total_tps p = p.Params.tps *. fi p.Params.nodes

let total_transactions p =
  Params.concurrent_transactions p *. (fi p.Params.nodes ** 2.)

let action_rate p = p.Params.tps *. fi p.Params.actions *. (fi p.Params.nodes ** 2.)

let pw p =
  p.Params.tps *. p.Params.action_time *. (fi p.Params.actions ** 3.)
  *. (fi p.Params.nodes ** 2.)
  /. (2. *. fi p.Params.db_size)

let total_wait_rate p =
  (p.Params.tps ** 2.) *. p.Params.action_time
  *. ((fi p.Params.actions *. fi p.Params.nodes) ** 3.)
  /. (2. *. fi p.Params.db_size)

let pd p =
  p.Params.tps *. p.Params.action_time *. (fi p.Params.actions ** 5.)
  *. (fi p.Params.nodes ** 2.)
  /. (4. *. (fi p.Params.db_size ** 2.))

let total_deadlock_rate p =
  (p.Params.tps ** 2.) *. p.Params.action_time *. (fi p.Params.actions ** 5.)
  *. (fi p.Params.nodes ** 3.)
  /. (4. *. (fi p.Params.db_size ** 2.))

let deadlock_rate_scaled_db p =
  (p.Params.tps ** 2.) *. p.Params.action_time *. (fi p.Params.actions ** 5.)
  *. fi p.Params.nodes
  /. (4. *. (fi p.Params.db_size ** 2.))
