type t = {
  db_size : int;
  nodes : int;
  tps : float;
  actions : int;
  action_time : float;
  time_between_disconnects : float;
  disconnected_time : float;
  message_delay : float;
  message_cpu : float;
}

let default =
  {
    db_size = 1000;
    nodes = 1;
    tps = 10.;
    actions = 4;
    action_time = 0.01;
    time_between_disconnects = 86_400.; (* a day connected *)
    disconnected_time = 28_800.; (* a night disconnected *)
    message_delay = 0.;
    message_cpu = 0.;
  }

let validate t =
  let fail field = invalid_arg ("Params.validate: " ^ field) in
  if t.db_size <= 0 then fail "db_size must be positive";
  if t.nodes <= 0 then fail "nodes must be positive";
  if not (t.tps > 0. && Float.is_finite t.tps) then fail "tps must be positive";
  if t.actions <= 0 then fail "actions must be positive";
  if not (t.action_time > 0. && Float.is_finite t.action_time) then
    fail "action_time must be positive";
  if not (t.time_between_disconnects > 0.) then
    fail "time_between_disconnects must be positive";
  if t.disconnected_time < 0. then fail "disconnected_time must be >= 0";
  if t.message_delay < 0. then fail "message_delay must be >= 0";
  if t.message_cpu < 0. then fail "message_cpu must be >= 0"

let concurrent_transactions t = t.tps *. float_of_int t.actions *. t.action_time

let scale_db_with_nodes t = { t with db_size = t.db_size * t.nodes }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>DB_Size=%d Nodes=%d TPS=%g Actions=%d Action_Time=%gs@ \
     Time_Between_Disconnects=%gs Disconnected_Time=%gs Message_Delay=%gs \
     Message_CPU=%gs@]"
    t.db_size t.nodes t.tps t.actions t.action_time t.time_between_disconnects
    t.disconnected_time t.message_delay t.message_cpu
