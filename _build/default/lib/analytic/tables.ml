module Table = Dangers_util.Table

let check_nodes nodes =
  if nodes = [] then invalid_arg "Tables: empty sweep";
  if List.exists (fun n -> n <= 0) nodes then
    invalid_arg "Tables: node counts must be positive"

let nodes_sweep params ~nodes =
  check_nodes nodes;
  Params.validate params;
  let table =
    Table.create
      ~caption:
        (Format.asprintf "Predicted failure rates per second vs nodes (%a)"
           Params.pp params)
      [
        Table.column "Nodes";
        Table.column "eager deadlocks (eq12)";
        Table.column "eager, scaled DB (eq13)";
        Table.column "lazy-group reconciliations (eq14)";
        Table.column "lazy-master deadlocks (eq19)";
        Table.column "mobile P(collision) (eq17)";
      ]
  in
  List.iter
    (fun n ->
      let p = { params with Params.nodes = n } in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_rate (Eager.total_deadlock_rate p);
          Table.cell_rate (Eager.deadlock_rate_scaled_db p);
          Table.cell_rate (Lazy_group.reconciliation_rate p);
          Table.cell_rate (Lazy_master.deadlock_rate p);
          Table.cell_float ~digits:4 (Lazy_group.p_collision p);
        ])
    nodes;
  table

let actions_sweep params ~actions =
  if actions = [] || List.exists (fun a -> a <= 0) actions then
    invalid_arg "Tables: actions must be positive";
  Params.validate params;
  let table =
    Table.create
      ~caption:"The Actions^5 law: deadlock rates vs transaction size"
      [
        Table.column "Actions";
        Table.column "single-node deadlocks (eq5)";
        Table.column "eager deadlocks (eq12)";
        Table.column "PW single (eq2)";
      ]
  in
  List.iter
    (fun a ->
      let p = { params with Params.actions = a } in
      Table.add_row table
        [
          Table.cell_int a;
          Table.cell_rate (Single_node.node_deadlock_rate p);
          Table.cell_rate (Eager.total_deadlock_rate p);
          Table.cell_float ~digits:5 (Single_node.pw p);
        ])
    actions;
  table

let headline_growth params =
  Params.validate params;
  let by_nodes f =
    Model.growth_ratio f params ~scale:(fun p ->
        { p with Params.nodes = 10 * p.Params.nodes })
  in
  let by_actions f =
    Model.growth_ratio f params ~scale:(fun p ->
        { p with Params.actions = 10 * p.Params.actions })
  in
  let table =
    Table.create ~caption:"What a 10x increase does to each failure rate"
      [
        Table.column ~align:Table.Left "rate";
        Table.column "10x nodes";
        Table.column "10x transaction size";
      ]
  in
  let row label f =
    Table.add_row table
      [
        label;
        Table.cell_float ~digits:0 (by_nodes f);
        Table.cell_float ~digits:0 (by_actions f);
      ]
  in
  row "eager deadlocks (eq12)" Eager.total_deadlock_rate;
  row "eager deadlocks, scaled DB (eq13)" Eager.deadlock_rate_scaled_db;
  row "lazy-group reconciliations (eq14)" Lazy_group.reconciliation_rate;
  row "lazy-master deadlocks (eq19)" Lazy_master.deadlock_rate;
  table

let stability_threshold params ~budget_per_second scheme =
  if budget_per_second <= 0. then
    invalid_arg "Tables.stability_threshold: budget must be positive";
  Params.validate params;
  let rate n =
    let p = { params with Params.nodes = n } in
    match scheme with
    | `Eager -> Eager.total_deadlock_rate p
    | `Lazy_master -> Lazy_master.deadlock_rate p
  in
  let rec search n = if rate (n + 1) > budget_per_second then n else search (n + 1) in
  if rate 1 > budget_per_second then 0 else search 1
