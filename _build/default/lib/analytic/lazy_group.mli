(** Lazy-group replication analysis — equations (14)–(18).

    Transactions that would wait under eager replication need reconciliation
    under lazy-group, and waits are far more frequent than deadlocks
    (deadlock ~ wait^2), so the reconciliation rate follows the eager *wait*
    rate (equation 10). The disconnected (mobile) case is modelled as a
    batch exchange: all updates made during Disconnected_Time collide with
    the rest of the network's pending updates. *)

val reconciliation_rate : Params.t -> float
(** Equation (14): system reconciliations per second for connected
    lazy-group, [TPS^2 x Action_Time x (Actions x Nodes)^3 / (2 x DB_Size)]. *)

val outbound_updates : Params.t -> float
(** Equation (15): distinct object updates a mobile node has pending at
    reconnect, [Disconnected_Time x TPS x Actions]. *)

val inbound_updates : Params.t -> float
(** Equation (16): pending updates arriving from the rest of the network,
    [(Nodes - 1) x Disconnected_Time x TPS x Actions]. *)

val p_collision : Params.t -> float
(** Equation (17): chance one node needs reconciliation during a
    disconnect cycle, [Nodes x (Disconnected_Time x TPS x Actions)^2 /
    DB_Size] (the paper's final approximation; capped at 1 for reporting). *)

val mobile_reconciliation_rate : Params.t -> float
(** Equation (18): reconciliations per second across all nodes,
    [Disconnected_Time x (TPS x Actions x Nodes)^2 / DB_Size]. *)
