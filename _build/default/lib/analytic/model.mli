(** Unified per-scheme predictions and the paper's headline growth claims. *)

type scheme =
  | Eager_group
  | Eager_master
  | Lazy_group
  | Lazy_master
  | Two_tier

val scheme_name : scheme -> string
val all_schemes : scheme list

type prediction = {
  transaction_size : float;  (** actions per user transaction *)
  transaction_duration : float;  (** seconds *)
  transactions_per_user_update : float;
      (** Table 1's propagation cost: eager 1, lazy N, two-tier N+1 *)
  object_owners : float;  (** Table 1's ownership column: group N, master 1 *)
  total_transactions : float;  (** concurrent, system-wide *)
  action_rate : float;  (** update actions per second, system-wide *)
  wait_rate : float;  (** waits per second, system-wide *)
  deadlock_rate : float;  (** deadlocks per second, system-wide *)
  reconciliation_rate : float;  (** reconciliations per second, system-wide *)
}

val predict : scheme -> Params.t -> prediction
(** The model's prediction for one scheme at one parameter point. The model
    does not separate eager-group from eager-master rates; they differ only
    in the ownership column. Two-tier's reconciliation entry is 0 — its
    premise is commutative transaction design; acceptance-test failures are
    application-specific (§7) and measured, not predicted. *)

val growth_ratio :
  (Params.t -> float) -> Params.t -> scale:(Params.t -> Params.t) -> float
(** [growth_ratio f p ~scale] = [f (scale p) /. f p] — e.g. the 10x-nodes
    1000x-deadlocks claim is
    [growth_ratio Eager.total_deadlock_rate p
       ~scale:(fun p -> { p with nodes = 10 * p.nodes })] = 1000. *)

val nodes_exponent : scheme -> [ `Deadlock | `Reconciliation | `Wait ] -> float
(** The predicted power of Nodes in each rate: eager deadlock 3, lazy-group
    reconciliation 3, lazy-master / two-tier deadlock 2, mobile collision 2,
    etc. 0 for rates the scheme does not exhibit. *)
