(** Eager replication analysis — equations (6)–(13).

    Updates are applied to every replica inside the originating transaction,
    serially (the paper's message-cost-capturing choice), so transactions
    are Nodes times bigger and longer, and the node update rate grows as
    Nodes^2. The model does not distinguish eager-group from eager-master
    (the second-order race for the same object is ignored when
    DB_Size >> Nodes), so these predictions cover both. *)

val transaction_size : Params.t -> float
(** Equation (6a): [Actions x Nodes] actions per transaction. *)

val transaction_duration : Params.t -> float
(** Equation (6b): [Actions x Nodes x Action_Time] seconds. *)

val total_tps : Params.t -> float
(** Equation (6c): [TPS x Nodes] transactions per second system-wide. *)

val total_transactions : Params.t -> float
(** Equation (7): concurrent transactions system-wide,
    [TPS x Actions x Action_Time x Nodes^2]. *)

val action_rate : Params.t -> float
(** Equation (8): system update-actions per second,
    [TPS x Actions x Nodes^2]. Same for eager and lazy systems. *)

val pw : Params.t -> float
(** Equation (9): probability one transaction waits,
    [TPS x Action_Time x Actions^3 x Nodes^2 / (2 x DB_Size)]. *)

val total_wait_rate : Params.t -> float
(** Equation (10): system waits per second,
    [TPS^2 x Action_Time x (Actions x Nodes)^3 / (2 x DB_Size)]. *)

val pd : Params.t -> float
(** Equation (11): probability one transaction deadlocks,
    [TPS x Action_Time x Actions^5 x Nodes^2 / (4 x DB_Size^2)]. *)

val total_deadlock_rate : Params.t -> float
(** Equation (12): system deadlocks per second,
    [TPS^2 x Action_Time x Actions^5 x Nodes^3 / (4 x DB_Size^2)] — the
    cubic law: ten-fold nodes, thousand-fold deadlocks. *)

val deadlock_rate_scaled_db : Params.t -> float
(** Equation (13): equation (12) when the database grows with the nodes
    (DB_Size := DB_Size x Nodes):
    [TPS^2 x Action_Time x Actions^5 x Nodes / (4 x DB_Size^2)] — linear,
    still unstable but far better. *)
