(** Paper-style analytic sweep tables: the equations evaluated over
    parameter ranges, with no simulation — what the paper's reader computes
    by hand from §3–§5, printed. *)

module Table = Dangers_util.Table

val nodes_sweep : Params.t -> nodes:int list -> Table.t
(** Per node count: eager deadlock rate (eq 12), scaled-DB variant (eq 13),
    lazy-group reconciliation (eq 14), lazy-master deadlock (eq 19), and
    the mobile collision probability (eq 17).
    @raise Invalid_argument on an empty or non-positive list. *)

val actions_sweep : Params.t -> actions:int list -> Table.t
(** The Actions^5 law: single-node and eager deadlock rates as the
    transaction grows. *)

val headline_growth : Params.t -> Table.t
(** The abstract's claims as a table: what multiplying nodes by 10 does to
    each scheme's failure rate, and what multiplying the transaction size
    by 10 does. *)

val stability_threshold :
  Params.t -> budget_per_second:float -> [ `Eager | `Lazy_master ] -> int
(** The largest node count whose predicted deadlock rate stays within
    [budget_per_second] — where the paper's "scaleup pitfall" bites for a
    given tolerance. @raise Invalid_argument on a non-positive budget. *)
