let fi = float_of_int

let reconciliation_rate = Eager.total_wait_rate

let outbound_updates p =
  p.Params.disconnected_time *. p.Params.tps *. fi p.Params.actions

let inbound_updates p = fi (p.Params.nodes - 1) *. outbound_updates p

let p_collision p =
  let raw =
    fi p.Params.nodes
    *. ((p.Params.disconnected_time *. p.Params.tps *. fi p.Params.actions) ** 2.)
    /. fi p.Params.db_size
  in
  Float.min raw 1.0

let mobile_reconciliation_rate p =
  p.Params.disconnected_time
  *. ((p.Params.tps *. fi p.Params.actions *. fi p.Params.nodes) ** 2.)
  /. fi p.Params.db_size
