lib/analytic/params.mli: Format
