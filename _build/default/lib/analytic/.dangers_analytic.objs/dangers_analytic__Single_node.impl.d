lib/analytic/single_node.ml: Params
