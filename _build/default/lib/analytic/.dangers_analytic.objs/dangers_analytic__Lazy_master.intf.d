lib/analytic/lazy_master.mli: Params
