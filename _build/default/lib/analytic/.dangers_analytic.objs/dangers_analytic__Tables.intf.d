lib/analytic/tables.mli: Dangers_util Params
