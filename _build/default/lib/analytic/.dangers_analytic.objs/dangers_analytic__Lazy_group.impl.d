lib/analytic/lazy_group.ml: Eager Float Params
