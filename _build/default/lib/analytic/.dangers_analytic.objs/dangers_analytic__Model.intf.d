lib/analytic/model.mli: Params
