lib/analytic/single_node.mli: Params
