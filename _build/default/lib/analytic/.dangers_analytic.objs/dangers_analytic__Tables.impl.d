lib/analytic/tables.ml: Dangers_util Eager Format Lazy_group Lazy_master List Model Params Single_node
