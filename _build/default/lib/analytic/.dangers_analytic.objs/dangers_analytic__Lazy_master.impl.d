lib/analytic/lazy_master.ml: Params
