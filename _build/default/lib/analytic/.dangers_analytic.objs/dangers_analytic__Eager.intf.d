lib/analytic/eager.mli: Params
