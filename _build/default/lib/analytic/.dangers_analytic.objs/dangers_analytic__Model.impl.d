lib/analytic/model.ml: Eager Lazy_group Lazy_master Params
