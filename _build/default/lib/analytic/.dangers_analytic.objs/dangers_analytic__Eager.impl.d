lib/analytic/eager.ml: Params
