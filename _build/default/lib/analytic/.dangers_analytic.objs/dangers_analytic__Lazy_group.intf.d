lib/analytic/lazy_group.mli: Params
