lib/analytic/params.ml: Float Format
