let fi = float_of_int

let deadlock_rate p =
  ((p.Params.tps *. fi p.Params.nodes) ** 2.)
  *. p.Params.action_time *. (fi p.Params.actions ** 5.)
  /. (4. *. (fi p.Params.db_size ** 2.))

let replica_update_transactions_per_second p =
  p.Params.tps *. fi p.Params.nodes *. fi (p.Params.nodes - 1)
