(** Lazy-master replication analysis — equation (19).

    User transactions run against master copies, so the system behaves like
    one node with [Nodes x TPS] originating transactions; the background
    replica-update transactions abort and restart harmlessly. Deadlocks rise
    as Nodes^2 — better than eager's Nodes^3 because transactions stay
    short, but still unstable. *)

val deadlock_rate : Params.t -> float
(** Equation (19): [(TPS x Nodes)^2 x Action_Time x Actions^5 /
    (4 x DB_Size^2)]. *)

val replica_update_transactions_per_second : Params.t -> float
(** Housekeeping volume: each committed master transaction fans out
    [Nodes - 1] slave transactions, so [TPS x Nodes x (Nodes - 1)] per
    second — the Nodes^2 background load §5 mentions. *)
