(** Single-node wait and deadlock analysis — equations (1)–(5).

    The derivation: each of the other transactions holds about Actions/2
    locks on average (it is halfway done); an action's chance of hitting one
    is (Transactions x Actions) / (2 x DB_Size); a transaction makes Actions
    such requests. Deadlock cycles of length two dominate. *)

val pw : Params.t -> float
(** Equation (2): probability a transaction waits at least once in its
    lifetime, [Transactions x Actions^2 / (2 x DB_Size)]. *)

val pd : Params.t -> float
(** Equation (3): probability a transaction deadlocks,
    [PW^2 / Transactions]. *)

val transaction_deadlock_rate : Params.t -> float
(** Equation (4): [PD / (Actions x Action_Time)] — a transaction's deadlock
    hazard per second, [TPS x Actions^4 / (4 x DB_Size^2)]. *)

val node_deadlock_rate : Params.t -> float
(** Equation (5): deadlocks per second for the whole node,
    [TPS^2 x Action_Time x Actions^5 / (4 x DB_Size^2)]. *)

val node_wait_rate : Params.t -> float
(** Waits per second for the whole node, by the eq-(10) argument applied to
    one node: [TPS^2 x Action_Time x Actions^3 / (2 x DB_Size)]. *)
