(** Model parameters — Table 2 of the paper.

    One record feeds both the closed-form equations and the simulator, so a
    prediction and a measurement always describe the same configuration. *)

type t = {
  db_size : int;  (** distinct objects in the database *)
  nodes : int;  (** nodes, each replicating all objects *)
  tps : float;  (** transactions per second *originating at each node* *)
  actions : int;  (** updates per transaction *)
  action_time : float;  (** seconds per action *)
  time_between_disconnects : float;
      (** mean seconds a mobile node stays connected *)
  disconnected_time : float;  (** mean seconds a mobile node stays down *)
  message_delay : float;
      (** propagation delay, seconds. The model ignores it (Table 2); the
          simulator can honour it for the "delays make it worse" ablation. *)
  message_cpu : float;  (** per-message processing time; ignored likewise *)
}

val default : t
(** A deliberately contention-prone laptop-scale base point: 1000 objects,
    1 node, 10 TPS, 4 actions of 10 ms, day-scale disconnects. Experiments
    override fields with [{ default with ... }]. *)

val validate : t -> unit
(** @raise Invalid_argument naming the offending field. *)

val concurrent_transactions : t -> float
(** Equation (1): [TPS x Actions x Action_Time], the number of concurrent
    transactions originating at one node. *)

val scale_db_with_nodes : t -> t
(** The equation-(13) variant: database size grows with the number of nodes
    (TPC-A/B/C style), i.e. [db_size = db_size x nodes]. *)

val pp : Format.formatter -> t -> unit
