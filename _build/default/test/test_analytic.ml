(* Closed-form model tests: exact values and the paper's headline claims. *)

module Params = Dangers_analytic.Params
module Single_node = Dangers_analytic.Single_node
module Eager = Dangers_analytic.Eager
module Lazy_group = Dangers_analytic.Lazy_group
module Lazy_master = Dangers_analytic.Lazy_master
module Model = Dangers_analytic.Model
module Stats = Dangers_util.Stats

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)
let close ?(tol = 1e-9) name expected actual =
  Alcotest.check (Alcotest.float tol) name expected actual

(* A hand-computable point: TPS=10, Actions=4, Action_Time=0.01, DB=1000,
   Nodes=5. *)
let p =
  { Params.default with tps = 10.; actions = 4; action_time = 0.01;
    db_size = 1000; nodes = 5 }

let test_equation_1 () =
  (* Transactions = 10 x 4 x 0.01 = 0.4 *)
  checkf "concurrent transactions" 0.4 (Params.concurrent_transactions p)

let test_equations_2_to_5 () =
  (* PW = 0.4 x 16 / 2000 = 0.0032 *)
  checkf "eq2 PW" 0.0032 (Single_node.pw p);
  (* PD = PW^2 / Transactions = 1.024e-5 / 0.4 = 2.56e-5 *)
  close ~tol:1e-12 "eq3 PD" 2.56e-5 (Single_node.pd p);
  (* eq4 = TPS x A^4 / (4 DB^2) = 10 x 256 / 4e6 = 6.4e-4 *)
  close ~tol:1e-12 "eq4" 6.4e-4 (Single_node.transaction_deadlock_rate p);
  (* eq5 = TPS^2 x AT x A^5 / (4 DB^2) = 100 x 0.01 x 1024 / 4e6 = 2.56e-4 *)
  close ~tol:1e-12 "eq5" 2.56e-4 (Single_node.node_deadlock_rate p)

let test_equations_6_to_8 () =
  checkf "eq6 size" 20. (Eager.transaction_size p);
  checkf "eq6 duration" 0.2 (Eager.transaction_duration p);
  checkf "eq6 total tps" 50. (Eager.total_tps p);
  (* eq7 = 0.4 x 25 = 10 *)
  checkf "eq7 total transactions" 10. (Eager.total_transactions p);
  (* eq8 = 10 x 4 x 25 = 1000 *)
  checkf "eq8 action rate" 1000. (Eager.action_rate p)

let test_equations_9_to_12 () =
  (* eq9 = 10 x 0.01 x 64 x 25 / 2000 = 0.08 *)
  checkf "eq9 PW eager" 0.08 (Eager.pw p);
  (* eq10 = 100 x 0.01 x (20)^3 / 2000 = 4 *)
  checkf "eq10 wait rate" 4. (Eager.total_wait_rate p);
  (* eq11 = 10 x 0.01 x 1024 x 25 / 4e6 = 6.4e-4 *)
  close ~tol:1e-12 "eq11 PD eager" 6.4e-4 (Eager.pd p);
  (* eq12 = 100 x 0.01 x 1024 x 125 / 4e6 = 0.032 *)
  close ~tol:1e-12 "eq12 deadlock rate" 0.032 (Eager.total_deadlock_rate p)

let test_equation_13 () =
  (* eq13 = eq12 / nodes^2 = 0.032 / 25 *)
  close ~tol:1e-12 "eq13" (0.032 /. 25.) (Eager.deadlock_rate_scaled_db p)

let test_equation_14 () =
  checkf "eq14 = eq10" (Eager.total_wait_rate p) (Lazy_group.reconciliation_rate p)

let test_equations_15_to_18 () =
  let p = { p with disconnected_time = 3600.; tps = 0.01; actions = 2;
            db_size = 1_000_000; nodes = 10 } in
  (* eq15 = 3600 x 0.01 x 2 = 72 *)
  checkf "eq15 outbound" 72. (Lazy_group.outbound_updates p);
  (* eq16 = 9 x 72 = 648 *)
  checkf "eq16 inbound" 648. (Lazy_group.inbound_updates p);
  (* eq17 = 10 x 72^2 / 1e6 = 0.05184 *)
  close ~tol:1e-9 "eq17 collision" 0.05184 (Lazy_group.p_collision p);
  (* eq18 = 3600 x (0.01 x 2 x 10)^2 / 1e6 = 1.44e-4 *)
  close ~tol:1e-12 "eq18 rate" 1.44e-4 (Lazy_group.mobile_reconciliation_rate p)

let test_p_collision_caps () =
  let hot = { p with disconnected_time = 1e9 } in
  checkf "probability capped at 1" 1.0 (Lazy_group.p_collision hot)

let test_equation_19 () =
  (* eq19 = (50)^2 x 0.01 x 1024 / 4e6 = 6.4e-3 *)
  close ~tol:1e-12 "eq19" 6.4e-3 (Lazy_master.deadlock_rate p);
  checkf "slave txn volume" (10. *. 5. *. 4.)
    (Lazy_master.replica_update_transactions_per_second p)

let test_headline_10x_1000x () =
  let scale p = { p with Params.nodes = 10 * p.Params.nodes } in
  checkf "10x nodes => 1000x eager deadlocks" 1000.
    (Model.growth_ratio Eager.total_deadlock_rate p ~scale);
  checkf "10x nodes => 1000x lazy-group reconciliation" 1000.
    (Model.growth_ratio Lazy_group.reconciliation_rate p ~scale);
  checkf "10x nodes => 100x lazy-master deadlocks" 100.
    (Model.growth_ratio Lazy_master.deadlock_rate p ~scale);
  (* Scaled database tames it to linear. *)
  checkf "10x nodes, scaled DB => 10x" 10.
    (Model.growth_ratio Eager.deadlock_rate_scaled_db p ~scale)

let test_headline_txn_size_power () =
  (* "A ten-fold increase in the transaction size increases the deadlock
     rate by a factor of 100,000" — Actions^5. *)
  let scale p = { p with Params.actions = 10 * p.Params.actions } in
  checkf "10x actions => 100000x deadlocks" 100_000.
    (Model.growth_ratio Eager.total_deadlock_rate p ~scale)

let test_power_law_exponents () =
  (* Fit the exponent of Nodes from the formulas themselves. *)
  let points f =
    List.map (fun n -> (float_of_int n, f { p with Params.nodes = n }))
      [ 1; 2; 4; 8; 16 ]
  in
  checkf "eager deadlock is cubic" 3.
    (Stats.loglog_slope (points Eager.total_deadlock_rate));
  checkf "lazy-master deadlock is quadratic" 2.
    (Stats.loglog_slope (points Lazy_master.deadlock_rate));
  checkf "scaled-db deadlock is linear" 1.
    (Stats.loglog_slope (points Eager.deadlock_rate_scaled_db));
  checkf "mobile reconciliation quadratic in nodes" 2.
    (Stats.loglog_slope (points Lazy_group.mobile_reconciliation_rate))

let test_predictions_table1 () =
  let check scheme ~txns ~owners =
    let prediction = Model.predict scheme p in
    checkf (Model.scheme_name scheme ^ " txns/update") txns
      prediction.Model.transactions_per_user_update;
    checkf (Model.scheme_name scheme ^ " owners") owners
      prediction.Model.object_owners
  in
  check Model.Eager_group ~txns:1. ~owners:5.;
  check Model.Eager_master ~txns:1. ~owners:1.;
  check Model.Lazy_group ~txns:5. ~owners:5.;
  check Model.Lazy_master ~txns:5. ~owners:1.;
  check Model.Two_tier ~txns:6. ~owners:1.

let test_prediction_rates_by_scheme () =
  let eager = Model.predict Model.Eager_group p in
  let lazy_g = Model.predict Model.Lazy_group p in
  let lazy_m = Model.predict Model.Lazy_master p in
  let two = Model.predict Model.Two_tier p in
  checkf "eager deadlocks, no reconciliation" 0. eager.Model.reconciliation_rate;
  checkb "eager deadlock positive" true (eager.Model.deadlock_rate > 0.);
  checkf "lazy group never deadlocks in model" 0. lazy_g.Model.deadlock_rate;
  checkb "lazy group reconciles" true (lazy_g.Model.reconciliation_rate > 0.);
  checkf "lazy master no reconciliation" 0. lazy_m.Model.reconciliation_rate;
  checkf "two-tier deadlock = lazy master" lazy_m.Model.deadlock_rate
    two.Model.deadlock_rate;
  checkb "lazy master beats eager" true
    (lazy_m.Model.deadlock_rate < eager.Model.deadlock_rate)

let test_params_validation () =
  Alcotest.check_raises "zero db" (Invalid_argument "Params.validate: db_size must be positive")
    (fun () -> Params.validate { p with Params.db_size = 0 });
  Alcotest.check_raises "negative tps" (Invalid_argument "Params.validate: tps must be positive")
    (fun () -> Params.validate { p with Params.tps = -1. })

let monotonicity_props =
  let open QCheck in
  let param_gen =
    Gen.map
      (fun ((tps, actions), (db, nodes)) ->
        { Params.default with tps = float_of_int tps; actions;
          db_size = db; nodes })
      Gen.(pair (pair (int_range 1 100) (int_range 1 20))
             (pair (int_range 100 100_000) (int_range 1 64)))
  in
  let arb = make ~print:(fun p -> Format.asprintf "%a" Params.pp p) param_gen in
  [
    Test.make ~name:"model: deadlock rate increases with nodes" ~count:300 arb
      (fun p ->
        Eager.total_deadlock_rate { p with Params.nodes = p.Params.nodes + 1 }
        > Eager.total_deadlock_rate p);
    Test.make ~name:"model: deadlock rate decreases with db size" ~count:300 arb
      (fun p ->
        Eager.total_deadlock_rate { p with Params.db_size = 2 * p.Params.db_size }
        < Eager.total_deadlock_rate p);
    Test.make ~name:"model: wait rate increases with actions" ~count:300 arb
      (fun p ->
        Eager.total_wait_rate { p with Params.actions = p.Params.actions + 1 }
        > Eager.total_wait_rate p);
    Test.make ~name:"model: two-tier deadlock equals lazy-master" ~count:300 arb
      (fun p ->
        Float.equal
          (Model.predict Model.Two_tier p).Model.deadlock_rate
          (Model.predict Model.Lazy_master p).Model.deadlock_rate);
  ]

let test_sweep_tables () =
  let module Tables = Dangers_analytic.Tables in
  let module Table = Dangers_util.Table in
  let rendered = Table.to_string (Tables.nodes_sweep p ~nodes:[ 1; 10 ]) in
  checkb "sweep renders" true (String.length rendered > 100);
  let rendered = Table.to_string (Tables.actions_sweep p ~actions:[ 2; 4 ]) in
  checkb "actions sweep renders" true (String.length rendered > 50);
  let rendered = Table.to_string (Tables.headline_growth p) in
  checkb "headline renders" true (String.length rendered > 50);
  Alcotest.check_raises "empty sweep" (Invalid_argument "Tables: empty sweep")
    (fun () -> ignore (Tables.nodes_sweep p ~nodes:[]))

let test_stability_threshold () =
  let module Tables = Dangers_analytic.Tables in
  (* At p: eq12 = 0.032 at 5 nodes (cubic: 2.56e-4 N^3); budget 0.01/s ->
     N^3 <= 39.06 -> N = 3. *)
  Alcotest.check Alcotest.int "eager threshold" 3
    (Tables.stability_threshold p ~budget_per_second:0.01 `Eager);
  (* eq19 = 2.56e-4 N^2; budget 0.01 -> N^2 <= 39.06 -> N = 6. *)
  Alcotest.check Alcotest.int "lazy-master threshold" 6
    (Tables.stability_threshold p ~budget_per_second:0.01 `Lazy_master);
  checkb "lazy-master tolerates more nodes" true
    (Tables.stability_threshold p ~budget_per_second:0.01 `Lazy_master
     > Tables.stability_threshold p ~budget_per_second:0.01 `Eager);
  Alcotest.check Alcotest.int "impossible budget" 0
    (Tables.stability_threshold p ~budget_per_second:1e-9 `Eager)

let suite =
  [
    Alcotest.test_case "sweep tables" `Quick test_sweep_tables;
    Alcotest.test_case "stability threshold" `Quick test_stability_threshold;
    Alcotest.test_case "equation 1" `Quick test_equation_1;
    Alcotest.test_case "equations 2-5" `Quick test_equations_2_to_5;
    Alcotest.test_case "equations 6-8" `Quick test_equations_6_to_8;
    Alcotest.test_case "equations 9-12" `Quick test_equations_9_to_12;
    Alcotest.test_case "equation 13" `Quick test_equation_13;
    Alcotest.test_case "equation 14" `Quick test_equation_14;
    Alcotest.test_case "equations 15-18" `Quick test_equations_15_to_18;
    Alcotest.test_case "collision probability capped" `Quick test_p_collision_caps;
    Alcotest.test_case "equation 19" `Quick test_equation_19;
    Alcotest.test_case "headline: 10x nodes" `Quick test_headline_10x_1000x;
    Alcotest.test_case "headline: 10x txn size" `Quick test_headline_txn_size_power;
    Alcotest.test_case "power-law exponents" `Quick test_power_law_exponents;
    Alcotest.test_case "table 1 predictions" `Quick test_predictions_table1;
    Alcotest.test_case "per-scheme rates" `Quick test_prediction_rates_by_scheme;
    Alcotest.test_case "params validation" `Quick test_params_validation;
  ]
  @ List.map QCheck_alcotest.to_alcotest monotonicity_props
