module Stats = Dangers_util.Stats

let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkb = Alcotest.check Alcotest.bool

let test_empty () =
  let s = Stats.create () in
  Alcotest.check Alcotest.int "count" 0 (Stats.count s);
  checkf "mean" 0. (Stats.mean s);
  checkf "variance" 0. (Stats.variance s);
  checkf "total" 0. (Stats.total s)

let test_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.check Alcotest.int "count" 8 (Stats.count s);
  checkf "mean" 5.0 (Stats.mean s);
  (* Sample variance of this classic set: 32/7. *)
  checkf "variance" (32. /. 7.) (Stats.variance s);
  checkf "min" 2. (Stats.min s);
  checkf "max" 9. (Stats.max s);
  checkf "total" 40. (Stats.total s)

let test_confidence_shrinks () =
  let wide = Stats.create () and narrow = Stats.create () in
  for i = 1 to 10 do
    Stats.add wide (float_of_int (i mod 3))
  done;
  for i = 1 to 1000 do
    Stats.add narrow (float_of_int (i mod 3))
  done;
  checkb "more samples, tighter CI" true
    (Stats.confidence95 narrow < Stats.confidence95 wide)

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "median" 3. (Stats.percentile xs ~p:0.5);
  checkf "min" 1. (Stats.percentile xs ~p:0.);
  checkf "max" 5. (Stats.percentile xs ~p:1.);
  checkf "interpolated p25" 2. (Stats.percentile xs ~p:0.25);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] ~p:0.5))

let test_loglog_slope_exact () =
  (* y = 3 x^2 has slope exactly 2 in log-log space. *)
  let points = List.map (fun x -> (x, 3. *. (x ** 2.))) [ 1.; 2.; 4.; 8.; 16. ] in
  checkf "slope 2" 2. (Stats.loglog_slope points)

let test_loglog_slope_cubic () =
  let points = List.map (fun x -> (x, 0.5 *. (x ** 3.))) [ 1.; 3.; 9.; 27. ] in
  checkf "slope 3" 3. (Stats.loglog_slope points)

let test_loglog_rejects () =
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Stats.loglog_slope: coordinates must be positive")
    (fun () -> ignore (Stats.loglog_slope [ (1., 0.); (2., 1.) ]))

let test_geometric_mean () =
  checkf "gm of 2,8" 4. (Stats.geometric_mean [| 2.; 8. |]);
  checkf "gm of equal" 5. (Stats.geometric_mean [| 5.; 5.; 5. |])

let test_histogram () =
  let h = Stats.Histogram.create ~min:0. ~max:10. ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.; 3.; 5.; 9.9; -1.; 42. ];
  Alcotest.check Alcotest.int "count" 7 (Stats.Histogram.count h);
  let counts = Stats.Histogram.bucket_counts h in
  Alcotest.check (Alcotest.array Alcotest.int) "buckets"
    [| 3; 1; 1; 0; 2 |] counts;
  let bounds = Stats.Histogram.bucket_bounds h in
  checkf "first lower bound" 0. (fst bounds.(0));
  checkf "last upper bound" 10. (snd bounds.(4))

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"stats: welford mean equals arithmetic mean" ~count:300
      (list_of_size (Gen.int_range 1 100) (float_range (-1000.) 1000.))
      (fun xs ->
        let s = Stats.create () in
        List.iter (Stats.add s) xs;
        let expected = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
        Float.abs (Stats.mean s -. expected) < 1e-6 *. (1. +. Float.abs expected));
    Test.make ~name:"stats: variance non-negative" ~count:300
      (list_of_size (Gen.int_range 2 100) (float_range (-100.) 100.))
      (fun xs ->
        let s = Stats.create () in
        List.iter (Stats.add s) xs;
        Stats.variance s >= 0.);
    Test.make ~name:"stats: percentile monotone in p" ~count:200
      (pair
         (array_of_size (Gen.int_range 1 50) (float_range (-50.) 50.))
         (pair (float_range 0. 1.) (float_range 0. 1.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi +. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "moments" `Quick test_moments;
    Alcotest.test_case "confidence shrinks" `Quick test_confidence_shrinks;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "loglog slope quadratic" `Quick test_loglog_slope_exact;
    Alcotest.test_case "loglog slope cubic" `Quick test_loglog_slope_cubic;
    Alcotest.test_case "loglog rejects non-positive" `Quick test_loglog_rejects;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
