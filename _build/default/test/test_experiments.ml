(* Experiment registry and harness tests: every experiment runs in quick
   mode, produces tables, and the deterministic (non-statistical) findings
   hold. *)

module Experiment = Dangers_experiments.Experiment
module Registry = Dangers_experiments.Registry
module Table = Dangers_util.Table

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_registry_shape () =
  checki "twenty-two experiments" 22 (List.length Registry.all);
  let ids = Registry.ids () in
  checki "unique ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  checkb "lookup case-insensitive" true (Registry.find "e3" <> None);
  checkb "unknown id" true (Registry.find "E99" = None);
  List.iter
    (fun e ->
      checkb (e.Experiment.id ^ " has a title") true
        (String.length e.Experiment.title > 0);
      checkb (e.Experiment.id ^ " cites the paper") true
        (String.length e.Experiment.paper_ref > 0))
    Registry.all

(* Experiments whose findings are deterministic (exact counts, analytic
   identities, monotone booleans) must pass even in quick mode; the
   statistical exponent fits get the full-mode bench run instead. *)
let deterministic = [ "T1"; "F1"; "E9"; "E10"; "E13" ]

let test_quick_runs_all () =
  List.iter
    (fun e ->
      let result = e.Experiment.run ~quick:true ~seed:5 in
      Alcotest.check Alcotest.string
        (e.Experiment.id ^ " result id matches")
        e.Experiment.id result.Experiment.id;
      checkb (e.Experiment.id ^ " produced tables") true
        (result.Experiment.tables <> []);
      List.iter
        (fun table -> checkb "table renders" true
            (String.length (Table.to_string table) > 0))
        result.Experiment.tables;
      if List.mem e.Experiment.id deterministic then
        List.iter
          (fun f ->
            checkb
              (Printf.sprintf "%s finding '%s' ok" e.Experiment.id
                 f.Experiment.label)
              true (Experiment.finding_ok f))
          result.Experiment.findings)
    Registry.all

let test_experiment_determinism () =
  (* Same seed, same findings, including the statistical ones. *)
  let run () =
    let e = Option.get (Registry.find "E3") in
    let result = e.Experiment.run ~quick:true ~seed:9 in
    List.map (fun f -> (f.Experiment.label, f.Experiment.actual))
      result.Experiment.findings
  in
  checkb "identical across runs" true (run () = run ())

let test_helpers () =
  let finding expected actual tolerance =
    { Experiment.label = "x"; expected; actual; tolerance }
  in
  checkb "within tolerance" true (Experiment.finding_ok (finding 3. 3.4 0.5));
  checkb "outside tolerance" false (Experiment.finding_ok (finding 3. 3.6 0.5));
  Alcotest.check (Alcotest.float 1e-9) "mean over seeds" 2.
    (Experiment.mean_over_seeds ~seeds:[ 1; 2; 3 ] float_of_int);
  checkb "fitted exponent skips non-positive" true
    (Float.is_nan (Experiment.fitted_exponent [ (1., 0.); (2., 0.) ]));
  Alcotest.check (Alcotest.float 1e-6) "fitted exponent" 2.
    (Experiment.fitted_exponent [ (1., 1.); (2., 4.); (4., 16.) ])

let suite =
  [
    Alcotest.test_case "registry shape" `Quick test_registry_shape;
    Alcotest.test_case "quick runs all" `Slow test_quick_runs_all;
    Alcotest.test_case "experiment determinism" `Quick test_experiment_determinism;
    Alcotest.test_case "helpers" `Quick test_helpers;
  ]
