(* Unit and property tests for Dangers_util.Rng. *)

module Rng = Dangers_util.Rng

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  checkb "different seeds diverge" true !differs

let test_split_independence () =
  (* Splitting must not change what the parent would have produced had the
     split's own draw not happened; and child streams differ from parent. *)
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let differs = ref false in
  for _ = 1 to 20 do
    if not (Int64.equal (Rng.bits64 parent) (Rng.bits64 child)) then
      differs := true
  done;
  checkb "child differs from parent" true !differs

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    checkb "in [0,17)" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_range () =
  let rng = Rng.create ~seed:5 in
  let seen = Array.make 8 false in
  for _ = 1 to 2000 do
    seen.(Rng.int rng 8) <- true
  done;
  checkb "all residues reachable" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    checkb "in [0,2.5)" true (x >= 0. && x < 2.5)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_exponential_mean () =
  let rng = Rng.create ~seed:17 in
  let n = 20_000 and mean = 4.0 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean
  done;
  let observed = !sum /. float_of_int n in
  checkb "exponential mean within 5%" true (Float.abs (observed -. mean) /. mean < 0.05)

let test_poisson_mean () =
  let rng = Rng.create ~seed:19 in
  let test mean =
    let n = 10_000 in
    let sum = ref 0 in
    for _ = 1 to n do
      sum := !sum + Rng.poisson rng ~mean
    done;
    let observed = float_of_int !sum /. float_of_int n in
    checkb
      (Printf.sprintf "poisson mean %g within 5%%" mean)
      true
      (Float.abs (observed -. mean) /. mean < 0.05)
  in
  test 3.0;
  test 50.0

let test_zipf_bounds_and_skew () =
  let rng = Rng.create ~seed:23 in
  let n = 100 in
  let counts = Array.make n 0 in
  for _ = 1 to 5000 do
    let x = Rng.zipf rng ~n ~theta:0.9 in
    Alcotest.check Alcotest.bool "in range" true (x >= 0 && x < n);
    counts.(x) <- counts.(x) + 1
  done;
  checkb "rank 0 hotter than rank 50" true (counts.(0) > counts.(50))

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:29 in
  for _ = 1 to 200 do
    let sample = Rng.sample_without_replacement rng ~n:20 ~k:10 in
    check Alcotest.int "k elements" 10 (Array.length sample);
    let sorted = Array.copy sample in
    Array.sort compare sorted;
    for i = 0 to 8 do
      checkb "distinct" true (sorted.(i) <> sorted.(i + 1))
    done;
    Array.iter (fun x -> checkb "in range" true (x >= 0 && x < 20)) sample
  done

let test_sample_full () =
  let rng = Rng.create ~seed:31 in
  let sample = Rng.sample_without_replacement rng ~n:5 ~k:5 in
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" [| 0; 1; 2; 3; 4 |] sorted

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:37 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"rng: int always within bound" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create ~seed in
        let x = Rng.int rng bound in
        x >= 0 && x < bound);
    Test.make ~name:"rng: sample_without_replacement distinct" ~count:200
      (pair small_int (int_range 1 50))
      (fun (seed, k) ->
        let rng = Rng.create ~seed in
        let sample = Rng.sample_without_replacement rng ~n:60 ~k in
        let module Int_set = Set.Make (Int) in
        Int_set.cardinal (Int_set.of_list (Array.to_list sample)) = k);
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "zipf bounds and skew" `Quick test_zipf_bounds_and_skew;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample full permutation" `Quick test_sample_full;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
