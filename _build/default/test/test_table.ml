(* ASCII table renderer tests. *)

module Table = Dangers_util.Table

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_render_alignment () =
  let t =
    Table.create ~caption:"cap"
      [ Table.column ~align:Table.Left "name"; Table.column "value" ]
  in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "22" ];
  let rendered = Table.to_string t in
  checkb "caption present" true (contains rendered "cap");
  checkb "left-aligned label" true (contains rendered "a        ");
  checkb "right-aligned number" true (contains rendered "    1");
  checkb "rule present" true (contains rendered "---------+------")

let test_row_validation () =
  let t = Table.create [ Table.column "a"; Table.column "b" ] in
  Alcotest.check_raises "cell count mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only-one" ]);
  Alcotest.check_raises "empty columns"
    (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create []))

let test_separator () =
  let t = Table.create [ Table.column "x" ] in
  Table.add_row t [ "1" ];
  Table.add_separator t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.to_string t) in
  let rules = List.filter (fun l -> l <> "" && String.for_all (( = ) '-') l) lines in
  Alcotest.check Alcotest.int "two rules (header + separator)" 2 (List.length rules)

let test_cells () =
  checks "float" "3.14" (Table.cell_float ~digits:2 3.14159);
  checks "int" "42" (Table.cell_int 42);
  checks "sci" "1.23e-05" (Table.cell_sci 1.234e-5);
  checks "rate zero" "0" (Table.cell_rate 0.);
  checks "rate moderate" "12.5000" (Table.cell_rate 12.5);
  checkb "rate tiny goes scientific" true
    (contains (Table.cell_rate 1e-7) "e-07")

let render_never_raises =
  QCheck.Test.make ~name:"table: arbitrary cells render" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 10)
              (pair printable_string printable_string))
    (fun rows ->
      let t = Table.create [ Table.column "a"; Table.column "b" ] in
      List.iter (fun (a, b) -> Table.add_row t [ a; b ]) rows;
      String.length (Table.to_string t) > 0)

let suite =
  [
    Alcotest.test_case "render and alignment" `Quick test_render_alignment;
    Alcotest.test_case "row validation" `Quick test_row_validation;
    Alcotest.test_case "separator" `Quick test_separator;
    Alcotest.test_case "cell formats" `Quick test_cells;
    QCheck_alcotest.to_alcotest render_never_raises;
  ]
