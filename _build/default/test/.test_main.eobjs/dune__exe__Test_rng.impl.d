test/test_rng.ml: Alcotest Array Dangers_util Float Fun Int Int64 List Printf QCheck QCheck_alcotest Set Test
