test/test_table.ml: Alcotest Dangers_util List QCheck QCheck_alcotest String
