test/test_trace.ml: Alcotest Dangers_lock Dangers_net Dangers_sim Dangers_txn Dangers_util Format List String
