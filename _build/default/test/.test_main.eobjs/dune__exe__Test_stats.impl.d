test/test_stats.ml: Alcotest Array Dangers_util Float Gen List QCheck QCheck_alcotest Test
