test/test_sim.ml: Alcotest Dangers_sim Dangers_util Int List QCheck QCheck_alcotest
