test/test_txn.ml: Alcotest Dangers_lock Dangers_sim Dangers_storage Dangers_txn Float List QCheck QCheck_alcotest
