test/test_analytic.ml: Alcotest Dangers_analytic Dangers_util Float Format Gen List QCheck QCheck_alcotest String Test
