test/test_net.ml: Alcotest Dangers_net Dangers_sim Dangers_util List
