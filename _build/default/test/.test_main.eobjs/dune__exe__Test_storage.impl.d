test/test_storage.ml: Alcotest Array Dangers_storage Format List QCheck QCheck_alcotest Test
