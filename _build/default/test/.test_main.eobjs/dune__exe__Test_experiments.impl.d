test/test_experiments.ml: Alcotest Dangers_experiments Dangers_util Float List Option Printf String
