test/test_workload.ml: Alcotest Array Dangers_analytic Dangers_sim Dangers_storage Dangers_txn Dangers_util Dangers_workload Float Int List
