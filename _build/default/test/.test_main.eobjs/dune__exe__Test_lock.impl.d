test/test_lock.ml: Alcotest Dangers_lock Hashtbl Int List Option QCheck QCheck_alcotest String
