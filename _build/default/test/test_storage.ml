(* Oid, Timestamp, Store, Version_vector, Update_log tests. *)

module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp
module Fstore = Dangers_storage.Store.Fstore
module Version_vector = Dangers_storage.Version_vector
module Update_log = Dangers_storage.Update_log

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Oid --- *)

let test_oid () =
  let o = Oid.of_int 5 in
  checki "roundtrip" 5 (Oid.to_int o);
  checkb "equal" true (Oid.equal o (Oid.of_int 5));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Oid.of_int: negative identifier") (fun () ->
      ignore (Oid.of_int (-1)));
  checki "all size" 10 (Array.length (Oid.all ~db_size:10))

(* --- Timestamp --- *)

let test_timestamp_order () =
  let t1 = { Timestamp.counter = 1; node = 0 } in
  let t2 = { Timestamp.counter = 1; node = 1 } in
  let t3 = { Timestamp.counter = 2; node = 0 } in
  checkb "counter dominates" true (Timestamp.newer t3 ~than:t2);
  checkb "node breaks ties" true (Timestamp.newer t2 ~than:t1);
  checkb "zero oldest" true (Timestamp.newer t1 ~than:Timestamp.zero);
  checkb "irreflexive" false (Timestamp.newer t1 ~than:t1)

let test_clock_monotone () =
  let clock = Timestamp.Clock.create ~node:3 in
  let a = Timestamp.Clock.tick clock in
  let b = Timestamp.Clock.tick clock in
  checkb "ticks increase" true (Timestamp.newer b ~than:a);
  checki "node recorded" 3 b.Timestamp.node

let test_clock_witness () =
  let clock = Timestamp.Clock.create ~node:0 in
  Timestamp.Clock.witness clock { Timestamp.counter = 100; node = 9 };
  let t = Timestamp.Clock.tick clock in
  checkb "tick after witness is newer" true
    (Timestamp.newer t ~than:{ Timestamp.counter = 100; node = 9 })

let timestamp_total_order_prop =
  QCheck.Test.make ~name:"timestamp: total order laws" ~count:500
    QCheck.(triple (pair small_nat small_nat) (pair small_nat small_nat)
              (pair small_nat small_nat))
    (fun ((c1, n1), (c2, n2), (c3, n3)) ->
      let a = { Timestamp.counter = c1; node = n1 } in
      let b = { Timestamp.counter = c2; node = n2 } in
      let c = { Timestamp.counter = c3; node = n3 } in
      let antisym =
        not (Timestamp.newer a ~than:b && Timestamp.newer b ~than:a)
      in
      let trans =
        (not (Timestamp.newer a ~than:b && Timestamp.newer b ~than:c))
        || Timestamp.newer a ~than:c
      in
      let total =
        Timestamp.equal a b || Timestamp.newer a ~than:b || Timestamp.newer b ~than:a
      in
      antisym && trans && total)

(* --- Store --- *)

let stamp c n = { Timestamp.counter = c; node = n }

let test_store_basic () =
  let s = Fstore.create ~db_size:4 ~init:(fun _ -> 100.) in
  checki "size" 4 (Fstore.db_size s);
  checkf "init value" 100. (Fstore.read s (Oid.of_int 2));
  Fstore.write s (Oid.of_int 2) 50. (stamp 1 0);
  checkf "written" 50. (Fstore.read s (Oid.of_int 2));
  checkb "stamp updated" true (Timestamp.equal (stamp 1 0) (Fstore.stamp s (Oid.of_int 2)))

let test_store_apply_if_current () =
  let s = Fstore.create ~db_size:2 ~init:(fun _ -> 0.) in
  let o = Oid.of_int 0 in
  (match Fstore.apply_if_current s o ~old_stamp:Timestamp.zero 5. (stamp 1 1) with
  | `Applied -> ()
  | `Dangerous -> Alcotest.fail "chain was intact");
  (match Fstore.apply_if_current s o ~old_stamp:Timestamp.zero 9. (stamp 2 2) with
  | `Dangerous -> ()
  | `Applied -> Alcotest.fail "stale old stamp must be dangerous");
  checkf "dangerous not applied" 5. (Fstore.read s o)

let test_store_apply_if_newer () =
  let s = Fstore.create ~db_size:1 ~init:(fun _ -> 0.) in
  let o = Oid.of_int 0 in
  (match Fstore.apply_if_newer s o 5. (stamp 5 0) with
  | `Applied -> ()
  | `Stale -> Alcotest.fail "newer must apply");
  (match Fstore.apply_if_newer s o 9. (stamp 3 0) with
  | `Stale -> ()
  | `Applied -> Alcotest.fail "older must be discarded");
  checkf "stale discarded" 5. (Fstore.read s o)

let test_store_convergence_helpers () =
  let a = Fstore.create ~db_size:3 ~init:(fun _ -> 0.) in
  let b = Fstore.create ~db_size:3 ~init:(fun _ -> 0.) in
  checkb "fresh stores equal" true (Fstore.content_equal a b);
  Fstore.write a (Oid.of_int 1) 7. (stamp 1 0);
  checkb "diverged" false (Fstore.content_equal a b);
  Alcotest.check (Alcotest.list Alcotest.int) "divergent oids" [ 1 ]
    (List.map Oid.to_int (Fstore.divergent_oids a b));
  Fstore.overwrite_from b ~src:a;
  checkb "overwrite converges" true (Fstore.content_equal a b);
  let c = Fstore.copy a in
  Fstore.write a (Oid.of_int 0) 1. (stamp 2 0);
  checkb "copy is independent" false (Fstore.content_equal a c)

(* --- Version vector --- *)

let test_vv_basics () =
  let v = Version_vector.(increment (increment empty ~node:1) ~node:1) in
  checki "component" 2 (Version_vector.get v ~node:1);
  checki "missing component" 0 (Version_vector.get v ~node:5);
  Alcotest.check (Alcotest.list Alcotest.int) "nodes" [ 1 ] (Version_vector.nodes v)

let test_vv_causality () =
  let a = Version_vector.of_list [ (0, 2); (1, 1) ] in
  let b = Version_vector.of_list [ (0, 1); (1, 1) ] in
  let c = Version_vector.of_list [ (0, 1); (1, 2) ] in
  let is expected actual = checkb "ordering" true (expected = actual) in
  is Version_vector.Dominates (Version_vector.compare_causal a b);
  is Version_vector.Dominated (Version_vector.compare_causal b a);
  is Version_vector.Concurrent (Version_vector.compare_causal a c);
  is Version_vector.Equal (Version_vector.compare_causal a a)

let test_vv_of_list_validation () =
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Version_vector.of_list: duplicate node") (fun () ->
      ignore (Version_vector.of_list [ (1, 1); (1, 2) ]))

let vv_gen =
  QCheck.Gen.(
    map Version_vector.of_list
      (map
         (fun counts -> List.mapi (fun node n -> (node, n)) counts)
         (list_size (int_range 0 5) (int_range 0 4))))

let vv_arbitrary = QCheck.make ~print:(fun v ->
    Format.asprintf "%a" Version_vector.pp v) vv_gen

let vv_lattice_props =
  let open QCheck in
  [
    Test.make ~name:"vv: merge commutative" ~count:300 (pair vv_arbitrary vv_arbitrary)
      (fun (a, b) -> Version_vector.(equal (merge a b) (merge b a)));
    Test.make ~name:"vv: merge associative" ~count:300
      (triple vv_arbitrary vv_arbitrary vv_arbitrary)
      (fun (a, b, c) ->
        Version_vector.(equal (merge a (merge b c)) (merge (merge a b) c)));
    Test.make ~name:"vv: merge idempotent" ~count:300 vv_arbitrary
      (fun a -> Version_vector.(equal (merge a a) a));
    Test.make ~name:"vv: merge dominates both" ~count:300 (pair vv_arbitrary vv_arbitrary)
      (fun (a, b) ->
        let m = Version_vector.merge a b in
        Version_vector.dominates_or_equal m a
        && Version_vector.dominates_or_equal m b);
  ]

(* --- Update log --- *)

let test_update_log_cursors () =
  let log = Update_log.create () in
  let early = Update_log.register log in
  Update_log.append log "a";
  Update_log.append log "b";
  let late = Update_log.register log in
  Update_log.append log "c";
  Alcotest.check (Alcotest.list Alcotest.string) "early sees all" [ "a"; "b"; "c" ]
    (Update_log.read_new log early);
  Alcotest.check (Alcotest.list Alcotest.string) "late sees tail" [ "c" ]
    (Update_log.read_new log late);
  Alcotest.check (Alcotest.list Alcotest.string) "drained" []
    (Update_log.read_new log early);
  checki "pending zero" 0 (Update_log.pending log late)

let test_update_log_trim_and_unregister () =
  let log = Update_log.create () in
  let a = Update_log.register log in
  let b = Update_log.register log in
  for i = 1 to 100 do
    Update_log.append log i
  done;
  checki "a sees 100" 100 (List.length (Update_log.read_new log a));
  Update_log.unregister log b;
  Alcotest.check_raises "read after unregister"
    (Invalid_argument "Update_log.read_new: unregistered cursor") (fun () ->
      ignore (Update_log.read_new log b));
  Update_log.append log 101;
  Alcotest.check (Alcotest.list Alcotest.int) "a continues" [ 101 ]
    (Update_log.read_new log a)

let test_update_log_register_at_start () =
  let log = Update_log.create () in
  let keeper = Update_log.register log in
  Update_log.append log "x";
  let replayer = Update_log.register_at_start log in
  Alcotest.check (Alcotest.list Alcotest.string) "replays history" [ "x" ]
    (Update_log.read_new log replayer);
  ignore (Update_log.read_new log keeper)

let suite =
  [
    Alcotest.test_case "oid" `Quick test_oid;
    Alcotest.test_case "timestamp order" `Quick test_timestamp_order;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "clock witness" `Quick test_clock_witness;
    QCheck_alcotest.to_alcotest timestamp_total_order_prop;
    Alcotest.test_case "store basics" `Quick test_store_basic;
    Alcotest.test_case "store apply_if_current" `Quick test_store_apply_if_current;
    Alcotest.test_case "store apply_if_newer" `Quick test_store_apply_if_newer;
    Alcotest.test_case "store convergence helpers" `Quick test_store_convergence_helpers;
    Alcotest.test_case "version vector basics" `Quick test_vv_basics;
    Alcotest.test_case "version vector causality" `Quick test_vv_causality;
    Alcotest.test_case "version vector validation" `Quick test_vv_of_list_validation;
    Alcotest.test_case "update log cursors" `Quick test_update_log_cursors;
    Alcotest.test_case "update log trim/unregister" `Quick test_update_log_trim_and_unregister;
    Alcotest.test_case "update log register_at_start" `Quick test_update_log_register_at_start;
  ]
  @ List.map QCheck_alcotest.to_alcotest vv_lattice_props
