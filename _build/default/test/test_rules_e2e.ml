(* Reconciliation rules exercised end-to-end in the running lazy-group
   system (the unit tests cover [Reconcile.resolve]; these cover what the
   rules do to actual replicas). *)

module Params = Dangers_analytic.Params
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Common = Dangers_replication.Common
module Lazy_group = Dangers_replication.Lazy_group
module Reconcile = Dangers_replication.Reconcile

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

let params = { Params.default with nodes = 2; db_size = 20; tps = 0.001 }

(* Two concurrent assigns to one object; which survives depends on the
   rule. Node 0 writes 111 (stamp 1@n0), node 1 writes 222 (stamp 1@n1,
   the newer timestamp). *)
let collide ~rule ~seed =
  let sys = Lazy_group.create ~initial_value:0. ~rule params ~seed in
  Lazy_group.submit sys ~node:0 [ Op.Assign (o 5, 111.) ];
  Lazy_group.submit sys ~node:1 [ Op.Assign (o 5, 222.) ];
  Common.drain (Lazy_group.base sys);
  let stores = (Lazy_group.base sys).Common.stores in
  (Fstore.read stores.(0) (o 5), Fstore.read stores.(1) (o 5))

let test_site_priority () =
  (* Site 0 outranks site 1: its value must win on both replicas even
     though site 1's timestamp is newer. *)
  let v0, v1 = collide ~rule:(Reconcile.Site_priority [| 0; 1 |]) ~seed:1 in
  checkf "site 0 wins at node 0" 111. v0;
  checkf "site 0 wins at node 1" 111. v1

let test_value_priority_max () =
  let v0, v1 = collide ~rule:(Reconcile.Value_priority `Max) ~seed:2 in
  checkf "max value wins" 222. v0;
  checkf "max value wins everywhere" 222. v1

let test_value_priority_min () =
  let v0, v1 = collide ~rule:(Reconcile.Value_priority `Min) ~seed:3 in
  checkf "min value wins" 111. v0;
  checkf "min value wins everywhere" 111. v1

let test_ignore_rule_diverges () =
  let v0, v1 = collide ~rule:Reconcile.Ignore ~seed:4 in
  (* Each node keeps its own write: permanent disagreement. *)
  checkf "node 0 keeps its write" 111. v0;
  checkf "node 1 keeps its write" 222. v1;
  checkb "values diverge" true (not (Float.equal v0 v1))

let test_custom_rule_end_to_end () =
  (* A merge-by-average custom rule, applied in the live system. *)
  let average =
    Reconcile.Custom
      (fun ~current_value ~current_stamp:_ u ->
        Reconcile.Merge ((current_value +. u.Reconcile.value) /. 2.))
  in
  let v0, v1 = collide ~rule:average ~seed:5 in
  checkf "average at node 0" 166.5 v0;
  checkf "average at node 1" 166.5 v1

let suite =
  [
    Alcotest.test_case "site priority e2e" `Quick test_site_priority;
    Alcotest.test_case "value priority max e2e" `Quick test_value_priority_max;
    Alcotest.test_case "value priority min e2e" `Quick test_value_priority_min;
    Alcotest.test_case "ignore rule diverges" `Quick test_ignore_rule_diverges;
    Alcotest.test_case "custom rule e2e" `Quick test_custom_rule_end_to_end;
  ]
