(* The `dangers` command-line interface.

   Subcommands:
     list                      enumerate experiments and schemes
     experiment [IDS..]        regenerate paper tables/figures
     sweep [IDS..]             run an (experiment | scheme) x seed grid on a
                               Domain pool and export the results
     analytic                  print the closed-form predictions for a
                               parameter point (all schemes)
     simulate                  run one replication scheme under load and
                               print its measured summary
     scenario NAME             run a named workload scenario across schemes *)

module Params = Dangers_analytic.Params
module Model = Dangers_analytic.Model
module Table = Dangers_util.Table
module Experiment = Dangers_experiments.Experiment
module Registry = Dangers_experiments.Registry
module Scheme = Dangers_experiments.Scheme
module Sweep = Dangers_runner.Sweep
module Export = Dangers_runner.Export
module Task_pool = Dangers_runner.Task_pool
module Repl_stats = Dangers_replication.Repl_stats
module Scenario = Dangers_workload.Scenario
module Connectivity = Dangers_net.Connectivity
module Json = Dangers_obs.Json
module Obs = Dangers_obs.Metrics
module Trace = Dangers_sim.Trace
module Trace_export = Dangers_sim.Trace_export

open Cmdliner

(* --- shared parameter flags --- *)

let params_term =
  let db_size =
    Arg.(value & opt int Params.default.Params.db_size
         & info [ "db-size" ] ~doc:"Distinct objects in the database.")
  in
  let nodes =
    Arg.(value & opt int Params.default.Params.nodes
         & info [ "nodes" ] ~doc:"Number of replica nodes.")
  in
  let tps =
    Arg.(value & opt float Params.default.Params.tps
         & info [ "tps" ] ~doc:"Transactions per second per node.")
  in
  let actions =
    Arg.(value & opt int Params.default.Params.actions
         & info [ "actions" ] ~doc:"Updates per transaction.")
  in
  let action_time =
    Arg.(value & opt float Params.default.Params.action_time
         & info [ "action-time" ] ~doc:"Seconds per action.")
  in
  let disconnected =
    Arg.(value & opt float Params.default.Params.disconnected_time
         & info [ "disconnected-time" ] ~doc:"Mean disconnected seconds.")
  in
  let connected =
    Arg.(value & opt float Params.default.Params.time_between_disconnects
         & info [ "connected-time" ] ~doc:"Mean connected seconds.")
  in
  let build db_size nodes tps actions action_time disconnected connected =
    {
      Params.default with
      db_size;
      nodes;
      tps;
      actions;
      action_time;
      disconnected_time = disconnected;
      time_between_disconnects = connected;
    }
  in
  Term.(const build $ db_size $ nodes $ tps $ actions $ action_time
        $ disconnected $ connected)

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_term =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ]
           ~doc:"Worker domains for independent simulation tasks. Results \
                 are byte-identical at any value; only wall-clock changes. \
                 0 means one per core.")

let resolve_jobs jobs = if jobs = 0 then Task_pool.default_jobs () else jobs

let sim_domains_term =
  Arg.(value & opt int 1
       & info [ "sim-domains" ]
           ~docv:"N"
           ~doc:"Domains for the conservative parallel simulation engine \
                 $(i,inside) each run (as opposed to $(b,--jobs), which \
                 parallelises across independent runs). Results are \
                 byte-identical at any value; only schemes built on the \
                 parallel engine (see `dangers list`) get faster. 0 means \
                 one per core.")

(* The ambient budget is harmless for serial schemes (they never consult
   it), but silently ignoring an explicit request would read as a speedup
   that never happened — say so, on stderr, outside the deterministic
   stdout stream. *)
let note_serial_schemes ~sim_domains names =
  let sim_domains =
    if sim_domains = 0 then Task_pool.default_jobs () else sim_domains
  in
  if sim_domains > 1 then
    List.iter
      (fun name ->
        if not (Scheme.parallel_capable name) then
          Dangers_obs.Warnings.warn
            ~key:("cli.sim_domains.serial:" ^ name)
            (Printf.sprintf
               "note: scheme %s does not use the parallel engine; \
                --sim-domains %d runs it serially (unchanged results)"
               name sim_domains))
      (List.sort_uniq String.compare names)

(* --- shared observability flags --- *)

type obs_opts = {
  trace_out : string option;
  trace_capacity : int;
  metrics_out : string option;
  series_out : string option;
  series_interval : float;
}

let obs_term =
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record each run's simulator events and write them to \
                   $(docv) as dangers/trace/v1 JSONL (inspect or convert \
                   with `dangers trace`).")
  in
  let trace_capacity =
    Arg.(value & opt int 4096
         & info [ "trace-capacity" ] ~docv:"N"
             ~doc:"Trace ring capacity per run: only the newest $(docv) \
                   events are kept.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write each run's dangers/metrics/v1 snapshot (counters, \
                   latency histograms, phase profiles) to $(docv) as JSONL.")
  in
  let series_out =
    Arg.(value & opt (some string) None
         & info [ "series-out" ] ~docv:"FILE"
             ~doc:"Sample each run's metrics registry on the simulated \
                   clock across the measured window and write the \
                   dangers/metrics-series/v1 JSONL to $(docv) (inspect \
                   with `dangers series`).")
  in
  let series_interval =
    Arg.(value & opt float 1.0
         & info [ "series-interval" ] ~docv:"SECONDS"
             ~doc:"Simulated seconds between series samples.")
  in
  let build trace_out trace_capacity metrics_out series_out series_interval =
    { trace_out; trace_capacity; metrics_out; series_out; series_interval }
  in
  Term.(const build $ trace_out $ trace_capacity $ metrics_out $ series_out
        $ series_interval)

let observing opts =
  opts.trace_out <> None || opts.metrics_out <> None || opts.series_out <> None

(* One JSONL line per observed run: the snapshot with the run's identity
   spliced in front, so a multi-run file needs no out-of-band ordering. *)
let metrics_line ~label ~seed snapshot =
  match Obs.snapshot_to_json snapshot with
  | Json.Obj fields ->
      Json.Obj (("label", Json.Str label) :: ("seed", Json.int_ seed) :: fields)
  | j -> j

let write_observations opts observations =
  (match opts.trace_out with
  | None -> ()
  | Some file ->
      let sections =
        List.filter_map (fun o -> o.Sweep.o_trace) observations
      in
      Trace_export.write file sections;
      Printf.printf "wrote %s (%d trace section(s))\n%!" file
        (List.length sections));
  (match opts.metrics_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      List.iter
        (fun o ->
          output_string oc
            (Json.to_string
               (metrics_line ~label:o.Sweep.o_label ~seed:o.Sweep.o_seed
                  o.Sweep.o_snapshot)
            ^ "\n"))
        observations;
      close_out oc;
      Printf.printf "wrote %s (%d metrics snapshot(s))\n%!" file
        (List.length observations));
  match opts.series_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      let windows = ref 0 in
      List.iter
        (fun o ->
          match o.Sweep.o_series with
          | None -> ()
          | Some series ->
              windows := !windows + Dangers_obs.Timeseries.sampled series;
              output_string oc
                (Dangers_obs.Timeseries.to_jsonl ~label:o.Sweep.o_label
                   ~seed:o.Sweep.o_seed series))
        observations;
      close_out oc;
      Printf.printf "wrote %s (%d series, %d window(s))\n%!" file
        (List.length observations) !windows

(* Run tasks with per-task observation when any sink is requested, plainly
   otherwise — the items are identical either way. *)
let run_tasks ?(sim_domains = 1) ~opts ~jobs tasks =
  let sim_domains =
    if sim_domains = 0 then Task_pool.default_jobs () else sim_domains
  in
  let sim_domains = if sim_domains > 1 then Some sim_domains else None in
  if observing opts then begin
    let observed =
      Sweep.run_observed ~jobs ?sim_domains
        ~trace:(opts.trace_out <> None)
        ~trace_capacity:opts.trace_capacity
        ?series_interval:
          (if opts.series_out <> None then Some opts.series_interval else None)
        tasks
    in
    write_observations opts (List.map snd observed);
    List.map fst observed
  end
  else Sweep.run ~jobs ?sim_domains tasks

(* Scheme-specific post-run facts, one line, stable order. *)
let pp_diagnostics ppf outcome =
  match outcome.Scheme.diagnostics with
  | [] -> ()
  | diags ->
      Format.fprintf ppf "diagnostics:";
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%g" k v) diags;
      Format.fprintf ppf "@."

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %-55s [%s]\n" e.Experiment.id e.Experiment.title
          e.Experiment.paper_ref)
      Registry.all;
    print_newline ();
    print_endline "replication schemes (for simulate/sweep --scheme):";
    List.iter
      (fun s -> Printf.printf "%-13s %s\n" (Scheme.name s) (Scheme.doc s))
      Scheme.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the paper experiments and the scheme registry.")
    Term.(const run $ const ())

(* --- experiment --- *)

let experiment_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
         ~doc:"Experiment ids (default: all).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter runs, fewer seeds.")
  in
  let run ids quick seed jobs sim_domains opts =
    let selected =
      match ids with
      | [] -> Ok Registry.all
      | ids ->
          let missing = List.filter (fun id -> Registry.find id = None) ids in
          if missing <> [] then
            Error ("unknown experiment ids: " ^ String.concat ", " missing)
          else Ok (List.filter_map Registry.find ids)
    in
    match selected with
    | Error message ->
        prerr_endline message;
        prerr_endline ("known ids: " ^ String.concat " " (Registry.ids ()));
        1
    | Ok experiments ->
        Sweep.experiment_tasks ~quick experiments ~seeds:[ seed ]
        |> run_tasks ~sim_domains ~opts ~jobs:(resolve_jobs jobs)
        |> List.iter (function
             | Sweep.Experiment_item { result; _ } ->
                 Format.printf "%a@." Experiment.pp_result result
             | Sweep.Scheme_item _ -> assert false);
        0
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures (analytic vs measured).")
    Term.(const run $ ids $ quick $ seed_term $ jobs_term $ sim_domains_term
          $ obs_term)

(* --- analytic --- *)

let analytic_cmd =
  let sweep =
    Arg.(value
         & opt (some (enum [ ("nodes", `Nodes); ("actions", `Actions);
                             ("headline", `Headline) ])) None
         & info [ "sweep" ]
             ~doc:"Also print an analytic sweep: nodes, actions, or headline.")
  in
  let run params sweep =
    Params.validate params;
    Format.printf "Parameters:@.%a@.@." Params.pp params;
    let table =
      Table.create ~caption:"Closed-form predictions (per second, system-wide)"
        [
          Table.column ~align:Table.Left "scheme";
          Table.column "txn size";
          Table.column "duration (s)";
          Table.column "txns/update";
          Table.column "owners";
          Table.column "waits/s";
          Table.column "deadlocks/s";
          Table.column "reconciliations/s";
        ]
    in
    List.iter
      (fun scheme ->
        let p = Model.predict scheme params in
        Table.add_row table
          [
            Model.scheme_name scheme;
            Table.cell_float ~digits:0 p.Model.transaction_size;
            Table.cell_float ~digits:3 p.Model.transaction_duration;
            Table.cell_float ~digits:0 p.Model.transactions_per_user_update;
            Table.cell_float ~digits:0 p.Model.object_owners;
            Table.cell_rate p.Model.wait_rate;
            Table.cell_rate p.Model.deadlock_rate;
            Table.cell_rate p.Model.reconciliation_rate;
          ])
      Model.all_schemes;
    Format.printf "%a@." Table.pp table;
    Format.printf
      "mobile lazy-group (eq 15-18): outbound=%.1f inbound=%.1f \
       P(collision)=%.4f rate=%s/s@."
      (Dangers_analytic.Lazy_group.outbound_updates params)
      (Dangers_analytic.Lazy_group.inbound_updates params)
      (Dangers_analytic.Lazy_group.p_collision params)
      (Table.cell_rate (Dangers_analytic.Lazy_group.mobile_reconciliation_rate params));
    (match sweep with
    | None -> ()
    | Some `Nodes ->
        Format.printf "@.%a@." Table.pp
          (Dangers_analytic.Tables.nodes_sweep params
             ~nodes:[ 1; 2; 5; 10; 20; 50; 100 ])
    | Some `Actions ->
        Format.printf "@.%a@." Table.pp
          (Dangers_analytic.Tables.actions_sweep params
             ~actions:[ 1; 2; 4; 8; 16; 40 ])
    | Some `Headline ->
        Format.printf "@.%a@." Table.pp
          (Dangers_analytic.Tables.headline_growth params));
    0
  in
  Cmd.v
    (Cmd.info "analytic"
       ~doc:"Print the model's predictions for a parameter point.")
    Term.(const run $ params_term $ sweep)

(* --- simulate --- *)

(* Scheme names come from the registry, so `--scheme` can never go stale
   against the schemes the repo actually implements; an unknown name lists
   the valid ones. *)
let scheme_conv =
  let parse name =
    match Scheme.find name with
    | Some scheme -> Ok scheme
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheme %s (valid schemes: %s)" name
               (String.concat ", " (Scheme.names ()))))
  in
  let print ppf scheme = Format.pp_print_string ppf (Scheme.name scheme) in
  Arg.conv (parse, print)

let simulate_cmd =
  let scheme =
    Arg.(value & opt scheme_conv (Scheme.named "lazy-master")
         & info [ "scheme" ]
             ~doc:"Replication scheme to simulate (see `dangers list`).")
  in
  let span =
    Arg.(value & opt float 120. & info [ "span" ] ~doc:"Measured seconds.")
  in
  let run params scheme span seed sim_domains opts =
    note_serial_schemes ~sim_domains [ Scheme.name scheme ];
    let task =
      Sweep.Scheme_task
        {
          scheme = Scheme.name scheme;
          spec = Scheme.spec params;
          seed;
          warmup = 5.;
          span;
        }
    in
    match run_tasks ~sim_domains ~opts ~jobs:1 [ task ] with
    | [ Sweep.Scheme_item { outcome; _ } ] ->
        Format.printf "%a@." Repl_stats.pp_summary outcome.Scheme.summary;
        Format.printf "%a" pp_diagnostics outcome;
        0
    | _ -> assert false
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one scheme under generator load.")
    Term.(const run $ params_term $ scheme $ span $ seed_term
          $ sim_domains_term $ obs_term)

(* --- sweep --- *)

let format_conv =
  Arg.enum [ ("table", `Table); ("json", `Json); ("csv", `Csv) ]

let print_items_table items =
  List.iter
    (function
      | Sweep.Experiment_item { result; _ } ->
          Format.printf "%a@." Experiment.pp_result result
      | Sweep.Scheme_item { outcome; seed; _ } ->
          Format.printf "seed %d: %a@.%a@." seed Repl_stats.pp_summary
            outcome.Scheme.summary pp_diagnostics outcome)
    items

let sweep_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
         ~doc:"Experiment ids to sweep (default: the full registry, unless \
               $(b,--scheme) is given).")
  in
  let schemes =
    Arg.(value & opt_all string []
         & info [ "scheme" ]
             ~doc:"Sweep this replication scheme at the given parameter \
                   point instead of (or besides) experiments. Repeatable; \
                   $(b,all) selects every registered scheme.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter runs, fewer seeds.")
  in
  let seeds =
    Arg.(value & opt int 1
         & info [ "seeds" ]
             ~doc:"Seeds per task: SEED, SEED+101, SEED+202, ...")
  in
  let span =
    Arg.(value & opt float 120.
         & info [ "span" ] ~doc:"Measured seconds per scheme run.")
  in
  let format =
    Arg.(value & opt format_conv `Table
         & info [ "format" ] ~doc:"Output format: table, json (JSONL), csv.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the output to FILE.")
  in
  let run params ids schemes quick nseeds span format out seed jobs sim_domains
      opts =
    let scheme_names =
      if List.mem "all" schemes then Scheme.names () else schemes
    in
    let unknown_ids = List.filter (fun id -> Registry.find id = None) ids in
    let unknown_schemes =
      List.filter (fun s -> Scheme.find s = None) scheme_names
    in
    if unknown_ids <> [] then begin
      prerr_endline
        ("unknown experiment ids: " ^ String.concat ", " unknown_ids);
      prerr_endline ("known ids: " ^ String.concat " " (Registry.ids ()));
      1
    end
    else if unknown_schemes <> [] then begin
      prerr_endline
        ("unknown schemes: " ^ String.concat ", " unknown_schemes);
      prerr_endline
        ("known schemes: " ^ String.concat " " (Scheme.names ()));
      1
    end
    else begin
      Params.validate params;
      let seeds = List.init (max 1 nseeds) (fun i -> seed + (101 * i)) in
      let experiments =
        match (ids, scheme_names) with
        | [], [] -> Registry.all
        | [], _ :: _ -> []
        | ids, _ -> List.filter_map Registry.find ids
      in
      let tasks =
        Sweep.experiment_tasks ~quick experiments ~seeds
        @ Sweep.scheme_tasks ~span ~seeds ~specs:[ Scheme.spec params ]
            scheme_names
      in
      note_serial_schemes ~sim_domains scheme_names;
      let items = run_tasks ~sim_domains ~opts ~jobs:(resolve_jobs jobs) tasks in
      let emit text =
        match out with
        | None -> print_string text
        | Some file ->
            let oc = open_out file in
            output_string oc text;
            close_out oc
      in
      (match format with
      | `Table -> (
          print_items_table items;
          match out with
          | None -> ()
          | Some file ->
              emit (Export.to_jsonl (List.map Export.record_of_item items));
              Printf.printf "wrote %s (JSONL)\n" file)
      | `Json -> emit (Export.to_jsonl (List.map Export.record_of_item items))
      | `Csv -> emit (Export.to_csv (List.map Export.record_of_item items)));
      0
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run an (experiment | scheme) x seed grid on a multicore task \
             pool. Results are in task order and byte-identical at any \
             $(b,--jobs).")
    Term.(const run $ params_term $ ids $ schemes $ quick $ seeds $ span
          $ format $ out $ seed_term $ jobs_term $ sim_domains_term
          $ obs_term)

(* --- report --- *)

let report_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter runs, fewer seeds.")
  in
  let run quick seed =
    Format.printf
      "# Paper reproduction report@.@.Generated by `dangers report`%s with seed %d. Every table and figure of Gray et al. (SIGMOD'96), analytic prediction vs simulator measurement.@.@."
      (if quick then " (quick mode)" else "")
      seed;
    let total = ref 0 and ok = ref 0 in
    List.iter
      (fun e ->
        let result = e.Experiment.run ~quick ~seed in
        Format.printf "## %s — %s@.@.*%s*@.@." result.Experiment.id
          result.Experiment.title e.Experiment.paper_ref;
        List.iter
          (fun table -> Format.printf "%s@." (Table.to_markdown table))
          result.Experiment.tables;
        List.iter
          (fun f ->
            incr total;
            if Experiment.finding_ok f then incr ok;
            Format.printf "- %s finding: **%s** — expected %.4g, measured                            %.4g (tolerance %.2g)@."
              (if Experiment.finding_ok f then "✅" else "❌")
              f.Experiment.label f.Experiment.expected f.Experiment.actual
              f.Experiment.tolerance)
          result.Experiment.findings;
        List.iter (fun note -> Format.printf "@.> %s@." note)
          result.Experiment.notes;
        Format.printf "@.")
      Registry.all;
    Format.printf "---@.@.**Findings reproduced: %d / %d.**@." !ok !total;
    0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Emit the full paper-vs-measured report as markdown on stdout.")
    Term.(const run $ quick $ seed_term)

(* --- trace --- *)

let event_tag event =
  match Trace_export.event_to_json event with
  | Json.Obj (("ev", Json.Str tag) :: _) -> tag
  | _ -> assert false

let trace_cmd =
  let file =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"A dangers/trace/v1 JSONL file recorded with \
                   $(b,--trace-out). When omitted, runs a short lazy-master \
                   simulation and prints its trace.")
  in
  let span =
    Arg.(value & opt float 0.5
         & info [ "span" ] ~doc:"Live run: simulated seconds to trace.")
  in
  let last =
    Arg.(value & opt int (-1)
         & info [ "last" ] ~docv:"N"
             ~doc:"Entries to print, newest (default: 60 for a live run, \
                   all of $(i,FILE)).")
  in
  let chrome =
    Arg.(value & flag
         & info [ "chrome" ]
             ~doc:"Convert $(i,FILE) to Chrome trace-event JSON (loadable \
                   in Perfetto / chrome://tracing) on stdout, or into \
                   $(b,--out).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"OUT"
             ~doc:"With $(b,--chrome): write the converted JSON to $(docv).")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Check $(i,FILE) against the dangers/trace/v1 schema and \
                   report; exit 1 if it does not conform.")
  in
  let filter =
    Arg.(value & opt (some string) None
         & info [ "filter" ] ~docv:"SUBSTR"
             ~doc:"Only print events whose tag contains $(docv) (e.g. \
                   $(b,message), $(b,txn), $(b,deadlock)).")
  in
  let matches filter entry =
    match filter with
    | None -> true
    | Some sub ->
        let tag = event_tag entry.Trace.event in
        let n = String.length sub and m = String.length tag in
        let rec at i = i + n <= m && (String.sub tag i n = sub || at (i + 1)) in
        at 0
  in
  let print_section last filter (s : Trace_export.section) =
    Format.printf "%s seed %d: %d events recorded (%d dropped)@." s.label
      s.seed s.recorded s.dropped;
    let entries = List.filter (matches filter) s.Trace_export.entries in
    let total = List.length entries in
    let tail =
      if last >= 0 && total > last then
        List.filteri (fun i _ -> i >= total - last) entries
      else entries
    in
    if total > List.length tail then
      Format.printf "  (showing the last %d of %d)@." (List.length tail) total;
    List.iter (fun entry -> Format.printf "%a@." Trace.pp_entry entry) tail;
    Format.printf "@."
  in
  let live_run params span last seed =
    Params.validate params;
    let module Lazy_master = Dangers_replication.Lazy_master in
    let module Common = Dangers_replication.Common in
    let module Clock = Dangers_runtime.Clock in
    let sys = Lazy_master.create params ~seed in
    let clock = (Lazy_master.base sys).Common.clock in
    let tracer = Trace.create () in
    Clock.set_tracer clock (Some tracer);
    Lazy_master.start sys;
    Clock.run_for clock span;
    Lazy_master.stop_load sys;
    let last = if last < 0 then 60 else last in
    let entries = Trace.entries tracer in
    let total = List.length entries in
    let tail = if total > last then List.filteri (fun i _ -> i >= total - last) entries else entries in
    Format.printf
      "lazy-master, %gs of simulated time: %d events recorded (%d dropped),        showing the last %d@.@."
      span (Trace.recorded tracer) (Trace.dropped tracer) (List.length tail);
    List.iter (fun entry -> Format.printf "%a@." Trace.pp_entry entry) tail;
    0
  in
  let run params span last seed file chrome out validate filter =
    match file with
    | None -> live_run params span last seed
    | Some path -> (
        match
          let ic = open_in_bin path in
          let contents = really_input_string ic (in_channel_length ic) in
          close_in ic;
          contents
        with
        | exception Sys_error message ->
            prerr_endline ("trace: " ^ message);
            1
        | contents ->
            if validate then (
              match Trace_export.validate contents with
              | Ok (sections, events) ->
                  Printf.printf "%s: valid %s (%d section(s), %d event(s))\n"
                    path Trace_export.schema_id sections events;
                  0
              | Error message ->
                  Printf.eprintf "%s: INVALID: %s\n" path message;
                  1)
            else (
              match Trace_export.of_jsonl contents with
              | exception Json.Parse_error message ->
                  Printf.eprintf "%s: %s\n" path message;
                  1
              | sections ->
                  if chrome then begin
                    let text = Json.to_string (Trace_export.to_chrome sections) in
                    (match out with
                    | None -> print_endline text
                    | Some target ->
                        let oc = open_out target in
                        output_string oc text;
                        output_char oc '\n';
                        close_out oc;
                        Printf.printf "wrote %s\n" target);
                    0
                  end
                  else begin
                    List.iter (print_section last filter) sections;
                    0
                  end))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Inspect a recorded trace file (pretty-print, $(b,--validate), \
             convert with $(b,--chrome) for Perfetto); with no FILE, run a \
             short traced lazy-master simulation.")
    Term.(const run $ params_term $ span $ last $ seed_term $ file $ chrome
          $ out $ validate $ filter)

(* --- fuzz --- *)

let fuzz_cmd =
  let module Fuzz = Dangers_fault.Fuzz in
  let module Fault_plan = Dangers_fault.Fault_plan in
  let module Invariants = Dangers_fault.Invariants in
  let fuzz_scheme_conv =
    Arg.enum (List.map (fun s -> (Fuzz.scheme_name s, s)) Fuzz.all_schemes)
  in
  let level_conv =
    Arg.enum
      (List.map
         (fun l -> (Fuzz.level_name l, l))
         [ Fuzz.Clean; Fuzz.Lossless; Fuzz.Chaotic ])
  in
  let replay =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:"Rerun one exact case (as printed by a failing fuzz run) \
                   instead of sweeping random cases.")
  in
  let scheme =
    Arg.(value & opt (some fuzz_scheme_conv) None
         & info [ "scheme" ]
             ~doc:"Fuzz only this scheme (default: all). Required with \
                   $(b,--replay).")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~doc:"Random cases per scheme.")
  in
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Replay: node count.")
  in
  let txns =
    Arg.(value & opt int 50 & info [ "txns" ] ~doc:"Replay: transactions.")
  in
  let level =
    Arg.(value & opt level_conv Fuzz.Chaotic
         & info [ "level" ] ~doc:"Replay: fault level (clean, lossless, \
                                  chaotic).")
  in
  let sabotage =
    Arg.(value & flag
         & info [ "sabotage" ]
             ~doc:"Replay with the scheme's deliberate bug enabled, to watch \
                   the invariant checker catch it.")
  in
  let run replay scheme count nodes txns level sabotage seed =
    if replay then begin
      match scheme with
      | None ->
          prerr_endline "fuzz --replay requires --scheme";
          1
      | Some _ when nodes < 2 ->
          prerr_endline "fuzz --replay requires --nodes >= 2";
          1
      | Some _ when txns < 0 ->
          prerr_endline "fuzz --replay requires --txns >= 0";
          1
      | Some scheme ->
          let case = { Fuzz.scheme; seed; nodes; txns; level } in
          let outcome = Fuzz.run ~sabotage case in
          Format.printf "%s@.%a@." (Fuzz.replay_command case) Fault_plan.pp
            outcome.Fuzz.plan;
          Format.printf
            "submitted %d txns, %d crash(es), %d partition(s)@."
            outcome.Fuzz.txns_submitted outcome.Fuzz.crashes_fired
            outcome.Fuzz.partitions_fired;
          (match outcome.Fuzz.violations with
          | [] ->
              Format.printf "all invariants hold@.";
              0
          | violations ->
              List.iter
                (fun v -> Format.printf "%a@." Invariants.pp_violation v)
                violations;
              1)
    end
    else begin
      let tests =
        (match scheme with
        | None -> Fuzz.tests ~count ()
        | Some s ->
            List.filteri
              (fun i _ -> List.nth Fuzz.all_schemes i = s)
              (Fuzz.tests ~count ()))
        @ Fuzz.sabotage_tests ()
      in
      QCheck_base_runner.run_tests ~colors:false ~verbose:true
        ~rand:(Random.State.make [| seed |]) tests
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the replication schemes under fault injection, checking \
             the paper's invariants; or replay one case deterministically.")
    Term.(const run $ replay $ scheme $ count $ nodes $ txns $ level
          $ sabotage $ seed_term)

(* --- scenario --- *)

let scenario_cmd =
  let scenario_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:"Scenario: checkbook, inventory, sales.")
  in
  let run name seed jobs =
    match Scenario.find name with
    | None ->
        prerr_endline
          ("unknown scenario; available: "
          ^ String.concat ", " (List.map (fun s -> s.Scenario.name) Scenario.all));
        1
    | Some scenario ->
        Format.printf "%s: %s@.%a@.@." scenario.Scenario.name
          scenario.Scenario.description Params.pp scenario.Scenario.params;
        let params = scenario.Scenario.params in
        let profile = scenario.Scenario.profile in
        let span = 120. and warmup = 5. in
        let spec = Scheme.spec ~profile params in
        let two_tier_spec =
          Scheme.spec ~profile ~initial_value:scenario.Scenario.initial_value
            params
        in
        let tasks =
          List.map
            (fun (scheme, spec) ->
              Sweep.Scheme_task { scheme; spec; seed; warmup; span })
            [
              ("eager-group", spec);
              ("lazy-group", spec);
              ("lazy-master", spec);
              ("two-tier", two_tier_spec);
            ]
        in
        Sweep.run ~jobs:(resolve_jobs jobs) tasks
        |> List.iter (function
             | Sweep.Scheme_item { scheme; outcome; _ } ->
                 Format.printf "%a@.@." Repl_stats.pp_summary
                   outcome.Scheme.summary;
                 if String.equal scheme "two-tier" then
                   Format.printf "two-tier converged: %b@."
                     (Scheme.diagnostic outcome "converged" = Some 1.)
             | Sweep.Experiment_item _ -> assert false);
        0
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a named workload scenario across schemes.")
    Term.(const run $ scenario_name $ seed_term $ jobs_term)

(* --- lint --- *)

let lint_cmd =
  let module Lint_rules = Dangers_lint.Rules in
  let module Lint_rule = Dangers_lint.Rule in
  let module Lint_engine = Dangers_lint.Engine in
  let module Lint_baseline = Dangers_lint.Baseline in
  let module Lint_report = Dangers_lint.Report in
  let prefixes =
    Arg.(value & pos_all string [ "lib/"; "bin/"; "bench/" ]
         & info [] ~docv:"PREFIX"
             ~doc:"Source path prefixes to analyze (default: lib/ bin/ \
                   bench/).")
  in
  let build_dir =
    Arg.(value & opt (some string) None
         & info [ "build-dir" ] ~docv:"DIR"
             ~doc:"Where to look for .cmt files (default: _build/default \
                   when it exists, else the current directory).")
  in
  let rules =
    Arg.(value & opt (some string) None
         & info [ "rules" ] ~docv:"IDS"
             ~doc:"Comma-separated rule ids to run (default: all). See \
                   $(b,--list).")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"dangers/lint-baseline/v1 file of grandfathered findings; \
                   only findings beyond it fail the run.")
  in
  let update_baseline =
    Arg.(value & flag
         & info [ "update-baseline" ]
             ~doc:"Rewrite $(b,--baseline) so the current tree is clean \
                   (grandfather today's findings, expire stale entries).")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~doc:"Output format: text or json \
                                   (dangers/lint/v1).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the report to FILE.")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list" ] ~doc:"Print the rule catalogue and exit.")
  in
  let all_files =
    Arg.(value & flag
         & info [ "all-files" ]
             ~doc:"Ignore each rule's source-path scope (lint fixtures, \
                   debugging).")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("error", `Error); ("warning", `Warning) ]) `Warning
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:"Lowest severity that fails the run: $(b,warning) (the \
                   default) fails on any finding, $(b,error) lets \
                   warnings through.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Recompute every module summary instead of consulting \
                   the on-disk cache.")
  in
  let cache_file =
    Arg.(value & opt string Dangers_lint.Cache.default_path
         & info [ "cache-file" ] ~docv:"FILE"
             ~doc:"Summary cache keyed by per-file .cmt digest (default: \
                   _build/.dangers-lint-cache.json).")
  in
  let graph_out =
    Arg.(value & opt (some string) None
         & info [ "graph-out" ] ~docv:"FILE"
             ~doc:"Also write the resolved whole-program def/use graph \
                   (dangers/lint-graph/v1 JSON) to FILE.")
  in
  let run prefixes build_dir rules baseline update_baseline format out
      list_rules all_files fail_on no_cache cache_file graph_out =
    if list_rules then begin
      List.iter
        (fun (r : Lint_rule.t) ->
          Printf.printf "%-4s %s\n     rationale: %s\n" r.Lint_rule.id
            r.Lint_rule.title r.Lint_rule.rationale)
        Lint_rules.all;
      0
    end
    else begin
      let selected =
        match rules with
        | None -> Ok Lint_rules.all
        | Some spec ->
            let ids =
              String.split_on_char ',' spec
              |> List.map String.trim
              |> List.filter (fun id -> id <> "")
            in
            let unknown =
              List.filter (fun id -> Lint_rules.find id = None) ids
            in
            if unknown <> [] then
              Error
                (Printf.sprintf "unknown rule ids: %s (known: %s)"
                   (String.concat ", " unknown)
                   (String.concat ", " (Lint_rules.ids ())))
            else Ok (List.filter_map Lint_rules.find ids)
      in
      match selected with
      | Error message ->
          prerr_endline ("lint: " ^ message);
          2
      | Ok [] ->
          prerr_endline "lint: no rules selected";
          2
      | Ok rules -> (
          let build_dir =
            match build_dir with
            | Some dir -> dir
            | None -> Lint_engine.default_build_dir ()
          in
          match
            if update_baseline then begin
              match baseline with
              | None ->
                  prerr_endline "lint: --update-baseline requires --baseline";
                  Error 2
              | Some path ->
                  let b =
                    Lint_engine.grandfather ~all_files ~rules ~build_dir
                      ~prefixes ()
                  in
                  Lint_baseline.save path b;
                  Printf.printf "wrote %s (%d entr%s)\n" path
                    (List.length b.Lint_baseline.entries)
                    (if List.length b.Lint_baseline.entries = 1 then "y"
                     else "ies");
                  Error 0
            end
            else
              match baseline with
              | None -> Ok Lint_baseline.empty
              | Some path -> (
                  match Lint_baseline.load path with
                  | b -> Ok b
                  | exception Sys_error message ->
                      prerr_endline ("lint: " ^ message);
                      Error 2
                  | exception Json.Parse_error message ->
                      Printf.eprintf "lint: %s: %s\n" path message;
                      Error 2)
          with
          | Error code -> code
          | Ok baseline ->
              let report =
                Lint_engine.run ~all_files ~baseline ~cache_file
                  ~use_cache:(not no_cache) ?graph_out ~rules ~build_dir
                  ~prefixes ()
              in
              let text =
                match format with
                | `Text -> Format.asprintf "%a" Lint_report.pp report
                | `Json ->
                    Json.to_string (Lint_report.to_json report) ^ "\n"
              in
              (match out with
              | None -> print_string text
              | Some file ->
                  let oc = open_out file in
                  output_string oc text;
                  close_out oc;
                  Printf.printf "wrote %s\n" file);
              let fail_on =
                match fail_on with
                | `Error -> Dangers_lint.Finding.Error
                | `Warning -> Dangers_lint.Finding.Warning
              in
              Lint_report.exit_code ~fail_on report)
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static determinism & domain-safety analysis over the .cmt \
             files dune already built. Per-unit rules: banned \
             nondeterministic calls (D1), unordered hashtable iteration \
             in export paths (D2), polymorphic float comparison (D3), \
             unguarded module-level mutable state (R1), partial \
             functions (P1), runtime-clock discipline (RT1). \
             Whole-program rules (two-phase, call-graph-aware, \
             summary-cached): mutable state crossing a domain boundary \
             (DR1), atomic read-modify-write windows (DR2), mutex \
             discipline (DR3), module state shared between crossing \
             closures and top-level code (DR4).")
    Term.(const run $ prefixes $ build_dir $ rules $ baseline
          $ update_baseline $ format $ out $ list_rules $ all_files
          $ fail_on $ no_cache $ cache_file $ graph_out)

let bench_cmd =
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Shrink sample counts (not workloads) for a fast smoke run.")
  in
  let suite =
    Arg.(value
         & opt (enum [ ("micro", `Micro); ("serve", `Serve) ]) `Micro
         & info [ "suite" ]
             ~doc:"Which suite to run: $(b,micro) (hot-path \
                   micro-benchmarks, BENCH_micro.json) or $(b,serve) (the \
                   end-to-end live serving path, BENCH_serve.json).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write the results (default: the suite's \
                   BENCH_*.json).")
  in
  let input =
    Arg.(value & opt (some string) None
         & info [ "input" ] ~docv:"FILE"
             ~doc:"Compare $(docv) instead of running the suite (no \
                   benchmarks execute; $(b,--out) is ignored).")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "compare" ] ~docv:"OLD.json"
             ~doc:"Baseline results to diff against; exit status 1 if any \
                   benchmark's mean regressed past the threshold or \
                   disappeared.")
  in
  let threshold =
    Arg.(value & opt float 20.
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:"Regression threshold in percent.")
  in
  let run suite quick out input baseline threshold =
    if threshold <= 0. then begin
      prerr_endline "bench: --threshold must be positive";
      1
    end
    else begin
      let out =
        match (input, out) with
        | Some _, _ -> None
        | None, Some file -> Some file
        | None, None ->
            Some
              (match suite with
              | `Micro -> "BENCH_micro.json"
              | `Serve -> "BENCH_serve.json")
      in
      Dangers_microbench.Driver.main ~suite ~quick ~out ~input ~baseline
        ~threshold:(threshold /. 100.) ()
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run a benchmark suite — $(b,micro): the hot-path \
          micro-benchmarks (lock table, deadlock detection, event engine, \
          end-to-end eager-group); $(b,serve): the live serving path \
          (server + 1k-transaction load over the Unix socket) — and write \
          its BENCH_*.json; optionally diff against a baseline.")
    Term.(const run $ suite $ quick $ out $ input $ baseline $ threshold)

(* --- serve: the wall-clock two-tier service --- *)

let socket_term =
  Arg.(value & opt string "/tmp/dangers.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the service listens on / connects to.")

let serve_cmd =
  let scheme =
    Arg.(value & opt string "two-tier"
         & info [ "scheme" ]
             ~doc:"Scheme to serve. Only $(b,two-tier) — the paper's \
                   solution — has a live service today; the runtime \
                   abstraction is what a second one would build on.")
  in
  let base_nodes =
    Arg.(value & opt int 0
         & info [ "base-nodes" ]
             ~doc:"Base-tier size (default: half the nodes, at least 1).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master RNG seed.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the final dangers/metrics/v1 snapshot as JSON.")
  in
  let series_out =
    Arg.(value & opt (some string) None
         & info [ "series-out" ] ~docv:"FILE"
             ~doc:"Stream sampled metrics windows to $(docv) as \
                   dangers/metrics-series/v1 JSONL while serving.")
  in
  let sample_interval =
    Arg.(value & opt float 1.0
         & info [ "sample-interval" ] ~docv:"SECONDS"
             ~doc:"Wall seconds between metrics samples.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet" ] ~doc:"Suppress per-connection stderr notes.")
  in
  let run params scheme socket base_nodes seed metrics_out series_out
      sample_interval quiet =
    if String.lowercase_ascii scheme <> "two-tier" then begin
      Printf.eprintf
        "serve: unsupported scheme %s (only two-tier has a live service)\n"
        scheme;
      1
    end
    else begin
      let base_nodes =
        if base_nodes = 0 then max 1 (params.Params.nodes / 2) else base_nodes
      in
      let config =
        {
          Dangers_live.Server.socket_path = socket;
          base_nodes;
          params;
          seed;
          metrics_out;
          series_out;
          sample_interval;
          quiet;
          print_summary = true;
        }
      in
      match Dangers_live.Server.serve config with
      | (_ : Dangers_live.Protocol.stats) -> 0
      | exception Invalid_argument message ->
          Printf.eprintf "serve: %s\n" message;
          1
      | exception Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "serve: %s %s: %s\n" fn arg (Unix.error_message err);
          1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the two-tier scheme as a wall-clock service on the live \
          runtime: clients connect over a Unix socket, are assigned \
          mobile nodes, and submit tentative transactions, sync, and \
          query through the framed protocol. Stop with a client Shutdown \
          or SIGINT; request latency is recorded in the \
          serve.request_seconds histogram, and the registry is scrapeable \
          mid-run with `dangers stat` / `dangers top`.")
    Term.(
      const run $ params_term $ scheme $ socket_term $ base_nodes $ seed
      $ metrics_out $ series_out $ sample_interval $ quiet)

let load_cmd =
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~doc:"Worker domains, one connection each.")
  in
  let txns =
    Arg.(value & opt int 10_000
         & info [ "txns" ] ~doc:"Total transactions across all workers.")
  in
  let burst =
    Arg.(value & opt int 20
         & info [ "burst" ]
             ~doc:"Tentative submits per disconnect/sync churn cycle.")
  in
  let ops =
    Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Updates per transaction.")
  in
  let db_size =
    Arg.(value & opt int Params.default.Params.db_size
         & info [ "db-size" ]
             ~doc:"Object-id range; must match the server's --db-size.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload RNG seed.")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Send Shutdown to the server after the final stats fetch.")
  in
  let run socket clients txns burst ops db_size seed shutdown =
    let config =
      {
        Dangers_live.Load_gen.socket_path = socket;
        clients;
        txns;
        burst;
        ops_per_txn = ops;
        db_size;
        seed;
        shutdown;
      }
    in
    match Dangers_live.Load_gen.run config with
    | report ->
        Format.printf "%a@." Dangers_live.Load_gen.pp_report report;
        if report.Dangers_live.Load_gen.errors = [] then 0 else 1
    | exception Invalid_argument message ->
        Printf.eprintf "load: %s\n" message;
        1
    | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "load: %s %s: %s\n" fn arg (Unix.error_message err);
        1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Replay churning mobile users against a running `dangers serve`: \
          each client disconnects, submits a burst of tentative \
          transactions, reconnects and syncs, and queries a master value; \
          prints throughput and latency percentiles.")
    Term.(
      const run $ socket_term $ clients $ txns $ burst $ ops $ db_size $ seed
      $ shutdown)

(* --- stat / top: scraping a running server --- *)

module Monitor = Dangers_live.Monitor

let with_monitor socket f =
  match Monitor.connect ~socket with
  | monitor ->
      Fun.protect ~finally:(fun () -> Monitor.close monitor) (fun () -> f monitor)
  | exception Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "%s %s: %s (is `dangers serve` running on %s?)\n" fn arg
        (Unix.error_message err) socket;
      1

let emit ~out text =
  match out with
  | None ->
      print_string text;
      flush stdout
  | Some file ->
      let oc = open_out file in
      output_string oc text;
      close_out oc

let stat_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("table", `Table); ("json", `Json); ("prom", `Prom) ])
             `Table
         & info [ "format" ]
             ~doc:"Output form: $(b,table) (the `dangers top` dashboard), \
                   $(b,json) (the dangers/metrics/v1 snapshot), or \
                   $(b,prom) (Prometheus text exposition, self-checked \
                   against the 0.0.4 format).")
  in
  let watch =
    Arg.(value & flag
         & info [ "watch" ]
             ~doc:"Keep polling every --interval seconds instead of \
                   printing one scrape.")
  in
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Poll period with --watch.")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N"
             ~doc:"With --watch, stop after $(docv) polls (0 = forever).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the scrape to $(docv) instead of stdout.")
  in
  let run socket format watch interval count out =
    if watch && interval <= 0. then begin
      prerr_endline "stat: --interval must be positive";
      1
    end
    else
      with_monitor socket (fun monitor ->
          let scrape () =
            match format with
            | `Json -> Ok (Monitor.snapshot_json monitor)
            | `Prom -> (
                let text = Monitor.prom monitor in
                match Dangers_obs.Prometheus.lint text with
                | Ok (_ : int) -> Ok text
                | Error message ->
                    Error ("invalid Prometheus exposition: " ^ message))
            | `Table -> Ok (Monitor.render (Monitor.poll monitor))
          in
          let polls = ref 0 in
          let failed = ref None in
          let more () =
            !failed = None
            && (!polls = 0 || (watch && (count = 0 || !polls < count)))
          in
          while more () do
            if !polls > 0 then Unix.sleepf interval;
            (match scrape () with
            | Ok text -> emit ~out text
            | Error message -> failed := Some message);
            incr polls
          done;
          match !failed with
          | None -> 0
          | Some message ->
              Printf.eprintf "stat: %s\n" message;
              1)
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Scrape a running `dangers serve` over its socket: the live \
          metrics registry as a dashboard table, dangers/metrics/v1 JSON, \
          or Prometheus text exposition; --watch polls continuously.")
    Term.(const run $ socket_term $ format $ watch $ interval $ count $ out)

let top_cmd =
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N"
             ~doc:"Stop after $(docv) refreshes (0 = until interrupted).")
  in
  let run socket interval count =
    if interval <= 0. then begin
      prerr_endline "top: --interval must be positive";
      1
    end
    else
      with_monitor socket (fun monitor ->
          let clear = Unix.isatty Unix.stdout in
          let polls = ref 0 in
          (try
             while count = 0 || !polls < count do
               if !polls > 0 then Unix.sleepf interval;
               let frame = Monitor.poll monitor in
               if clear then print_string "\027[H\027[2J";
               print_string (Monitor.render frame);
               flush stdout;
               incr polls
             done
           with Sys.Break -> ());
          0)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running `dangers serve`: per-second \
          commit/sync/reconciliation rates, submit-to-commit and \
          reconcile-lag percentiles, and per-mobile replication lag \
          (tentative queue depth and oldest tentative age), refreshed \
          every --interval seconds over one persistent connection.")
    Term.(const run $ socket_term $ interval $ count)

let series_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"A dangers/metrics-series/v1 JSONL file.")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Only validate (the default action is also validation; \
                   the flag makes intent explicit in scripts).")
  in
  let run file validate =
    ignore validate;
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error message ->
        Printf.eprintf "series: %s\n" message;
        1
    | contents -> (
        match Dangers_obs.Timeseries.validate contents with
        | Ok (series, windows) ->
            Printf.printf "%s: ok — %d series, %d window(s)\n" file series
              windows;
            0
        | Error message ->
            Printf.eprintf "series: %s: %s\n" file message;
            1)
  in
  Cmd.v
    (Cmd.info "series"
       ~doc:
         "Validate a dangers/metrics-series/v1 JSONL file (from `dangers \
          serve --series-out` or a simulated run's --series-out) and \
          print its series and window counts.")
    Term.(const run $ file $ validate)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "dangers" ~version:"1.0.0"
      ~doc:
        "The Dangers of Replication and a Solution (Gray et al., SIGMOD'96): \
         analytic model, replication simulators, and the two-tier scheme."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            list_cmd; experiment_cmd; sweep_cmd; analytic_cmd; simulate_cmd;
            trace_cmd; report_cmd; scenario_cmd; fuzz_cmd; bench_cmd;
            lint_cmd; serve_cmd; load_cmd; stat_cmd; top_cmd; series_cmd;
          ]))
