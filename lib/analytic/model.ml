type scheme =
  | Eager_group
  | Eager_master
  | Lazy_group
  | Lazy_master
  | Two_tier

let scheme_name = function
  | Eager_group -> "eager-group"
  | Eager_master -> "eager-master"
  | Lazy_group -> "lazy-group"
  | Lazy_master -> "lazy-master"
  | Two_tier -> "two-tier"

let all_schemes = [ Eager_group; Eager_master; Lazy_group; Lazy_master; Two_tier ]

type prediction = {
  transaction_size : float;
  transaction_duration : float;
  transactions_per_user_update : float;
  object_owners : float;
  total_transactions : float;
  action_rate : float;
  wait_rate : float;
  deadlock_rate : float;
  reconciliation_rate : float;
}

let fi = float_of_int

let predict scheme p =
  Params.validate p;
  let n = fi p.Params.nodes in
  let eager_shape =
    {
      transaction_size = Eager.transaction_size p;
      transaction_duration = Eager.transaction_duration p;
      transactions_per_user_update = 1.;
      object_owners = n;
      total_transactions = Eager.total_transactions p;
      action_rate = Eager.action_rate p;
      wait_rate = Eager.total_wait_rate p;
      deadlock_rate = Eager.total_deadlock_rate p;
      reconciliation_rate = 0.;
    }
  in
  match scheme with
  | Eager_group -> eager_shape
  | Eager_master -> { eager_shape with object_owners = 1. }
  | Lazy_group ->
      {
        transaction_size = fi p.Params.actions;
        transaction_duration = fi p.Params.actions *. p.Params.action_time;
        transactions_per_user_update = n;
        object_owners = n;
        total_transactions = Eager.total_transactions p;
        action_rate = Eager.action_rate p;
        wait_rate = Eager.total_wait_rate p;
        deadlock_rate = 0.;
        reconciliation_rate = Lazy_group.reconciliation_rate p;
      }
  | Lazy_master ->
      {
        transaction_size = fi p.Params.actions;
        transaction_duration = fi p.Params.actions *. p.Params.action_time;
        transactions_per_user_update = n;
        object_owners = 1.;
        total_transactions = Eager.total_transactions p;
        action_rate = Eager.action_rate p;
        wait_rate = Eager.total_wait_rate p;
        deadlock_rate = Lazy_master.deadlock_rate p;
        reconciliation_rate = 0.;
      }
  | Two_tier ->
      {
        transaction_size = fi p.Params.actions;
        transaction_duration = fi p.Params.actions *. p.Params.action_time;
        transactions_per_user_update = n +. 1.;
        object_owners = 1.;
        total_transactions = Eager.total_transactions p;
        action_rate = Eager.action_rate p;
        wait_rate = Eager.total_wait_rate p;
        deadlock_rate = Lazy_master.deadlock_rate p;
        reconciliation_rate = 0.;
      }

let growth_ratio f p ~scale =
  let base = f p in
  if Float.equal base 0. then invalid_arg "Model.growth_ratio: zero base rate";
  f (scale p) /. base

let nodes_exponent scheme rate =
  match (scheme, rate) with
  | (Eager_group | Eager_master), `Deadlock -> 3.
  | (Eager_group | Eager_master), `Wait -> 3.
  | (Eager_group | Eager_master), `Reconciliation -> 0.
  | Lazy_group, `Reconciliation -> 3.
  | Lazy_group, `Wait -> 3.
  | Lazy_group, `Deadlock -> 0.
  | (Lazy_master | Two_tier), `Deadlock -> 2.
  | (Lazy_master | Two_tier), `Wait -> 3.
  | (Lazy_master | Two_tier), `Reconciliation -> 0.
