let fi = float_of_int

let pw p =
  let transactions = Params.concurrent_transactions p in
  transactions *. (fi p.Params.actions ** 2.) /. (2. *. fi p.Params.db_size)

let pd p =
  let transactions = Params.concurrent_transactions p in
  if Float.equal transactions 0. then 0. else pw p ** 2. /. transactions

let transaction_deadlock_rate p =
  p.Params.tps *. (fi p.Params.actions ** 4.) /. (4. *. (fi p.Params.db_size ** 2.))

let node_deadlock_rate p =
  (p.Params.tps ** 2.) *. p.Params.action_time *. (fi p.Params.actions ** 5.)
  /. (4. *. (fi p.Params.db_size ** 2.))

let node_wait_rate p =
  (p.Params.tps ** 2.) *. p.Params.action_time *. (fi p.Params.actions ** 3.)
  /. (2. *. fi p.Params.db_size)
