(* The persistent barrier pool the conservative parallel simulation engine
   schedules its windows on; re-exported here so runner-level code has one
   place to reach for both pooling styles (spawn-per-task below,
   persistent-with-barrier for Par_engine). *)
module Pool = Dangers_util.Domain_pool

(* Queried once: [Domain.recommended_domain_count] reads the cgroup/CPU
   topology on every call, and benchmark reports should name one stable
   number for the host. Forced from the coordinating domain when the pool
   is sized, before any worker spawns, so the lazy is never raced. *)
let[@lint.allow "R1"] cores = lazy (Domain.recommended_domain_count ())
let host_cores () = Lazy.force cores
let default_jobs () = host_cores ()

(* The queue is just a cursor into the task array; contention on it is a
   couple of ns per task, negligible next to a simulation run. *)
type queue = { mutex : Mutex.t; mutable next : int }

let take queue ~limit =
  Mutex.lock queue.mutex;
  let i = queue.next in
  if i < limit then queue.next <- i + 1;
  Mutex.unlock queue.mutex;
  if i < limit then Some i else None

let map ~jobs ~f tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let queue = { mutex = Mutex.create (); next = 0 } in
    let worker () =
      let rec loop () =
        match take queue ~limit:n with
        | None -> ()
        | Some i ->
            (* Suppressed DR1: [take] hands each index to exactly one
               worker, so the [tasks.(i)] read and [results.(i)] write are
               per-index exclusive, and the [Domain.join] below publishes
               every write before [results] is read. *)
            let r =
              try Ok ((f tasks.(i)) [@lint.allow "dr1"])
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            (results.(i) <- Some r) [@lint.allow "dr1"];
            loop ()
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was handed out and joined *))
      results
  end
