(** A Domain-based task pool for independent simulation tasks.

    Workers are OCaml 5 domains pulling task indices off a mutex-protected
    queue; results land in a slot array indexed by task, so the output
    order is the input order no matter which domain ran what, or when.
    Combined with per-task RNG seeding (every simulation derives all of
    its randomness from the seed stored in the task itself) this makes a
    parallel run's results byte-identical to a serial run's.

    Tasks must be independent: they may not share mutable state. Every
    simulator in this repo qualifies — a run builds its own engine, stores
    and RNG from scratch. *)

module Pool = Dangers_util.Domain_pool
(** The persistent barrier-style pool {!Dangers_sim.Par_engine} runs its
    synchronization windows on — spawn once, reuse across thousands of
    windows — as opposed to the spawn-per-call {!map} below, which is
    right for coarse independent tasks. *)

val host_cores : unit -> int
(** The hardware's usable parallelism, [Domain.recommended_domain_count]
    detected once and memoized. Benchmark exports record this so
    serial-vs-parallel speedups are interpretable on the machine that
    produced them. *)

val default_jobs : unit -> int
(** Defaults to {!host_cores}. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~f tasks] applies [f] to every task on up to [jobs] domains
    and returns the results in task order. [jobs <= 1] runs inline with no
    domains at all. If any task raises, the exception of the
    lowest-indexed failing task is re-raised (with its backtrace) after
    all workers have finished. *)
