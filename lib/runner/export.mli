(** Structured result export: sweep items as JSONL or CSV.

    The JSON codec lives in {!Dangers_obs.Json} (shared with the trace
    and metrics exporters); this module re-exports it under its
    historical names so existing callers and scripts keep working. Floats
    print with the shortest representation that parses back exactly, so a
    JSONL file round-trips: [to_jsonl (of_jsonl s) = s]. Non-finite
    floats (fitted exponents can be [nan]) are encoded as the strings
    ["nan"], ["inf"], ["-inf"]. *)

module Experiment = Dangers_experiments.Experiment
module Repl_stats = Dangers_replication.Repl_stats

(** {1 JSON} *)

type json = Dangers_obs.Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string
(** Alias of {!Dangers_obs.Json.Parse_error}. *)

val json_to_string : json -> string
(** Single-line (JSONL-safe) rendering. *)

val json_of_string : string -> json
(** @raise Parse_error on malformed input or trailing garbage. *)

val json_of_float : float -> json
(** [Num] for finite floats, [Str "nan"]/[Str "inf"]/[Str "-inf"] else. *)

val float_of_json : json -> float
(** Inverse of {!json_of_float}. @raise Parse_error otherwise. *)

(** {1 Export records}

    The flat, stable schema written to disk — presentation-only payload
    (tables) is dropped, findings and summaries are kept. *)

type record =
  | Experiment_record of {
      id : string;
      title : string;
      seed : int;
      findings : Experiment.finding list;
      notes : string list;
    }
  | Scheme_record of {
      scheme : string;
      seed : int;
      summary : Repl_stats.summary;
      diagnostics : (string * float) list;
    }

val record_of_item : Sweep.item -> record

val to_json : record -> json
val of_json : json -> record
(** @raise Parse_error on a JSON value that is not a record. *)

(** {1 Files} *)

val to_jsonl : record list -> string
(** One record per line, trailing newline. *)

val of_jsonl : string -> record list
(** Blank lines are skipped. @raise Parse_error on a bad line. *)

val to_csv : record list -> string
(** One row per experiment finding ([kind=finding]) and per scheme-run
    summary ([kind=summary]), under a single wide header; cells that do
    not apply to the row's kind are empty. Notes are JSONL-only. *)
