module Experiment = Dangers_experiments.Experiment
module Repl_stats = Dangers_replication.Repl_stats

(* --- JSON ---

   The codec itself now lives in [Dangers_obs.Json] so layers below the
   runner (trace export, metrics snapshots) can share it; the historical
   names are kept as aliases because tests and external scripts grew up
   against them. *)

module Json = Dangers_obs.Json

type json = Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error = Json.Parse_error

let parse_error = Json.parse_error
let float_repr = Json.float_repr
let json_to_string = Json.to_string
let json_of_string = Json.of_string
let json_of_float = Json.of_float
let float_of_json = Json.to_float

(* --- export records --- *)

type record =
  | Experiment_record of {
      id : string;
      title : string;
      seed : int;
      findings : Experiment.finding list;
      notes : string list;
    }
  | Scheme_record of {
      scheme : string;
      seed : int;
      summary : Repl_stats.summary;
      diagnostics : (string * float) list;
    }

let record_of_item = function
  | Sweep.Experiment_item { seed; result } ->
      Experiment_record
        {
          id = result.Experiment.id;
          title = result.Experiment.title;
          seed;
          findings = result.Experiment.findings;
          notes = result.Experiment.notes;
        }
  | Sweep.Scheme_item { scheme; seed; outcome } ->
      Scheme_record
        {
          scheme;
          seed;
          summary = outcome.Dangers_experiments.Scheme.summary;
          diagnostics = outcome.Dangers_experiments.Scheme.diagnostics;
        }

let int_ = Json.int_

let finding_to_json (f : Experiment.finding) =
  Obj
    [
      ("label", Str f.Experiment.label);
      ("expected", json_of_float f.Experiment.expected);
      ("actual", json_of_float f.Experiment.actual);
      ("tolerance", json_of_float f.Experiment.tolerance);
      ("ok", Bool (Experiment.finding_ok f));
    ]

let summary_to_json (s : Repl_stats.summary) =
  Obj
    [
      ("scheme", Str s.Repl_stats.scheme);
      ("window", json_of_float s.Repl_stats.window);
      ("commits", int_ s.Repl_stats.commits);
      ("waits", int_ s.Repl_stats.waits);
      ("deadlocks", int_ s.Repl_stats.deadlocks);
      ("restarts", int_ s.Repl_stats.restarts);
      ("reconciliations", int_ s.Repl_stats.reconciliations);
      ("commit_rate", json_of_float s.Repl_stats.commit_rate);
      ("wait_rate", json_of_float s.Repl_stats.wait_rate);
      ("deadlock_rate", json_of_float s.Repl_stats.deadlock_rate);
      ("reconciliation_rate", json_of_float s.Repl_stats.reconciliation_rate);
      ("mean_duration", json_of_float s.Repl_stats.mean_duration);
    ]

let to_json = function
  | Experiment_record { id; title; seed; findings; notes } ->
      Obj
        [
          ("kind", Str "experiment");
          ("id", Str id);
          ("title", Str title);
          ("seed", int_ seed);
          ("findings", Arr (List.map finding_to_json findings));
          ("notes", Arr (List.map (fun n -> Str n) notes));
        ]
  | Scheme_record { scheme; seed; summary; diagnostics } ->
      Obj
        [
          ("kind", Str "scheme-run");
          ("scheme", Str scheme);
          ("seed", int_ seed);
          ("summary", summary_to_json summary);
          ( "diagnostics",
            Obj (List.map (fun (k, v) -> (k, json_of_float v)) diagnostics) );
        ]

let member = Json.member
let string_of = Json.string_of
let int_of = Json.int_of
let list_of = Json.list_of

let finding_of_json j =
  {
    Experiment.label = string_of (member "label" j);
    expected = float_of_json (member "expected" j);
    actual = float_of_json (member "actual" j);
    tolerance = float_of_json (member "tolerance" j);
  }

let summary_of_json j =
  {
    Repl_stats.scheme = string_of (member "scheme" j);
    window = float_of_json (member "window" j);
    commits = int_of (member "commits" j);
    waits = int_of (member "waits" j);
    deadlocks = int_of (member "deadlocks" j);
    restarts = int_of (member "restarts" j);
    reconciliations = int_of (member "reconciliations" j);
    commit_rate = float_of_json (member "commit_rate" j);
    wait_rate = float_of_json (member "wait_rate" j);
    deadlock_rate = float_of_json (member "deadlock_rate" j);
    reconciliation_rate = float_of_json (member "reconciliation_rate" j);
    mean_duration = float_of_json (member "mean_duration" j);
  }

let of_json j =
  match string_of (member "kind" j) with
  | "experiment" ->
      Experiment_record
        {
          id = string_of (member "id" j);
          title = string_of (member "title" j);
          seed = int_of (member "seed" j);
          findings = List.map finding_of_json (list_of (member "findings" j));
          notes = List.map string_of (list_of (member "notes" j));
        }
  | "scheme-run" ->
      Scheme_record
        {
          scheme = string_of (member "scheme" j);
          seed = int_of (member "seed" j);
          summary = summary_of_json (member "summary" j);
          diagnostics =
            (match member "diagnostics" j with
            | Obj fields ->
                List.map (fun (k, v) -> (k, float_of_json v)) fields
            | j -> parse_error "expected an object, got %s" (json_to_string j));
        }
  | kind -> parse_error "unknown record kind %S" kind

let to_jsonl records =
  String.concat ""
    (List.map (fun r -> json_to_string (to_json r) ^ "\n") records)

let of_jsonl input =
  String.split_on_char '\n' input
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line -> of_json (json_of_string line))

(* --- CSV --- *)

let csv_cell s =
  if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_header =
  [
    "kind"; "id"; "seed"; "label"; "expected"; "actual"; "tolerance"; "ok";
    "scheme"; "window"; "commits"; "commit_rate"; "waits"; "wait_rate";
    "deadlocks"; "deadlock_rate"; "restarts"; "reconciliations";
    "reconciliation_rate"; "mean_duration"; "diagnostics";
  ]

let to_csv records =
  let buf = Buffer.create 1024 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row csv_header;
  let blank n = List.init n (fun _ -> "") in
  List.iter
    (function
      | Experiment_record { id; seed; findings; _ } ->
          List.iter
            (fun (f : Experiment.finding) ->
              row
                ([
                   "finding"; id; string_of_int seed; f.Experiment.label;
                   float_repr f.Experiment.expected;
                   float_repr f.Experiment.actual;
                   float_repr f.Experiment.tolerance;
                   (if Experiment.finding_ok f then "true" else "false");
                 ]
                @ blank 13))
            findings
      | Scheme_record { scheme; seed; summary = s; diagnostics } ->
          row
            ([ "summary"; ""; string_of_int seed ]
            @ blank 5
            @ [
                scheme;
                float_repr s.Repl_stats.window;
                string_of_int s.Repl_stats.commits;
                float_repr s.Repl_stats.commit_rate;
                string_of_int s.Repl_stats.waits;
                float_repr s.Repl_stats.wait_rate;
                string_of_int s.Repl_stats.deadlocks;
                float_repr s.Repl_stats.deadlock_rate;
                string_of_int s.Repl_stats.restarts;
                string_of_int s.Repl_stats.reconciliations;
                float_repr s.Repl_stats.reconciliation_rate;
                float_repr s.Repl_stats.mean_duration;
                String.concat ";"
                  (List.map
                     (fun (k, v) -> k ^ "=" ^ float_repr v)
                     diagnostics);
              ]))
    records;
  Buffer.contents buf
