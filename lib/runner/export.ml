module Experiment = Dangers_experiments.Experiment
module Repl_stats = Dangers_replication.Repl_stats

(* --- JSON --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Shortest decimal that parses back to the same double. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_string buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf key;
          Buffer.add_char buf ':';
          to_buf buf value)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  to_buf buf j;
  Buffer.contents buf

(* Recursive-descent parser over a string. *)
type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> parse_error "expected %c at offset %d, got %c" ch c.pos got
  | None -> parse_error "expected %c at offset %d, got end of input" ch c.pos

let literal c word value =
  if
    c.pos + String.length word <= String.length c.input
    && String.sub c.input c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else parse_error "bad literal at offset %d" c.pos

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.input then
              parse_error "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.input c.pos 4) in
            c.pos <- c.pos + 4;
            (* We only ever emit \u00xx for control characters; decode the
               Latin-1 range and refuse the rest rather than mis-encode. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else parse_error "unsupported \\u escape %04x" code;
            loop ()
        | _ -> parse_error "bad escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> number_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.input start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> parse_error "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              Arr (List.rev (v :: acc))
          | _ -> parse_error "expected , or ] at offset %d" c.pos
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          (key, parse_value c)
        in
        let rec fields acc =
          let f = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (f :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev (f :: acc))
          | _ -> parse_error "expected , or } at offset %d" c.pos
        in
        fields []
  | Some _ -> parse_number c

let json_of_string input =
  let c = { input; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length input then
    parse_error "trailing garbage at offset %d" c.pos;
  v

let json_of_float f =
  if Float.is_nan f then Str "nan"
  else if f = Float.infinity then Str "inf"
  else if f = Float.neg_infinity then Str "-inf"
  else Num f

let float_of_json = function
  | Num f -> f
  | Str "nan" -> Float.nan
  | Str "inf" -> Float.infinity
  | Str "-inf" -> Float.neg_infinity
  | j -> parse_error "expected a float, got %s" (json_to_string j)

(* --- export records --- *)

type record =
  | Experiment_record of {
      id : string;
      title : string;
      seed : int;
      findings : Experiment.finding list;
      notes : string list;
    }
  | Scheme_record of {
      scheme : string;
      seed : int;
      summary : Repl_stats.summary;
      diagnostics : (string * float) list;
    }

let record_of_item = function
  | Sweep.Experiment_item { seed; result } ->
      Experiment_record
        {
          id = result.Experiment.id;
          title = result.Experiment.title;
          seed;
          findings = result.Experiment.findings;
          notes = result.Experiment.notes;
        }
  | Sweep.Scheme_item { scheme; seed; outcome } ->
      Scheme_record
        {
          scheme;
          seed;
          summary = outcome.Dangers_experiments.Scheme.summary;
          diagnostics = outcome.Dangers_experiments.Scheme.diagnostics;
        }

let int_ i = Num (float_of_int i)

let finding_to_json (f : Experiment.finding) =
  Obj
    [
      ("label", Str f.Experiment.label);
      ("expected", json_of_float f.Experiment.expected);
      ("actual", json_of_float f.Experiment.actual);
      ("tolerance", json_of_float f.Experiment.tolerance);
      ("ok", Bool (Experiment.finding_ok f));
    ]

let summary_to_json (s : Repl_stats.summary) =
  Obj
    [
      ("scheme", Str s.Repl_stats.scheme);
      ("window", json_of_float s.Repl_stats.window);
      ("commits", int_ s.Repl_stats.commits);
      ("waits", int_ s.Repl_stats.waits);
      ("deadlocks", int_ s.Repl_stats.deadlocks);
      ("restarts", int_ s.Repl_stats.restarts);
      ("reconciliations", int_ s.Repl_stats.reconciliations);
      ("commit_rate", json_of_float s.Repl_stats.commit_rate);
      ("wait_rate", json_of_float s.Repl_stats.wait_rate);
      ("deadlock_rate", json_of_float s.Repl_stats.deadlock_rate);
      ("reconciliation_rate", json_of_float s.Repl_stats.reconciliation_rate);
      ("mean_duration", json_of_float s.Repl_stats.mean_duration);
    ]

let to_json = function
  | Experiment_record { id; title; seed; findings; notes } ->
      Obj
        [
          ("kind", Str "experiment");
          ("id", Str id);
          ("title", Str title);
          ("seed", int_ seed);
          ("findings", Arr (List.map finding_to_json findings));
          ("notes", Arr (List.map (fun n -> Str n) notes));
        ]
  | Scheme_record { scheme; seed; summary; diagnostics } ->
      Obj
        [
          ("kind", Str "scheme-run");
          ("scheme", Str scheme);
          ("seed", int_ seed);
          ("summary", summary_to_json summary);
          ( "diagnostics",
            Obj (List.map (fun (k, v) -> (k, json_of_float v)) diagnostics) );
        ]

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> parse_error "missing field %S" key)
  | j -> parse_error "expected an object, got %s" (json_to_string j)

let string_of = function
  | Str s -> s
  | j -> parse_error "expected a string, got %s" (json_to_string j)

let int_of = function
  | Num f when Float.is_integer f -> int_of_float f
  | j -> parse_error "expected an integer, got %s" (json_to_string j)

let list_of = function
  | Arr items -> items
  | j -> parse_error "expected an array, got %s" (json_to_string j)

let finding_of_json j =
  {
    Experiment.label = string_of (member "label" j);
    expected = float_of_json (member "expected" j);
    actual = float_of_json (member "actual" j);
    tolerance = float_of_json (member "tolerance" j);
  }

let summary_of_json j =
  {
    Repl_stats.scheme = string_of (member "scheme" j);
    window = float_of_json (member "window" j);
    commits = int_of (member "commits" j);
    waits = int_of (member "waits" j);
    deadlocks = int_of (member "deadlocks" j);
    restarts = int_of (member "restarts" j);
    reconciliations = int_of (member "reconciliations" j);
    commit_rate = float_of_json (member "commit_rate" j);
    wait_rate = float_of_json (member "wait_rate" j);
    deadlock_rate = float_of_json (member "deadlock_rate" j);
    reconciliation_rate = float_of_json (member "reconciliation_rate" j);
    mean_duration = float_of_json (member "mean_duration" j);
  }

let of_json j =
  match string_of (member "kind" j) with
  | "experiment" ->
      Experiment_record
        {
          id = string_of (member "id" j);
          title = string_of (member "title" j);
          seed = int_of (member "seed" j);
          findings = List.map finding_of_json (list_of (member "findings" j));
          notes = List.map string_of (list_of (member "notes" j));
        }
  | "scheme-run" ->
      Scheme_record
        {
          scheme = string_of (member "scheme" j);
          seed = int_of (member "seed" j);
          summary = summary_of_json (member "summary" j);
          diagnostics =
            (match member "diagnostics" j with
            | Obj fields ->
                List.map (fun (k, v) -> (k, float_of_json v)) fields
            | j -> parse_error "expected an object, got %s" (json_to_string j));
        }
  | kind -> parse_error "unknown record kind %S" kind

let to_jsonl records =
  String.concat ""
    (List.map (fun r -> json_to_string (to_json r) ^ "\n") records)

let of_jsonl input =
  String.split_on_char '\n' input
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line -> of_json (json_of_string line))

(* --- CSV --- *)

let csv_cell s =
  if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_header =
  [
    "kind"; "id"; "seed"; "label"; "expected"; "actual"; "tolerance"; "ok";
    "scheme"; "window"; "commits"; "commit_rate"; "waits"; "wait_rate";
    "deadlocks"; "deadlock_rate"; "restarts"; "reconciliations";
    "reconciliation_rate"; "mean_duration"; "diagnostics";
  ]

let to_csv records =
  let buf = Buffer.create 1024 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row csv_header;
  let blank n = List.init n (fun _ -> "") in
  List.iter
    (function
      | Experiment_record { id; seed; findings; _ } ->
          List.iter
            (fun (f : Experiment.finding) ->
              row
                ([
                   "finding"; id; string_of_int seed; f.Experiment.label;
                   float_repr f.Experiment.expected;
                   float_repr f.Experiment.actual;
                   float_repr f.Experiment.tolerance;
                   (if Experiment.finding_ok f then "true" else "false");
                 ]
                @ blank 13))
            findings
      | Scheme_record { scheme; seed; summary = s; diagnostics } ->
          row
            ([ "summary"; ""; string_of_int seed ]
            @ blank 5
            @ [
                scheme;
                float_repr s.Repl_stats.window;
                string_of_int s.Repl_stats.commits;
                float_repr s.Repl_stats.commit_rate;
                string_of_int s.Repl_stats.waits;
                float_repr s.Repl_stats.wait_rate;
                string_of_int s.Repl_stats.deadlocks;
                float_repr s.Repl_stats.deadlock_rate;
                string_of_int s.Repl_stats.restarts;
                string_of_int s.Repl_stats.reconciliations;
                float_repr s.Repl_stats.reconciliation_rate;
                float_repr s.Repl_stats.mean_duration;
                String.concat ";"
                  (List.map
                     (fun (k, v) -> k ^ "=" ^ float_repr v)
                     diagnostics);
              ]))
    records;
  Buffer.contents buf
