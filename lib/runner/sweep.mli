(** The sweep task model: what the multicore runner executes.

    A sweep is a list of independent tasks — reproduce one experiment at
    one seed, or run one replication scheme at one grid point and seed —
    executed by {!Task_pool} and collected back in task order. Because
    each task carries its own seed and builds its own simulator, the item
    list for a given task list is identical at any [jobs]. *)

module Experiment = Dangers_experiments.Experiment
module Scheme = Dangers_experiments.Scheme

type task =
  | Experiment_task of { id : string; quick : bool; seed : int }
      (** Reproduce the registered experiment [id]. *)
  | Scheme_task of {
      scheme : string;  (** a {!Scheme} registry name *)
      spec : Scheme.spec;  (** the grid point *)
      seed : int;
      warmup : float;
      span : float;
    }

type item =
  | Experiment_item of { seed : int; result : Experiment.result }
  | Scheme_item of { scheme : string; seed : int; outcome : Scheme.outcome }

val experiment_tasks :
  ?quick:bool -> Experiment.t list -> seeds:int list -> task list
(** One task per (experiment, seed), experiments outermost. [quick]
    defaults to false. *)

val scheme_tasks :
  ?warmup:float ->
  ?span:float ->
  seeds:int list ->
  specs:Scheme.spec list ->
  string list ->
  task list
(** One task per (scheme name, spec, seed), schemes outermost. Defaults:
    5 s warmup, 120 s span. *)

val run_task : task -> item
(** @raise Invalid_argument on an unknown experiment id or scheme name. *)

val run : ?jobs:int -> ?sim_domains:int -> task list -> item list
(** Execute every task on up to [jobs] domains (default 1) and return the
    items in task order — byte-identical to a serial run. [sim_domains]
    installs an ambient intra-simulation domain budget
    ({!Dangers_sim.Observe.with_domains}) around each task: schemes built
    on the conservative parallel engine run their partitions on that many
    domains; every other scheme ignores it. Items are byte-identical at
    any [sim_domains] (and any [jobs]). *)

(** {1 Observed runs}

    The observability variant of {!run}: each task gets its own metrics
    registry (and, with [~trace:true], its own bounded tracer) installed
    as the worker domain's ambient observation context for exactly that
    task, so parallel workers never share a registry and the {!item}s are
    the same values {!run} would produce. *)

val task_label : task -> string
(** ["experiment:<id>"] or ["scheme:<name>"]. *)

type observation = {
  o_label : string;  (** {!task_label} of the task *)
  o_seed : int;
  o_snapshot : Dangers_obs.Metrics.snapshot;
  o_trace : Dangers_sim.Trace_export.section option;
      (** present iff tracing was requested *)
  o_series : Dangers_obs.Timeseries.t option;
      (** present iff a [series_interval] was given: the task's registry
          sampled every that-many {e simulated} seconds across the
          scheme's measured window *)
  o_profile : Dangers_obs.Profiling.phase;
      (** the whole task: wall-clock and GC allocation (also recorded in
          the snapshot's phase list, after the scheme's own
          warmup/measured phases) *)
}

val run_task_observed :
  ?trace:bool ->
  ?trace_capacity:int ->
  ?series_interval:float ->
  task ->
  item * observation

val run_observed :
  ?jobs:int ->
  ?sim_domains:int ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?series_interval:float ->
  task list ->
  (item * observation) list
(** Items and observations in task order at any [jobs]. Wall-clock
    profiles vary run to run, of course; everything else is
    deterministic — including the sampled series, which runs on the
    simulated clock. *)
