module Experiment = Dangers_experiments.Experiment
module Registry = Dangers_experiments.Registry
module Scheme = Dangers_experiments.Scheme
module Obs = Dangers_obs.Metrics
module Profiling = Dangers_obs.Profiling
module Observe = Dangers_sim.Observe
module Trace = Dangers_sim.Trace
module Trace_export = Dangers_sim.Trace_export

type task =
  | Experiment_task of { id : string; quick : bool; seed : int }
  | Scheme_task of {
      scheme : string;
      spec : Scheme.spec;
      seed : int;
      warmup : float;
      span : float;
    }

type item =
  | Experiment_item of { seed : int; result : Experiment.result }
  | Scheme_item of { scheme : string; seed : int; outcome : Scheme.outcome }

let experiment_tasks ?(quick = false) experiments ~seeds =
  List.concat_map
    (fun (e : Experiment.t) ->
      List.map
        (fun seed -> Experiment_task { id = e.Experiment.id; quick; seed })
        seeds)
    experiments

let scheme_tasks ?(warmup = 5.) ?(span = 120.) ~seeds ~specs names =
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun spec ->
          List.map
            (fun seed -> Scheme_task { scheme; spec; seed; warmup; span })
            seeds)
        specs)
    names

let run_task = function
  | Experiment_task { id; quick; seed } -> (
      match Registry.find id with
      | None ->
          invalid_arg
            (Printf.sprintf "Sweep.run_task: unknown experiment %S (valid: %s)"
               id
               (String.concat ", " (Registry.ids ())))
      | Some e -> Experiment_item { seed; result = e.Experiment.run ~quick ~seed })
  | Scheme_task { scheme; spec; seed; warmup; span } ->
      let outcome = Scheme.run_outcome_named scheme spec ~seed ~warmup ~span in
      Scheme_item { scheme; seed; outcome }

(* The --sim-domains budget is ambient (Domain.DLS) and the worker domains
   are fresh, so it must be installed inside the per-task callback, on the
   domain that actually runs the task. *)
let with_sim_domains sim_domains f =
  match sim_domains with
  | None -> f ()
  | Some domains -> Observe.with_domains domains f

let run ?(jobs = 1) ?sim_domains tasks =
  Array.to_list
    (Task_pool.map ~jobs
       ~f:(fun task -> with_sim_domains sim_domains (fun () -> run_task task))
       (Array.of_list tasks))

(* --- observed runs --- *)

let task_label = function
  | Experiment_task { id; _ } -> "experiment:" ^ id
  | Scheme_task { scheme; _ } -> "scheme:" ^ scheme

let task_seed = function
  | Experiment_task { seed; _ } | Scheme_task { seed; _ } -> seed

type observation = {
  o_label : string;
  o_seed : int;
  o_snapshot : Obs.snapshot;
  o_trace : Trace_export.section option;
  o_series : Dangers_obs.Timeseries.t option;
  o_profile : Profiling.phase;  (** the whole task, wall-clock + GC *)
}

let run_task_observed ?(trace = false) ?trace_capacity ?series_interval task =
  let registry = Obs.create () in
  let tracer = if trace then Some (Trace.create ?capacity:trace_capacity ()) else None in
  let series =
    Option.map
      (fun interval -> Dangers_obs.Timeseries.create ~interval registry)
      series_interval
  in
  let item, profile =
    Profiling.timed (task_label task) (fun () ->
        Observe.with_observation ~obs:registry ?tracer ?series (fun () ->
            run_task task))
  in
  Obs.record_phase registry profile;
  let observation =
    {
      o_label = task_label task;
      o_seed = task_seed task;
      o_snapshot = Obs.snapshot registry;
      o_trace =
        Option.map
          (fun tr ->
            Trace_export.section ~label:(task_label task) ~seed:(task_seed task)
              tr)
          tracer;
      o_series = series;
      o_profile = profile;
    }
  in
  (item, observation)

let run_observed ?(jobs = 1) ?sim_domains ?(trace = false) ?trace_capacity
    ?series_interval tasks =
  Array.to_list
    (Task_pool.map ~jobs
       ~f:(fun task ->
         with_sim_domains sim_domains (fun () ->
             run_task_observed ~trace ?trace_capacity ?series_interval task))
       (Array.of_list tasks))
