module Experiment = Dangers_experiments.Experiment
module Registry = Dangers_experiments.Registry
module Scheme = Dangers_experiments.Scheme

type task =
  | Experiment_task of { id : string; quick : bool; seed : int }
  | Scheme_task of {
      scheme : string;
      spec : Scheme.spec;
      seed : int;
      warmup : float;
      span : float;
    }

type item =
  | Experiment_item of { seed : int; result : Experiment.result }
  | Scheme_item of { scheme : string; seed : int; outcome : Scheme.outcome }

let experiment_tasks ?(quick = false) experiments ~seeds =
  List.concat_map
    (fun (e : Experiment.t) ->
      List.map
        (fun seed -> Experiment_task { id = e.Experiment.id; quick; seed })
        seeds)
    experiments

let scheme_tasks ?(warmup = 5.) ?(span = 120.) ~seeds ~specs names =
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun spec ->
          List.map
            (fun seed -> Scheme_task { scheme; spec; seed; warmup; span })
            seeds)
        specs)
    names

let run_task = function
  | Experiment_task { id; quick; seed } -> (
      match Registry.find id with
      | None ->
          invalid_arg
            (Printf.sprintf "Sweep.run_task: unknown experiment %S (valid: %s)"
               id
               (String.concat ", " (Registry.ids ())))
      | Some e -> Experiment_item { seed; result = e.Experiment.run ~quick ~seed })
  | Scheme_task { scheme; spec; seed; warmup; span } ->
      let outcome = Scheme.run_outcome_named scheme spec ~seed ~warmup ~span in
      Scheme_item { scheme; seed; outcome }

let run ?(jobs = 1) tasks =
  Array.to_list (Task_pool.map ~jobs ~f:run_task (Array.of_list tasks))
