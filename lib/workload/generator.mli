(** Poisson transaction arrivals.

    Each node originates TPS transactions per second (Table 2); arrivals are
    a Poisson process, so inter-arrival times are exponential with mean
    1/TPS. One generator per node, each with its own split of the master
    RNG so streams are independent. *)

type t

val start :
  clock:Dangers_runtime.Clock.t ->
  rng:Dangers_util.Rng.t ->
  tps:float ->
  profile:Profile.t ->
  db_size:int ->
  submit:(Dangers_txn.Op.t list -> unit) ->
  t
(** Begin generating; the first arrival is one inter-arrival time from now.
    @raise Invalid_argument if [tps <= 0]. *)

val stop : t -> unit
(** No further arrivals; in-flight transactions are unaffected. *)

val generated : t -> int
(** Transactions submitted so far. *)
