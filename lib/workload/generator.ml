module Clock = Dangers_runtime.Clock
module Rng = Dangers_util.Rng

type t = {
  clock : Clock.t;
  rng : Rng.t;
  mean_interarrival : float;
  profile : Profile.t;
  db_size : int;
  submit : Dangers_txn.Op.t list -> unit;
  mutable next_arrival : Clock.event_id option;
  mutable stopped : bool;
  mutable count : int;
}

let rec arm t =
  if not t.stopped then begin
    let gap = Rng.exponential t.rng ~mean:t.mean_interarrival in
    t.next_arrival <-
      Some
        (Clock.schedule t.clock ~delay:gap (fun () ->
             t.count <- t.count + 1;
             t.submit (Profile.generate t.profile t.rng ~db_size:t.db_size);
             arm t))
  end

let start ~clock ~rng ~tps ~profile ~db_size ~submit =
  if not (tps > 0.) then invalid_arg "Generator.start: tps must be positive";
  let t =
    {
      clock;
      rng;
      mean_interarrival = 1. /. tps;
      profile;
      db_size;
      submit;
      next_arrival = None;
      stopped = false;
      count = 0;
    }
  in
  arm t;
  t

let stop t =
  t.stopped <- true;
  match t.next_arrival with
  | Some event ->
      Clock.cancel t.clock event;
      t.next_arrival <- None
  | None -> ()

let generated t = t.count
