module Rng = Dangers_util.Rng

type t =
  | Zero
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

let validate = function
  | Zero -> ()
  | Constant d ->
      if d < 0. then invalid_arg "Delay.Constant: negative delay"
  | Uniform { lo; hi } ->
      if lo < 0. || hi < lo then invalid_arg "Delay.Uniform: need 0 <= lo <= hi"
  | Exponential { mean } ->
      if mean <= 0. then invalid_arg "Delay.Exponential: mean must be positive"

let sample t rng =
  match t with
  | Zero -> 0.
  | Constant d -> d
  | Uniform { lo; hi } -> if Float.equal hi lo then lo else lo +. Rng.float rng (hi -. lo)
  | Exponential { mean } -> Rng.exponential rng ~mean

let min_bound = function
  | Zero -> 0.
  | Constant d -> d
  | Uniform { lo; _ } -> lo
  | Exponential _ -> 0.

let pp ppf = function
  | Zero -> Format.pp_print_string ppf "zero"
  | Constant d -> Format.fprintf ppf "constant(%gs)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%gs,%gs)" lo hi
  | Exponential { mean } -> Format.fprintf ppf "exponential(mean=%gs)" mean
