(* Same inline binary min-heap as the engine (times/seqs/evs parallel
   arrays, hole-based sifts, (time, seq) lexicographic order) so virtual
   mode reproduces the engine's event order exactly — that identity is
   what the sim/live equivalence suite pins. Wall mode adds a monotonic
   time source, a cross-domain mailbox, and an idle hook in front of the
   very same queue. *)

module Trace = Dangers_sim.Trace

type mode = Virtual | Wall

type event = { action : unit -> unit; mutable cancelled : bool }
type event_id = event

type t = {
  mode : mode;
  origin : int64; (* monotonic ns at creation; wall time 0 *)
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;
  mutable times : float array;
  mutable seqs : int array;
  mutable evs : event array;
  mutable size : int;
  mutable high_water : int;
  mutable trace : Trace.t option;
  mutable idle_waiter : (timeout:float -> unit) option;
  (* Cross-domain entry points. The flags let the single-domain hot loop
     skip the mutex when nothing external happened. *)
  mail_mutex : Mutex.t;
  mutable mailbox_rev : (unit -> unit) list;
  mail_flag : bool Atomic.t;
  stop_flag : bool Atomic.t;
}

(* Allocated per call: heap slots briefly alias the filler event, and
   engines may live on different domains — a single shared record
   would be cross-domain mutable state. *)
let dummy_event () = { action = ignore; cancelled = true }

let create ?tracer mode =
  {
    mode;
    origin = Monotonic_clock.now ();
    clock = 0.;
    next_seq = 0;
    fired = 0;
    live = 0;
    times = Array.make 16 0.;
    seqs = Array.make 16 0;
    evs = Array.make 16 (dummy_event ());
    size = 0;
    high_water = 0;
    trace = tracer;
    idle_waiter = None;
    mail_mutex = Mutex.create ();
    mailbox_rev = [];
    mail_flag = Atomic.make false;
    stop_flag = Atomic.make false;
  }

let mode t = t.mode

let wall_now t =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.origin) *. 1e-9

let now t =
  match t.mode with
  | Virtual -> t.clock
  | Wall ->
      let w = wall_now t in
      if w > t.clock then w else t.clock

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0. in
  let seqs = Array.make cap' 0 in
  let evs = Array.make cap' (dummy_event ()) in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.evs 0 evs 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.evs <- evs

let push t time seq ev =
  if t.size = Array.length t.times then grow t;
  t.size <- t.size + 1;
  if t.size > t.high_water then t.high_water <- t.size;
  let i = ref (t.size - 1) in
  let placed = ref false in
  while not !placed do
    if !i = 0 then placed := true
    else begin
      let parent = (!i - 1) / 2 in
      let pt = t.times.(parent) in
      if time < pt || (Float.equal time pt && seq < t.seqs.(parent)) then begin
        t.times.(!i) <- pt;
        t.seqs.(!i) <- t.seqs.(parent);
        t.evs.(!i) <- t.evs.(parent);
        i := parent
      end
      else placed := true
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.evs.(!i) <- ev

let remove_min t =
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then t.evs.(0) <- dummy_event ()
  else begin
    let time = t.times.(n) and seq = t.seqs.(n) and ev = t.evs.(n) in
    t.evs.(n) <- dummy_event ();
    let i = ref 0 in
    let placed = ref false in
    while not !placed do
      let l = (2 * !i) + 1 in
      if l >= n then placed := true
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (t.times.(r) < t.times.(l)
               || (Float.equal t.times.(r) t.times.(l) && t.seqs.(r) < t.seqs.(l)))
          then r
          else l
        in
        let ct = t.times.(c) in
        if ct < time || (Float.equal ct time && t.seqs.(c) < seq) then begin
          t.times.(!i) <- ct;
          t.seqs.(!i) <- t.seqs.(c);
          t.evs.(!i) <- t.evs.(c);
          i := c
        end
        else placed := true
      end
    done;
    t.times.(!i) <- time;
    t.seqs.(!i) <- seq;
    t.evs.(!i) <- ev
  end

let schedule_at t ~time action =
  if not (Float.is_finite time) then
    invalid_arg "Live_clock.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Live_clock.schedule_at: time in the past";
  let event = { action; cancelled = false } in
  push t time t.next_seq event;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  event

let schedule t ~delay action =
  if not (Float.is_finite delay && delay >= 0.) then
    invalid_arg "Live_clock.schedule: delay must be finite and non-negative";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t event =
  if not event.cancelled then begin
    event.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec next_time t =
  if t.size = 0 then None
  else if t.evs.(0).cancelled then begin
    remove_min t;
    next_time t
  end
  else Some t.times.(0)

let post t thunk =
  Mutex.lock t.mail_mutex;
  t.mailbox_rev <- thunk :: t.mailbox_rev;
  Atomic.set t.mail_flag true;
  Mutex.unlock t.mail_mutex

let drain_posts t =
  if Atomic.get t.mail_flag then begin
    Mutex.lock t.mail_mutex;
    let posted = List.rev t.mailbox_rev in
    t.mailbox_rev <- [];
    Atomic.set t.mail_flag false;
    Mutex.unlock t.mail_mutex;
    List.iter (fun thunk -> thunk ()) posted
  end

let set_idle_waiter t waiter = t.idle_waiter <- waiter
let stop t = Atomic.set t.stop_flag true

exception Runaway of int

(* Fire the root event (known live and due). Virtual mode moves the clock
   to the event; wall mode never rewinds it. *)
let fire t event time =
  remove_min t;
  event.cancelled <- true;
  t.live <- t.live - 1;
  (match t.mode with
  | Virtual -> t.clock <- time
  | Wall -> if time > t.clock then t.clock <- time);
  t.fired <- t.fired + 1;
  event.action ()

(* The longest single park between checks of the stop flag and mailbox;
   select-based waiters return early on I/O anyway. *)
let max_idle = 0.05

let idle t span =
  let timeout = Float.min (Float.max span 0.) max_idle in
  match t.idle_waiter with
  | Some waiter -> waiter ~timeout
  | None -> if timeout > 0. then Unix.sleepf timeout

let run ?max_events ?until t =
  Atomic.set t.stop_flag false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let tick () =
    if !budget = 0 then
      raise (Runaway (match max_events with Some n -> n | None -> max_int));
    decr budget
  in
  match t.mode with
  | Virtual -> (
      (* Identical to [Engine.run], plus the stop/post checks. *)
      match until with
      | None ->
          let continue = ref true in
          while !continue do
            if Atomic.get t.stop_flag then continue := false
            else begin
              drain_posts t;
              match next_time t with
              | None -> if not (Atomic.get t.mail_flag) then continue := false
              | Some time ->
                  tick ();
                  fire t t.evs.(0) time
            end
          done
      | Some deadline ->
          let continue = ref true in
          while !continue do
            if Atomic.get t.stop_flag then continue := false
            else begin
              drain_posts t;
              match next_time t with
              | Some time when time <= deadline ->
                  tick ();
                  fire t t.evs.(0) time
              | Some _ | None ->
                  if not (Atomic.get t.mail_flag) then continue := false
            end
          done;
          if not (Atomic.get t.stop_flag) && deadline > t.clock then
            t.clock <- deadline)
  | Wall ->
      let continue = ref true in
      while !continue do
        if Atomic.get t.stop_flag then continue := false
        else begin
          drain_posts t;
          let w = wall_now t in
          if w > t.clock then t.clock <- w;
          let horizon =
            match until with
            | Some deadline -> deadline
            | None -> infinity
          in
          match next_time t with
          | Some time when time <= t.clock && time <= horizon ->
              tick ();
              fire t t.evs.(0) time
          | Some time when time <= horizon ->
              (* Next event is in the real future: park until it is due. *)
              idle t (time -. t.clock)
          | Some _ | None ->
              if t.clock >= horizon then continue := false
              else if Float.is_finite horizon then idle t (horizon -. t.clock)
              else begin
                match t.idle_waiter with
                | None when not (Atomic.get t.mail_flag) ->
                    (* Queue drained, nothing can wake us: the run is over. *)
                    continue := false
                | None | Some _ -> idle t max_idle
              end
        end
      done

let run_for t span =
  if not (Float.is_finite span && span >= 0.) then
    invalid_arg "Live_clock.run_for: span must be finite and non-negative";
  run t ~until:(t.clock +. span)

let events_fired t = t.fired
let queue_high_water t = t.high_water

let set_tracer t tracer = t.trace <- tracer
let tracer t = t.trace
let tracing t = match t.trace with Some _ -> true | None -> false

let trace t event =
  match t.trace with
  | Some tr -> Trace.record tr ~now:t.clock event
  | None -> ()
