(** Wire primitives for the live runtime's framed message protocol.

    A frame is a 4-byte big-endian payload length followed by the
    payload. Payload encoding uses the fixed-width big-endian putters /
    getters here; floats travel as IEEE-754 bit patterns so values
    survive the round trip exactly (a replayed tentative transaction
    must reproduce the same float the mobile computed).

    The reader side works from a [string] and a mutable cursor; decode
    errors raise {!Malformed} with a diagnostic rather than silently
    misparsing — a server must survive a byte-garbage client. *)

exception Malformed of string

type 'a t = { encode : Buffer.t -> 'a -> unit; decode : reader -> 'a }
(** A symmetric pair of payload encoders: what a {!TRANSPORT}
    implementation needs to move ['a] messages as bytes. *)

and reader

(** {1 Writing} *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_f64 : Buffer.t -> float -> unit
val put_string : Buffer.t -> string -> unit
(** u16 length + bytes. @raise Invalid_argument beyond 65535 bytes. *)

val frame : Buffer.t -> string
(** The buffer's contents as a length-prefixed frame (and the buffer is
    cleared for reuse). @raise Invalid_argument if the payload exceeds
    {!max_frame}. *)

(** {1 Reading} *)

val reader : string -> reader
val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_f64 : reader -> float
val get_string : reader -> string
val expect_end : reader -> unit
(** @raise Malformed if payload bytes remain — trailing garbage means
    the peer and we disagree about the message layout. *)

val max_frame : int
(** Upper bound on a payload (16 MiB): a length prefix beyond this is
    treated as a protocol error, not an allocation request. *)
