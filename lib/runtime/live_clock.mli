(** Timer wheel for running scheme code outside the simulator.

    The live clock keeps the engine's contract — a priority queue of
    events fired in (time, then schedule-order) sequence — but can bind
    its notion of "now" to the machine's monotonic clock instead of the
    next event's timestamp:

    - [Virtual] mode is a drop-in deterministic replacement for
      {!Dangers_sim.Engine}: time jumps to each event as it fires, equal
      times break ties in schedule order, [run ~until] leaves the clock
      at the deadline. Scheme code ported to {!Clock.t} can be checked
      for sim/live equivalence against this mode, because the event
      order is identical by construction.
    - [Wall] mode anchors time 0 at [create] and lets the monotonic
      clock drive: an event scheduled at [~delay:d] fires once [d] real
      seconds have elapsed. Between due events the run loop either calls
      the installed {!set_idle_waiter} (a server parks in [select]
      there) or sleeps.

    The clock itself is single-domain: only the domain running {!run}
    may call [schedule]/[cancel]. Other domains hand work over with
    {!post}, the only thread-safe entry point. *)

type mode = Virtual | Wall

type t
type event_id

exception Runaway of int
(** Raised by {!run} when [max_events] fire without draining the queue
    — same contract as {!Dangers_sim.Engine.Runaway}. *)

val create : ?tracer:Dangers_sim.Trace.t -> mode -> t
(** Time starts at 0 (in [Wall] mode, "0" is the moment of creation on
    the monotonic clock). *)

val mode : t -> mode

val now : t -> float
(** Seconds. [Virtual]: the last fired event's time. [Wall]: monotonic
    seconds since [create], never decreasing within a [run]. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** @raise Invalid_argument if [time] is in the past. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
val next_time : t -> float option

val post : t -> (unit -> unit) -> unit
(** Thread-safe: enqueue a closure to run on the clock's domain, at the
    current time, before the next timer event is considered. This is how
    another domain (or a socket-accept loop) injects work. *)

val set_idle_waiter : t -> (timeout:float -> unit) option -> unit
(** [Wall] mode only: called whenever the run loop has nothing due, with
    the number of seconds until the next timer event (capped; always
    finite and non-negative). A server blocks in [Unix.select] here and
    services I/O; returning early is always safe. Without a waiter the
    loop sleeps. *)

val stop : t -> unit
(** Thread-safe: make the current {!run} return after the event in
    flight. The queue is left intact. *)

val run : ?max_events:int -> ?until:float -> t -> unit
(** Fire events until the queue drains, [until] passes, or {!stop} is
    called. [Virtual] matches [Engine.run] exactly (with [~until] the
    clock ends at the deadline). [Wall] waits for real time to catch up
    with each event; with no [until], an empty queue ends the run only
    when no idle waiter is installed (a server with a waiter keeps
    serving until {!stop}). *)

val run_for : t -> float -> unit
(** [run_for t span] = [run t ~until:(now t +. span)]. *)

val events_fired : t -> int
val queue_high_water : t -> int

(** {1 Tracing} — same contract as the engine's. *)

val set_tracer : t -> Dangers_sim.Trace.t option -> unit
val tracer : t -> Dangers_sim.Trace.t option
val tracing : t -> bool
val trace : t -> Dangers_sim.Trace.event -> unit
