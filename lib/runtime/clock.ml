module Engine = Dangers_sim.Engine

type t = Sim of Engine.t | Live of Live_clock.t

type event_id =
  | Sim_event of Engine.event_id
  | Live_event of Live_clock.event_id

let of_engine engine = Sim engine
let of_live live = Live live

let sim_engine = function Sim engine -> Some engine | Live _ -> None
let live = function Live clock -> Some clock | Sim _ -> None

let now = function
  | Sim engine -> Engine.now engine
  | Live clock -> Live_clock.now clock

let schedule t ~delay action =
  match t with
  | Sim engine -> Sim_event (Engine.schedule engine ~delay action)
  | Live clock -> Live_event (Live_clock.schedule clock ~delay action)

let schedule_at t ~time action =
  match t with
  | Sim engine -> Sim_event (Engine.schedule_at engine ~time action)
  | Live clock -> Live_event (Live_clock.schedule_at clock ~time action)

let schedule_unit t ~delay action =
  match t with
  | Sim engine -> ignore (Engine.schedule engine ~delay action : Engine.event_id)
  | Live clock ->
      ignore (Live_clock.schedule clock ~delay action : Live_clock.event_id)

let cancel t event =
  match (t, event) with
  | Sim engine, Sim_event ev -> Engine.cancel engine ev
  | Live clock, Live_event ev -> Live_clock.cancel clock ev
  | Sim _, Live_event _ | Live _, Sim_event _ ->
      invalid_arg "Clock.cancel: event from a different backend"

let pending = function
  | Sim engine -> Engine.pending engine
  | Live clock -> Live_clock.pending clock

let next_time = function
  | Sim engine -> Engine.next_time engine
  | Live clock -> Live_clock.next_time clock

let run ?max_events ?until = function
  | Sim engine -> Engine.run ?max_events ?until engine
  | Live clock -> Live_clock.run ?max_events ?until clock

let run_for t span =
  match t with
  | Sim engine -> Engine.run_for engine span
  | Live clock -> Live_clock.run_for clock span

let events_fired = function
  | Sim engine -> Engine.events_fired engine
  | Live clock -> Live_clock.events_fired clock

let queue_high_water = function
  | Sim engine -> Engine.queue_high_water engine
  | Live clock -> Live_clock.queue_high_water clock

let set_tracer t tracer =
  match t with
  | Sim engine -> Engine.set_tracer engine tracer
  | Live clock -> Live_clock.set_tracer clock tracer

let tracer = function
  | Sim engine -> Engine.tracer engine
  | Live clock -> Live_clock.tracer clock

let tracing = function
  | Sim engine -> Engine.tracing engine
  | Live clock -> Live_clock.tracing clock

let trace t event =
  match t with
  | Sim engine -> Engine.trace engine event
  | Live clock -> Live_clock.trace clock event
