(** Message-delay models.

    The paper's closed-form analysis *ignores* propagation delay
    (Message_Delay in Table 2) and notes that real delays only make the
    rates worse. The simulator defaults to [Zero] to match the equations,
    and offers non-trivial models for the "delays make it worse" ablation. *)

type t =
  | Zero  (** The model's assumption. *)
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

val sample : t -> Dangers_util.Rng.t -> float
(** Always non-negative. *)

val validate : t -> unit
(** @raise Invalid_argument on negative or inverted parameters. *)

val min_bound : t -> float
(** Infimum of {!sample}: the smallest delay the model can produce
    ([Zero] and [Exponential] give 0). The conservative parallel engine
    uses a positive minimum as its lookahead horizon — a model whose
    bound is 0 admits no lookahead and cannot drive it. *)

val pp : Format.formatter -> t -> unit
