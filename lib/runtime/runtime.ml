module type CLOCK = sig
  type t
  type event_id

  val now : t -> float
  val schedule : t -> delay:float -> (unit -> unit) -> event_id
  val schedule_at : t -> time:float -> (unit -> unit) -> event_id
  val cancel : t -> event_id -> unit
  val pending : t -> int
  val run : ?max_events:int -> ?until:float -> t -> unit
  val run_for : t -> float -> unit
end

module Sim_clock : CLOCK with type t = Dangers_sim.Engine.t = Dangers_sim.Engine
module Live : CLOCK with type t = Live_clock.t = Live_clock

type fault_action =
  | Pass
  | Drop
  | Duplicate
  | Delay_extra of float

type faults = {
  blocked : src:int -> dst:int -> bool;
  on_transmit : src:int -> dst:int -> fault_action;
}

let no_faults =
  {
    blocked = (fun ~src:_ ~dst:_ -> false);
    on_transmit = (fun ~src:_ ~dst:_ -> Pass);
  }

module type TRANSPORT = sig
  type 'msg t

  val create :
    ?obs:Dangers_obs.Metrics.t ->
    ?faults:faults ->
    clock:Clock.t ->
    rng:Dangers_util.Rng.t ->
    delay:Delay.t ->
    nodes:int ->
    deliver:(src:int -> dst:int -> 'msg -> unit) ->
    unit ->
    'msg t

  val nodes : 'msg t -> int
  val is_connected : 'msg t -> node:int -> bool
  val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
  val broadcast : 'msg t -> src:int -> 'msg -> unit
  val set_connected : 'msg t -> node:int -> bool -> unit
  val flush_node : 'msg t -> node:int -> unit

  val on_connectivity_change :
    'msg t -> (node:int -> connected:bool -> unit) -> unit

  val messages_sent : 'msg t -> int
  val messages_delivered : 'msg t -> int
  val messages_parked : 'msg t -> int
  val messages_dropped : 'msg t -> int
  val messages_duplicated : 'msg t -> int
end

type t = { name : string; clock : Clock.t }

let sim ?engine () =
  let engine =
    match engine with Some e -> e | None -> Dangers_sim.Engine.create ()
  in
  { name = "sim"; clock = Clock.of_engine engine }

let live_virtual () =
  { name = "live-virtual"; clock = Clock.of_live (Live_clock.create Virtual) }

let live_wall () =
  { name = "live-wall"; clock = Clock.of_live (Live_clock.create Wall) }

let of_clock ~name clock = { name; clock }

let is_live t = match t.clock with Clock.Live _ -> true | Clock.Sim _ -> false
