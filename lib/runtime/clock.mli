(** The clock every scheme is written against.

    A closed sum over the two runtime backends: the discrete-event
    simulator ({!Dangers_sim.Engine}, time advances by fiat) and the
    live timer wheel ({!Live_clock}, time advances deterministically in
    virtual mode or with the machine's monotonic clock in wall mode).
    Scheme code that schedules through this interface runs unmodified on
    either — the sim/live equivalence suite holds it to that.

    Every operation is one constructor dispatch over the backend; the
    sim arm compiles to exactly the engine calls the schemes made before
    the abstraction existed, so simulation cost is unchanged. *)

module Engine = Dangers_sim.Engine

type t = Sim of Engine.t | Live of Live_clock.t

type event_id
(** Handle for cancelling, from either backend. *)

val of_engine : Engine.t -> t
val of_live : Live_clock.t -> t

val sim_engine : t -> Engine.t option
(** The underlying engine when this is a simulator clock — for callers
    (parallel sweep, fuzzer fault plans) that need sim-only machinery. *)

val live : t -> Live_clock.t option

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** @raise Invalid_argument if [time] is in the past. *)

val schedule_unit : t -> delay:float -> (unit -> unit) -> unit
(** [schedule] for fire-and-forget callers (the executor's per-action
    delays, the network's arrivals): no handle is wrapped, so the sim
    arm allocates exactly what [Engine.schedule] always did. *)

val cancel : t -> event_id -> unit
val pending : t -> int
val next_time : t -> float option

val run : ?max_events:int -> ?until:float -> t -> unit
(** Drain / advance the backend ({!Engine.run} / {!Live_clock.run}).
    Runaway overruns raise the backend's own exception
    ({!Engine.Runaway} or {!Live_clock.Runaway}). *)

val run_for : t -> float -> unit

val events_fired : t -> int
val queue_high_water : t -> int

(** {1 Tracing} — forwarded to the backend; no tracer, no cost. *)

val set_tracer : t -> Dangers_sim.Trace.t option -> unit
val tracer : t -> Dangers_sim.Trace.t option
val tracing : t -> bool
val trace : t -> Dangers_sim.Trace.event -> unit
