(** The execution runtime a scheme runs on: a clock plus a transport.

    Schemes never name the simulator directly; they take a {!t} (or just
    its {!Clock.t}) and schedule time and messages through it. Two
    runtimes exist today:

    - the {e sim} runtime — {!Dangers_sim.Engine} time plus the
      simulated {!Dangers_net.Network} transport, byte-identical to the
      pre-abstraction simulator; and
    - the {e live} runtime — {!Live_clock} time (virtual for
      deterministic tests, wall for real serving) plus the same
      transport semantics driven by real elapsed time, with
      {!Codec}-framed messages on the socket boundary.

    {!CLOCK} and {!TRANSPORT} are the module interfaces a third runtime
    must satisfy (docs/LIVE.md walks through adding one); the concrete
    implementations in-tree are checked against them. *)

(** {1 The clock interface} *)

module type CLOCK = sig
  type t
  type event_id

  val now : t -> float
  val schedule : t -> delay:float -> (unit -> unit) -> event_id
  val schedule_at : t -> time:float -> (unit -> unit) -> event_id
  val cancel : t -> event_id -> unit
  val pending : t -> int
  val run : ?max_events:int -> ?until:float -> t -> unit
  val run_for : t -> float -> unit
end

module Sim_clock : CLOCK with type t = Dangers_sim.Engine.t
(** The engine, as a clock. *)

module Live : CLOCK with type t = Live_clock.t
(** The live timer wheel, as a clock. *)

(** {1 The transport interface} *)

type fault_action =
  | Pass
  | Drop
  | Duplicate
  | Delay_extra of float

type faults = {
  blocked : src:int -> dst:int -> bool;
  on_transmit : src:int -> dst:int -> fault_action;
}

val no_faults : faults

module type TRANSPORT = sig
  type 'msg t

  val create :
    ?obs:Dangers_obs.Metrics.t ->
    ?faults:faults ->
    clock:Clock.t ->
    rng:Dangers_util.Rng.t ->
    delay:Delay.t ->
    nodes:int ->
    deliver:(src:int -> dst:int -> 'msg -> unit) ->
    unit ->
    'msg t

  val nodes : 'msg t -> int
  val is_connected : 'msg t -> node:int -> bool
  val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
  val broadcast : 'msg t -> src:int -> 'msg -> unit
  val set_connected : 'msg t -> node:int -> bool -> unit
  val flush_node : 'msg t -> node:int -> unit

  val on_connectivity_change :
    'msg t -> (node:int -> connected:bool -> unit) -> unit

  val messages_sent : 'msg t -> int
  val messages_delivered : 'msg t -> int
  val messages_parked : 'msg t -> int
  val messages_dropped : 'msg t -> int
  val messages_duplicated : 'msg t -> int
end

(** {1 Runtime handles} *)

type t = { name : string; clock : Clock.t }
(** What a scheme constructor takes: the clock everything schedules on,
    tagged with the runtime's name for summaries and traces. The
    transport is not carried here because it is message-type-polymorphic;
    schemes build theirs from the clock
    (see {!Dangers_net.Network.create}). *)

val sim : ?engine:Dangers_sim.Engine.t -> unit -> t
(** A fresh simulator runtime (or one wrapping an existing engine). *)

val live_virtual : unit -> t
(** Deterministic live runtime: engine-identical event order, no real
    sleeping — the backend the sim/live equivalence suite compares
    against. *)

val live_wall : unit -> t
(** Wall-clock live runtime: delays elapse in real time. *)

val of_clock : name:string -> Clock.t -> t

val is_live : t -> bool
