exception Malformed of string

type reader = { data : string; mutable pos : int }
type 'a t = { encode : Buffer.t -> 'a -> unit; decode : reader -> 'a }

let max_frame = 16 * 1024 * 1024

let put_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let put_u16 buf v = Buffer.add_uint16_be buf (v land 0xffff)

let put_u32 buf v =
  if v < 0 then invalid_arg "Codec.put_u32: negative";
  Buffer.add_int32_be buf (Int32.of_int v)

let put_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let put_string buf s =
  if String.length s > 0xffff then invalid_arg "Codec.put_string: too long";
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let frame buf =
  let len = Buffer.length buf in
  if len > max_frame then invalid_arg "Codec.frame: payload exceeds max_frame";
  let framed = Buffer.create (len + 4) in
  Buffer.add_int32_be framed (Int32.of_int len);
  Buffer.add_buffer framed buf;
  Buffer.clear buf;
  Buffer.contents framed

let reader data = { data; pos = 0 }

let need r n what =
  if r.pos + n > String.length r.data then
    raise (Malformed (Printf.sprintf "truncated %s at byte %d" what r.pos))

let get_u8 r =
  need r 1 "u8";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  need r 2 "u16";
  let v = String.get_uint16_be r.data r.pos in
  r.pos <- r.pos + 2;
  v

let get_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_be r.data r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then raise (Malformed "u32 out of range");
  v

let get_f64 r =
  need r 8 "f64";
  let v = Int64.float_of_bits (String.get_int64_be r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let len = get_u16 r in
  need r len "string body";
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let expect_end r =
  if r.pos <> String.length r.data then
    raise
      (Malformed
         (Printf.sprintf "%d trailing bytes after a complete message"
            (String.length r.data - r.pos)))
