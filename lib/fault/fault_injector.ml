module Rng = Dangers_util.Rng
module Clock = Dangers_runtime.Clock
module Network = Dangers_net.Network
module Trace = Dangers_sim.Trace

type t = {
  plan : Fault_plan.t;
  rng : Rng.t;
  down : bool array;
  mutable active_blocks : int array option;  (** node -> block, while split *)
  mutable started : bool;
  mutable clock : Clock.t option;
  mutable scheduled : Clock.event_id list;
  mutable set_connected : node:int -> bool -> unit;
  mutable flush_node : node:int -> unit;
  mutable on_crash : node:int -> unit;
  mutable on_restart : node:int -> unit;
  mutable crashes_fired : int;
  mutable partitions_fired : int;
}

let nop_connect ~node:_ _ = ()
let nop_node ~node:_ = ()

let create ~plan ~rng =
  {
    plan;
    rng;
    down = Array.make plan.Fault_plan.nodes false;
    active_blocks = None;
    started = false;
    clock = None;
    scheduled = [];
    set_connected = nop_connect;
    flush_node = nop_node;
    on_crash = nop_node;
    on_restart = nop_node;
    crashes_fired = 0;
    partitions_fired = 0;
  }

let faults t =
  let spec = t.plan.Fault_plan.spec in
  {
    Network.blocked =
      (fun ~src ~dst ->
        match t.active_blocks with
        | None -> false
        | Some blocks -> blocks.(src) <> blocks.(dst));
    on_transmit =
      (fun ~src:_ ~dst:_ ->
        let p_drop = spec.Fault_plan.drop_prob in
        let p_dup = spec.Fault_plan.dup_prob in
        let p_delay = spec.Fault_plan.delay_prob in
        if Float.equal p_drop 0. && Float.equal p_dup 0. && Float.equal p_delay 0. then Network.Pass
        else begin
          let r = Rng.float t.rng 1. in
          if r < p_drop then Network.Drop
          else if r < p_drop +. p_dup then Network.Duplicate
          else if r < p_drop +. p_dup +. p_delay then
            Network.Delay_extra
              (Rng.float t.rng (Float.max 1e-9 spec.Fault_plan.max_extra_delay))
          else Network.Pass
        end);
  }

let trace t event =
  match t.clock with None -> () | Some clock -> Clock.trace clock event

let crash t ~node =
  if not t.down.(node) then begin
    t.down.(node) <- true;
    t.crashes_fired <- t.crashes_fired + 1;
    trace t (Trace.Node_crashed { node });
    t.set_connected ~node false;
    t.on_crash ~node
  end

let restart t ~node =
  if t.down.(node) then begin
    t.down.(node) <- false;
    trace t (Trace.Node_restarted { node });
    t.on_restart ~node;
    t.set_connected ~node true
  end

let flush_all t =
  for node = 0 to t.plan.Fault_plan.nodes - 1 do
    t.flush_node ~node
  done

let start_partition t (p : Fault_plan.partition) =
  t.active_blocks <- Some p.Fault_plan.block_of;
  t.partitions_fired <- t.partitions_fired + 1;
  let distinct = Array.to_list p.Fault_plan.block_of |> List.sort_uniq compare in
  trace t (Trace.Partition_started { blocks = List.length distinct })

let heal_partition t =
  if t.active_blocks <> None then begin
    t.active_blocks <- None;
    trace t Trace.Partition_healed;
    flush_all t
  end

let start t ~clock ?(set_connected = nop_connect) ?(flush_node = nop_node)
    ?(on_crash = nop_node) ?(on_restart = nop_node) () =
  if t.started then invalid_arg "Fault_injector.start: already started";
  t.started <- true;
  t.clock <- Some clock;
  t.set_connected <- set_connected;
  t.flush_node <- flush_node;
  t.on_crash <- on_crash;
  t.on_restart <- on_restart;
  let at time f =
    t.scheduled <- Clock.schedule_at clock ~time f :: t.scheduled
  in
  List.iter
    (fun (c : Fault_plan.crash) ->
      at c.Fault_plan.at (fun () -> crash t ~node:c.Fault_plan.node);
      at c.Fault_plan.up_at (fun () -> restart t ~node:c.Fault_plan.node))
    t.plan.Fault_plan.crash_list;
  List.iter
    (fun (p : Fault_plan.partition) ->
      at p.Fault_plan.starts (fun () -> start_partition t p);
      at p.Fault_plan.heals (fun () -> heal_partition t))
    t.plan.Fault_plan.partition_list

let stop t =
  (match t.clock with
  | None -> ()
  | Some clock -> List.iter (Clock.cancel clock) t.scheduled);
  t.scheduled <- [];
  heal_partition t;
  Array.iteri (fun node down -> if down then restart t ~node) t.down

let is_down t ~node = t.down.(node)
let crashes_fired t = t.crashes_fired
let partitions_fired t = t.partitions_fired
