module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Common = Dangers_replication.Common
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group = Dangers_replication.Lazy_group
module Reconcile = Dangers_replication.Reconcile
module Two_tier = Dangers_core.Two_tier
module Params = Dangers_analytic.Params

type violation = { invariant : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "@[<hov 2>[%s]@ %s@]" v.invariant v.detail

let close ~tol a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs b)

(* Serial replay of a committed history on one fresh logical database. *)
let replay ~db_size ~initial_value history =
  let db = Array.make db_size initial_value in
  List.iter
    (fun (_node, ops) ->
      List.iter
        (fun op ->
          if Op.is_update op then begin
            let i = Oid.to_int (Op.oid op) in
            let read oid = db.(Oid.to_int oid) in
            db.(i) <- Op.apply ~read ~current:db.(i) op
          end)
        ops)
    history;
  db

let eager_one_copy_serializable sys ~history =
  let base = Eager_impl.base sys in
  let params = base.Common.params in
  let expected =
    replay ~db_size:params.Params.db_size
      ~initial_value:base.Common.initial_value history
  in
  let violations = ref [] in
  let push invariant detail = violations := { invariant; detail } :: !violations in
  Array.iteri
    (fun node store ->
      (* Exact: the serial replay applies the same ops in the same commit
         order the scheme did, so even float sums agree bit-for-bit. *)
      Array.iteri
        (fun i want ->
          let got = Fstore.read store (Oid.of_int i) in
          if not (close ~tol:1e-9 got want) then
            push "eager-1SR"
              (Format.sprintf
                 "node %d object %d = %.9g but serial replay of %d txns \
                  gives %.9g"
                 node i got (List.length history) want))
        expected;
      if node > 0 && not (Fstore.content_equal base.Common.stores.(0) store)
      then
        push "eager-replicas-equal"
          (Format.sprintf "node %d replica differs from node 0" node))
    base.Common.stores;
  List.rev !violations

let lazy_group_converged sys ~exact_sums =
  let base = Lazy_group.base sys in
  let params = base.Common.params in
  let violations = ref [] in
  let push invariant detail = violations := { invariant; detail } :: !violations in
  let d = Lazy_group.divergence sys in
  if d <> 0 then
    push "lazy-group-convergence"
      (Format.sprintf
         "%d (replica, object) pairs still differ from node 0 after drain" d);
  if exact_sums then
    Array.iteri
      (fun node store ->
        for i = 0 to params.Params.db_size - 1 do
          let oid = Oid.of_int i in
          let want = Lazy_group.expected_sum sys oid in
          let got = Fstore.read store oid in
          if not (close ~tol:1e-6 got want) then
            push "lazy-group-lossless-sum"
              (Format.sprintf
                 "node %d object %d = %.9g but committed increments sum to \
                  %.9g (an update's effect was lost or double-counted)"
                 node i got want)
        done)
      base.Common.stores;
  List.rev !violations

let two_tier_base_consistent ?(check_convergence = true) sys =
  let violations = ref [] in
  if not (Two_tier.base_history_serializable sys) then
    violations :=
      {
        invariant = "two-tier-base-1SR";
        detail =
          "replaying the committed base history does not reproduce the \
           master state: the base tier is delusional";
      }
      :: !violations;
  if check_convergence && not (Two_tier.converged sys) then
    violations :=
      {
        invariant = "two-tier-converged";
        detail =
          "after quiesce_and_sync some replica (base, mobile master or \
           tentative version) differs from the master database";
      }
      :: !violations;
  List.rev !violations

let two_tier_commutative_no_reconciliation sys =
  let rejected = Two_tier.tentative_rejected sys in
  if rejected = 0 then []
  else begin
    let sample =
      match Two_tier.rejection_log sys with
      | (_, reason) :: _ -> ": " ^ reason
      | [] -> ""
    in
    [
      {
        invariant = "two-tier-commutative-zero-reconciliation";
        detail =
          Format.sprintf
            "%d tentative transaction(s) rejected despite a fully \
             commutative workload%s"
            rejected sample;
      };
    ]
  end

let recovery_journals recoveries =
  List.concat_map
    (fun r ->
      List.map
        (fun detail -> { invariant = "recovery-journal-complete"; detail })
        (Recovery.violations r))
    recoveries
