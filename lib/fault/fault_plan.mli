(** Seeded fault schedules.

    A plan is everything a fuzzing run needs to perturb a scheme: when each
    node crashes and comes back, when the network partitions and heals, and
    the per-message fault probabilities. Plans are generated from an
    explicit RNG so a failing run's plan can be regenerated exactly from
    the printed seed; {!Fault_injector} turns a plan into engine events and
    {!Dangers_net.Network} hooks. *)

module Rng = Dangers_util.Rng

type spec = {
  crashes_per_node : float;  (** expected crash count per crashable node *)
  mean_downtime : float;  (** mean seconds a crashed node stays down *)
  partitions : float;  (** expected partition episodes over the horizon *)
  mean_partition : float;  (** mean seconds a partition lasts *)
  drop_prob : float;  (** P(message lost) at each transmission *)
  dup_prob : float;  (** P(message duplicated) *)
  delay_prob : float;  (** P(extra latency added) — reordering *)
  max_extra_delay : float;  (** extra latency is uniform in [0, this] *)
}

val clean : spec
(** No faults at all: the control group. *)

val lossless : spec
(** Crashes, partitions and message reordering, but no drops and no
    duplicates — every message is eventually delivered exactly once, the
    regime under which the lazy schemes must still converge. *)

val chaotic : spec
(** Everything, including drops and duplicates. *)

type crash = {
  node : int;
  at : float;  (** crash instant *)
  up_at : float;  (** restart instant; intervals for one node never overlap *)
}

type partition = {
  starts : float;
  heals : float;
  block_of : int array;  (** node -> block id; different blocks can't talk *)
}

type t = {
  spec : spec;
  horizon : float;
  nodes : int;
  crash_list : crash list;  (** sorted by [at] *)
  partition_list : partition list;  (** sorted, non-overlapping *)
}

val generate :
  rng:Rng.t -> nodes:int -> ?crashable:int list -> horizon:float -> spec -> t
(** Sample a plan. Crash counts are Poisson per crashable node (default:
    every node), crash instants uniform over the horizon, downtimes
    exponential; overlapping crash windows for one node are merged by
    skipping the later crash. Partition episodes are likewise Poisson,
    truncated so they never overlap each other, each splitting the nodes
    into two random blocks. @raise Invalid_argument if [nodes <= 0] or
    [horizon <= 0.]. *)

val lossless_messages : t -> bool
(** No drops and no duplicates: every send is delivered exactly once (after
    reconnects/heals), so exact-sum convergence invariants apply. *)

val crash_free : t -> bool

val pp : Format.formatter -> t -> unit
(** Compact, deterministic rendering — printed alongside the seed when a
    fuzz case fails. *)
