(** Per-node durable write journal and crash recovery.

    Every store mutation is captured via
    {!Dangers_storage.Store.Fstore.on_write} into an append-only
    {!Dangers_storage.Update_log} — a redo log, the §4 deferred-update
    machinery doing double duty. The fault injector uses it to prove the
    store is recoverable at both ends of a crash:

    - {!crash} checks {e journal completeness}: folding the journal over a
      fresh database must reproduce the live store exactly, i.e. no
      mutation path escaped the log.
    - {!restart} performs {e recovery}: wipe the store back to its initial
      contents (the volatile loss) and replay the whole journal; the result
      must equal the state the store held right before the wipe.

    In-flight work that commits during the downtime (an executor
    transaction that started before the crash, eager writes from live
    nodes) keeps being journaled, so the restart round-trip covers it too —
    the store plays a durable disk image, and the journal proves it could
    be rebuilt from scratch at any moment.

    Violations are recorded, not raised, so the fuzzer can report them
    alongside the failing seed and plan. *)

module Fstore = Dangers_storage.Store.Fstore

type t

val attach : node:int -> initial_value:float -> Fstore.t -> t
(** Start journaling the store's writes. Call before any traffic: the
    journal must cover the store's whole mutation history. *)

val crash : t -> unit
(** Verify journal completeness against the live store. *)

val restart : t -> unit
(** Wipe to initial contents, replay the journal, and verify the store
    round-tripped to its pre-wipe state. *)

val crashes : t -> int
val journal_length : t -> int

val violations : t -> string list
(** Completeness / recovery failures, oldest first; empty when the journal
    faithfully captures and reproduces every mutation. *)
