(** Turns a {!Fault_plan} into clock events and network hooks.

    One injector perturbs one system: pass {!faults} to the scheme's
    [create ~faults], then {!start} with the scheme's control levers. The
    injector schedules every crash, restart, partition and heal from the
    plan on the runtime clock, traces them, and answers liveness queries
    the workload driver needs ({!is_down}). Message-level faults (drop,
    duplicate, extra delay) are drawn from the injector's own RNG inside
    the [on_transmit] hook, so the whole perturbation is a deterministic
    function of (plan, rng). *)

module Rng = Dangers_util.Rng
module Clock = Dangers_runtime.Clock
module Network = Dangers_net.Network

type t

val create : plan:Fault_plan.t -> rng:Rng.t -> t

val faults : t -> Network.faults
(** Hooks to pass to [Network.create ~faults]. [blocked] reflects the
    currently active partition (if any); [on_transmit] draws drop /
    duplicate / extra-delay against the plan's probabilities. Usable even
    before {!start}. *)

val start :
  t ->
  clock:Clock.t ->
  ?set_connected:(node:int -> bool -> unit) ->
  ?flush_node:(node:int -> unit) ->
  ?on_crash:(node:int -> unit) ->
  ?on_restart:(node:int -> unit) ->
  unit ->
  unit
(** Schedule the plan. A crash runs [set_connected ~node false] then
    [on_crash] (volatile wipe); a restart runs [on_restart] (journal
    replay) then [set_connected ~node true] (flushing parked messages). A
    partition heal calls [flush_node] on every node so messages parked by
    [blocked] get rerouted. All callbacks default to no-ops — a scheme
    without a network (eager) passes only crash hooks.
    @raise Invalid_argument if already started. *)

val stop : t -> unit
(** Cancel all not-yet-fired fault events and restore normality: heal any
    active partition (with flushes) and restart every crashed node. Call
    before quiescing so convergence checks see a fault-free network. *)

val is_down : t -> node:int -> bool
(** Currently crashed (between a crash and its restart). *)

val crashes_fired : t -> int
val partitions_fired : t -> int
