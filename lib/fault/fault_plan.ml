module Rng = Dangers_util.Rng

type spec = {
  crashes_per_node : float;
  mean_downtime : float;
  partitions : float;
  mean_partition : float;
  drop_prob : float;
  dup_prob : float;
  delay_prob : float;
  max_extra_delay : float;
}

let clean =
  {
    crashes_per_node = 0.;
    mean_downtime = 0.;
    partitions = 0.;
    mean_partition = 0.;
    drop_prob = 0.;
    dup_prob = 0.;
    delay_prob = 0.;
    max_extra_delay = 0.;
  }

let lossless =
  {
    crashes_per_node = 1.;
    mean_downtime = 3.;
    partitions = 1.;
    mean_partition = 3.;
    drop_prob = 0.;
    dup_prob = 0.;
    delay_prob = 0.3;
    max_extra_delay = 2.;
  }

let chaotic =
  {
    crashes_per_node = 1.5;
    mean_downtime = 4.;
    partitions = 1.5;
    mean_partition = 4.;
    drop_prob = 0.1;
    dup_prob = 0.1;
    delay_prob = 0.3;
    max_extra_delay = 2.;
  }

type crash = { node : int; at : float; up_at : float }
type partition = { starts : float; heals : float; block_of : int array }

type t = {
  spec : spec;
  horizon : float;
  nodes : int;
  crash_list : crash list;
  partition_list : partition list;
}

let crashes_for_node rng spec ~horizon node =
  if spec.crashes_per_node <= 0. then []
  else begin
    let count = Rng.poisson rng ~mean:spec.crashes_per_node in
    let ats = List.init count (fun _ -> Rng.float rng horizon) in
    let ats = List.sort Float.compare ats in
    (* Skip crashes landing inside the previous downtime window, so one
       node's crash intervals never overlap. *)
    let rec build last_up = function
      | [] -> []
      | at :: rest ->
          if at < last_up then build last_up rest
          else begin
            let down =
              if spec.mean_downtime <= 0. then 0.
              else Rng.exponential rng ~mean:spec.mean_downtime
            in
            let up_at = at +. down in
            { node; at; up_at } :: build up_at rest
          end
    in
    build 0. ats
  end

let partitions_of rng spec ~horizon ~nodes =
  if spec.partitions <= 0. then []
  else begin
    let count = Rng.poisson rng ~mean:spec.partitions in
    let starts = List.sort Float.compare (List.init count (fun _ -> Rng.float rng horizon)) in
    let rec build last_heal = function
      | [] -> []
      | at :: rest ->
          if at < last_heal then build last_heal rest
          else begin
            let span =
              if spec.mean_partition <= 0. then 0.
              else Rng.exponential rng ~mean:spec.mean_partition
            in
            let heals = at +. span in
            let block_of = Array.init nodes (fun _ -> if Rng.bool rng then 1 else 0) in
            { starts = at; heals; block_of } :: build heals rest
          end
    in
    build 0. starts
  end

let generate ~rng ~nodes ?crashable ~horizon spec =
  if nodes <= 0 then invalid_arg "Fault_plan.generate: nodes <= 0";
  if horizon <= 0. then invalid_arg "Fault_plan.generate: horizon <= 0";
  let crashable = match crashable with Some l -> l | None -> List.init nodes Fun.id in
  let crash_list =
    crashable
    |> List.concat_map (crashes_for_node rng spec ~horizon)
    |> List.sort (fun a b -> Float.compare a.at b.at)
  in
  let partition_list = partitions_of rng spec ~horizon ~nodes in
  { spec; horizon; nodes; crash_list; partition_list }

let lossless_messages t = Float.equal t.spec.drop_prob 0. && Float.equal t.spec.dup_prob 0.
let crash_free t = t.crash_list = []

let pp ppf t =
  Format.fprintf ppf "@[<v>plan over %.1fs, %d nodes:" t.horizon t.nodes;
  Format.fprintf ppf "@ msg faults: drop=%.2f dup=%.2f delay=%.2f(max %.1fs)"
    t.spec.drop_prob t.spec.dup_prob t.spec.delay_prob t.spec.max_extra_delay;
  List.iter
    (fun c ->
      Format.fprintf ppf "@ crash n%d at %.3fs, up at %.3fs" c.node c.at
        c.up_at)
    t.crash_list;
  List.iter
    (fun p ->
      let members b =
        Array.to_seq p.block_of |> Seq.mapi (fun i x -> (i, x))
        |> Seq.filter_map (fun (i, x) -> if x = b then Some (string_of_int i) else None)
        |> List.of_seq |> String.concat ","
      in
      Format.fprintf ppf "@ partition {%s}|{%s} %.3fs..%.3fs" (members 0)
        (members 1) p.starts p.heals)
    t.partition_list;
  Format.fprintf ppf "@]"
