module Fstore = Dangers_storage.Store.Fstore
module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp
module Update_log = Dangers_storage.Update_log

type entry = { oid : Oid.t; value : float; stamp : Timestamp.t }

type t = {
  node : int;
  initial_value : float;
  store : Fstore.t;
  journal : entry Update_log.t;
  anchor : Update_log.cursor;  (** never read: pins full retention *)
  mutable journaling : bool;  (** off while recovery itself writes *)
  mutable crash_count : int;
  mutable violations_rev : string list;
}

let attach ~node ~initial_value store =
  let journal = Update_log.create () in
  let t =
    {
      node;
      initial_value;
      store;
      journal;
      anchor = Update_log.register journal;
      journaling = true;
      crash_count = 0;
      violations_rev = [];
    }
  in
  Fstore.on_write store (fun oid value stamp ->
      if t.journaling then Update_log.append journal { oid; value; stamp });
  t

(* The full journal, oldest first, without consuming the anchor. *)
let entries t =
  let cursor = Update_log.register_at_start t.journal in
  let all = Update_log.read_new t.journal cursor in
  Update_log.unregister t.journal cursor;
  all

let replay_onto t store =
  List.iter (fun e -> Fstore.write store e.oid e.value e.stamp) (entries t)

let record t fmt = Format.kasprintf (fun msg ->
    t.violations_rev <- msg :: t.violations_rev) fmt

let crash t =
  t.crash_count <- t.crash_count + 1;
  let shadow =
    Fstore.create ~db_size:(Fstore.db_size t.store)
      ~init:(fun _ -> t.initial_value)
  in
  replay_onto t shadow;
  (match Fstore.divergent_oids shadow t.store with
  | [] -> ()
  | first :: _ as oids ->
      record t
        "node %d: journal incomplete at crash %d — %d object(s) not \
         reproduced (first: %d)"
        t.node t.crash_count (List.length oids)
        (Oid.to_int first))

let restart t =
  let snapshot = Fstore.copy t.store in
  t.journaling <- false;
  Fstore.iter snapshot (fun oid _ _ ->
      Fstore.write t.store oid t.initial_value Timestamp.zero);
  replay_onto t t.store;
  t.journaling <- true;
  match Fstore.divergent_oids snapshot t.store with
  | [] -> ()
  | first :: _ as oids ->
      record t
        "node %d: recovery replay after crash %d missed %d object(s) \
         (first: %d)"
        t.node t.crash_count (List.length oids)
        (Oid.to_int first)

let crashes t = t.crash_count
let journal_length t = Update_log.length t.journal
let violations t = List.rev t.violations_rev

(* The anchor is write-only state: it exists to pin journal retention. *)
let _ = fun t -> t.anchor
