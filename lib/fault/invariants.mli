(** The paper's correctness claims, made machine-checkable.

    Each check runs after the system has quiesced (load stopped, faults
    stopped, nodes reconnected, engine drained) and returns the list of
    violations — empty means the invariant holds. The fuzzer asserts
    emptiness over random workloads x fault plans; a deliberately broken
    scheme (e.g. {!Dangers_core.Two_tier.create}[ ~unsafe_skip_acceptance])
    must produce a non-empty list, which is how the checker checks itself. *)

module Op = Dangers_txn.Op
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group = Dangers_replication.Lazy_group
module Two_tier = Dangers_core.Two_tier

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val eager_one_copy_serializable :
  Eager_impl.t -> history:(int * Op.t list) list -> violation list
(** §3: eager replication "provides single-copy serializability". Replaying
    [history] (the committed transactions in commit order, captured via
    [Eager_impl.create ~on_commit]) serially on one fresh database must
    reproduce every node's replica exactly; the replicas must also agree
    with each other. *)

val lazy_group_converged : Lazy_group.t -> exact_sums:bool -> violation list
(** §4/§6: after faults cease and parked updates drain, all replicas
    converge ([divergence = 0]). With [exact_sums] (commutative increment
    workload under the [Additive] rule and a lossless fault plan) every
    replica must additionally equal initial + the sum of committed deltas —
    no update's effect lost — within floating-point tolerance, since
    reordering changes the summation order. *)

val two_tier_base_consistent :
  ?check_convergence:bool -> Two_tier.t -> violation list
(** §7: the base tier is never delusional. Call after
    [Two_tier.quiesce_and_sync]: the committed base history must replay to
    the master state ([base_history_serializable]) — master writes are
    synchronous, so this holds under {e any} message faults — and every
    replica (base stores, mobile master and tentative versions) must equal
    it ([converged]). Slave updates are fire-and-forget, so pass
    [~check_convergence:false] when the plan drops messages: a dropped
    slave update is legitimately never recovered. *)

val two_tier_commutative_no_reconciliation : Two_tier.t -> violation list
(** §7's punchline: with commutative (positive-increment) transactions and
    an acceptance criterion they always satisfy, no tentative transaction
    is ever rejected — the reconciliation count is zero even under
    disconnects, crashes and message faults. *)

val recovery_journals : Recovery.t list -> violation list
(** Every crash's journal-completeness check passed: replaying a node's
    durable write journal reproduces its pre-crash store. *)
