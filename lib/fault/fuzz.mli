(** Random workloads x fault plans per scheme, with invariant checking.

    A {!case} is a compact, fully deterministic description of one fuzzing
    run: scheme, seed, node count, transaction count and fault level.
    Everything else — the fault plan, the workload (positive dyadic-rational
    increments, so floating-point sums are exact in any order), the
    message-fault draws — is derived from the seed, so a failing case
    replays exactly from the printed command line.

    {!run} builds the scheme, injects the plan while driving the workload,
    quiesces, and checks the paper's invariants ({!Invariants}); which
    checks apply depends on the scheme and on whether the plan can lose or
    duplicate messages. {!tests} wraps this in QCheck properties (with
    shrinking over the case tuple) for the [@fuzz] alias; [run ~sabotage]
    flips a deliberate bug per scheme so the checker can be checked. *)

type scheme = Eager_group | Eager_master | Lazy_group | Two_tier
type level = Clean | Lossless | Chaotic

type case = {
  scheme : scheme;
  seed : int;
  nodes : int;  (** in [2, 6] *)
  txns : int;  (** in [5, 120] *)
  level : level;
}

val all_schemes : scheme list
val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option
val level_name : level -> string
val level_of_name : string -> level option

val horizon : float
(** Simulated seconds each case runs before quiescing. *)

val replay_command : case -> string
(** The [dangers fuzz --replay ...] line that reruns this exact case. *)

type outcome = {
  plan : Fault_plan.t;
  violations : Invariants.violation list;
  crashes_fired : int;
  partitions_fired : int;
  txns_submitted : int;  (** txns minus those skipped at crashed nodes *)
}

val run : ?sabotage:bool -> case -> outcome
(** Deterministic in [case]. With [sabotage]:
    - [Two_tier] runs with [~unsafe_skip_acceptance:true] — the base
      blindly trusts tentative results, so [two-tier-base-1SR] must fire;
    - [Lazy_group] runs under the lossy [Timestamp_priority] rule while
      still being held to the commutative exact-sum invariant, so
      [lazy-group-lossless-sum] must fire once updates conflict;
    - the eager schemes have no sabotage knob and run normally. *)

val arbitrary : scheme -> case QCheck.arbitrary
(** Generator + shrinker + printer over cases of one scheme. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
(** One property per scheme: [count] (default 200) random cases each must
    produce zero violations. Failures report the violations, the
    regenerated fault plan, and the replay command. *)

val sabotage_tests : unit -> QCheck.Test.t list
(** Self-validation: small fixed-seed sweeps asserting that the deliberate
    bugs above are caught. *)
