module Rng = Dangers_util.Rng
module Clock = Dangers_runtime.Clock
module Params = Dangers_analytic.Params
module Connectivity = Dangers_net.Connectivity
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Common = Dangers_replication.Common
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group = Dangers_replication.Lazy_group
module Reconcile = Dangers_replication.Reconcile
module Two_tier = Dangers_core.Two_tier
module Acceptance = Dangers_core.Acceptance

type scheme = Eager_group | Eager_master | Lazy_group | Two_tier
type level = Clean | Lossless | Chaotic

type case = {
  scheme : scheme;
  seed : int;
  nodes : int;
  txns : int;
  level : level;
}

let all_schemes = [ Eager_group; Eager_master; Lazy_group; Two_tier ]

let scheme_name = function
  | Eager_group -> "eager-group"
  | Eager_master -> "eager-master"
  | Lazy_group -> "lazy-group"
  | Two_tier -> "two-tier"

let scheme_of_name = function
  | "eager-group" -> Some Eager_group
  | "eager-master" -> Some Eager_master
  | "lazy-group" -> Some Lazy_group
  | "two-tier" -> Some Two_tier
  | _ -> None

let level_name = function
  | Clean -> "clean"
  | Lossless -> "lossless"
  | Chaotic -> "chaotic"

let level_of_name = function
  | "clean" -> Some Clean
  | "lossless" -> Some Lossless
  | "chaotic" -> Some Chaotic
  | _ -> None

let spec_of_level = function
  | Clean -> Fault_plan.clean
  | Lossless -> Fault_plan.lossless
  | Chaotic -> Fault_plan.chaotic

let horizon = 30.

let replay_command c =
  Printf.sprintf
    "dangers fuzz --replay --scheme %s --seed %d --nodes %d --txns %d \
     --level %s"
    (scheme_name c.scheme) c.seed c.nodes c.txns (level_name c.level)

type outcome = {
  plan : Fault_plan.t;
  violations : Invariants.violation list;
  crashes_fired : int;
  partitions_fired : int;
  txns_submitted : int;
}

(* Small and contended on purpose: conflicts are what the invariants bite
   on. Action_Time is shrunk so a 30-second horizon is cheap to drain. *)
let params ~nodes =
  {
    Params.default with
    Params.db_size = 16;
    nodes;
    tps = 1.;
    actions = 3;
    action_time = 0.002;
  }

(* One transaction: [actions] increments on distinct objects. Deltas are
   positive multiples of 0.25, i.e. dyadic rationals, so every sum any
   replica can form is exact in floating point — convergence checks can
   demand equality instead of tolerances. *)
let gen_ops rng ~db_size ~actions =
  Rng.sample_without_replacement rng ~n:db_size ~k:actions
  |> Array.to_list
  |> List.map (fun i ->
         Op.Increment (Oid.of_int i, float_of_int (1 + Rng.int rng 32) *. 0.25))

(* Pre-draw the whole workload, then schedule it; submissions landing on a
   crashed node are skipped (the node is down — there is no one to type). *)
let schedule_workload ~clock ~rng ~injector ~case ~db_size ~submit =
  let p = params ~nodes:case.nodes in
  let submitted = ref 0 in
  for _ = 1 to case.txns do
    let time = Rng.float rng (horizon *. 0.8) in
    let node = Rng.int rng case.nodes in
    let ops = gen_ops rng ~db_size ~actions:p.Params.actions in
    ignore
      (Clock.schedule_at clock ~time (fun () ->
           if not (Fault_injector.is_down injector ~node) then begin
             incr submitted;
             submit ~node ops
           end))
  done;
  submitted

let finish ~injector ~plan ~submitted violations =
  {
    plan;
    violations;
    crashes_fired = Fault_injector.crashes_fired injector;
    partitions_fired = Fault_injector.partitions_fired injector;
    txns_submitted = !submitted;
  }

let attach_recoveries (base : Common.base) =
  Array.to_list
    (Array.mapi
       (fun node store ->
         Recovery.attach ~node ~initial_value:base.Common.initial_value store)
       base.Common.stores)

let run_eager ~ownership case =
  let rng = Rng.create ~seed:case.seed in
  let plan_rng = Rng.split rng in
  let msg_rng = Rng.split rng in
  let work_rng = Rng.split rng in
  let p = params ~nodes:case.nodes in
  let plan =
    Fault_plan.generate ~rng:plan_rng ~nodes:case.nodes ~horizon
      (spec_of_level case.level)
  in
  let injector = Fault_injector.create ~plan ~rng:msg_rng in
  let history = ref [] in
  let sys =
    Eager_impl.create
      ~on_commit:(fun ~node ops -> history := (node, ops) :: !history)
      ownership p ~seed:case.seed
  in
  let base = Eager_impl.base sys in
  let clock = base.Common.clock in
  let recoveries = attach_recoveries base in
  let recovery_at = Array.of_list recoveries in
  (* Eager has no network: only crashes apply, exercising the journal. *)
  Fault_injector.start injector ~clock
    ~on_crash:(fun ~node -> Recovery.crash recovery_at.(node))
    ~on_restart:(fun ~node -> Recovery.restart recovery_at.(node))
    ();
  let submitted =
    schedule_workload ~clock ~rng:work_rng ~injector ~case
      ~db_size:p.Params.db_size
      ~submit:(fun ~node ops -> Eager_impl.submit sys ~node ops)
  in
  Clock.run clock ~until:horizon;
  Fault_injector.stop injector;
  Clock.run clock ~max_events:200_000_000;
  finish ~injector ~plan ~submitted
    (Invariants.recovery_journals recoveries
    @ Invariants.eager_one_copy_serializable sys ~history:(List.rev !history))

let run_lazy_group ~sabotage case =
  let rng = Rng.create ~seed:case.seed in
  let plan_rng = Rng.split rng in
  let msg_rng = Rng.split rng in
  let work_rng = Rng.split rng in
  let p = params ~nodes:case.nodes in
  let plan =
    Fault_plan.generate ~rng:plan_rng ~nodes:case.nodes ~horizon
      (spec_of_level case.level)
  in
  let injector = Fault_injector.create ~plan ~rng:msg_rng in
  (* Sabotage: a lossy reconciliation rule held to the lossless-sum bar. *)
  let rule = if sabotage then Reconcile.Timestamp_priority else Reconcile.Additive in
  let sys =
    Lazy_group.create ~rule ~faults:(Fault_injector.faults injector) p
      ~seed:case.seed
  in
  let base = Lazy_group.base sys in
  let clock = base.Common.clock in
  let recoveries = attach_recoveries base in
  let recovery_at = Array.of_list recoveries in
  Fault_injector.start injector ~clock
    ~set_connected:(fun ~node state ->
      Lazy_group.set_node_connected sys ~node state)
    ~flush_node:(fun ~node -> Lazy_group.flush_node sys ~node)
    ~on_crash:(fun ~node -> Recovery.crash recovery_at.(node))
    ~on_restart:(fun ~node -> Recovery.restart recovery_at.(node))
    ();
  let submitted =
    schedule_workload ~clock ~rng:work_rng ~injector ~case
      ~db_size:p.Params.db_size
      ~submit:(fun ~node ops -> Lazy_group.submit sys ~node ops)
  in
  Clock.run clock ~until:horizon;
  Fault_injector.stop injector;
  Lazy_group.force_sync sys;
  (* A dropped or double-applied update legitimately breaks convergence, so
     the convergence invariants only bind under loss-free plans. *)
  let convergence =
    if Fault_plan.lossless_messages plan then
      Invariants.lazy_group_converged sys ~exact_sums:true
    else []
  in
  finish ~injector ~plan ~submitted
    (Invariants.recovery_journals recoveries @ convergence)

let run_two_tier ~sabotage case =
  let rng = Rng.create ~seed:case.seed in
  let plan_rng = Rng.split rng in
  let msg_rng = Rng.split rng in
  let work_rng = Rng.split rng in
  let p = params ~nodes:case.nodes in
  let base_nodes = max 1 (case.nodes / 2) in
  let mobiles = List.init (case.nodes - base_nodes) (fun i -> base_nodes + i) in
  (* Base nodes are §7's always-up servers: only mobiles crash. A mobile's
     state is durable by design (tentative transactions survive a crash),
     so crash = disconnect and no recovery journal is needed. *)
  let plan =
    Fault_plan.generate ~rng:plan_rng ~nodes:case.nodes ~crashable:mobiles
      ~horizon (spec_of_level case.level)
  in
  let injector = Fault_injector.create ~plan ~rng:msg_rng in
  (* A short day-cycle so mobiles disconnect, work tentatively and sync
     several times inside the horizon. *)
  let mobility = Connectivity.day_cycle ~connected:6. ~disconnected:4. in
  let sys =
    Two_tier.create ~acceptance:Acceptance.Non_negative
      ~faults:(Fault_injector.faults injector) ~mobility
      ~unsafe_skip_acceptance:sabotage ~base_nodes p ~seed:case.seed
  in
  let clock = (Two_tier.base sys).Common.clock in
  Fault_injector.start injector ~clock
    ~set_connected:(fun ~node state -> Two_tier.set_node_connected sys ~node state)
    ~flush_node:(fun ~node -> Two_tier.flush_node sys ~node)
    ();
  let submitted =
    schedule_workload ~clock ~rng:work_rng ~injector ~case
      ~db_size:p.Params.db_size
      ~submit:(fun ~node ops -> Two_tier.submit sys ~node ops)
  in
  Clock.run clock ~until:horizon;
  Fault_injector.stop injector;
  Two_tier.quiesce_and_sync sys;
  finish ~injector ~plan ~submitted
    (Invariants.two_tier_commutative_no_reconciliation sys
    @ Invariants.two_tier_base_consistent
        ~check_convergence:(Fault_plan.lossless_messages plan)
        sys)

let run ?(sabotage = false) case =
  match case.scheme with
  | Eager_group -> run_eager ~ownership:Eager_impl.Group case
  | Eager_master -> run_eager ~ownership:Eager_impl.Master case
  | Lazy_group -> run_lazy_group ~sabotage case
  | Two_tier -> run_two_tier ~sabotage case

(* --- QCheck plumbing --- *)

let level_of_int = function 0 -> Clean | 1 -> Lossless | _ -> Chaotic
let int_of_level = function Clean -> 0 | Lossless -> 1 | Chaotic -> 2

let arbitrary scheme =
  let build (seed, nodes, txns, lvl) =
    {
      scheme;
      seed;
      nodes = 2 + (nodes mod 5);
      txns = 5 + (txns mod 116);
      level = level_of_int lvl;
    }
  in
  let rev c = (c.seed, c.nodes - 2, c.txns - 5, int_of_level c.level) in
  QCheck.(
    set_print replay_command
      (map ~rev build
         (quad (int_bound 1_000_000) (int_bound 4) (int_bound 115)
            (int_bound 2))))

let report_failure case outcome =
  QCheck.Test.fail_reportf
    "@[<v>%d invariant violation(s):@ %a@ %a@ replay: %s@]"
    (List.length outcome.violations)
    (Format.pp_print_list Invariants.pp_violation)
    outcome.violations Fault_plan.pp outcome.plan (replay_command case)

let tests ?(count = 200) () =
  List.map
    (fun scheme ->
      QCheck.Test.make ~count
        ~name:(Printf.sprintf "fuzz %s: invariants hold" (scheme_name scheme))
        (arbitrary scheme)
        (fun case ->
          let outcome = run case in
          match outcome.violations with
          | [] -> true
          | _ -> report_failure case outcome))
    all_schemes

(* Fixed-seed sweeps: each sabotaged scheme must be caught on at least one
   seed (deterministically — run is a pure function of the case). *)
let sabotage_tests () =
  let caught scheme invariant =
    List.exists
      (fun seed ->
        let case = { scheme; seed; nodes = 4; txns = 100; level = Lossless } in
        List.exists
          (fun (v : Invariants.violation) -> v.Invariants.invariant = invariant)
          (run ~sabotage:true case).violations)
      [ 1; 2; 3; 4; 5 ]
  in
  [
    QCheck.Test.make ~count:1 ~name:"sabotage: skipped acceptance is caught"
      QCheck.unit
      (fun () ->
        caught Two_tier "two-tier-base-1SR"
        || QCheck.Test.fail_report
             "unsafe_skip_acceptance never produced a base-1SR violation");
    QCheck.Test.make ~count:1 ~name:"sabotage: lossy rule is caught"
      QCheck.unit
      (fun () ->
        caught Lazy_group "lazy-group-lossless-sum"
        || QCheck.Test.fail_report
             "Timestamp_priority never produced a lost-update violation");
  ]
