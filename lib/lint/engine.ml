let default_build_dir () =
  let candidate = Filename.concat "_build" "default" in
  if Sys.file_exists candidate && Sys.is_directory candidate then candidate
  else "."

let split_rules rules =
  List.partition
    (fun (r : Rule.t) ->
      match r.Rule.check with
      | Rule.Unit_check _ -> true
      | Rule.Program_check _ -> false)
    rules

type analysis = {
  findings : Finding.t list;
  suppressed : int;
  cache_hits : int;
  cache_misses : int;
  graph : Callgraph.t option;
}

(* Run both phases over already-loaded sources. Phase 1 (per-unit rules,
   and summarization when any program rule is selected) is skipped
   per-part when the corresponding rule set is empty; suppressions are
   always applied from the typedtrees, so cached summaries never bypass
   a [@lint.allow]. *)
let analyze ?(all_files = false) ?(cache = Cache.empty ()) ~rules sources =
  let unit_rules, program_rules = split_rules rules in
  let tables =
    List.map
      (fun (src : Loader.source) ->
        (src.Loader.path, Suppress.collect src.Loader.structure))
      sources
  in
  let allows ~file ~rule ~line =
    match List.assoc_opt file tables with
    | Some t -> Suppress.allows t ~rule ~line
    | None -> false
  in
  let keep (kept, suppressed) (f : Finding.t) =
    if allows ~file:f.Finding.file ~rule:f.Finding.rule ~line:f.Finding.line
    then (kept, suppressed + 1)
    else (f :: kept, suppressed)
  in
  let acc =
    List.fold_left
      (fun acc (src : Loader.source) ->
        List.fold_left
          (fun acc (rule : Rule.t) ->
            match rule.Rule.check with
            | Rule.Program_check _ -> acc
            | Rule.Unit_check check ->
                if all_files || rule.Rule.in_scope src.Loader.path then
                  List.fold_left keep acc
                    (check ~file:src.Loader.path src.Loader.structure)
                else acc)
          acc unit_rules)
      ([], 0) sources
  in
  let acc, cache_hits, cache_misses, graph =
    if program_rules = [] then (acc, 0, 0, None)
    else begin
      let summaries, hits, misses = Cache.summarize ~cache sources in
      let graph = Callgraph.make summaries in
      let acc =
        List.fold_left
          (fun acc (rule : Rule.t) ->
            match rule.Rule.check with
            | Rule.Unit_check _ -> acc
            | Rule.Program_check check ->
                List.fold_left
                  (fun acc (f : Finding.t) ->
                    if all_files || rule.Rule.in_scope f.Finding.file then
                      keep acc f
                    else acc)
                  acc (check graph))
          acc program_rules
      in
      (acc, hits, misses, Some graph)
    end
  in
  let findings, suppressed = acc in
  {
    findings = List.sort Finding.compare findings;
    suppressed;
    cache_hits;
    cache_misses;
    graph;
  }

let check_sources ?(all_files = false) ~rules sources =
  let a = analyze ~all_files ~rules sources in
  (a.findings, a.suppressed)

let run ?(all_files = false) ?(baseline = Baseline.empty) ?cache_file
    ?(use_cache = true) ?graph_out ~rules ~build_dir ~prefixes () =
  let loaded = Loader.load ~build_dir ~prefixes in
  let cache =
    match (use_cache, cache_file) with
    | true, Some path -> Cache.load path
    | _ -> Cache.empty ()
  in
  let a = analyze ~all_files ~cache ~rules loaded.Loader.sources in
  (match (a.graph, use_cache, cache_file) with
  | Some g, true, Some path ->
      Cache.save path (Callgraph.summaries_of g)
  | _ -> ());
  (match (a.graph, graph_out) with
  | Some g, Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Dangers_obs.Json.to_string (Callgraph.to_json g));
          output_char oc '\n')
  | _ -> ());
  let applied = Baseline.apply baseline a.findings in
  {
    Report.rules = List.map (fun r -> r.Rule.id) rules;
    sources = List.length loaded.Loader.sources;
    findings = applied.Baseline.fresh;
    suppressed = a.suppressed;
    baselined = applied.Baseline.baselined;
    stale = applied.Baseline.stale;
    unreadable = loaded.Loader.unreadable;
    cache_hits = a.cache_hits;
    cache_misses = a.cache_misses;
  }

let grandfather ?(all_files = false) ~rules ~build_dir ~prefixes () =
  let loaded = Loader.load ~build_dir ~prefixes in
  let findings, _ = check_sources ~all_files ~rules loaded.Loader.sources in
  Baseline.of_findings findings
