let default_build_dir () =
  let candidate = Filename.concat "_build" "default" in
  if Sys.file_exists candidate && Sys.is_directory candidate then candidate
  else "."

let check_sources ?(all_files = false) ~rules sources =
  let findings, suppressed =
    List.fold_left
      (fun acc (src : Loader.source) ->
        let suppressions = Suppress.collect src.Loader.structure in
        List.fold_left
          (fun acc (rule : Rule.t) ->
            if all_files || rule.Rule.in_scope src.Loader.path then
              List.fold_left
                (fun (kept, suppressed) (f : Finding.t) ->
                  if
                    Suppress.allows suppressions ~rule:f.Finding.rule
                      ~line:f.Finding.line
                  then (kept, suppressed + 1)
                  else (f :: kept, suppressed))
                acc
                (rule.Rule.check ~file:src.Loader.path src.Loader.structure)
            else acc)
          acc rules)
      ([], 0) sources
  in
  (List.sort Finding.compare findings, suppressed)

let run ?(all_files = false) ?(baseline = Baseline.empty) ~rules ~build_dir
    ~prefixes () =
  let loaded = Loader.load ~build_dir ~prefixes in
  let findings, suppressed =
    check_sources ~all_files ~rules loaded.Loader.sources
  in
  let applied = Baseline.apply baseline findings in
  {
    Report.rules = List.map (fun r -> r.Rule.id) rules;
    sources = List.length loaded.Loader.sources;
    findings = applied.Baseline.fresh;
    suppressed;
    baselined = applied.Baseline.baselined;
    stale = applied.Baseline.stale;
    unreadable = loaded.Loader.unreadable;
  }

let grandfather ?(all_files = false) ~rules ~build_dir ~prefixes () =
  let loaded = Loader.load ~build_dir ~prefixes in
  let findings, _ = check_sources ~all_files ~rules loaded.Loader.sources in
  Baseline.of_findings findings
