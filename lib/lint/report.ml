module Json = Dangers_obs.Json

type t = {
  rules : string list;
  sources : int;
  findings : Finding.t list;
  suppressed : int;
  baselined : int;
  stale : Baseline.entry list;
  unreadable : string list;
  cache_hits : int;  (** summaries served from the on-disk cache *)
  cache_misses : int;  (** summaries recomputed this run *)
}

let schema_id = "dangers/lint/v2"

let errors t =
  List.length
    (List.filter
       (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
       t.findings)

let warnings t = List.length t.findings - errors t

let clean t = t.findings = [] && t.unreadable = []

(* [fail_on] is the lowest severity that fails the run: [Warning] (the
   default) fails on any finding, [Error] lets warnings through — the CI
   gate for rules that advise rather than forbid. Unreadable cmts always
   fail: a file the linter cannot see is not a clean file. *)
let exit_code ?(fail_on = Finding.Warning) t =
  let failing =
    match fail_on with
    | Finding.Warning -> List.length t.findings
    | Finding.Error -> errors t
  in
  if failing = 0 && t.unreadable = [] then 0 else 1

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("rules", Json.Arr (List.map (fun id -> Json.Str id) t.rules));
      ("sources", Json.int_ t.sources);
      ("findings", Json.Arr (List.map Finding.to_json t.findings));
      ("errors", Json.int_ (errors t));
      ("warnings", Json.int_ (warnings t));
      ("suppressed", Json.int_ t.suppressed);
      ("baselined", Json.int_ t.baselined);
      ( "stale_baseline",
        Json.Arr
          (List.map
             (fun (e : Baseline.entry) ->
               Json.Obj
                 [
                   ("rule", Json.Str e.Baseline.rule);
                   ("file", Json.Str e.Baseline.file);
                   ("message", Json.Str e.Baseline.message);
                 ])
             t.stale) );
      ("unreadable", Json.Arr (List.map (fun p -> Json.Str p) t.unreadable));
      ( "cache",
        Json.Obj
          [
            ("hits", Json.int_ t.cache_hits);
            ("misses", Json.int_ t.cache_misses);
          ] );
      ("clean", Json.Bool (clean t));
    ]

let pp ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.findings;
  List.iter
    (fun (e : Baseline.entry) ->
      Format.fprintf ppf
        "stale baseline entry: [%s] %s: %s (fixed? run --update-baseline)@."
        e.Baseline.rule e.Baseline.file e.Baseline.message)
    t.stale;
  List.iter
    (fun path -> Format.fprintf ppf "unreadable cmt: %s@." path)
    t.unreadable;
  Format.fprintf ppf
    "lint: %d finding(s) (%d error(s), %d warning(s)), %d suppressed, %d \
     baselined, %d stale baseline entr%s over %d source(s), summary cache \
     %d hit(s) %d miss(es) [%s]@."
    (List.length t.findings) (errors t) (warnings t) t.suppressed t.baselined
    (List.length t.stale)
    (if List.length t.stale = 1 then "y" else "ies")
    t.sources t.cache_hits t.cache_misses
    (String.concat " " t.rules)
