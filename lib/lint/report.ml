module Json = Dangers_obs.Json

type t = {
  rules : string list;
  sources : int;
  findings : Finding.t list;
  suppressed : int;
  baselined : int;
  stale : Baseline.entry list;
  unreadable : string list;
}

let schema_id = "dangers/lint/v1"

let clean t = t.findings = [] && t.unreadable = []

let exit_code t = if clean t then 0 else 1

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("rules", Json.Arr (List.map (fun id -> Json.Str id) t.rules));
      ("sources", Json.int_ t.sources);
      ("findings", Json.Arr (List.map Finding.to_json t.findings));
      ("suppressed", Json.int_ t.suppressed);
      ("baselined", Json.int_ t.baselined);
      ( "stale_baseline",
        Json.Arr
          (List.map
             (fun (e : Baseline.entry) ->
               Json.Obj
                 [
                   ("rule", Json.Str e.Baseline.rule);
                   ("file", Json.Str e.Baseline.file);
                   ("message", Json.Str e.Baseline.message);
                 ])
             t.stale) );
      ("unreadable", Json.Arr (List.map (fun p -> Json.Str p) t.unreadable));
      ("clean", Json.Bool (clean t));
    ]

let pp ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) t.findings;
  List.iter
    (fun (e : Baseline.entry) ->
      Format.fprintf ppf
        "stale baseline entry: [%s] %s: %s (fixed? run --update-baseline)@."
        e.Baseline.rule e.Baseline.file e.Baseline.message)
    t.stale;
  List.iter
    (fun path -> Format.fprintf ppf "unreadable cmt: %s@." path)
    t.unreadable;
  Format.fprintf ppf
    "lint: %d finding(s), %d suppressed, %d baselined, %d stale baseline \
     entr%s over %d source(s) [%s]@."
    (List.length t.findings) t.suppressed t.baselined (List.length t.stale)
    (if List.length t.stale = 1 then "y" else "ies")
    t.sources
    (String.concat " " t.rules)
