(** Result of one lint run, renderable as text or dangers/lint/v1 JSON. *)

type t = {
  rules : string list;  (** rule ids that ran *)
  sources : int;  (** compilation units analyzed *)
  findings : Finding.t list;  (** fresh findings, sorted *)
  suppressed : int;  (** findings silenced by [@lint.allow] *)
  baselined : int;  (** findings absorbed by the baseline *)
  stale : Baseline.entry list;  (** baseline entries matching nothing *)
  unreadable : string list;  (** cmt files that failed to load *)
}

val schema_id : string
(** ["dangers/lint/v1"] *)

val clean : t -> bool
(** No fresh findings and no unreadable cmts (stale baseline entries only
    warn — they mean the code got better). *)

val exit_code : t -> int
(** 0 when {!clean}, 1 otherwise. *)

val to_json : t -> Dangers_obs.Json.t
val pp : Format.formatter -> t -> unit
