(** Result of one lint run, renderable as text or dangers/lint/v2 JSON. *)

type t = {
  rules : string list;  (** rule ids that ran *)
  sources : int;  (** compilation units analyzed *)
  findings : Finding.t list;  (** fresh findings, sorted *)
  suppressed : int;  (** findings silenced by [@lint.allow] *)
  baselined : int;  (** findings absorbed by the baseline *)
  stale : Baseline.entry list;  (** baseline entries matching nothing *)
  unreadable : string list;  (** cmt files that failed to load *)
  cache_hits : int;  (** summaries served from the on-disk cache *)
  cache_misses : int;  (** summaries recomputed this run *)
}

val schema_id : string
(** ["dangers/lint/v2"] *)

val errors : t -> int
val warnings : t -> int

val clean : t -> bool
(** No fresh findings and no unreadable cmts (stale baseline entries only
    warn — they mean the code got better). *)

val exit_code : ?fail_on:Finding.severity -> t -> int
(** 0 when nothing at or above [fail_on] remains and every cmt was
    readable, 1 otherwise. The default [fail_on:Warning] fails on any
    finding; [fail_on:Error] lets warnings through (the [--fail-on error]
    CI gate). *)

val to_json : t -> Dangers_obs.Json.t
val pp : Format.formatter -> t -> unit
