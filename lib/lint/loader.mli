(** Loads the [.cmt] files a [dune build] already produced and exposes
    each implementation's typedtree.

    Sources are identified by the path recorded at compile time
    ([cmt_sourcefile]), which dune makes relative to the build-context
    root — ["lib/sim/engine.ml"] — so rule scoping works the same whether
    the scan runs from the repo root over [_build/default] or inside the
    build tree itself. *)

type source = {
  path : string;  (** source path as recorded in the cmt *)
  cmt_path : string;  (** the [.cmt] file the structure was read from *)
  digest : string;
      (** hex digest of the cmt file, the summary-cache key; [""] if the
          file vanished between scan and hash *)
  structure : Typedtree.structure;
}

type result = {
  sources : source list;  (** deduped, sorted by [path] *)
  unreadable : string list;  (** cmt files that failed to load, sorted *)
}

val load : build_dir:string -> prefixes:string list -> result
(** Scan [build_dir] recursively for [*.cmt] implementation files whose
    recorded source path starts with one of [prefixes] (all files when
    [prefixes] is empty). Interfaces, packed units, partial
    implementations, and dune's generated [*.ml-gen] alias modules are
    skipped silently; a cmt that exists but cannot be read is reported in
    [unreadable]. *)
