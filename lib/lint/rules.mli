(** The shipped rule set. Rationale for each lives in [docs/LINT.md].

    - [D1] — banned nondeterministic calls ([Random.self_init], the
      global [Random] state, [Unix.gettimeofday], [Sys.time],
      [Hashtbl.hash]) in simulator/replication/core code.
    - [D2] — unordered [Hashtbl.iter]/[Hashtbl.fold] in export, snapshot
      and JSON modules, unless the fold feeds a sort in the same
      expression.
    - [D3] — polymorphic [=]/[<>]/[compare]/[min]/[max] instantiated at
      float (or a float-bearing tuple/option/list/array) in library code.
    - [R1] — module-level mutable state ([ref], [Hashtbl.create],
      [lazy], ...) in code reachable from [Runner.Task_pool] workers that
      is not [Atomic], [Mutex]-guarded, or [Domain.DLS]-scoped.
    - [P1] — silently partial stdlib functions ([List.hd], [List.tl],
      [List.nth], [Option.get]) in library code.

    Whole-program rules (two-phase, call-graph-aware):

    - [DR1] — mutable state captured by, or reachable from, a closure
      that crosses a domain boundary ([Domain.spawn], [Thread.create],
      [Domain_pool.parallel_for], [Task_pool.map], [Live_clock.post])
      without Atomic/Mutex/DLS synchronization.
    - [DR2] — [Atomic.set a (f (Atomic.get a))]: a lost-update window
      between two atomic operations.
    - [DR3] — mutex discipline: lock/unlock imbalance across paths,
      raising while holding outside [Fun.protect], blocking calls under
      a lock (warning severity).
    - [DR4] — module-level mutable state reached both from a
      domain-crossing closure and from ordinary top-level code. *)

val all : Rule.t list
(** Every shipped rule, in id order. *)

val find : string -> Rule.t option
(** Case-insensitive lookup by id. *)

val ids : unit -> string list
