(** The shipped rule set. Rationale for each lives in [docs/LINT.md].

    - [D1] — banned nondeterministic calls ([Random.self_init], the
      global [Random] state, [Unix.gettimeofday], [Sys.time],
      [Hashtbl.hash]) in simulator/replication/core code.
    - [D2] — unordered [Hashtbl.iter]/[Hashtbl.fold] in export, snapshot
      and JSON modules, unless the fold feeds a sort in the same
      expression.
    - [D3] — polymorphic [=]/[<>]/[compare]/[min]/[max] instantiated at
      float (or a float-bearing tuple/option/list/array) in library code.
    - [R1] — module-level mutable state ([ref], [Hashtbl.create],
      [lazy], ...) in code reachable from [Runner.Task_pool] workers that
      is not [Atomic], [Mutex]-guarded, or [Domain.DLS]-scoped.
    - [P1] — silently partial stdlib functions ([List.hd], [List.tl],
      [List.nth], [Option.get]) in library code. *)

val all : Rule.t list
(** Every shipped rule, in id order. *)

val find : string -> Rule.t option
(** Case-insensitive lookup by id. *)

val ids : unit -> string list
