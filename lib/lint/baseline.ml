module Json = Dangers_obs.Json

type entry = {
  rule : string;
  file : string;
  message : string;
  count : int;
  justification : string option;
}

type t = { entries : entry list }

let schema_id = "dangers/lint-baseline/v1"

let empty = { entries = [] }

let entry_key e = e.rule ^ "|" ^ e.file ^ "|" ^ e.message

let compare_entries a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c else String.compare a.message b.message

let of_findings findings =
  let counts : (string, entry) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      let key = Finding.key f in
      match Hashtbl.find_opt counts key with
      | Some e -> Hashtbl.replace counts key { e with count = e.count + 1 }
      | None ->
          Hashtbl.add counts key
            {
              rule = f.Finding.rule;
              file = f.Finding.file;
              message = f.Finding.message;
              count = 1;
              justification = None;
            })
    findings;
  {
    entries =
      List.sort compare_entries
        (Hashtbl.fold (fun _ e acc -> e :: acc) counts []);
  }

type applied = {
  fresh : Finding.t list;
  baselined : int;
  stale : entry list;
}

let apply t findings =
  let allowance : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e -> Hashtbl.replace allowance (entry_key e) e.count)
    t.entries;
  let used : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let fresh, baselined =
    List.fold_left
      (fun (fresh, baselined) (f : Finding.t) ->
        let key = Finding.key f in
        let allowed =
          match Hashtbl.find_opt allowance key with Some n -> n | None -> 0
        in
        let taken =
          match Hashtbl.find_opt used key with Some n -> n | None -> 0
        in
        if taken < allowed then begin
          Hashtbl.replace used key (taken + 1);
          (fresh, baselined + 1)
        end
        else (f :: fresh, baselined))
      ([], 0) findings
  in
  let stale =
    List.filter (fun e -> not (Hashtbl.mem used (entry_key e))) t.entries
  in
  { fresh = List.rev fresh; baselined; stale }

let entry_to_json e =
  Json.Obj
    (("rule", Json.Str e.rule)
     :: ("file", Json.Str e.file)
     :: ("message", Json.Str e.message)
     :: ("count", Json.int_ e.count)
     ::
     (match e.justification with
     | Some j -> [ ("justification", Json.Str j) ]
     | None -> []))

let entry_of_json j =
  {
    rule = Json.string_of (Json.member "rule" j);
    file = Json.string_of (Json.member "file" j);
    message = Json.string_of (Json.member "message" j);
    count = Json.int_of (Json.member "count" j);
    justification = Option.map Json.string_of (Json.member_opt "justification" j);
  }

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("findings", Json.Arr (List.map entry_to_json t.entries));
    ]

let of_json j =
  (match Json.member "schema" j with
  | Json.Str s when String.equal s schema_id -> ()
  | Json.Str s -> Json.parse_error "unsupported lint-baseline schema %S" s
  | _ -> Json.parse_error "lint-baseline schema is not a string");
  {
    entries =
      List.sort compare_entries
        (List.map entry_of_json (Json.list_of (Json.member "findings" j)));
  }

let load path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_json (Json.of_string (String.trim contents))

let save path t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc
