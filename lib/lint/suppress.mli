(** Per-site lint suppression.

    [[@lint.allow "D2"]] on an expression or a [let] binding silences the
    named rule(s) for the node's line range; a floating
    [[@@@lint.allow "D2"]] silences them for the whole file. Several ids
    may be given in one string, comma separated, and ["*"] matches every
    rule. *)

type t

val collect : Typedtree.structure -> t
(** All [lint.allow] attributes of one compilation unit. *)

val allows : t -> rule:string -> line:int -> bool
(** Is a finding for [rule] on this (1-based) line suppressed? *)

val count : t -> int
(** Number of [lint.allow] attributes seen (for reporting). *)
