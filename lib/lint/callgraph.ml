(* Phase 2 of the interprocedural pass: resolve the uses each summary
   recorded against the definitions every other summary exports, compute
   which unguarded module-level cells each binding can reach (a
   least-fixpoint over call edges), and emit the whole-program rules:

   DR1 — mutable state crossing a domain boundary: a crossing closure
   that captures an unguarded local or parameter, touches an unguarded
   module-level cell directly, or calls a function whose reachable set
   contains one.

   DR4 — an unguarded module-level cell used both inside some crossing
   closure and from ordinary code: the classic "works until the pool is
   turned on" latent race. *)

module Json = Dangers_obs.Json

type resolved =
  | R_cell of Summary.t * Summary.cell
  | R_binding of Summary.t * Summary.binding

type t = {
  summaries : Summary.t list;
  cells_by_name : (string, (string * Summary.t * Summary.cell) list) Hashtbl.t;
  bindings_by_name :
    (string, (string * Summary.t * Summary.binding) list) Hashtbl.t;
  (* binding key -> set of unguarded-cell keys it can touch without a
     guard, directly or through calls *)
  reach : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  cells : (string, Summary.t * Summary.cell) Hashtbl.t;  (* by cell key *)
}

let summaries_of t = t.summaries

let binding_key (s : Summary.t) (b : Summary.binding) =
  s.Summary.s_lib ^ "/" ^ s.Summary.s_module ^ "." ^ b.Summary.b_name

let cell_key (s : Summary.t) (c : Summary.cell) =
  s.Summary.s_lib ^ "/" ^ s.Summary.s_module ^ "." ^ c.Summary.c_name

let cell_display (s : Summary.t) (c : Summary.cell) =
  s.Summary.s_module ^ "." ^ c.Summary.c_name

let binding_display (s : Summary.t) (b : Summary.binding) =
  s.Summary.s_module ^ "." ^ b.Summary.b_name

let add_multi tbl key v =
  let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  Hashtbl.replace tbl key (prev @ [ v ])

(* Resolve a recorded use. Cells shadow bindings of the same name (the
   initializer of a cell is also a binding); a library hint narrows
   ambiguous names, and an ambiguous name without a hint resolves only
   when there is a single candidate. *)
let resolve t (u : Summary.use) =
  let pick candidates inject =
    match candidates with
    | [] -> None
    | l -> (
        let narrowed =
          match u.Summary.u_hint with
          | Some h -> (
              match List.filter (fun (lib, _, _) -> lib = h) l with
              | [] -> l
              | narrowed -> narrowed)
          | None -> l
        in
        match narrowed with
        | [ (_, s, x) ] -> Some (inject s x)
        | _ -> None)
  in
  let name = u.Summary.u_name in
  match
    pick
      (Option.value ~default:[] (Hashtbl.find_opt t.cells_by_name name))
      (fun s c -> R_cell (s, c))
  with
  | Some _ as r -> r
  | None ->
      pick
        (Option.value ~default:[] (Hashtbl.find_opt t.bindings_by_name name))
        (fun s b -> R_binding (s, b))

let reach_of t key =
  match Hashtbl.find_opt t.reach key with
  | Some set -> set
  | None ->
      let set = Hashtbl.create 1 in
      Hashtbl.replace t.reach key set;
      set

let make summaries =
  let t =
    {
      summaries;
      cells_by_name = Hashtbl.create 256;
      bindings_by_name = Hashtbl.create 1024;
      reach = Hashtbl.create 1024;
      cells = Hashtbl.create 256;
    }
  in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (c : Summary.cell) ->
          add_multi t.cells_by_name
            (s.Summary.s_module ^ "." ^ c.Summary.c_name)
            (s.Summary.s_lib, s, c);
          Hashtbl.replace t.cells (cell_key s c) (s, c))
        s.Summary.s_cells;
      List.iter
        (fun (b : Summary.binding) ->
          add_multi t.bindings_by_name
            (s.Summary.s_module ^ "." ^ b.Summary.b_name)
            (s.Summary.s_lib, s, b))
        s.Summary.s_bindings)
    summaries;
  (* Seed: direct unguarded accesses to unguarded cells. *)
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (b : Summary.binding) ->
          let set = reach_of t (binding_key s b) in
          List.iter
            (fun (u : Summary.use) ->
              if not u.Summary.u_guarded then
                match resolve t u with
                | Some (R_cell (cs, c))
                  when c.Summary.c_guard = Mutability.Unguarded ->
                    Hashtbl.replace set (cell_key cs c) ()
                | _ -> ())
            b.Summary.b_uses)
        s.Summary.s_bindings)
    summaries;
  (* Fixpoint: an unguarded call propagates the callee's reachable set.
     A call made under a lock is treated as guarded — that is exactly the
     monitor idiom the guarded accessors implement. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s : Summary.t) ->
        List.iter
          (fun (b : Summary.binding) ->
            let set = reach_of t (binding_key s b) in
            List.iter
              (fun (u : Summary.use) ->
                if not u.Summary.u_guarded then
                  match resolve t u with
                  | Some (R_binding (bs, b')) ->
                      let callee = reach_of t (binding_key bs b') in
                      Hashtbl.iter
                        (fun k () ->
                          if not (Hashtbl.mem set k) then begin
                            Hashtbl.replace set k ();
                            changed := true
                          end)
                        callee
                  | _ -> ())
              b.Summary.b_uses)
          s.Summary.s_bindings)
      summaries
  done;
  t

(* --- DR1 --- *)

let access_word = function
  | Summary.Mention -> "referenced"
  | Summary.Read -> "read"
  | Summary.Write -> "written"

(* Strongest access per (name, sort); ties broken by line for stable
   output. *)
let dedupe_captures captures =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (p : Summary.capture) ->
      let key = (p.Summary.p_name, p.Summary.p_sort) in
      match Hashtbl.find_opt tbl key with
      | Some (prev : Summary.capture) ->
          let stronger =
            Summary.kind_rank p.Summary.p_access
            > Summary.kind_rank prev.Summary.p_access
            || Summary.kind_rank p.Summary.p_access
                 = Summary.kind_rank prev.Summary.p_access
               && p.Summary.p_line < prev.Summary.p_line
          in
          if stronger then Hashtbl.replace tbl key p
      | None -> Hashtbl.replace tbl key p)
    captures;
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
  |> List.sort (fun (a : Summary.capture) (b : Summary.capture) ->
         compare
           (a.Summary.p_line, a.Summary.p_col, a.Summary.p_name)
           (b.Summary.p_line, b.Summary.p_col, b.Summary.p_name))

let dr1_site t (s : Summary.t) (site : Summary.site) =
  let findings = ref [] in
  let emit ~line ~col fmt =
    Printf.ksprintf
      (fun message ->
        findings :=
          Finding.at ~rule:"DR1" ~file:s.Summary.s_path ~line ~col ~message ()
          :: !findings)
      fmt
  in
  List.iter
    (fun (p : Summary.capture) ->
      match p.Summary.p_sort with
      | `Local ->
          emit ~line:p.Summary.p_line ~col:p.Summary.p_col
            "mutable local '%s' (%s) is %s inside a closure crossing %s \
             without synchronization; share it via Atomic/Mutex or keep it \
             domain-local"
            p.Summary.p_name p.Summary.p_kind
            (match p.Summary.p_access with
            | Summary.Mention -> "captured"
            | k -> access_word k)
            site.Summary.t_target
      | `Param ->
          emit ~line:p.Summary.p_line ~col:p.Summary.p_col
            "'%s' is %s inside a closure crossing %s without \
             synchronization; the caller can touch it concurrently"
            p.Summary.p_name
            (access_word p.Summary.p_access)
            site.Summary.t_target)
    (dedupe_captures site.Summary.t_captures);
  (* Direct cell accesses first (so a cell reached both ways reports the
     more precise direct form), then transitive reach through calls. *)
  let seen_cells = Hashtbl.create 8 in
  let seen_callees = Hashtbl.create 8 in
  let uses =
    List.sort
      (fun (a : Summary.use) (b : Summary.use) ->
        compare
          (a.Summary.u_line, a.Summary.u_col, a.Summary.u_name)
          (b.Summary.u_line, b.Summary.u_col, b.Summary.u_name))
      site.Summary.t_uses
  in
  List.iter
    (fun (u : Summary.use) ->
      if not u.Summary.u_guarded then
        match resolve t u with
        | Some (R_cell (cs, c))
          when c.Summary.c_guard = Mutability.Unguarded
               && not (Hashtbl.mem seen_cells (cell_key cs c)) ->
            Hashtbl.replace seen_cells (cell_key cs c) ();
            emit ~line:u.Summary.u_line ~col:u.Summary.u_col
              "unguarded module-level '%s' (%s) is %s inside a closure \
               crossing %s; guard it with a Mutex or make it Atomic"
              (cell_display cs c) c.Summary.c_kind
              (access_word u.Summary.u_kind)
              site.Summary.t_target
        | _ -> ())
    uses;
  List.iter
    (fun (u : Summary.use) ->
      if not u.Summary.u_guarded then
        match resolve t u with
        | Some (R_binding (bs, b'))
          when not (Hashtbl.mem seen_callees (binding_key bs b')) ->
            Hashtbl.replace seen_callees (binding_key bs b') ();
            let reached =
              Hashtbl.fold
                (fun k () acc -> k :: acc)
                (reach_of t (binding_key bs b'))
                []
              |> List.sort String.compare
            in
            List.iter
              (fun ck ->
                if not (Hashtbl.mem seen_cells ck) then begin
                  Hashtbl.replace seen_cells ck ();
                  match Hashtbl.find_opt t.cells ck with
                  | Some (cs, c) ->
                      emit ~line:u.Summary.u_line ~col:u.Summary.u_col
                        "closure crossing %s calls %s, which reaches \
                         unguarded module-level '%s' (%s); synchronize the \
                         cell or pass the data explicitly"
                        site.Summary.t_target
                        (binding_display bs b')
                        (cell_display cs c) c.Summary.c_kind
                  | None -> ()
                end)
              reached
        | _ -> ())
    uses;
  List.rev !findings

let dr1 t =
  List.concat_map
    (fun (s : Summary.t) ->
      List.concat_map
        (fun (b : Summary.binding) ->
          List.concat_map (dr1_site t s) (List.rev b.Summary.b_sites))
        s.Summary.s_bindings)
    t.summaries

(* --- DR4 --- *)

let dr4 t =
  (* Crossing side: every cell key some crossing closure can touch,
     with the lexically smallest witness site. *)
  let crossed = Hashtbl.create 32 in
  let note key site_file site_line =
    match Hashtbl.find_opt crossed key with
    | Some (f, l) when (f, l) <= (site_file, site_line) -> ()
    | _ -> Hashtbl.replace crossed key (site_file, site_line)
  in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (b : Summary.binding) ->
          List.iter
            (fun (site : Summary.site) ->
              List.iter
                (fun (u : Summary.use) ->
                  if not u.Summary.u_guarded then
                    match resolve t u with
                    | Some (R_cell (cs, c))
                      when c.Summary.c_guard = Mutability.Unguarded ->
                        note (cell_key cs c) s.Summary.s_path
                          site.Summary.t_line
                    | Some (R_binding (bs, b')) ->
                        Hashtbl.iter
                          (fun k () ->
                            note k s.Summary.s_path site.Summary.t_line)
                          (reach_of t (binding_key bs b'))
                    | _ -> ())
                site.Summary.t_uses)
            b.Summary.b_sites)
        s.Summary.s_bindings)
    t.summaries;
  (* Plain side: a direct unguarded access outside any crossing closure,
     excluding the cell's own initializer binding. *)
  let plain = Hashtbl.create 32 in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (b : Summary.binding) ->
          List.iter
            (fun (u : Summary.use) ->
              if not u.Summary.u_guarded then
                match resolve t u with
                | Some (R_cell (cs, c))
                  when c.Summary.c_guard = Mutability.Unguarded
                       && not
                            (cs.Summary.s_path = s.Summary.s_path
                            && c.Summary.c_name = b.Summary.b_name) ->
                    let key = cell_key cs c in
                    let witness = binding_display s b in
                    (match Hashtbl.find_opt plain key with
                    | Some w when w <= witness -> ()
                    | _ -> Hashtbl.replace plain key witness)
                | _ -> ())
            b.Summary.b_uses)
        s.Summary.s_bindings)
    t.summaries;
  Hashtbl.fold (fun key (s, c) acc -> (key, s, c) :: acc) t.cells []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  |> List.filter_map (fun (key, (s : Summary.t), (c : Summary.cell)) ->
         match
           (c.Summary.c_guard, Hashtbl.find_opt crossed key,
            Hashtbl.find_opt plain key)
         with
         | Mutability.Unguarded, Some (site_file, site_line), Some accessor ->
             Some
               (Finding.at ~rule:"DR4" ~file:s.Summary.s_path
                  ~line:c.Summary.c_line ~col:c.Summary.c_col
                  ~message:
                    (Printf.sprintf
                       "module-level mutable '%s' (%s) is reached from a \
                        domain-crossing closure (%s:%d) and from '%s' \
                        outside it; every access must go through one \
                        Atomic/Mutex discipline"
                       (cell_display s c) c.Summary.c_kind site_file
                       site_line accessor)
                  ())
         | _ -> None)

(* --- DR2/DR3: already decided per unit, stored in the summaries --- *)

let local_findings t ~rule =
  List.concat_map
    (fun (s : Summary.t) ->
      List.filter
        (fun (f : Finding.t) -> f.Finding.rule = rule)
        s.Summary.s_findings)
    t.summaries

(* --- graph dump (--graph-out) --- *)

let to_json t =
  let edges =
    List.concat_map
      (fun (s : Summary.t) ->
        List.concat_map
          (fun (b : Summary.binding) ->
            let from = binding_key s b in
            let edge_of (u : Summary.use) ~crossing =
              match resolve t u with
              | Some (R_binding (bs, b')) ->
                  Some
                    (Json.Obj
                       [
                         ("from", Json.Str from);
                         ("to", Json.Str (binding_key bs b'));
                         ("kind", Json.Str "call");
                         ("crossing", Json.Bool crossing);
                         ("line", Json.int_ u.Summary.u_line);
                       ])
              | Some (R_cell (cs, c)) ->
                  Some
                    (Json.Obj
                       [
                         ("from", Json.Str from);
                         ("to", Json.Str (cell_key cs c));
                         ("kind", Json.Str (Summary.kind_to_string u.Summary.u_kind));
                         ("guarded", Json.Bool u.Summary.u_guarded);
                         ("crossing", Json.Bool crossing);
                         ("line", Json.int_ u.Summary.u_line);
                       ])
              | None -> None
            in
            List.filter_map (edge_of ~crossing:false) b.Summary.b_uses
            @ List.concat_map
                (fun (site : Summary.site) ->
                  List.filter_map (edge_of ~crossing:true)
                    site.Summary.t_uses)
                b.Summary.b_sites)
          s.Summary.s_bindings)
      t.summaries
  in
  let cells =
    Hashtbl.fold (fun key (s, c) acc -> (key, s, c) :: acc) t.cells []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    |> List.map (fun (key, (s : Summary.t), (c : Summary.cell)) ->
           Json.Obj
             [
               ("key", Json.Str key);
               ("maker", Json.Str c.Summary.c_kind);
               ( "guard",
                 Json.Str (Summary.guard_to_string c.Summary.c_guard) );
               ("file", Json.Str s.Summary.s_path);
               ("line", Json.int_ c.Summary.c_line);
             ])
  in
  let nodes =
    List.concat_map
      (fun (s : Summary.t) ->
        List.map
          (fun (b : Summary.binding) ->
            Json.Obj
              [
                ("key", Json.Str (binding_key s b));
                ("file", Json.Str s.Summary.s_path);
                ("line", Json.int_ b.Summary.b_line);
                ( "sites",
                  Json.int_ (List.length b.Summary.b_sites) );
              ])
          s.Summary.s_bindings)
      t.summaries
  in
  Json.Obj
    [
      ("schema", Json.Str "dangers/lint-graph/v1");
      ("nodes", Json.Arr nodes);
      ("cells", Json.Arr cells);
      ("edges", Json.Arr edges);
    ]
