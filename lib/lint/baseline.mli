(** Committed grandfather list for lint findings.

    A baseline entry identifies findings by [(rule, file, message)] — not
    line numbers — with a count, so a file can carry N known findings and
    still fail when an N+1th appears. [apply] splits a run's findings
    into fresh ones (fail the build) and baselined ones; entries no
    longer matched by any finding are reported stale so the baseline
    shrinks monotonically ([--update-baseline] drops them). *)

type entry = {
  rule : string;
  file : string;
  message : string;
  count : int;
  justification : string option;
      (** why this finding is allowed to stay; shown next to stale
          entries and in the JSON report *)
}

type t = { entries : entry list }

val schema_id : string
(** ["dangers/lint-baseline/v1"] *)

val empty : t

val of_findings : Finding.t list -> t
(** Grandfather the given findings: one entry per distinct key with its
    multiplicity, sorted by (file, rule, message). *)

type applied = {
  fresh : Finding.t list;  (** findings not covered by the baseline *)
  baselined : int;  (** findings absorbed by the baseline *)
  stale : entry list;  (** entries matching nothing in this run *)
}

val apply : t -> Finding.t list -> applied

val to_json : t -> Dangers_obs.Json.t
val of_json : Dangers_obs.Json.t -> t

val load : string -> t
(** @raise Dangers_obs.Json.Parse_error on malformed content;
    @raise Sys_error if unreadable. *)

val save : string -> t -> unit
