(** One diagnostic produced by a lint rule.

    Findings are keyed for baselining by [(rule, file, message)] — line
    numbers shift every edit, so the baseline must not depend on them. *)

type severity =
  | Error  (** fails the run under [--fail-on error] (the CI default) *)
  | Warning  (** fails only under [--fail-on warning] *)

type t = {
  rule : string;  (** rule id, e.g. ["D1"] *)
  severity : severity;
  file : string;  (** source path as recorded in the [.cmt] *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val severity_to_string : severity -> string
val severity_of_string : string -> severity

val make :
  ?severity:severity ->
  rule:string ->
  file:string ->
  loc:Location.t ->
  message:string ->
  unit ->
  t
(** [severity] defaults to [Error]. *)

val at :
  ?severity:severity ->
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  message:string ->
  unit ->
  t
(** Build a finding from an explicit position — used by the summary-based
    rules, whose locations survive the cache as plain line/column pairs
    rather than [Location.t]s. *)

val key : t -> string
(** Baseline identity: [rule ^ "|" ^ file ^ "|" ^ message]. *)

val compare : t -> t -> int
(** Stable report order: by file, line, column, rule, message. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity \[rule\] message] — one line, compiler
    style. *)

val to_json : t -> Dangers_obs.Json.t
val of_json : Dangers_obs.Json.t -> t
