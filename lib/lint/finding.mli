(** One diagnostic produced by a lint rule.

    Findings are keyed for baselining by [(rule, file, message)] — line
    numbers shift every edit, so the baseline must not depend on them. *)

type t = {
  rule : string;  (** rule id, e.g. ["D1"] *)
  file : string;  (** source path as recorded in the [.cmt] *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val make : rule:string -> file:string -> loc:Location.t -> message:string -> t

val key : t -> string
(** Baseline identity: [rule ^ "|" ^ file ^ "|" ^ message]. *)

val compare : t -> t -> int
(** Stable report order: by file, line, column, rule, message. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: \[rule\] message] — one line, compiler style. *)

val to_json : t -> Dangers_obs.Json.t
val of_json : Dangers_obs.Json.t -> t
