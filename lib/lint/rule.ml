(* A unit check walks one compilation unit's typedtree in isolation; a
   program check runs once over the whole-program call graph built from
   every unit's summary (phase 2). Program findings are still filtered
   per file by [in_scope] and by that file's suppressions. *)
type check =
  | Unit_check of (file:string -> Typedtree.structure -> Finding.t list)
  | Program_check of (Callgraph.t -> Finding.t list)

type t = {
  id : string;
  title : string;
  rationale : string;
  in_scope : string -> bool;
  check : check;
}

let ident_name path =
  let name = Path.name path in
  let prefix = "Stdlib." in
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    String.sub name n (String.length name - n)
  else name

let is_stdlib path =
  let rec root = function
    | Path.Pident id -> Ident.name id = "Stdlib"
    | Path.Pdot (p, _) | Path.Papply (p, _) | Path.Pextra_ty (p, _) -> root p
  in
  root path

let rec head_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> Some (ident_name path)
  | Texp_apply (f, _) -> head_ident f
  | _ -> None

let iter_exprs str f =
  let expr sub e =
    f e;
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str

let path_has_prefix prefixes path =
  List.exists
    (fun prefix ->
      String.length path >= String.length prefix
      && String.sub path 0 (String.length prefix) = prefix)
    prefixes

let basename_in names path = List.mem (Filename.basename path) names
