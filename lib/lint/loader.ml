type source = {
  path : string;
  cmt_path : string;
  digest : string;
  structure : Typedtree.structure;
}

type result = {
  sources : source list;
  unreadable : string list;
}

let rec scan_dir dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then scan_dir path acc
          else if Filename.check_suffix path ".cmt" then path :: acc
          else acc)
        acc entries

let generated source = Filename.check_suffix source ".ml-gen"

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> Error path
  | infos -> (
      match (infos.cmt_annots, infos.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some source
        when not (generated source) ->
          let digest =
            match Digest.file path with
            | d -> Digest.to_hex d
            | exception Sys_error _ -> ""
          in
          Ok (Some { path = source; cmt_path = path; digest; structure })
      | _ -> Ok None)

(* Local copy of Rule.path_has_prefix: the loader sits below Rule in the
   module graph (Rule now reaches Callgraph, which reaches back here). *)
let path_has_prefix prefixes path =
  List.exists
    (fun prefix ->
      String.length path >= String.length prefix
      && String.sub path 0 (String.length prefix) = prefix)
    prefixes

let load ~build_dir ~prefixes =
  let cmts = List.sort String.compare (scan_dir build_dir []) in
  let sources, unreadable =
    List.fold_left
      (fun (sources, unreadable) cmt ->
        match load_cmt cmt with
        | Error path -> (sources, path :: unreadable)
        | Ok None -> (sources, unreadable)
        | Ok (Some src) ->
            if prefixes = [] || path_has_prefix prefixes src.path then
              (src :: sources, unreadable)
            else (sources, unreadable))
      ([], []) cmts
  in
  (* Both byte and native artifact dirs can carry a cmt for the same
     module; keep one per source path. *)
  let sources = List.sort (fun a b -> String.compare a.path b.path) sources in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.path = b.path -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  { sources = dedup sources; unreadable = List.sort String.compare unreadable }
