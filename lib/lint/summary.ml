(* Phase 1 of the interprocedural pass: reduce one compilation unit's
   typedtree to the facts the whole-program rules need — the mutable
   cells it defines, and per top-level binding the global values it
   uses, the domain-crossing closures it creates, and what those
   closures capture. DR2 (atomic read-modify-write) and DR3 (mutex
   discipline) are purely intraprocedural, so they are decided here too
   and carried as pre-computed findings.

   Summaries are plain data (JSON-serializable) so they can be cached on
   disk keyed by the cmt digest: an unchanged module is never
   re-summarized. *)

module Json = Dangers_obs.Json

type access_kind = Mention | Read | Write

let kind_rank = function Mention -> 0 | Read -> 1 | Write -> 2
let strongest a b = if kind_rank a >= kind_rank b then a else b

let kind_to_string = function
  | Mention -> "mention"
  | Read -> "read"
  | Write -> "write"

let kind_of_string = function
  | "mention" -> Mention
  | "read" -> Read
  | "write" -> Write
  | s -> Json.parse_error "unknown access kind %S" s

type cell = {
  c_name : string;  (** qualified within the module, e.g. ["per_key"] *)
  c_kind : string;  (** allocation kind, e.g. ["Hashtbl.create"] *)
  c_guard : Mutability.guard;
  c_line : int;
  c_col : int;
}

(* One use of a value defined outside this binding: a call when it
   resolves to a function, a cell access when it resolves to a
   module-level mutable. Resolution happens in phase 2. *)
type use = {
  u_hint : string option;  (** library slug from the mangled path *)
  u_name : string;  (** [Module.binding] *)
  u_kind : access_kind;
  u_guarded : bool;  (** under a held lock, or an Atomic/DLS operation *)
  u_line : int;
  u_col : int;
}

(* A mutable value defined outside a domain-crossing closure but
   accessed inside it. *)
type capture = {
  p_name : string;
  p_kind : string;  (** maker kind for locals, [""] for parameters *)
  p_sort : [ `Local | `Param ];
  p_access : access_kind;
  p_line : int;
  p_col : int;
}

type site = {
  t_target : string;  (** crossing entry point, e.g. ["Domain.spawn"] *)
  t_line : int;
  t_col : int;
  mutable t_captures : capture list;
  mutable t_uses : use list;
}

type binding = {
  b_name : string;
  b_line : int;
  mutable b_uses : use list;  (** uses outside any crossing closure *)
  mutable b_sites : site list;
}

type t = {
  s_path : string;
  s_lib : string;
  s_module : string;
  s_digest : string;
  s_cells : cell list;
  s_bindings : binding list;
  s_findings : Finding.t list;  (** DR2/DR3, decided intraprocedurally *)
}

(* --- walk state --- *)

type local_info = {
  l_maker : Mutability.maker option;
  l_fn : Typedtree.expression option;  (** lambda body for call-by-name *)
  l_param : bool;
  l_gen : int;
}

type state = {
  file : string;
  self_lib : string;
  self_mod : string;
  mutable gen : int;
  locals : (Ident.t, local_info) Hashtbl.t;
  locks : (string, int) Hashtbl.t;  (** mutex key -> balance *)
  mutable protect_depth : int;
  mutable try_depth : int;
  mutable site : (site * int) option;  (** active crossing site + entry gen *)
  mutable inlined : Ident.t list;  (** local fns inlined into the site *)
  binding : binding;
  findings : Finding.t list ref;
}

let loc_pos (loc : Location.t) =
  let p = loc.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let finding st ?severity ~rule ~loc fmt =
  Printf.ksprintf
    (fun message ->
      st.findings :=
        Finding.make ?severity ~rule ~file:st.file ~loc ~message ()
        :: !(st.findings))
    fmt

let register st ?maker ?fn ?(param = false) id =
  st.gen <- st.gen + 1;
  Hashtbl.replace st.locals id
    { l_maker = maker; l_fn = fn; l_param = param; l_gen = st.gen }

let any_lock_held st = Hashtbl.fold (fun _ n acc -> acc || n > 0) st.locks false

let held_keys st =
  List.sort String.compare
    (Hashtbl.fold (fun k n acc -> if n > 0 then k :: acc else acc) st.locks [])

let balance_snapshot st = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.locks []

let restore_balances st snap =
  Hashtbl.reset st.locks;
  List.iter (fun (k, v) -> Hashtbl.replace st.locks k v) snap

let balances_equal a b =
  let norm l =
    List.sort compare (List.filter (fun (_, v) -> v <> 0) l)
  in
  norm a = norm b

let bump st key delta =
  let v = match Hashtbl.find_opt st.locks key with Some v -> v | None -> 0 in
  Hashtbl.replace st.locks key (v + delta)

(* --- expression helpers --- *)

let rec render_target (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> Some (Mutability.short_name path)
  | Texp_field (base, _, lbl) -> (
      match render_target base with
      | Some s -> Some (s ^ "." ^ lbl.Types.lbl_name)
      | None -> Some lbl.Types.lbl_name)
  | _ -> None

(* The base value a read/write ultimately touches, looking through field
   chains. Reports whether any record along the chain carries its own
   Mutex.t/Atomic.t field (the self-guarded idiom). *)
type root =
  | Root_local of Ident.t
  | Root_global of Path.t
  | Root_none

let rec root_of ?(guarded = false) (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (Root_local id, guarded)
  | Texp_ident (path, _, _) -> (Root_global path, guarded)
  | Texp_field (base, _, lbl) ->
      root_of ~guarded:(guarded || Mutability.record_self_guarded lbl) base
  | _ -> (Root_none, guarded)

(* Does [e] syntactically contain [Atomic.get k] for the given key? *)
let contains_atomic_get key (e : Typedtree.expression) =
  let found = ref false in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (h, (_, Some arg) :: _) when not !found -> (
        match h.exp_desc with
        | Texp_ident (p, _, _)
          when Mutability.short_name p = "Atomic.get" ->
            if render_target arg = Some key then found := true
        | _ -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  !found

(* Conservative: does every path through [e] end in a raise? Used to
   drop raising branches from lock-balance joins. *)
let rec always_raises (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (h, _) -> (
      match h.exp_desc with
      | Texp_ident (p, _, _) ->
          List.mem (Mutability.short_name p) Mutability.raising_ops
      | _ -> false)
  | Texp_sequence (_, b) -> always_raises b
  | Texp_let (_, _, body) -> always_raises body
  | Texp_ifthenelse (_, t, Some e) -> always_raises t && always_raises e
  | Texp_match (_, cases, _) ->
      cases <> []
      && List.for_all
           (fun (c : Typedtree.computation Typedtree.case) ->
             always_raises c.c_rhs)
           cases
  | Texp_assert (e, _) -> (
      match e.exp_desc with
      | Texp_construct (_, { cstr_name = "false"; _ }, _) -> true
      | _ -> false)
  | _ -> false

(* --- recording accesses --- *)

let record_use_raw st ~kind ~guarded ~loc hint name =
  let line, col = loc_pos loc in
  let u = { u_hint = hint; u_name = name; u_kind = kind; u_guarded = guarded; u_line = line; u_col = col } in
  match st.site with
  | Some (site, _) -> site.t_uses <- u :: site.t_uses
  | None -> st.binding.b_uses <- u :: st.binding.b_uses

let record_use st ~kind ~guarded ~loc path =
  let hint, name = Mutability.normalize_path path in
  record_use_raw st ~kind ~guarded ~loc hint name

let record_capture st ~sort ~kind ~p_kind ~loc name =
  match st.site with
  | None -> ()
  | Some (site, _) ->
      let line, col = loc_pos loc in
      site.t_captures <-
        { p_name = name; p_kind; p_sort = sort; p_access = kind; p_line = line; p_col = col }
        :: site.t_captures

(* An access to [root] with strength [kind]. Inside a crossing site,
   locals and params become captures; globals become site uses. Outside,
   only globals matter. *)
let record_access st ~kind ~guarded ~loc root chain_guarded =
  let guarded = guarded || chain_guarded || any_lock_held st in
  match root with
  | Root_none -> ()
  | Root_global path -> record_use st ~kind ~guarded ~loc path
  | Root_local id -> (
      match Hashtbl.find_opt st.locals id with
      | None ->
          (* Not bound inside this binding: a reference to a sibling
             top-level value of the same module (they resolve to bare
             idents, not dotted paths). *)
          record_use_raw st ~kind ~guarded ~loc (Some st.self_lib)
            (st.self_mod ^ "." ^ Ident.name id)
      | Some info -> (
          match st.site with
          | None -> ()
          | Some (_, site_gen) ->
              if info.l_gen <= site_gen && not guarded then (
                match info.l_maker with
                | Some { m_guard = Mutability.Unguarded; m_kind } ->
                    record_capture st ~sort:`Local ~kind ~p_kind:m_kind ~loc
                      (Ident.name id)
                | Some _ -> ()  (* atomic/mutex/DLS-guarded maker: safe *)
                | None ->
                    if info.l_param && kind <> Mention then
                      record_capture st ~sort:`Param ~kind ~p_kind:"" ~loc
                        (Ident.name id))))

(* --- the walk --- *)

let rec walk st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      (* Inside a crossing closure, a reference to a let-bound local
         function defined outside it means that function's body also runs
         on the other domain: walk it inline (once) so its accesses are
         attributed to the site. Otherwise a bare mention of a tracked
         local is only meaningful inside a crossing closure. *)
      match (st.site, Hashtbl.find_opt st.locals id) with
      | Some (_, site_gen), Some { l_fn = Some fn; l_gen; _ }
        when l_gen <= site_gen ->
          if not (List.memq id st.inlined) then begin
            st.inlined <- id :: st.inlined;
            walk_crossing_closure st fn
          end
      | _ ->
          record_access st ~kind:Mention ~guarded:false ~loc:e.exp_loc
            (Root_local id) false)
  | Texp_ident (path, _, _) ->
      record_use st ~kind:Mention ~guarded:(any_lock_held st) ~loc:e.exp_loc
        path
  | Texp_let (_, vbs, body) ->
      List.iter (walk_value_binding st) vbs;
      walk st body
  | Texp_sequence (a, b) ->
      walk st a;
      walk st b
  | Texp_ifthenelse (cond, then_, else_) ->
      walk st cond;
      (* An if without an else has an implicit empty branch that keeps
         the pre-branch lock state; the join must compare against it. *)
      let implicit_fallthrough = else_ = None in
      walk_branches st e.exp_loc ~implicit_fallthrough
        (then_ :: (match else_ with Some e -> [ e ] | None -> []))
  | Texp_match (scrut, cases, _) ->
      walk st scrut;
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          List.iter (fun id -> register st id) (Typedtree.pat_bound_idents c.c_lhs))
        cases;
      walk_branches st e.exp_loc
        (List.map (fun (c : Typedtree.computation Typedtree.case) -> c.c_rhs) cases)
  | Texp_try (body, handlers) ->
      let snap = balance_snapshot st in
      st.try_depth <- st.try_depth + 1;
      walk st body;
      st.try_depth <- st.try_depth - 1;
      let after_body = balance_snapshot st in
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          List.iter (fun id -> register st id) (Typedtree.pat_bound_idents c.c_lhs);
          restore_balances st snap;
          walk st c.c_rhs)
        handlers;
      restore_balances st after_body
  | Texp_while (cond, body) ->
      walk st cond;
      let snap = balance_snapshot st in
      walk st body;
      let after = balance_snapshot st in
      if not (balances_equal snap after) then
        finding st ~rule:"DR3" ~loc:e.exp_loc
          "loop body changes the lock balance of '%s' — a second iteration \
           double-locks or double-unlocks it"
          (String.concat ", "
             (List.sort_uniq String.compare
                (List.map fst (snap @ after))));
      restore_balances st snap
  | Texp_for (id, _, lo, hi, _, body) ->
      register st id;
      walk st lo;
      walk st hi;
      let snap = balance_snapshot st in
      walk st body;
      let after = balance_snapshot st in
      if not (balances_equal snap after) then
        finding st ~rule:"DR3" ~loc:e.exp_loc
          "loop body changes the lock balance of '%s' — a second iteration \
           double-locks or double-unlocks it"
          (String.concat ", "
             (List.sort_uniq String.compare
                (List.map fst (snap @ after))));
      restore_balances st snap
  | Texp_function { cases; _ } ->
      walk_function_cases st ~inherit_locks:false cases
  | Texp_field (base, _, lbl) ->
      if lbl.Types.lbl_mut = Asttypes.Mutable then begin
        let root, chain_guarded =
          root_of ~guarded:(Mutability.record_self_guarded lbl) base
        in
        record_access st ~kind:Read ~guarded:false ~loc:e.exp_loc root
          chain_guarded
      end;
      walk st base
  | Texp_setfield (base, _, lbl, v) ->
      let root, chain_guarded =
        root_of ~guarded:(Mutability.record_self_guarded lbl) base
      in
      record_access st ~kind:Write ~guarded:false ~loc:e.exp_loc root
        chain_guarded;
      walk st base;
      walk st v
  | Texp_apply (head, args) -> walk_apply st e head args
  | _ -> walk_children st e

and walk_children st (e : Typedtree.expression) =
  (* Generic recursion for constructs with no special control flow:
     visit every child expression with the main walker. *)
  let open Tast_iterator in
  let expr _sub child = walk st child in
  let it = { default_iterator with expr } in
  default_iterator.expr it e

and walk_branches st loc ?(implicit_fallthrough = false) branches =
  let snap = balance_snapshot st in
  let ends =
    List.map
      (fun branch ->
        restore_balances st snap;
        walk st branch;
        (balance_snapshot st, always_raises branch))
      branches
  in
  let ends = if implicit_fallthrough then ends @ [ (snap, false) ] else ends in
  let live = List.filter (fun (_, raises) -> not raises) ends in
  match live with
  | [] -> restore_balances st snap
  | (first, _) :: rest ->
      if
        List.exists (fun (b, _) -> not (balances_equal first b)) rest
        && st.protect_depth = 0
      then
        finding st ~rule:"DR3" ~loc
          "lock/unlock is unbalanced across branches: some paths leave a \
           mutex in a different state than others";
      restore_balances st first

and walk_value_binding st (vb : Typedtree.value_binding) =
  walk st vb.vb_expr;
  match Typedtree.pat_bound_idents vb.vb_pat with
  | [ id ] ->
      let maker = Mutability.maker_of vb.vb_expr in
      let fn =
        match vb.vb_expr.exp_desc with
        | Texp_function _ -> Some vb.vb_expr
        | _ -> None
      in
      register st ?maker ?fn id
  | ids -> List.iter (fun id -> register st id) ids

and walk_function_cases st ~inherit_locks cases =
  List.iter
    (fun (c : Typedtree.value Typedtree.case) ->
      List.iter
        (fun id -> register st ~param:true id)
        (Typedtree.pat_bound_idents c.c_lhs);
      (match c.c_guard with Some g -> walk st g | None -> ());
      if inherit_locks then walk st c.c_rhs
      else begin
        (* A closure body runs later, possibly elsewhere: it does not
           inherit the locks held at its definition site, and locks it
           takes do not leak out. *)
        let snap = balance_snapshot st in
        Hashtbl.reset st.locks;
        walk st c.c_rhs;
        (match held_keys st with
        | [] -> ()
        | keys ->
            finding st ~rule:"DR3" ~loc:c.c_rhs.exp_loc
              "closure can return while still holding '%s' (lock/unlock \
               imbalance)"
              (String.concat ", " keys));
        restore_balances st snap
      end)
    cases

(* Walk a closure argument of a crossing call inside the given site:
   either a literal function or a reference to a let-bound local one. *)
and walk_crossing_closure st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          List.iter
            (fun id -> register st ~param:true id)
            (Typedtree.pat_bound_idents c.c_lhs);
          let snap = balance_snapshot st in
          Hashtbl.reset st.locks;
          walk st c.c_rhs;
          restore_balances st snap)
        cases
  | _ ->
      (* A top-level function, an opaque local, or a local function — the
         Texp_ident case of [walk] inlines local functions itself. *)
      walk st e

and walk_apply st (e : Typedtree.expression) head args =
  let head_name =
    match head.exp_desc with
    | Texp_ident (path, _, _) -> Some (Mutability.short_name path)
    | _ -> None
  in
  let arg_exprs = List.filter_map (fun (_, a) -> a) args in
  let classify_op table =
    match head_name with
    | None -> None
    | Some name -> (
        match List.assoc_opt name table with
        | Some index -> (
            match List.nth_opt arg_exprs index with
            | Some target -> Some (name, target)
            | None -> None)
        | None -> None)
  in
  match head_name with
  | Some name when List.mem name Mutability.lock_ops -> (
      List.iter (walk st) arg_exprs;
      match arg_exprs with
      | target :: _ -> (
          match render_target target with
          | Some key -> bump st key 1
          | None -> bump st "<mutex>" 1)
      | [] -> ())
  | Some name when List.mem name Mutability.unlock_ops -> (
      List.iter (walk st) arg_exprs;
      match arg_exprs with
      | target :: _ -> (
          match render_target target with
          | Some key -> bump st key (-1)
          | None -> bump st "<mutex>" (-1))
      | [] -> ())
  | Some name when List.mem name Mutability.protect_ops ->
      (* Fun.protect / Mutex.protect: thunk arguments run in the same
         dynamic extent with the finally guaranteed — walk them inline
         (locks included) and treat raises as safe. *)
      st.protect_depth <- st.protect_depth + 1;
      List.iter
        (fun (a : Typedtree.expression) ->
          match a.exp_desc with
          | Texp_function { cases; _ } ->
              walk_function_cases st ~inherit_locks:true cases
          | _ -> walk st a)
        arg_exprs;
      st.protect_depth <- st.protect_depth - 1
  | Some name when List.mem name Mutability.atomic_ops ->
      (* The atomic op synchronizes its target; DR2 still rejects a
         get-then-set on the same atomic. *)
      (match arg_exprs with
      | target :: rest ->
          let root, chain_guarded = root_of target in
          record_access st
            ~kind:(if name = "Atomic.get" then Read else Write)
            ~guarded:true ~loc:e.exp_loc root chain_guarded;
          (match (name, render_target target, rest) with
          | ("Atomic.set" | "Atomic.exchange"), Some key, value :: _
            when contains_atomic_get key value ->
              finding st ~rule:"DR2" ~loc:e.exp_loc
                "non-atomic read-modify-write on '%s': %s over Atomic.get \
                 loses concurrent updates; use Atomic.fetch_and_add or a \
                 compare_and_set retry loop"
                key name
          | _ -> ());
          List.iter (walk st) rest
      | [] -> ())
  | Some name when List.mem name Mutability.dls_ops ->
      (* Domain-local storage: confined by construction. *)
      List.iter (walk st) arg_exprs
  | Some name when Mutability.crossing_of name <> None -> (
      match (Mutability.crossing_of name, st.site) with
      | None, _ | Some _, Some _ ->
          (* Already inside a crossing closure (or an impossible guard
             miss): analyze nested closures as plain code attributed to
             the outer site. *)
          walk st head;
          List.iter (walk st) arg_exprs
      | Some crossing, None ->
          walk st head;
          let line, col = loc_pos e.exp_loc in
          let site =
            { t_target = name; t_line = line; t_col = col; t_captures = []; t_uses = [] }
          in
          let closure_args, other_args =
            let labelled l =
              List.filter_map
                (fun ((lbl : Asttypes.arg_label), a) ->
                  match (lbl, a) with
                  | (Asttypes.Labelled s | Asttypes.Optional s), Some a
                    when Some s = l ->
                      Some a
                  | _ -> None)
                args
            in
            match crossing.x_label with
            | Some _ as l when labelled l <> [] ->
                let chosen = labelled l in
                (chosen, List.filter (fun a -> not (List.memq a chosen)) arg_exprs)
            | _ ->
                let indexed = List.mapi (fun i a -> (i, a)) arg_exprs in
                let chosen =
                  List.filter_map
                    (fun (i, a) ->
                      if List.mem i crossing.x_positional then Some a else None)
                    indexed
                in
                (chosen, List.filter (fun a -> not (List.memq a chosen)) arg_exprs)
          in
          List.iter (walk st) other_args;
          st.site <- Some (site, st.gen);
          st.inlined <- [];
          List.iter (walk_crossing_closure st) closure_args;
          st.site <- None;
          st.inlined <- [];
          st.binding.b_sites <- site :: st.binding.b_sites)
  | Some name when List.mem name Mutability.raising_ops ->
      List.iter (walk st) arg_exprs;
      if
        st.protect_depth = 0 && st.try_depth = 0
        && held_keys st <> []
      then
        finding st ~rule:"DR3" ~loc:e.exp_loc
          "%s while holding '%s': the mutex is never released on this path; \
           unlock first or wrap the section in Fun.protect"
          name
          (String.concat ", " (held_keys st))
  | Some name when List.mem name Mutability.blocking_ops ->
      List.iter (walk st) arg_exprs;
      if held_keys st <> [] then
        finding st ~severity:Finding.Warning ~rule:"DR3" ~loc:e.exp_loc
          "blocking call %s while holding '%s' stalls every domain waiting \
           on that mutex"
          name
          (String.concat ", " (held_keys st))
  | _ -> (
      (* Mutation/read tables, then plain recursion. *)
      match classify_op Mutability.write_ops with
      | Some (_, target) ->
          let root, chain_guarded = root_of target in
          record_access st ~kind:Write ~guarded:false ~loc:e.exp_loc root
            chain_guarded;
          walk st head;
          List.iter (walk st) arg_exprs
      | None -> (
          match classify_op Mutability.read_ops with
          | Some (_, target) ->
              let root, chain_guarded = root_of target in
              record_access st ~kind:Read ~guarded:false ~loc:e.exp_loc root
                chain_guarded;
              walk st head;
              List.iter (walk st) arg_exprs
          | None ->
              walk st head;
              List.iter (walk st) arg_exprs))

(* --- structure traversal --- *)

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Ident.name id
  | _ -> "_"

let structure_has_mutex (str : Typedtree.structure) =
  List.exists
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.exists
            (fun (vb : Typedtree.value_binding) ->
              match Mutability.maker_of vb.vb_expr with
              | Some { m_guard = Mutability.Mutex_guard; _ } -> true
              | _ -> false)
            vbs
      | _ -> false)
    str.str_items

let of_source (src : Loader.source) =
  let file = src.Loader.path in
  let cells = ref [] in
  let bindings = ref [] in
  let findings = ref [] in
  let scan_binding ~qual name loc (expr : Typedtree.expression) =
    let line, _ = loc_pos loc in
    let binding =
      { b_name = (if qual = "" then name else qual ^ "." ^ name); b_line = line; b_uses = []; b_sites = [] }
    in
    let st =
      {
        file;
        self_lib = Mutability.lib_of_source_path file;
        self_mod = Mutability.module_of_source_path file;
        gen = 0;
        locals = Hashtbl.create 32;
        locks = Hashtbl.create 4;
        protect_depth = 0;
        try_depth = 0;
        site = None;
        inlined = [];
        binding;
        findings;
      }
    in
    walk st expr;
    (match held_keys st with
    | [] -> ()
    | keys ->
        finding st ~rule:"DR3" ~loc
          "'%s' can return while still holding '%s' (lock/unlock imbalance)"
          binding.b_name
          (String.concat ", " keys));
    bindings := binding :: !bindings
  in
  let rec scan_structure ~qual (str : Typedtree.structure) =
    let has_mutex = structure_has_mutex str in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let name = binding_name vb in
                let name =
                  if name = "_" then
                    Printf.sprintf "(toplevel:%d)" (fst (loc_pos vb.vb_loc))
                  else name
                in
                (match Mutability.maker_of vb.vb_expr with
                | Some maker ->
                    let guard =
                      match maker.Mutability.m_guard with
                      | Mutability.Unguarded when has_mutex ->
                          Mutability.Mutex_guard
                      | g -> g
                    in
                    let line, col = loc_pos vb.vb_loc in
                    cells :=
                      {
                        c_name = (if qual = "" then name else qual ^ "." ^ name);
                        c_kind = maker.Mutability.m_kind;
                        c_guard = guard;
                        c_line = line;
                        c_col = col;
                      }
                      :: !cells
                | None -> ());
                scan_binding ~qual name vb.vb_loc vb.vb_expr)
              vbs
        | Tstr_eval (e, _) ->
            scan_binding ~qual
              (Printf.sprintf "(toplevel:%d)" (fst (loc_pos item.str_loc)))
              item.str_loc e
        | Tstr_module mb -> scan_module_binding ~qual mb
        | Tstr_recmodule mbs -> List.iter (scan_module_binding ~qual) mbs
        | Tstr_include incl -> scan_module_expr ~qual incl.incl_mod
        | _ -> ())
      str.str_items
  and scan_module_binding ~qual (mb : Typedtree.module_binding) =
    let sub =
      match mb.mb_id with
      | Some id -> Ident.name id
      | None -> "_"
    in
    let qual = if qual = "" then sub else qual ^ "." ^ sub in
    scan_module_expr ~qual mb.mb_expr
  and scan_module_expr ~qual (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> scan_structure ~qual str
    | Tmod_constraint (me, _, _, _) -> scan_module_expr ~qual me
    | Tmod_functor (_, me) -> scan_module_expr ~qual me
    | _ -> ()
  in
  scan_structure ~qual:"" src.Loader.structure;
  {
    s_path = file;
    s_lib = Mutability.lib_of_source_path file;
    s_module = Mutability.module_of_source_path file;
    s_digest = src.Loader.digest;
    s_cells = List.rev !cells;
    s_bindings = List.rev !bindings;
    s_findings = List.rev !findings;
  }

(* --- JSON (the on-disk cache format) --- *)

let guard_to_string = function
  | Mutability.Unguarded -> "unguarded"
  | Mutability.Atomic_guard -> "atomic"
  | Mutability.Mutex_guard -> "mutex"
  | Mutability.Dls_guard -> "dls"

let guard_of_string = function
  | "unguarded" -> Mutability.Unguarded
  | "atomic" -> Mutability.Atomic_guard
  | "mutex" -> Mutability.Mutex_guard
  | "dls" -> Mutability.Dls_guard
  | s -> Json.parse_error "unknown guard %S" s

let use_to_json u =
  Json.Obj
    (List.concat
       [
         (match u.u_hint with Some h -> [ ("lib", Json.Str h) ] | None -> []);
         [
           ("name", Json.Str u.u_name);
           ("kind", Json.Str (kind_to_string u.u_kind));
           ("guarded", Json.Bool u.u_guarded);
           ("line", Json.int_ u.u_line);
           ("col", Json.int_ u.u_col);
         ];
       ])

let use_of_json j =
  {
    u_hint = Option.map Json.string_of (Json.member_opt "lib" j);
    u_name = Json.string_of (Json.member "name" j);
    u_kind = kind_of_string (Json.string_of (Json.member "kind" j));
    u_guarded = Json.member "guarded" j = Json.Bool true;
    u_line = Json.int_of (Json.member "line" j);
    u_col = Json.int_of (Json.member "col" j);
  }

let capture_to_json p =
  Json.Obj
    [
      ("name", Json.Str p.p_name);
      ("maker", Json.Str p.p_kind);
      ("sort", Json.Str (match p.p_sort with `Local -> "local" | `Param -> "param"));
      ("access", Json.Str (kind_to_string p.p_access));
      ("line", Json.int_ p.p_line);
      ("col", Json.int_ p.p_col);
    ]

let capture_of_json j =
  {
    p_name = Json.string_of (Json.member "name" j);
    p_kind = Json.string_of (Json.member "maker" j);
    p_sort =
      (match Json.string_of (Json.member "sort" j) with
      | "local" -> `Local
      | "param" -> `Param
      | s -> Json.parse_error "unknown capture sort %S" s);
    p_access = kind_of_string (Json.string_of (Json.member "access" j));
    p_line = Json.int_of (Json.member "line" j);
    p_col = Json.int_of (Json.member "col" j);
  }

let site_to_json s =
  Json.Obj
    [
      ("target", Json.Str s.t_target);
      ("line", Json.int_ s.t_line);
      ("col", Json.int_ s.t_col);
      ("captures", Json.Arr (List.map capture_to_json (List.rev s.t_captures)));
      ("uses", Json.Arr (List.map use_to_json (List.rev s.t_uses)));
    ]

let site_of_json j =
  {
    t_target = Json.string_of (Json.member "target" j);
    t_line = Json.int_of (Json.member "line" j);
    t_col = Json.int_of (Json.member "col" j);
    t_captures =
      List.rev (List.map capture_of_json (Json.list_of (Json.member "captures" j)));
    t_uses = List.rev (List.map use_of_json (Json.list_of (Json.member "uses" j)));
  }

let binding_to_json b =
  Json.Obj
    [
      ("name", Json.Str b.b_name);
      ("line", Json.int_ b.b_line);
      ("uses", Json.Arr (List.map use_to_json (List.rev b.b_uses)));
      ("sites", Json.Arr (List.map site_to_json (List.rev b.b_sites)));
    ]

let binding_of_json j =
  {
    b_name = Json.string_of (Json.member "name" j);
    b_line = Json.int_of (Json.member "line" j);
    b_uses = List.rev (List.map use_of_json (Json.list_of (Json.member "uses" j)));
    b_sites = List.rev (List.map site_of_json (Json.list_of (Json.member "sites" j)));
  }

let cell_to_json c =
  Json.Obj
    [
      ("name", Json.Str c.c_name);
      ("maker", Json.Str c.c_kind);
      ("guard", Json.Str (guard_to_string c.c_guard));
      ("line", Json.int_ c.c_line);
      ("col", Json.int_ c.c_col);
    ]

let cell_of_json j =
  {
    c_name = Json.string_of (Json.member "name" j);
    c_kind = Json.string_of (Json.member "maker" j);
    c_guard = guard_of_string (Json.string_of (Json.member "guard" j));
    c_line = Json.int_of (Json.member "line" j);
    c_col = Json.int_of (Json.member "col" j);
  }

let to_json t =
  Json.Obj
    [
      ("path", Json.Str t.s_path);
      ("lib", Json.Str t.s_lib);
      ("module", Json.Str t.s_module);
      ("digest", Json.Str t.s_digest);
      ("cells", Json.Arr (List.map cell_to_json t.s_cells));
      ("bindings", Json.Arr (List.map binding_to_json t.s_bindings));
      ("findings", Json.Arr (List.map Finding.to_json t.s_findings));
    ]

let of_json j =
  {
    s_path = Json.string_of (Json.member "path" j);
    s_lib = Json.string_of (Json.member "lib" j);
    s_module = Json.string_of (Json.member "module" j);
    s_digest = Json.string_of (Json.member "digest" j);
    s_cells = List.map cell_of_json (Json.list_of (Json.member "cells" j));
    s_bindings = List.map binding_of_json (Json.list_of (Json.member "bindings" j));
    s_findings = List.map Finding.of_json (Json.list_of (Json.member "findings" j));
  }
