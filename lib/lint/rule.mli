(** A lint rule: an id, documentation, a source-path scope, and a check —
    either over one compilation unit's typedtree (phase 1) or over the
    whole-program call graph assembled from every unit's summary
    (phase 2).

    Checks are pure — suppression ([@lint.allow]) and baselining are
    applied by {!Engine} on top of whatever a check reports. Program
    findings are filtered by [in_scope] on each finding's file. *)

type check =
  | Unit_check of (file:string -> Typedtree.structure -> Finding.t list)
  | Program_check of (Callgraph.t -> Finding.t list)

type t = {
  id : string;  (** short stable id, e.g. ["D1"] *)
  title : string;  (** one-line summary for [--list] *)
  rationale : string;  (** why violating this breaks the determinism story *)
  in_scope : string -> bool;  (** does the rule apply to this source path? *)
  check : check;
}

(** {2 Helpers shared by rule implementations} *)

val ident_name : Path.t -> string
(** [Path.name] with a leading ["Stdlib."] stripped, so [Random.self_init]
    and [Stdlib.Random.self_init] compare equal. *)

val is_stdlib : Path.t -> bool
(** True for paths rooted in the [Stdlib] unit — distinguishes the
    polymorphic [compare] from a module's own [compare]. *)

val head_ident : Typedtree.expression -> string option
(** The normalized name of the identifier in function position, looking
    through nested partial applications: [head_ident (f x y)] is [f]'s
    name when [f] is an identifier. *)

val iter_exprs : Typedtree.structure -> (Typedtree.expression -> unit) -> unit
(** Visit every expression in the structure, depth first. *)

val path_has_prefix : string list -> string -> bool
(** [path_has_prefix prefixes path]: does [path] start with any prefix? *)

val basename_in : string list -> string -> bool
(** [basename_in names path]: is [Filename.basename path] one of [names]? *)
