(* The shipped rule set. Each check walks one unit's typedtree; matching
   is on resolved paths (so [open Random] or local aliases of the banned
   modules are still caught when the compiler resolved them to the same
   path) and, for D3, on the instantiated type of the polymorphic
   identifier. *)

let finding ~rule ~file ~loc fmt =
  Printf.ksprintf (fun message -> Finding.make ~rule ~file ~loc ~message ()) fmt

(* --- D1: banned nondeterministic calls --- *)

(* ident -> what to use instead (the message is part of the baseline key,
   so keep these stable). *)
let d1_banned =
  [
    ("Random.self_init", "seed explicitly (Dangers_util.Rng.create ~seed)");
    ("Random.init", "use a Dangers_util.Rng state, not the global Random");
    ("Random.int", "use a Dangers_util.Rng state, not the global Random");
    ("Random.full_int", "use a Dangers_util.Rng state, not the global Random");
    ("Random.float", "use a Dangers_util.Rng state, not the global Random");
    ("Random.bool", "use a Dangers_util.Rng state, not the global Random");
    ("Random.bits", "use a Dangers_util.Rng state, not the global Random");
    ("Unix.gettimeofday", "use the simulated clock (Engine.now)");
    ("Unix.time", "use the simulated clock (Engine.now)");
    ("Sys.time", "use the simulated clock (Engine.now)");
    ("Hashtbl.hash", "hash layout varies across versions/flags; derive keys \
                      structurally");
    ("Hashtbl.seeded_hash", "hash layout varies across versions/flags; \
                             derive keys structurally");
  ]

let d1 =
  {
    Rule.id = "D1";
    title = "no nondeterministic calls in simulator/replication/core code";
    rationale =
      "every reproduced number rests on byte-identical fixed-seed runs; \
       wall clocks, the global Random state, and value hashing all vary \
       across runs, hosts, or compiler versions";
    in_scope =
      Rule.path_has_prefix [ "lib/sim/"; "lib/replication/"; "lib/core/" ];
    check =
      Rule.Unit_check
        (fun ~file str ->
        let acc = ref [] in
        Rule.iter_exprs str (fun e ->
            match e.exp_desc with
            | Texp_ident (path, _, _) -> (
                let name = Rule.ident_name path in
                match List.assoc_opt name d1_banned with
                | Some hint ->
                    acc :=
                      finding ~rule:"D1" ~file ~loc:e.exp_loc
                        "banned nondeterministic call %s: %s" name hint
                      :: !acc
                | None -> ())
            | _ -> ());
        List.rev !acc);
  }

(* --- D2: unordered hashtable iteration feeding export paths --- *)

(* Modules whose output is serialized or rendered: iteration order there
   is bucket order unless the keys go through a sort first. *)
let d2_modules =
  [
    "export.ml"; "trace_export.ml"; "metrics.ml"; "warnings.ml"; "json.ml";
    "repl_stats.ml"; "bench_file.ml"; "profiling.ml"; "timeseries.ml";
    "prometheus.ml"; "monitor.ml";
  ]

let sortish name =
  match String.rindex_opt name '.' with
  | Some i ->
      let last = String.sub name (i + 1) (String.length name - i - 1) in
      String.length last >= 4 && String.sub last 0 4 = "sort"
  | None -> String.length name >= 4 && String.sub name 0 4 = "sort"

(* An application is a "sorting context" when its head is a sort, or when
   it is a pipeline ([|>]/[@@]) one of whose operands heads a sort — so
   both [List.sort cmp (Hashtbl.fold ...)] and
   [Hashtbl.fold ... |> List.sort cmp] count as ordered. *)
let enters_sorted_context (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match Rule.head_ident f with
      | Some name when sortish name -> true
      | Some ("|>" | "@@") ->
          List.exists
            (fun (_, arg) ->
              match arg with
              | Some a -> (
                  match Rule.head_ident a with
                  | Some name -> sortish name
                  | None -> false)
              | None -> false)
            args
      | _ -> false)
  | _ -> false

let d2 =
  {
    Rule.id = "D2";
    title = "no unordered Hashtbl.iter/fold in export or snapshot modules";
    rationale =
      "hashtable iteration is bucket order — it depends on insertion \
       history and the hash function, so serialized output built from it \
       is not reproducible; sort the keys first";
    in_scope = Rule.basename_in d2_modules;
    check =
      Rule.Unit_check
        (fun ~file str ->
        let acc = ref [] in
        let depth = ref 0 in
        let open Tast_iterator in
        let expr sub (e : Typedtree.expression) =
          let sorted = enters_sorted_context e in
          if sorted then incr depth;
          (match e.exp_desc with
          | Texp_ident (path, _, _) -> (
              match Rule.ident_name path with
              | "Hashtbl.iter" ->
                  acc :=
                    finding ~rule:"D2" ~file ~loc:e.exp_loc
                      "Hashtbl.iter visits buckets in hash order; iterate \
                       sorted keys (or suppress if the body is \
                       order-insensitive)"
                    :: !acc
              | "Hashtbl.fold" when !depth = 0 ->
                  acc :=
                    finding ~rule:"D2" ~file ~loc:e.exp_loc
                      "Hashtbl.fold result is in bucket order; sort it in \
                       the same expression (List.sort ... or |> List.sort \
                       ...)"
                    :: !acc
              | _ -> ())
          | _ -> ());
          default_iterator.expr sub e;
          if sorted then decr depth
        in
        let it = { default_iterator with expr } in
        it.structure it str;
        List.rev !acc);
  }

(* --- D3: polymorphic comparison at float --- *)

let d3_polymorphic =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.min"; "Stdlib.max" ]

let rec mentions_float ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.name p = "float"
  | Tconstr (p, args, _) ->
      (match Path.name p with
      | "option" | "list" | "array" | "ref" -> List.exists mentions_float args
      | _ -> false)
  | Ttuple ts -> List.exists mentions_float ts
  | _ -> false

let d3 =
  {
    Rule.id = "D3";
    title = "no polymorphic =/<>/compare/min/max on floats in library code";
    rationale =
      "polymorphic comparison on floats boxes, and its NaN semantics \
       (nan = nan is false, compare nan nan is 0) silently disagree \
       between the two forms; stats must use Float.compare/Float.equal \
       so degenerate inputs fail loudly or order totally";
    in_scope = Rule.path_has_prefix [ "lib/" ];
    check =
      Rule.Unit_check
        (fun ~file str ->
        let acc = ref [] in
        Rule.iter_exprs str (fun e ->
            match e.exp_desc with
            | Texp_ident (path, _, _)
              when List.mem (Path.name path) d3_polymorphic
                   && Rule.is_stdlib path -> (
                match Types.get_desc e.exp_type with
                | Tarrow (_, t1, _, _) when mentions_float t1 ->
                    acc :=
                      finding ~rule:"D3" ~file ~loc:e.exp_loc
                        "polymorphic %s instantiated at a float-bearing \
                         type; use Float.equal/Float.compare (explicit \
                         NaN order)"
                        (Rule.ident_name path)
                      :: !acc
                | _ -> ())
            | _ -> ());
        List.rev !acc);
  }

(* --- R1: unguarded module-level mutable state --- *)

let r1_mutable_makers =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Array.make"; "Bytes.create"; "Bytes.make"; "Weak.create";
  ]

let r1_guarded_makers = [ "Atomic.make"; "Mutex.create"; "Domain.DLS.new_key" ]

let binding_name (vb : Typedtree.value_binding) =
  (* A type-constrained [let x : t = e] elaborates to an aliased
     pattern, so look through the alias too. *)
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Ident.name id
  | _ -> "_"

(* Sweep workers run tasks on their own domains: a plain ref or table at
   module level is shared unsynchronized state. A structure counts as
   mutex-guarded when it binds a Mutex.t at its own top level (the
   Warnings pattern: every access section takes the lock). *)
let r1 =
  let rec check_structure ~file (str : Typedtree.structure) acc =
    let top_binding_head (vb : Typedtree.value_binding) =
      Rule.head_ident vb.vb_expr
    in
    let has_mutex =
      List.exists
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.exists
                (fun vb -> top_binding_head vb = Some "Mutex.create")
                vbs
          | _ -> false)
        str.str_items
    in
    List.fold_left
      (fun acc (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) when not has_mutex ->
            List.fold_left
              (fun acc (vb : Typedtree.value_binding) ->
                let flag what =
                  finding ~rule:"R1" ~file ~loc:vb.vb_loc
                    "module-level mutable state '%s' (%s) is shared across \
                     sweep worker domains; use Atomic, a Mutex-guarded \
                     module, or Domain.DLS"
                    (binding_name vb) what
                  :: acc
                in
                match vb.vb_expr.exp_desc with
                | Texp_lazy _ -> flag "lazy: forcing races across domains"
                | Texp_apply _ -> (
                    match Rule.head_ident vb.vb_expr with
                    | Some name when List.mem name r1_guarded_makers -> acc
                    | Some name when List.mem name r1_mutable_makers ->
                        flag name
                    | _ -> acc)
                | _ -> acc)
              acc vbs
        | Tstr_module mb -> check_module_expr ~file mb.mb_expr acc
        | Tstr_recmodule mbs ->
            List.fold_left
              (fun acc (mb : Typedtree.module_binding) ->
                check_module_expr ~file mb.mb_expr acc)
              acc mbs
        | Tstr_include incl -> check_module_expr ~file incl.incl_mod acc
        | _ -> acc)
      acc str.str_items
  and check_module_expr ~file (me : Typedtree.module_expr) acc =
    match me.mod_desc with
    | Tmod_structure str -> check_structure ~file str acc
    | Tmod_constraint (me, _, _, _) -> check_module_expr ~file me acc
    | Tmod_functor (_, me) -> check_module_expr ~file me acc
    | _ -> acc
  in
  {
    Rule.id = "R1";
    title = "no unguarded module-level mutable state in task-pool-reachable \
             code";
    rationale =
      "Runner.Task_pool runs tasks on separate domains; module-level \
       refs, tables, and lazies are cross-domain shared state — a data \
       race at worst, a nondeterministic result at best";
    in_scope = Rule.path_has_prefix [ "lib/" ];
    check =
      Rule.Unit_check
        (fun ~file str -> List.rev (check_structure ~file str []));
  }

(* --- P1: silently partial functions --- *)

let p1_partials =
  [
    ("List.hd", "match on the list and fail with a labelled invalid_arg");
    ("List.tl", "match on the list and fail with a labelled invalid_arg");
    ("List.nth", "pattern match, or keep an array if indexing is needed");
    ("Option.get", "match, or Option.value with an explicit default");
  ]

let p1 =
  {
    Rule.id = "P1";
    title = "no List.hd/List.tl/List.nth/Option.get in library code";
    rationale =
      "these raise a context-free Failure/Invalid_argument from deep in a \
       run; library code must fail with a message that names the caller \
       and the broken precondition";
    in_scope = Rule.path_has_prefix [ "lib/" ];
    check =
      Rule.Unit_check
        (fun ~file str ->
        let acc = ref [] in
        Rule.iter_exprs str (fun e ->
            match e.exp_desc with
            | Texp_ident (path, _, _) -> (
                let name = Rule.ident_name path in
                match List.assoc_opt name p1_partials with
                | Some hint ->
                    acc :=
                      finding ~rule:"P1" ~file ~loc:e.exp_loc
                        "partial function %s: %s" name hint
                      :: !acc
                | None -> ())
            | _ -> ());
        List.rev !acc);
  }

(* --- RT1: scheme code must go through the runtime clock --- *)

(* Scheme code (lib/core/) runs on either runtime; naming the simulator's
   engine — directly or through the conventional [module Engine = ...]
   alias — or reading the machine clock re-pins it to one backend. The
   port left lib/core clean; this keeps it that way. *)
let rt1_banned_prefixes = [ "Dangers_sim.Engine."; "Engine." ]

let rt1_banned_wall_clock =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let rt1 =
  {
    Rule.id = "RT1";
    title = "scheme code schedules through the runtime clock only";
    rationale =
      "lib/core runs unchanged on the simulator and the live runtime; \
       calling Dangers_sim.Engine directly (or reading the wall clock) \
       pins it to one backend and silently breaks sim/live equivalence — \
       use Dangers_runtime.Clock (now/schedule/cancel)";
    in_scope = Rule.path_has_prefix [ "lib/core/" ];
    check =
      Rule.Unit_check
        (fun ~file str ->
        let acc = ref [] in
        let starts_with prefix name =
          String.length name >= String.length prefix
          && String.sub name 0 (String.length prefix) = prefix
        in
        Rule.iter_exprs str (fun e ->
            match e.exp_desc with
            | Texp_ident (path, _, _) ->
                let name = Rule.ident_name path in
                if List.exists (fun p -> starts_with p name) rt1_banned_prefixes
                then
                  acc :=
                    finding ~rule:"RT1" ~file ~loc:e.exp_loc
                      "direct engine call %s: schedule through \
                       Dangers_runtime.Clock" name
                    :: !acc
                else if List.mem name rt1_banned_wall_clock then
                  acc :=
                    finding ~rule:"RT1" ~file ~loc:e.exp_loc
                      "wall-clock read %s: use Dangers_runtime.Clock.now"
                      name
                    :: !acc
            | _ -> ());
        List.rev !acc);
  }

(* --- DR1–DR4: cross-domain data races (whole-program, two-phase) --- *)

(* The interprocedural rules look at everything the build produces:
   library code, the CLI drivers in bin/, and the benchmark drivers in
   bench/ — Domain.spawn in a driver races exactly like one in a
   library. *)
let dr_scope = Rule.path_has_prefix [ "lib/"; "bin/"; "bench/" ]

let dr1 =
  {
    Rule.id = "DR1";
    title = "no unsynchronized mutable state crossing a domain boundary";
    rationale =
      "a closure handed to Domain.spawn/Thread.create or a pool runs \
       concurrently with its creator; any ref, array, table, or mutable \
       field it shares without Atomic/Mutex/DLS is a data race — the \
       multicore analogue of the paper's unsynchronized eager \
       replication";
    in_scope = dr_scope;
    check = Rule.Program_check Callgraph.dr1;
  }

let dr2 =
  {
    Rule.id = "DR2";
    title = "no Atomic.set built from Atomic.get of the same atomic";
    rationale =
      "Atomic.set a (f (Atomic.get a)) is two atomic operations with a \
       window between them: concurrent increments are lost exactly like \
       unsynchronized replica updates; use fetch_and_add or a \
       compare_and_set retry loop";
    in_scope = dr_scope;
    check =
      Rule.Program_check (fun g -> Callgraph.local_findings g ~rule:"DR2");
  }

let dr3 =
  {
    Rule.id = "DR3";
    title = "mutex discipline: balanced lock/unlock, no raise or block \
             while holding";
    rationale =
      "a lock left held on one branch, released twice in a loop, or held \
       across a raise/join/sleep turns a race-free module into a \
       deadlock or a serialization cliff; pair every lock with an unlock \
       on every path, or use Fun.protect/Mutex.protect";
    in_scope = dr_scope;
    check =
      Rule.Program_check (fun g -> Callgraph.local_findings g ~rule:"DR3");
  }

let dr4 =
  {
    Rule.id = "DR4";
    title = "no module-level mutable state reachable from both a crossing \
             closure and top-level code";
    rationale =
      "state touched by a spawned domain and by ordinary callers is \
       shared even if each side looks single-threaded locally; the race \
       only fires when the pool is enabled, which is exactly when it is \
       hardest to debug";
    in_scope = dr_scope;
    check = Rule.Program_check Callgraph.dr4;
  }

let all = [ d1; d2; d3; r1; p1; rt1; dr1; dr2; dr3; dr4 ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun r -> r.Rule.id = id) all

let ids () = List.map (fun r -> r.Rule.id) all
