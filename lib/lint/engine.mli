(** Orchestrates a lint run in two phases: load cmts, run the per-unit
    rules over each typedtree, then — when any whole-program rule is
    selected — summarize every unit (through the on-disk cache), build
    the call graph, and run the program rules over it. [@lint.allow]
    suppression comes from the typedtrees in both phases, so a cached
    summary never bypasses an annotation; the baseline is subtracted
    last. *)

val default_build_dir : unit -> string
(** ["_build/default"] when it exists under the cwd, ["."] otherwise —
    so the CLI works both from the repo root and from inside the build
    tree (the [@lint] alias). *)

val check_sources :
  ?all_files:bool ->
  rules:Rule.t list ->
  Loader.source list ->
  Finding.t list * int
(** Run [rules] (both phases, no cache) over already-loaded sources;
    returns (sorted unsuppressed findings, suppressed count).
    [all_files] ignores each rule's [in_scope] filter — used by tests
    and fixture runs. *)

val run :
  ?all_files:bool ->
  ?baseline:Baseline.t ->
  ?cache_file:string ->
  ?use_cache:bool ->
  ?graph_out:string ->
  rules:Rule.t list ->
  build_dir:string ->
  prefixes:string list ->
  unit ->
  Report.t
(** [cache_file] names the summary cache to read and rewrite
    ([use_cache:false] ignores it entirely); [graph_out] dumps the
    resolved def/use graph as JSON after phase 2. Both only apply when a
    program rule is selected. *)

val grandfather :
  ?all_files:bool ->
  rules:Rule.t list ->
  build_dir:string ->
  prefixes:string list ->
  unit ->
  Baseline.t
(** The baseline that would make the current tree lint clean
    ([--update-baseline]). *)
