(** Orchestrates a lint run: load cmts, run the selected rules over each
    unit, drop [@lint.allow]-suppressed findings, subtract the baseline. *)

val default_build_dir : unit -> string
(** ["_build/default"] when it exists under the cwd, ["."] otherwise —
    so the CLI works both from the repo root and from inside the build
    tree (the [@lint] alias). *)

val check_sources :
  ?all_files:bool ->
  rules:Rule.t list ->
  Loader.source list ->
  Finding.t list * int
(** Run [rules] over already-loaded sources; returns (sorted unsuppressed
    findings, suppressed count). [all_files] ignores each rule's
    [in_scope] filter — used by tests and fixture runs. *)

val run :
  ?all_files:bool ->
  ?baseline:Baseline.t ->
  rules:Rule.t list ->
  build_dir:string ->
  prefixes:string list ->
  unit ->
  Report.t

val grandfather :
  ?all_files:bool ->
  rules:Rule.t list ->
  build_dir:string ->
  prefixes:string list ->
  unit ->
  Baseline.t
(** The baseline that would make the current tree lint clean
    ([--update-baseline]). *)
