module Json = Dangers_obs.Json

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~loc ~message =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let key f = f.rule ^ "|" ^ f.file ^ "|" ^ f.message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let to_json f =
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("file", Json.Str f.file);
      ("line", Json.int_ f.line);
      ("col", Json.int_ f.col);
      ("message", Json.Str f.message);
    ]

let of_json j =
  {
    rule = Json.string_of (Json.member "rule" j);
    file = Json.string_of (Json.member "file" j);
    line = Json.int_of (Json.member "line" j);
    col = Json.int_of (Json.member "col" j);
    message = Json.string_of (Json.member "message" j);
  }
