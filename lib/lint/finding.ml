module Json = Dangers_obs.Json

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Error
  | "warning" -> Warning
  | s -> Json.parse_error "unknown finding severity %S" s

let make ?(severity = Error) ~rule ~file ~loc ~message () =
  let p = loc.Location.loc_start in
  {
    rule;
    severity;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let at ?(severity = Error) ~rule ~file ~line ~col ~message () =
  { rule; severity; file; line; col; message }

let key f = f.rule ^ "|" ^ f.file ^ "|" ^ f.message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message

let to_json f =
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("severity", Json.Str (severity_to_string f.severity));
      ("file", Json.Str f.file);
      ("line", Json.int_ f.line);
      ("col", Json.int_ f.col);
      ("message", Json.Str f.message);
    ]

let of_json j =
  {
    rule = Json.string_of (Json.member "rule" j);
    severity =
      (match Json.member_opt "severity" j with
      | Some s -> severity_of_string (Json.string_of s)
      | None -> Error);
    file = Json.string_of (Json.member "file" j);
    line = Json.int_of (Json.member "line" j);
    col = Json.int_of (Json.member "col" j);
    message = Json.string_of (Json.member "message" j);
  }
