type t = {
  mutable file_wide : string list;  (** rule ids allowed everywhere *)
  mutable ranges : (string * int * int) list;  (** id, first line, last line *)
  mutable seen : int;
}

let attribute_name = "lint.allow"

(* The payload is a string literal naming one or more rule ids:
   [@lint.allow "D2"] or [@lint.allow "D2, R1"] or [@lint.allow "*"]. *)
let payload_ids (payload : Parsetree.payload) =
  match payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun id -> id <> "")
  | _ -> []

let ids_of_attributes (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = attribute_name then payload_ids a.attr_payload
      else [])
    attrs

let collect str =
  let t = { file_wide = []; ranges = []; seen = 0 } in
  let add_ranges (loc : Location.t) ids =
    if ids <> [] then begin
      let first = loc.loc_start.pos_lnum and last = loc.loc_end.pos_lnum in
      t.ranges <- List.map (fun id -> (id, first, last)) ids @ t.ranges;
      t.seen <- t.seen + 1
    end
  in
  let add_file_wide ids =
    if ids <> [] then begin
      t.file_wide <- ids @ t.file_wide;
      t.seen <- t.seen + 1
    end
  in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    add_ranges e.exp_loc (ids_of_attributes e.exp_attributes);
    default_iterator.expr sub e
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    add_ranges vb.vb_loc (ids_of_attributes vb.vb_attributes);
    default_iterator.value_binding sub vb
  in
  let structure_item sub (item : Typedtree.structure_item) =
    (match item.str_desc with
    | Tstr_attribute a ->
        if a.attr_name.txt = attribute_name then
          add_file_wide (payload_ids a.attr_payload)
    | _ -> ());
    default_iterator.structure_item sub item
  in
  let it = { default_iterator with expr; value_binding; structure_item } in
  it.structure it str;
  t

(* Rule ids are matched case-insensitively so the conventional lowercase
   form ([@lint.allow "dr1"]) and the catalogue form ("DR1") both work. *)
let matches rule id =
  id = "*" || String.uppercase_ascii id = String.uppercase_ascii rule

let allows t ~rule ~line =
  List.exists (matches rule) t.file_wide
  || List.exists
       (fun (id, first, last) ->
         matches rule id && first <= line && line <= last)
       t.ranges

let count t = t.seen
