(* On-disk summary cache. One JSON file keyed by (source path, cmt
   digest): a module whose cmt is byte-identical to the cached run is
   never re-summarized. A missing, unreadable, or schema-mismatched
   cache degrades to empty — the cache is a pure accelerator, never a
   correctness input. *)

module Json = Dangers_obs.Json

let schema_id = "dangers/lint-summary-cache/v1"
let default_path = Filename.concat "_build" ".dangers-lint-cache.json"

type t = (string * string, Summary.t) Hashtbl.t

let empty () : t = Hashtbl.create 16

let load path : t =
  let tbl = Hashtbl.create 128 in
  (try
     let ic = open_in_bin path in
     let contents =
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     in
     let j = Json.of_string contents in
     if Json.member_opt "schema" j = Some (Json.Str schema_id) then
       List.iter
         (fun entry ->
           let s = Summary.of_json entry in
           if s.Summary.s_digest <> "" then
             Hashtbl.replace tbl (s.Summary.s_path, s.Summary.s_digest) s)
         (Json.list_of (Json.member "entries" j))
   with Sys_error _ | End_of_file | Json.Parse_error _ -> Hashtbl.reset tbl);
  tbl

let save path (summaries : Summary.t list) =
  let entries =
    List.filter (fun (s : Summary.t) -> s.Summary.s_digest <> "") summaries
  in
  let j =
    Json.Obj
      [
        ("schema", Json.Str schema_id);
        ("entries", Json.Arr (List.map Summary.to_json entries));
      ]
  in
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string j));
    Sys.rename tmp path
  with Sys_error _ -> ()

(* Summarize every source, consulting [cache]; returns the summaries in
   source order plus hit/miss counts. *)
let summarize ~(cache : t) sources =
  let hits = ref 0 and misses = ref 0 in
  let summaries =
    List.map
      (fun (src : Loader.source) ->
        match
          if src.Loader.digest = "" then None
          else Hashtbl.find_opt cache (src.Loader.path, src.Loader.digest)
        with
        | Some s ->
            incr hits;
            s
        | None ->
            incr misses;
            Summary.of_source src)
      sources
  in
  (summaries, !hits, !misses)
