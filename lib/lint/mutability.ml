(* Classification tables shared by the interprocedural pass: what
   allocates mutable state, what mutates it, what synchronizes it, and
   how resolved paths are normalized so a use in one library matches a
   definition in another.

   Dune wraps each library, so a cross-module reference resolves to a
   mangled unit name ([Dangers_util__Domain_pool.parallel_for]) or to an
   alias path ([Dangers_util.Domain_pool.parallel_for]). Both normalize
   to the same [(lib hint, "Domain_pool.parallel_for")] pair; definitions
   carry the same shape derived from their source path, so matching is
   library-aware without reading any dune metadata. *)

(* --- name normalization --- *)

let strip_stdlib name =
  let prefix = "Stdlib." in
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    String.sub name n (String.length name - n)
  else name

let split_mangled component =
  (* ["Dangers_util__Domain_pool"] -> (Some "dangers_util", "Domain_pool") *)
  match String.index_opt component '_' with
  | None -> (None, component)
  | Some _ -> (
      let n = String.length component in
      let rec find i =
        if i + 1 >= n then None
        else if component.[i] = '_' && component.[i + 1] = '_' then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> (None, component)
      | Some i ->
          ( Some (String.lowercase_ascii (String.sub component 0 i)),
            String.sub component (i + 2) (n - i - 2) ))

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Normalized use: optional library hint plus the [Module.rest] tail that
   definitions are keyed by. *)
let normalize_use name =
  let name = strip_stdlib name in
  match String.split_on_char '.' name with
  | [] -> (None, name)
  | first :: rest -> (
      match split_mangled first with
      | Some lib, modname ->
          (Some lib, String.concat "." (modname :: rest))
      | None, _ when starts_with "Dangers_" first -> (
          (* Library alias path: Dangers_util.Domain_pool.f *)
          match rest with
          | [] -> (None, name)
          | modname :: tail ->
              ( Some (String.lowercase_ascii first),
                String.concat "." (modname :: tail) ))
      | None, _ -> (None, name))

let normalize_path path = normalize_use (Path.name path)

(* The short [Module.rest] form, hint dropped — used for matching the
   fixed tables below, where the module name is unambiguous. *)
let short_name path = snd (normalize_path path)

(* Library slug a definition in [source_path] belongs to:
   lib/util/... -> "dangers_util"; bin/ and bench/ keep the directory
   name (executables are never referenced cross-module, so any stable
   value works). *)
let lib_of_source_path path =
  match String.split_on_char '/' path with
  | "lib" :: dir :: _ -> "dangers_" ^ dir
  | dir :: _ :: _ -> dir
  | _ -> path

let module_of_source_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* --- mutable allocation --- *)

(* What a module- or let-level binding allocates, judged by the head of
   its right-hand side. [Guarded_*] makers are safe to share across
   domains by construction; [Unguarded] ones are the cells the DR rules
   track. *)
type guard = Unguarded | Atomic_guard | Mutex_guard | Dls_guard

type maker = {
  m_kind : string;  (** printable allocation kind, e.g. ["Hashtbl.create"] *)
  m_guard : guard;
}

let unguarded_makers =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Array.make"; "Array.create_float"; "Array.init"; "Bytes.create";
    "Bytes.make"; "Weak.create";
  ]

let guarded_makers =
  [
    ("Atomic.make", Atomic_guard);
    ("Mutex.create", Mutex_guard);
    ("Condition.create", Mutex_guard);
    ("Domain.DLS.new_key", Dls_guard);
  ]

let mutex_type_names = [ "Mutex.t"; "Stdlib.Mutex.t" ]

let type_is_mutex ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> List.mem (Path.name p) mutex_type_names
  | _ -> false

let type_is_atomic ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) ->
      let n = Path.name p in
      n = "Atomic.t" || n = "Stdlib.Atomic.t"
  | _ -> false

(* A record that carries its own Mutex.t (or Atomic.t) field is treated
   as self-guarded shared state: the Domain_pool / Live_clock idiom. The
   label array on any one field descriptor lists every field of the
   record, so no environment lookup is needed. *)
let record_self_guarded (label : Types.label_description) =
  Array.exists
    (fun (l : Types.label_description) ->
      type_is_mutex l.lbl_arg || type_is_atomic l.lbl_arg)
    label.lbl_all

let rec head_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> Some (short_name path)
  | Texp_apply (f, _) -> head_of f
  | _ -> None

(* Classify a binding's right-hand side. Record literals are judged by
   their fields: any mutable field makes the record a mutable cell, and a
   Mutex.t/Atomic.t field makes it self-guarded. *)
let maker_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_lazy _ -> Some { m_kind = "lazy"; m_guard = Unguarded }
  | Texp_record { fields; _ } ->
      let labels = Array.map fst fields in
      let mutable_field =
        Array.exists
          (fun (l : Types.label_description) -> l.lbl_mut = Mutable)
          labels
      in
      if not mutable_field then None
      else if Array.length labels > 0 && record_self_guarded labels.(0) then
        Some { m_kind = "record"; m_guard = Mutex_guard }
      else Some { m_kind = "record"; m_guard = Unguarded }
  | Texp_array (_ :: _) -> Some { m_kind = "array"; m_guard = Unguarded }
  | Texp_apply _ | Texp_ident _ -> (
      match head_of e with
      | None -> None
      | Some name -> (
          match List.assoc_opt name guarded_makers with
          | Some g -> Some { m_kind = name; m_guard = g }
          | None ->
              if List.mem name unguarded_makers then
                Some { m_kind = name; m_guard = Unguarded }
              else None))
  | _ -> None

(* --- mutation and synchronized access --- *)

(* Functions whose named argument position mutates the value passed
   there: (normalized head, 0-based argument index). *)
let write_ops =
  [
    (":=", 0);
    ("incr", 0);
    ("decr", 0);
    ("Hashtbl.add", 0); ("Hashtbl.replace", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.clear", 0); ("Hashtbl.filter_map_inplace", 1);
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2); ("Array.sort", 1); ("Array.fast_sort", 1);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.fill", 0);
    ("Bytes.blit", 2);
    ("Buffer.add_string", 0); ("Buffer.add_char", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_substring", 0); ("Buffer.add_buffer", 1); ("Buffer.clear", 0);
    ("Buffer.reset", 0); ("Buffer.truncate", 0);
    ("Queue.add", 1); ("Queue.push", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Queue.clear", 0); ("Queue.transfer", 0);
    ("Stack.push", 1); ("Stack.pop", 0); ("Stack.clear", 0);
    ("Weak.set", 0);
  ]

(* Reads that touch mutable structure (racy against a concurrent write
   even though they write nothing themselves). *)
let read_ops =
  [
    ("!", 0);
    ("Hashtbl.find", 0); ("Hashtbl.find_opt", 0); ("Hashtbl.find_all", 0);
    ("Hashtbl.mem", 0); ("Hashtbl.length", 0); ("Hashtbl.fold", 1);
    ("Hashtbl.iter", 1); ("Hashtbl.copy", 0); ("Hashtbl.to_seq", 0);
    ("Array.get", 0); ("Array.unsafe_get", 0); ("Array.length", 0);
    ("Array.iter", 1); ("Array.iteri", 1); ("Array.fold_left", 2);
    ("Array.map", 1); ("Array.to_list", 0); ("Array.copy", 0);
    ("Bytes.get", 0); ("Bytes.unsafe_get", 0); ("Bytes.sub_string", 0);
    ("Buffer.contents", 0); ("Buffer.length", 0);
    ("Queue.peek", 0); ("Queue.is_empty", 0); ("Queue.length", 0);
    ("Stack.top", 0); ("Stack.is_empty", 0); ("Stack.length", 0);
    ("Lazy.force", 0);
    ("Weak.get", 0);
  ]

(* Atomic operations synchronize their first argument. *)
let atomic_ops =
  [
    "Atomic.get"; "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
  ]

let dls_ops = [ "Domain.DLS.get"; "Domain.DLS.set"; "Domain.self" ]

(* --- DR3 call classes --- *)

(* Mutex.try_lock is deliberately absent: its lock is conditional on the
   result, which a linear balance count cannot model. *)
let lock_ops = [ "Mutex.lock" ]
let unlock_ops = [ "Mutex.unlock" ]

(* Fun.protect / Mutex.protect: the body runs with the finally guaranteed,
   so raising inside them is lock-safe. *)
let protect_ops = [ "Fun.protect"; "Mutex.protect" ]

let raising_ops =
  [
    "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "Invalid_argument";
    "Printexc.raise_with_backtrace";
  ]

(* Parking or joining while holding a lock: at best a latency cliff, at
   worst a deadlock. Condition.wait is exempt — it atomically releases
   the mutex it is given. *)
let blocking_ops =
  [
    "Unix.sleep"; "Unix.sleepf"; "Unix.select"; "Unix.wait"; "Unix.waitpid";
    "Domain.join"; "Thread.join"; "Thread.delay";
  ]

(* --- domain-crossing targets --- *)

(* An application of one of these hands its closure argument to another
   domain. [by_label] names labelled closure arguments; [positional]
   gives 0-based positions checked when the label is absent. *)
type crossing = {
  x_name : string;
  x_label : string option;
  x_positional : int list;
}

let crossings =
  [
    { x_name = "Domain.spawn"; x_label = None; x_positional = [ 0 ] };
    { x_name = "Thread.create"; x_label = None; x_positional = [ 0 ] };
    { x_name = "Domain_pool.parallel_for"; x_label = Some "f"; x_positional = [] };
    { x_name = "Task_pool.map"; x_label = Some "f"; x_positional = [] };
    { x_name = "Pool.parallel_for"; x_label = Some "f"; x_positional = [] };
    { x_name = "Live_clock.post"; x_label = None; x_positional = [ 1 ] };
  ]

let crossing_of name =
  List.find_opt (fun c -> c.x_name = name) crossings
