(* E5 — Equation (14): lazy-group reconciliation. The paper equates the
   reconciliation rate with the eager wait rate (equation 10): transactions
   that would wait face reconciliation instead. We measure both faces in
   the lazy-group simulator: the lock-wait rate across all local lock
   spaces (the equation's quantity, cubic in N) and the operational
   dangerous-update rate (timestamp-chain mismatches actually submitted to
   a reconciliation rule). *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Lazy_group_eq = Dangers_analytic.Lazy_group
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with db_size = 400; tps = 5.; actions = 4 }

let experiment =
  {
    Experiment.id = "E5";
    title = "Equation (14): lazy-group reconciliation rises as Nodes^3";
    paper_ref = "Section 4, equation (14)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let nodes_values = if quick then [ 2; 4 ] else [ 2; 3; 4; 6 ] in
        let table =
          Table.create
            ~caption:
              "Lazy-group (TPS=5/node, Actions=4, DB=400), timestamp-priority \
               rule"
            [
              Table.column "Nodes";
              Table.column "eq14 rate model";
              Table.column "waits/s measured";
              Table.column "dangerous updates/s";
              Table.column "deadlocks/s (local)";
            ]
        in
        let points =
          List.map
            (fun nodes ->
              let params = { base with nodes } in
              let summaries =
                List.map
                  (fun seed -> Scheme.run_named "lazy-group" (Scheme.spec params) ~seed ~warmup:5. ~span)
                  seeds
              in
              let mean f =
                List.fold_left (fun acc s -> acc +. f s) 0. summaries
                /. float_of_int (List.length summaries)
              in
              let waits = mean (fun s -> s.Repl_stats.wait_rate) in
              let dangerous = mean (fun s -> s.Repl_stats.reconciliation_rate) in
              let deadlocks = mean (fun s -> s.Repl_stats.deadlock_rate) in
              Table.add_row table
                [
                  Table.cell_int nodes;
                  Table.cell_rate (Lazy_group_eq.reconciliation_rate params);
                  Table.cell_rate waits;
                  Table.cell_rate dangerous;
                  Table.cell_rate deadlocks;
                ];
              (float_of_int nodes, waits, dangerous))
            nodes_values
        in
        let wait_exp =
          Experiment.fitted_exponent (List.map (fun (n, w, _) -> (n, w)) points)
        in
        let dangerous_exp =
          Experiment.fitted_exponent (List.map (fun (n, _, d) -> (n, d)) points)
        in
        {
          Experiment.id = "E5";
          title = "Equation (14): lazy-group reconciliation rises as Nodes^3";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "lazy wait-rate exponent in Nodes (eq 14 model: 3)";
                expected = 3.;
                actual = wait_exp;
                tolerance = 0.8;
              };
              {
                Experiment_.label =
                  "dangerous-update rate exponent in Nodes (eq 14 shape: 3)";
                expected = 3.;
                actual = dangerous_exp;
                tolerance = 1.2;
              };
            ];
          notes =
            [
              "Equation (14) reads the lazy system's wait rate as its \
               reconciliation hazard; the operational timestamp-mismatch \
               rate is lower but grows with the same instability.";
            ];
        });
  }
