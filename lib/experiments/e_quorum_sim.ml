(* E14 — §3's availability assumption, validated dynamically: eager
   replication under node failures with majority quorums. The measured
   fraction of update attempts that find a write quorum should match the
   closed-form binomial prediction of E10, and every recovering node must
   catch up before counting again (up-replica consistency). *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Quorum = Dangers_replication.Quorum
module Quorum_sim = Dangers_replication.Quorum_sim
module Common = Dangers_replication.Common
module Experiment_ = Experiment

let base = { Params.default with db_size = 200; tps = 2.; actions = 2 }

let run_point ~nodes ~uptime ~seed ~span =
  let params = { base with nodes } in
  let sim =
    Quorum_sim.create ~quorum:(Quorum.majority ~n:nodes) ~uptime
      ~mean_downtime:20. params ~seed
  in
  Quorum_sim.start sim;
  Dangers_runtime.Clock.run_for (Quorum_sim.base sim).Common.clock span;
  Quorum_sim.stop_load sim;
  ( Quorum_sim.availability sim,
    Quorum_sim.catch_ups sim,
    Quorum_sim.up_replicas_consistent sim )

let experiment =
  {
    Experiment.id = "E14";
    title = "Quorum availability under live failures (dynamic E10)";
    paper_ref = "Section 3 (quorum assumption), Gifford SOSP'79";
    run =
      (fun ~quick ~seed ->
        let span = if quick then 2_000. else 10_000. in
        let table =
          Table.create
            ~caption:
              "Majority quorums, exponential failures (mean downtime 20s); \
               measured update availability vs closed form"
            [
              Table.column "nodes";
              Table.column "uptime p";
              Table.column "closed form";
              Table.column "measured";
              Table.column "catch-ups";
              Table.column "up replicas consistent";
            ]
        in
        let points =
          List.concat_map
            (fun nodes ->
              List.map
                (fun uptime ->
                  let availability, catch_ups, consistent =
                    run_point ~nodes ~uptime ~seed ~span
                  in
                  let predicted =
                    Quorum.write_availability (Quorum.majority ~n:nodes)
                      ~p_up:uptime
                  in
                  Table.add_row table
                    [
                      Table.cell_int nodes;
                      Table.cell_float ~digits:2 uptime;
                      Table.cell_float ~digits:4 predicted;
                      Table.cell_float ~digits:4 availability;
                      Table.cell_int catch_ups;
                      (if consistent then "yes" else "NO");
                    ];
                  (predicted, availability, consistent))
                (if quick then [ 0.9 ] else [ 0.8; 0.9 ]))
            [ 3; 5 ]
        in
        let worst_gap =
          List.fold_left
            (fun acc (predicted, measured, _) ->
              Float.max acc (Float.abs (predicted -. measured)))
            0. points
        in
        let all_consistent = List.for_all (fun (_, _, c) -> c) points in
        {
          Experiment.id = "E14";
          title = "Quorum availability under live failures (dynamic E10)";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "worst |measured - closed form| availability gap";
                expected = 0.;
                actual = worst_gap;
                tolerance = 0.05;
              };
              {
                Experiment_.label = "up replicas always consistent (1 = yes)";
                expected = 1.;
                actual = (if all_consistent then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "The availability the eager analysis assumes is real but \
               bought with quorum overlap: every committed update reaches a \
               majority, so any future quorum contains a current replica \
               for recovering nodes to catch up from.";
            ];
        });
  }
