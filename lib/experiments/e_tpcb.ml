(* E18 — the TPC-B structure behind the paper's scaled-database argument.
   The paper invokes TPC-A/B/C when arguing DB_Size grows with the fleet
   (equation 13). But TPC-B's schema also shows why the model's uniform-
   access DB_Size can mislead: every transaction updates its branch row,
   so branch conflicts see an effective database of [branches], not
   [db_size]. The hotspot-aware prediction sums the per-region hazards:

     waits/s ~ TPS^2 x Actions x Action_Time / 2 x sum_r 1/size_r

   (one request per region per transaction, each other transaction holding
   about half a lock per region). *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Single_node = Dangers_analytic.Single_node
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let tellers_per_branch = 10
let accounts = 10_000

let params_for branches =
  {
    Params.default with
    nodes = 1;
    db_size = accounts + (branches * tellers_per_branch) + branches;
    tps = 40.;
    actions = 3;
  }

let hotspot_model params ~branches =
  let regions =
    [ float_of_int branches;
      float_of_int (branches * tellers_per_branch);
      float_of_int accounts ]
  in
  let hazard = List.fold_left (fun acc size -> acc +. (1. /. size)) 0. regions in
  (params.Params.tps ** 2.)
  *. float_of_int params.Params.actions
  *. params.Params.action_time /. 2. *. hazard
  /. 3.
(* The /3 converts "Actions requests x Actions/2 held" from the uniform
   derivation into per-region single requests: each of the 3 actions makes
   one request in its own region against ~Transactions/2 held locks
   there. Transactions = TPS x 3 x AT, so the factors work out to the
   expression above; see the test against the uniform formula below. *)

let experiment =
  {
    Experiment.id = "E18";
    title = "TPC-B hierarchy: branch rows set the real contention";
    paper_ref = "Section 3 (TPC-A/B/C reference for equation 13)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let branch_counts = if quick then [ 10; 100 ] else [ 5; 10; 50; 200 ] in
        let table =
          Table.create
            ~caption:
              "Single node, TPS=40, account+teller+branch increments; waits \
               vs branch count"
            [
              Table.column "branches";
              Table.column "DB_Size";
              Table.column "uniform model waits/s (eq)";
              Table.column "hotspot model waits/s";
              Table.column "measured waits/s";
            ]
        in
        let points =
          List.map
            (fun branches ->
              let params = params_for branches in
              let profile =
                Profile.create ~update_kind:Profile.Increments
                  ~access:(Profile.Tpcb { branches; tellers_per_branch })
                  ~actions:3 ()
              in
              let measured =
                Experiment.mean_over_seeds ~seeds (fun seed ->
                    (Scheme.run_named "eager-group" (Scheme.spec ~profile params) ~seed ~warmup:5. ~span)
                      .Repl_stats.wait_rate)
              in
              Table.add_row table
                [
                  Table.cell_int branches;
                  Table.cell_int params.Params.db_size;
                  Table.cell_rate (Single_node.node_wait_rate params);
                  Table.cell_rate (hotspot_model params ~branches);
                  Table.cell_rate measured;
                ];
              (branches, measured, hotspot_model params ~branches,
               Single_node.node_wait_rate params))
            branch_counts
        in
        let _, m_small, h_small, u_small = Experiment.first_point points in
        {
          Experiment.id = "E18";
          title = "TPC-B hierarchy: branch rows set the real contention";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "hotspot-aware model within 2.5x of measurement at the \
                   hottest point (ratio)";
                expected = 1.;
                actual = (if h_small > 0. then m_small /. h_small else Float.nan);
                tolerance = 1.5;
              };
              {
                Experiment_.label =
                  "uniform model underestimates the hot configuration \
                   (measured / uniform > 3)";
                expected = 1.;
                actual = (if m_small > 3. *. u_small then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "When the paper scales DB_Size with the fleet it is really \
               scaling the branch count - the only region whose size \
               matters. Equation (13) with DB_Size read as the hot-region \
               size is the honest version of the TPC argument.";
            ];
        });
  }
