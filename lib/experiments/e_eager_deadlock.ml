(* E3 — Equations (9)-(12): eager replication's cubic instability. Waits
   (plentiful) carry the exponent test; deadlocks (waits^2-rare) are
   checked as a growth ratio between the sweep's endpoints. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Eager = Dangers_analytic.Eager
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with db_size = 400; tps = 5.; actions = 4 }

let measure params ~seeds ~span =
  let summaries =
    List.map (fun seed -> Scheme.run_named "eager-group" (Scheme.spec params) ~seed ~warmup:5. ~span) seeds
  in
  let mean f =
    List.fold_left (fun acc s -> acc +. f s) 0. summaries
    /. float_of_int (List.length summaries)
  in
  ( mean (fun s -> s.Repl_stats.wait_rate),
    mean (fun s -> s.Repl_stats.deadlock_rate) )

let sweep ?(scale_db = false) ~nodes_values ~seeds ~span () =
  let caption =
    if scale_db then
      "Eager, database scaled with nodes (DB = 400 x N): equation (13)"
    else "Eager, fixed database (DB = 400): equations (10) and (12)"
  in
  let table =
    Table.create ~caption
      [
        Table.column "Nodes";
        Table.column "waits/s model";
        Table.column "waits/s measured";
        Table.column "deadlocks/s model";
        Table.column "deadlocks/s measured";
      ]
  in
  let points =
    List.map
      (fun nodes ->
        let params =
          let p = { base with nodes } in
          if scale_db then Params.scale_db_with_nodes p else p
        in
        let waits, deadlocks = measure params ~seeds ~span in
        let model_deadlock =
          if scale_db then
            (* The paper's eq (13) is eq (12) evaluated at the *unscaled*
               db_size with a single power of N; equivalently eq (12) at the
               scaled size. *)
            Eager.total_deadlock_rate params
          else Eager.total_deadlock_rate params
        in
        Table.add_row table
          [
            Table.cell_int nodes;
            Table.cell_rate (Eager.total_wait_rate params);
            Table.cell_rate waits;
            Table.cell_rate model_deadlock;
            Table.cell_rate deadlocks;
          ];
        (float_of_int nodes, waits, deadlocks))
      nodes_values
  in
  (table, points)

let wait_exponent points =
  Experiment.fitted_exponent (List.map (fun (n, w, _) -> (n, w)) points)

let deadlock_exponent points =
  Experiment.fitted_exponent (List.map (fun (n, _, d) -> (n, d)) points)

let experiment =
  {
    Experiment.id = "E3";
    title = "Equations (9)-(12): eager deadlocks rise as Nodes^3";
    paper_ref = "Section 3, equations (9)-(12)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let nodes_values = if quick then [ 2; 4 ] else [ 2; 3; 4; 6 ] in
        let table, points = sweep ~nodes_values ~seeds ~span () in
        let first = Experiment.first_point points in
        let last = Experiment.last_point points in
        let n1, _, d1 = first and n2, _, d2 = last in
        let growth_model = (n2 /. n1) ** 3. in
        let findings =
          [
            {
              Experiment_.label = "wait-rate exponent in Nodes (model: 3)";
              expected = 3.;
              actual = wait_exponent points;
              tolerance = 0.8;
            };
            {
              Experiment_.label =
                Printf.sprintf
                  "deadlock growth %gx nodes (model: %gx, cubic)" (n2 /. n1)
                  growth_model;
              expected = growth_model;
              actual = (if d1 > 0. then d2 /. d1 else Float.nan);
              tolerance = growth_model *. 1.5;
            };
            {
              Experiment_.label = "deadlock-rate exponent in Nodes (model: 3)";
              expected = 3.;
              actual = deadlock_exponent points;
              tolerance = 1.5;
            };
          ]
        in
        {
          Experiment.id = "E3";
          title = "Equations (9)-(12): eager deadlocks rise as Nodes^3";
          tables = [ table ];
          findings;
          notes =
            [
              "The paper's headline: a ten-fold increase in nodes gives a \
               thousand-fold increase in deadlocks. The measured wait \
               exponent carries the statistical weight; deadlocks are rare \
               events with matching growth.";
            ];
        });
  }
