(* E11 — ablation: message delays. The model sets Message_Delay = 0 and
   notes, three times, that real delays only make its rates worse ("each
   transaction would last much longer, would hold resources much longer,
   and so would be more likely to collide"). We charge eager transactions
   their remote-step delays and lazy-group its propagation delay, and
   watch waits, deadlocks, and reconciliations climb. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Delay = Dangers_net.Delay
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with db_size = 400; nodes = 3; tps = 5.; actions = 4 }

let experiment =
  {
    Experiment.id = "E11";
    title = "Ablation: message delays make every rate worse";
    paper_ref = "Sections 3-4 (Message_Delay ignored by the model)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let delays = if quick then [ 0.; 0.02 ] else [ 0.; 0.005; 0.02; 0.05 ] in
        let table =
          Table.create
            ~caption:
              "3 nodes, TPS=5/node, Actions=4, DB=400; per-message delay \
               added to remote work"
            [
              Table.column "Message_Delay (s)";
              Table.column "eager duration (s)";
              Table.column "eager waits/s";
              Table.column "eager deadlocks/s";
              Table.column "lazy-group dangerous/s";
            ]
        in
        let points =
          List.map
            (fun d ->
              let delay =
                if Float.equal d 0. then Delay.Zero else Delay.Constant d
              in
              let mean f run =
                Experiment.mean_over_seeds ~seeds (fun seed -> f (run ~seed))
              in
              let eager ~seed =
                Scheme.run_named "eager-group"
                  (Scheme.spec ~transport_delay:delay base)
                  ~seed ~warmup:5. ~span
              in
              let lazy_group ~seed =
                Scheme.run_named "lazy-group"
                  (Scheme.spec ~transport_delay:delay base)
                  ~seed ~warmup:5. ~span
              in
              let duration = mean (fun s -> s.Repl_stats.mean_duration) eager in
              let waits = mean (fun s -> s.Repl_stats.wait_rate) eager in
              let deadlocks = mean (fun s -> s.Repl_stats.deadlock_rate) eager in
              let dangerous =
                mean (fun s -> s.Repl_stats.reconciliation_rate) lazy_group
              in
              Table.add_row table
                [
                  Table.cell_float ~digits:3 d;
                  Table.cell_float ~digits:3 duration;
                  Table.cell_rate waits;
                  Table.cell_rate deadlocks;
                  Table.cell_rate dangerous;
                ];
              (d, waits, dangerous))
            delays
        in
        let _, w0, r0 = Experiment.first_point points in
        let _, w_last, r_last = Experiment.last_point points in
        {
          Experiment.id = "E11";
          title = "Ablation: message delays make every rate worse";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "delays raise the eager wait rate (1 = yes)";
                expected = 1.;
                actual = (if w_last > w0 then 1. else 0.);
                tolerance = 0.;
              };
              {
                Experiment_.label =
                  "delays raise lazy-group's dangerous-update rate (1 = yes)";
                expected = 1.;
                actual = (if r_last > r0 then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "The zero-delay rows are the model's assumption; every added \
               millisecond stretches lock hold times (eager) and the window \
               in which a replica is stale (lazy), so the zero-delay \
               equations are a lower bound.";
            ];
        });
  }
