(** Deprecated per-scheme entry points.

    Superseded by the {!Scheme} registry, which exposes every simulator
    behind one interface; these wrappers remain so out-of-tree callers keep
    compiling. Each forwards to the matching registry entry. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Connectivity = Dangers_net.Connectivity

val eager :
  ?ownership:Dangers_replication.Eager_impl.ownership ->
  ?profile:Profile.t ->
  ?delay:Dangers_net.Delay.t ->
  Params.t -> seed:int -> warmup:float -> span:float -> Repl_stats.summary
[@@alert
  deprecated
    "Use Scheme.run_named \"eager-group\" / \"eager-master\" (the Scheme \
     registry)."]

val lazy_group :
  ?profile:Profile.t ->
  ?rule:Reconcile.rule ->
  ?delay:Dangers_net.Delay.t ->
  ?mobility:Connectivity.spec ->
  ?mobile_nodes:int list ->
  Params.t -> seed:int -> warmup:float -> span:float -> Repl_stats.summary
[@@alert
  deprecated "Use Scheme.run_named \"lazy-group\" (the Scheme registry)."]

val lazy_master :
  ?profile:Profile.t ->
  Params.t -> seed:int -> warmup:float -> span:float -> Repl_stats.summary
[@@alert
  deprecated "Use Scheme.run_named \"lazy-master\" (the Scheme registry)."]

val two_tier :
  ?profile:Profile.t ->
  ?acceptance:Dangers_core.Acceptance.t ->
  ?mobility:Connectivity.spec ->
  ?initial_value:float ->
  base_nodes:int ->
  Params.t -> seed:int -> warmup:float -> span:float ->
  Repl_stats.summary * Dangers_core.Two_tier.t
[@@alert
  deprecated
    "Use Scheme.run_outcome_named \"two-tier\" (the Scheme registry); the \
     system's counters are in the outcome's diagnostics."]

val seeds : quick:bool -> base:int -> int list
(** Alias of {!Scheme.seeds}. *)
