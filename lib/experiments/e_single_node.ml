(* E1 — Equations (1)-(5): single-node wait and deadlock rates, swept over
   TPS, Actions, and DB_Size, analytic prediction next to the simulator's
   measurement. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Single_node = Dangers_analytic.Single_node
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with nodes = 1; db_size = 200; tps = 20.; actions = 4 }

let measure params ~seeds ~span =
  let wait seed =
    (Scheme.run_named "eager-group" (Scheme.spec params) ~seed ~warmup:5. ~span).Repl_stats.wait_rate
  in
  let deadlock seed =
    (Scheme.run_named "eager-group" (Scheme.spec params) ~seed:(seed + 7) ~warmup:5. ~span).Repl_stats.deadlock_rate
  in
  ( Experiment.mean_over_seeds ~seeds wait,
    Experiment.mean_over_seeds ~seeds deadlock )

let sweep ~caption ~label ~values ~params_of ~seeds ~span =
  let table =
    Table.create ~caption
      [
        Table.column ~align:Table.Left label;
        Table.column "PW model";
        Table.column "waits/s model";
        Table.column "waits/s measured";
        Table.column "deadlocks/s model";
        Table.column "deadlocks/s measured";
      ]
  in
  let points =
    List.map
      (fun v ->
        let params = params_of v in
        let waits, deadlocks = measure params ~seeds ~span in
        Table.add_row table
          [
            Table.cell_float ~digits:0 v;
            Table.cell_float ~digits:4 (Single_node.pw params);
            Table.cell_rate (Single_node.node_wait_rate params);
            Table.cell_rate waits;
            Table.cell_rate (Single_node.node_deadlock_rate params);
            Table.cell_rate deadlocks;
          ];
        (v, waits, deadlocks))
      values
  in
  (table, points)

let experiment =
  {
    Experiment.id = "E1";
    title = "Equations (1)-(5): single-node waits and deadlocks";
    paper_ref = "Section 3, equations (1)-(5)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 60. else 300. in
        let tps_values = if quick then [ 20.; 40. ] else [ 10.; 20.; 40.; 80. ] in
        let tps_table, tps_points =
          sweep ~caption:"Sweep over TPS (Actions=4, DB=200)" ~label:"TPS"
            ~values:tps_values
            ~params_of:(fun tps -> { base with tps })
            ~seeds ~span
        in
        let action_values = if quick then [ 2.; 4. ] else [ 2.; 3.; 4.; 6. ] in
        let action_table, action_points =
          sweep ~caption:"Sweep over transaction size (TPS=20, DB=200)"
            ~label:"Actions" ~values:action_values
            ~params_of:(fun a -> { base with actions = int_of_float a })
            ~seeds ~span
        in
        let db_values = if quick then [ 100.; 400. ] else [ 100.; 200.; 400.; 800. ] in
        let db_table, db_points =
          sweep ~caption:"Sweep over database size (TPS=20, Actions=4)"
            ~label:"DB_Size" ~values:db_values
            ~params_of:(fun db -> { base with db_size = int_of_float db })
            ~seeds ~span
        in
        let wait_exponent points =
          Experiment.fitted_exponent (List.map (fun (v, w, _) -> (v, w)) points)
        in
        let findings =
          [
            {
              Experiment_.label = "wait rate exponent in TPS (model: 2)";
              expected = 2.;
              actual = wait_exponent tps_points;
              tolerance = 0.6;
            };
            {
              Experiment_.label = "wait rate exponent in Actions (model: 3)";
              expected = 3.;
              actual = wait_exponent action_points;
              tolerance = 0.9;
            };
            {
              Experiment_.label = "wait rate exponent in DB_Size (model: -1)";
              expected = -1.;
              actual = wait_exponent db_points;
              tolerance = 0.5;
            };
          ]
        in
        {
          Experiment.id = "E1";
          title = "Equations (1)-(5): single-node waits and deadlocks";
          tables = [ tps_table; action_table; db_table ];
          findings;
          notes =
            [
              "Deadlocks are waits^2-rare; their columns carry wide \
               statistical error at these run lengths - the wait columns \
               carry the shape test.";
            ];
        });
  }
