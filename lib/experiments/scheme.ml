module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Acceptance = Dangers_core.Acceptance
module Common = Dangers_replication.Common
module Metrics = Dangers_sim.Metrics
module Stats = Dangers_util.Stats
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group_impl = Dangers_replication.Lazy_group
module Lazy_master_impl = Dangers_replication.Lazy_master
module Lazy_group_undo = Dangers_replication.Lazy_group_undo
module Two_tier_impl = Dangers_core.Two_tier
module Par_eager_impl = Dangers_replication.Par_eager

type spec = {
  params : Params.t;
  profile : Profile.t option;
  transport_delay : Delay.t option;
  rule : Reconcile.rule option;
  connectivity : Connectivity.spec option;
  mobile_nodes : int list option;
  acceptance : Acceptance.t option;
  initial_value : float option;
  base_nodes : int option;
}

let spec ?profile ?transport_delay ?rule ?connectivity ?mobile_nodes
    ?acceptance ?initial_value ?base_nodes params =
  {
    params;
    profile;
    transport_delay;
    rule;
    connectivity;
    mobile_nodes;
    acceptance;
    initial_value;
    base_nodes;
  }

type outcome = {
  summary : Repl_stats.summary;
  diagnostics : (string * float) list;
}

let diagnostic outcome key = List.assoc_opt key outcome.diagnostics

module type SCHEME = sig
  type config

  val name : string
  val doc : string
  val configure : spec -> config

  val run_outcome :
    config -> seed:int -> warmup:float -> span:float -> outcome

  val run :
    config -> seed:int -> warmup:float -> span:float -> Repl_stats.summary
end

type t = (module SCHEME)

(* Validating at configure time keeps every entry point's error behaviour
   identical: a bad parameter point fails before any system is built. *)
let checked spec =
  Params.validate spec.params;
  spec

module Make_eager (O : sig
  val name : string
  val doc : string
  val ownership : Eager_impl.ownership
end) : SCHEME = struct
  type config = spec

  let name = O.name
  let doc = O.doc
  let configure = checked

  let run_outcome c ~seed ~warmup ~span =
    let sys =
      Eager_impl.create ?profile:c.profile ?initial_value:c.initial_value
        ?delay:c.transport_delay O.ownership c.params ~seed
    in
    Eager_impl.start sys;
    Common.measure (Eager_impl.base sys) ~warmup ~span;
    let summary = Eager_impl.summary sys in
    Eager_impl.stop_load sys;
    { summary; diagnostics = [] }

  let run c ~seed ~warmup ~span = (run_outcome c ~seed ~warmup ~span).summary
end

module Eager_group = Make_eager (struct
  let name = "eager-group"
  let doc = "Eager update-anywhere (§3): every replica inside the transaction."
  let ownership = Eager_impl.Group
end)

module Eager_master = Make_eager (struct
  let name = "eager-master"
  let doc = "Eager master-first (§3): the owner's replica is visited first."
  let ownership = Eager_impl.Master
end)

module Lazy_group : SCHEME = struct
  type config = spec

  let name = "lazy-group"
  let doc = "Lazy update-anywhere (§4): commit locally, reconcile later."
  let configure = checked

  let run_outcome c ~seed ~warmup ~span =
    let sys =
      Lazy_group_impl.create ?profile:c.profile
        ?initial_value:c.initial_value ?rule:c.rule ?delay:c.transport_delay
        ?mobility:c.connectivity ?mobile_nodes:c.mobile_nodes c.params ~seed
    in
    Lazy_group_impl.start sys;
    Common.measure (Lazy_group_impl.base sys) ~warmup ~span;
    let summary = Lazy_group_impl.summary sys in
    Lazy_group_impl.stop_load sys;
    {
      summary;
      diagnostics =
        [ ("divergence", float_of_int (Lazy_group_impl.divergence sys)) ];
    }

  let run c ~seed ~warmup ~span = (run_outcome c ~seed ~warmup ~span).summary
end

module Lazy_master : SCHEME = struct
  type config = spec

  let name = "lazy-master"
  let doc = "Lazy master (§5): one master per object, slave updates fan out."
  let configure = checked

  let run_outcome c ~seed ~warmup ~span =
    let sys =
      Lazy_master_impl.create ?profile:c.profile
        ?initial_value:c.initial_value ?delay:c.transport_delay c.params ~seed
    in
    Lazy_master_impl.start sys;
    Common.measure (Lazy_master_impl.base sys) ~warmup ~span;
    let summary = Lazy_master_impl.summary sys in
    Lazy_master_impl.stop_load sys;
    { summary; diagnostics = [] }

  let run c ~seed ~warmup ~span = (run_outcome c ~seed ~warmup ~span).summary
end

module Lazy_undo : SCHEME = struct
  type config = spec

  let name = "lazy-undo"
  let doc =
    "Undo-oriented lazy group (§7): transactions stay tentative until every \
     replica acknowledges."

  let configure = checked

  let run_outcome c ~seed ~warmup ~span =
    let sys =
      Lazy_group_undo.create ?profile:c.profile
        ?initial_value:c.initial_value ?mobility:c.connectivity
        ?mobile_nodes:c.mobile_nodes c.params ~seed
    in
    Lazy_group_undo.start sys;
    Common.measure (Lazy_group_undo.base sys) ~warmup ~span;
    Lazy_group_undo.stop_load sys;
    Lazy_group_undo.force_sync sys;
    let summary =
      Repl_stats.summarize ~scheme:name
        (Lazy_group_undo.base sys).Common.metrics
    in
    {
      summary;
      diagnostics =
        [
          ("durable", float_of_int (Lazy_group_undo.durable sys));
          ("undone", float_of_int (Lazy_group_undo.undone sys));
          ( "tentative_outstanding",
            float_of_int (Lazy_group_undo.tentative_outstanding sys) );
          ( "mean_durability_lag",
            Stats.mean (Lazy_group_undo.durability_lag sys) );
        ];
    }

  let run c ~seed ~warmup ~span = (run_outcome c ~seed ~warmup ~span).summary
end

module Two_tier : SCHEME = struct
  type config = spec

  let name = "two-tier"
  let doc =
    "Two-tier (§7): base nodes run lazy-master, mobiles work tentatively \
     and replay through acceptance on reconnect."

  let configure = checked

  let run_outcome c ~seed ~warmup ~span =
    let base_nodes =
      match c.base_nodes with
      | Some n -> n
      | None -> max 1 (c.params.Params.nodes / 2)
    in
    let sys =
      Two_tier_impl.create ?profile:c.profile
        ?initial_value:c.initial_value ?acceptance:c.acceptance
        ?delay:c.transport_delay ?mobility:c.connectivity ~base_nodes c.params ~seed
    in
    Two_tier_impl.start sys;
    Common.measure (Two_tier_impl.base sys) ~warmup ~span;
    (* The summary is the measured window; the convergence diagnostics are
       only meaningful after the final quiesce-and-sync. *)
    let summary = Two_tier_impl.summary sys in
    Two_tier_impl.quiesce_and_sync sys;
    let metrics = (Two_tier_impl.base sys).Common.metrics in
    {
      summary;
      diagnostics =
        [
          ( "tentative_commits",
            float_of_int (Metrics.total_count metrics "tentative_commits") );
          ( "tentative_accepted",
            float_of_int (Two_tier_impl.tentative_accepted sys) );
          ( "tentative_rejected",
            float_of_int (Two_tier_impl.tentative_rejected sys) );
          ("converged", if Two_tier_impl.converged sys then 1. else 0.);
          ( "base_serializable",
            if Two_tier_impl.base_history_serializable sys then 1. else 0. );
        ];
    }

  let run c ~seed ~warmup ~span = (run_outcome c ~seed ~warmup ~span).summary
end

module Par_eager_group : SCHEME = struct
  type config = spec

  let name = "par-eager-group"

  let doc =
    "Eager update-anywhere re-derived as a message-passing distributed \
     system, one parallel-engine partition per node (honours --sim-domains)."

  let configure c =
    let c = checked c in
    (match c.transport_delay with
    | Some d when not (Delay.min_bound d > 0.) ->
        invalid_arg
          (Format.asprintf
             "par-eager-group: delay model %a has a zero minimum transmit \
              delay and admits no conservative lookahead; use a Constant or \
              Uniform model with a positive lower bound"
             Delay.pp d)
    | _ -> ());
    c

  let run_outcome c ~seed ~warmup ~span =
    (* The one scheme that actually spends the ambient --sim-domains
       budget; results are byte-identical at any value by construction. *)
    let domains = Dangers_sim.Observe.ambient_domains () in
    let sys =
      Par_eager_impl.create ?profile:c.profile ?initial_value:c.initial_value
        ?delay:c.transport_delay c.params ~seed
    in
    Par_eager_impl.start sys;
    Par_eager_impl.measure ~domains sys ~warmup ~span;
    let summary = Par_eager_impl.summary sys in
    Par_eager_impl.stop_load sys;
    { summary; diagnostics = Par_eager_impl.diagnostics sys }

  let run c ~seed ~warmup ~span = (run_outcome c ~seed ~warmup ~span).summary
end

let all : t list =
  [
    (module Eager_group);
    (module Eager_master);
    (module Lazy_group);
    (module Lazy_master);
    (module Lazy_undo);
    (module Two_tier);
    (module Par_eager_group);
  ]

(* Which registry entries can actually spend a --sim-domains budget;
   everything else ignores it and runs serially (trivially byte-identical
   at any budget). The CLI uses this to tell the user when the flag will
   have no effect. *)
let parallel_capable_names = [ "par-eager-group" ]

let parallel_capable name = List.mem name parallel_capable_names

let name (module S : SCHEME) = S.name
let doc (module S : SCHEME) = S.doc
let names () = List.map name all

let find wanted =
  (* Accept "eager_group" for "eager-group": shell users reach for
     underscores as often as hyphens, and the distinction carries no
     information here. *)
  let wanted =
    String.map
      (function '_' -> '-' | c -> Char.lowercase_ascii c)
      wanted
  in
  List.find_opt (fun s -> String.equal (name s) wanted) all

let run (module S : SCHEME) spec ~seed ~warmup ~span =
  S.run (S.configure spec) ~seed ~warmup ~span

let run_outcome (module S : SCHEME) spec ~seed ~warmup ~span =
  S.run_outcome (S.configure spec) ~seed ~warmup ~span

let named wanted =
  match find wanted with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown scheme %S (valid schemes: %s)"
           wanted
           (String.concat ", " (names ())))

let run_named wanted spec ~seed ~warmup ~span =
  run (named wanted) spec ~seed ~warmup ~span

let run_outcome_named wanted spec ~seed ~warmup ~span =
  run_outcome (named wanted) spec ~seed ~warmup ~span

let seeds ~quick ~base =
  if quick then [ base ] else [ base; base + 101; base + 202 ]
