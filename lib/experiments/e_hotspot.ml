(* E12 — ablation: hotspots. Table 2's model assumes "access to objects is
   equi-probable (there are no hotspots)". Skewing the access pattern
   (Zipf) concentrates the load on few objects — effectively shrinking
   DB_Size — and the 1/DB and 1/DB^2 laws say waits and deadlocks must
   climb. This bounds how optimistic the uniform-access equations are for
   real workloads. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with db_size = 1000; nodes = 1; tps = 20.; actions = 4 }

let experiment =
  {
    Experiment.id = "E12";
    title = "Ablation: hotspots break the no-hotspot assumption";
    paper_ref = "Section 2, Table 2 (equi-probable access assumption)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let thetas = if quick then [ 0.; 0.9 ] else [ 0.; 0.5; 0.9; 1.2 ] in
        let table =
          Table.create
            ~caption:
              "Single node, TPS=20, Actions=4, DB=1000; Zipf skew over the \
               same database"
            [
              Table.column "Zipf theta";
              Table.column "waits/s";
              Table.column "deadlocks/s";
              Table.column "uniform model waits/s";
            ]
        in
        let uniform_model =
          Dangers_analytic.Single_node.node_wait_rate base
        in
        let points =
          List.map
            (fun theta ->
              let access =
                if Float.equal theta 0. then Profile.Uniform else Profile.Zipf theta
              in
              let profile = Profile.create ~access ~actions:base.Params.actions () in
              let mean f =
                Experiment.mean_over_seeds ~seeds (fun seed ->
                    f (Scheme.run_named "eager-group" (Scheme.spec ~profile base) ~seed ~warmup:5. ~span))
              in
              let waits = mean (fun s -> s.Repl_stats.wait_rate) in
              let deadlocks = mean (fun s -> s.Repl_stats.deadlock_rate) in
              Table.add_row table
                [
                  Table.cell_float ~digits:1 theta;
                  Table.cell_rate waits;
                  Table.cell_rate deadlocks;
                  Table.cell_rate uniform_model;
                ];
              (theta, waits))
            thetas
        in
        let _, w_uniform = Experiment.first_point points in
        let _, w_hot = Experiment.last_point points in
        {
          Experiment.id = "E12";
          title = "Ablation: hotspots break the no-hotspot assumption";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "hotspot contention exceeds the uniform assumption \
                   (hot/uniform wait ratio > 2)";
                expected = 1.;
                actual = (if w_hot > 2. *. w_uniform then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "With theta ~ 1 the effective database is a handful of hot \
               objects: the equations' DB_Size must be read as the *hot set* \
               size, which makes the instability thresholds far closer than \
               the uniform numbers suggest.";
            ];
        });
  }
