(* F3 — Figure 3: scaleup vs partitioning vs replication. Doubling the
   users of a replicated system quadruples the update work: each of the two
   replicas must perform its own 2 TPS plus the other's, so the aggregate
   action rate is 4x the base system's (the N^2 law, equation 8). We
   measure the executed update-action rate of the eager simulator in each
   configuration. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Eager = Dangers_analytic.Eager
module Repl_stats = Dangers_replication.Repl_stats

let base_params =
  { Params.default with db_size = 2000; nodes = 1; tps = 10.; actions = 4 }

(* Executed actions/s, reconstructed from committed transactions (restarts
   are rare at this contention level). *)
let measured_action_rate summary ~params =
  summary.Repl_stats.commit_rate
  *. float_of_int (params.Params.actions * params.Params.nodes)

let experiment =
  {
    Experiment.id = "F3";
    title = "Figure 3: scaleup, partitioning, replication";
    paper_ref = "Figure 3, section 2 (equation 8)";
    run =
      (fun ~quick ~seed ->
        let span = if quick then 20. else 60. in
        let table =
          Table.create
            ~caption:
              "Growing a 10-TPS system: aggregate user TPS and node update \
               work (actions/s)"
            [
              Table.column ~align:Table.Left "strategy";
              Table.column "user TPS total";
              Table.column "actions/s model";
              Table.column "actions/s measured";
            ]
        in
        let run params =
          Scheme.run_named "eager-group" (Scheme.spec params) ~seed ~warmup:5. ~span |> fun summary ->
          measured_action_rate summary ~params
        in
        let add name params note_model =
          let measured = run params in
          Table.add_row table
            [
              name;
              Table.cell_float ~digits:0
                (params.Params.tps *. float_of_int params.Params.nodes);
              Table.cell_float ~digits:0 note_model;
              Table.cell_float ~digits:1 measured;
            ];
          (name, note_model, measured)
        in
        let base = add "base: 1 node, 10 TPS" base_params (Eager.action_rate base_params) in
        let scaleup =
          add "scaleup: 1 bigger node, 20 TPS"
            { base_params with tps = 20. }
            (Eager.action_rate { base_params with tps = 20. })
        in
        (* Partitioning: two independent half-databases; no replication
           work. Model: 2x the base actions. We simulate as two separate
           single-node systems. *)
        let partition_measured =
          let half = { base_params with db_size = 1000 } in
          let a = run half and b = run half in
          a +. b
        in
        Table.add_row table
          [
            "partition: 2 nodes, 10 TPS each";
            "20";
            Table.cell_float ~digits:0 80.;
            Table.cell_float ~digits:1 partition_measured;
          ];
        let replication =
          add "replication: 2 nodes, 10 TPS each"
            { base_params with nodes = 2 }
            (Eager.action_rate { base_params with nodes = 2 })
        in
        let _, _, base_measured = base in
        let _, _, replication_measured = replication in
        ignore scaleup;
        {
          Experiment.id = "F3";
          title = "Figure 3: scaleup, partitioning, replication";
          tables = [ table ];
          findings =
            [
              {
                Experiment.label =
                  "replication doubles users but quadruples work (ratio)";
                expected = 4.;
                actual = replication_measured /. base_measured;
                tolerance = 0.4;
              };
            ];
          notes =
            [
              "Partitioning doubles throughput linearly; replication makes \
               each node do its own work plus every peer's (N^2).";
            ];
        });
  }
