(** The unified replication-scheme API.

    Every simulator the repo knows how to drive — the two eager variants
    (§3), lazy group (§4), lazy master (§5), the undo-oriented lazy-group
    variant §7 rejects, and the two-tier scheme (§7) — is registered here
    behind one first-class-module interface. The CLI, the experiments, the
    scenarios, the sweep runner and the benchmarks all iterate over this
    registry instead of hard-coding per-scheme entry points, so adding a
    scheme is one [register]-style list entry, not five call-site edits.

    A {!spec} is the union of every knob any scheme accepts; each scheme's
    [configure] picks out the knobs it understands and ignores the rest
    (exactly as the old per-scheme optional-argument soup did implicitly).
    [run] is deterministic: equal [(spec, seed, warmup, span)] give equal
    summaries, which is what lets the multicore sweep runner promise
    byte-identical output at any [--jobs]. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Acceptance = Dangers_core.Acceptance

(** {1 Run specification} *)

type spec = {
  params : Params.t;
  profile : Profile.t option;  (** workload shape; default [Profile.of_params] *)
  transport_delay : Delay.t option;  (** message delay (eager, lazy-*, two-tier) *)
  rule : Reconcile.rule option;  (** reconciliation rule (lazy-group) *)
  connectivity : Connectivity.spec option;  (** connect/disconnect cycling *)
  mobile_nodes : int list option;  (** which nodes cycle (lazy-group, undo) *)
  acceptance : Acceptance.t option;  (** acceptance criterion (two-tier) *)
  initial_value : float option;  (** starting value of every object *)
  base_nodes : int option;
      (** two-tier base-tier size; default [max 1 (nodes / 2)] *)
}

val spec :
  ?profile:Profile.t ->
  ?transport_delay:Delay.t ->
  ?rule:Reconcile.rule ->
  ?connectivity:Connectivity.spec ->
  ?mobile_nodes:int list ->
  ?acceptance:Acceptance.t ->
  ?initial_value:float ->
  ?base_nodes:int ->
  Params.t ->
  spec
(** [spec params] with every knob left to the scheme's default. *)

(** {1 Outcomes} *)

type outcome = {
  summary : Repl_stats.summary;
  diagnostics : (string * float) list;
      (** scheme-specific post-run facts (e.g. two-tier
          ["tentative_rejected"], lazy-undo ["mean_durability_lag"]),
          in a stable order; booleans encoded as 0/1. *)
}

val diagnostic : outcome -> string -> float option

(** {1 The scheme interface} *)

module type SCHEME = sig
  type config

  val name : string
  (** Registry key, also the CLI spelling ("eager-group", "two-tier", ...). *)

  val doc : string
  (** One-line description for [--help] and listings. *)

  val configure : spec -> config
  (** Capture the knobs this scheme understands; inapplicable knobs are
      ignored. @raise Invalid_argument on invalid parameters. *)

  val run_outcome :
    config -> seed:int -> warmup:float -> span:float -> outcome
  (** Build a fresh system, drive it under generator load for
      [warmup + span] simulated seconds and summarise the measured window.
      Deterministic in [(config, seed)]. *)

  val run :
    config -> seed:int -> warmup:float -> span:float -> Repl_stats.summary
  (** [run] is [run_outcome]'s summary. *)
end

type t = (module SCHEME)

(** {1 Registry} *)

val all : t list
(** Every scheme, in presentation order. *)

val name : t -> string
val doc : t -> string

val names : unit -> string list

val find : string -> t option
(** Case-insensitive lookup by [name]; underscores are accepted for
    hyphens ("eager_group" finds "eager-group"). *)

val parallel_capable : string -> bool
(** Whether the scheme spends the ambient [--sim-domains] budget
    ({!Dangers_sim.Observe.with_domains}). Every scheme is byte-identical
    at any budget; only capable ones get faster from it. *)

val named : string -> t
(** Like {!find}. @raise Invalid_argument on an unknown name, listing the
    valid ones. *)

val run :
  t -> spec -> seed:int -> warmup:float -> span:float -> Repl_stats.summary

val run_outcome :
  t -> spec -> seed:int -> warmup:float -> span:float -> outcome

val run_named :
  string -> spec -> seed:int -> warmup:float -> span:float ->
  Repl_stats.summary
(** @raise Invalid_argument on an unknown name, listing the valid ones. *)

val run_outcome_named :
  string -> spec -> seed:int -> warmup:float -> span:float -> outcome
(** @raise Invalid_argument on an unknown name, listing the valid ones. *)

(** {1 Seed derivation} *)

val seeds : quick:bool -> base:int -> int list
(** Three seeds normally, one in quick mode, derived from [base]. *)
