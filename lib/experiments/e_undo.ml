(* E17 — §7's rejected alternative, measured: undo-oriented lazy-group
   makes every transaction tentative until all replicas acknowledge it.
   With one mobile node on a disconnect cycle, the mean durability lag of
   *everyone's* transactions tracks the disconnection period — "all
   transactions will be tentative until the missing node reconnects" —
   which is why the two-tier scheme anchors durability at the base
   instead. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Connectivity = Dangers_net.Connectivity
module Lazy_group_undo = Dangers_replication.Lazy_group_undo
module Common = Dangers_replication.Common
module Stats = Dangers_util.Stats
module Experiment_ = Experiment

let connected_time = 10.

let params =
  { Params.default with db_size = 2000; nodes = 4; tps = 1.; actions = 2 }

let run_point ~dt ~seed ~cycles =
  let mobility =
    Connectivity.day_cycle ~connected:connected_time ~disconnected:dt
  in
  let sys =
    Lazy_group_undo.create ~mobility ~mobile_nodes:[ 0 ] params ~seed
  in
  Lazy_group_undo.start sys;
  Dangers_runtime.Clock.run_for (Lazy_group_undo.base sys).Common.clock
    (float_of_int cycles *. (dt +. connected_time));
  Lazy_group_undo.stop_load sys;
  Lazy_group_undo.force_sync sys;
  sys

let experiment =
  {
    Experiment.id = "E17";
    title = "Undo-oriented lazy-group: durability lag tracks the disconnect";
    paper_ref = "Section 7 (the rejected undo alternative)";
    run =
      (fun ~quick ~seed ->
        let cycles = if quick then 10 else 30 in
        let dts = if quick then [ 10.; 80. ] else [ 10.; 40.; 160. ] in
        let table =
          Table.create
            ~caption:
              "One mobile node among 4 (TPS=1/node, Actions=2, DB=2000): \
               time from commit to durability"
            [
              Table.column "Disconnected_Time (s)";
              Table.column "durable txns";
              Table.column "mean lag (s)";
              Table.column "p95 lag proxy: max (s)";
              Table.column "undone";
            ]
        in
        let points =
          List.map
            (fun dt ->
              let sys = run_point ~dt ~seed ~cycles in
              let lag = Lazy_group_undo.durability_lag sys in
              Table.add_row table
                [
                  Table.cell_float ~digits:0 dt;
                  Table.cell_int (Lazy_group_undo.durable sys);
                  Table.cell_float ~digits:2 (Stats.mean lag);
                  Table.cell_float ~digits:2 (Stats.max lag);
                  Table.cell_int (Lazy_group_undo.undone sys);
                ];
              (dt, Stats.mean lag))
            dts
        in
        let dt1, lag1 = Experiment.first_point points in
        let dt2, lag2 = Experiment.last_point points in
        (* Expected mean lag for a transaction at a uniformly random point
           of the mobile's cycle: the mobile is down dt/(dt+c) of the time,
           and a transaction then waits half the remaining downtime on
           average, so lag ~ dt^2 / (2 (dt+c)) -> ~dt/2 for dt >> c. *)
        let model dt = dt *. dt /. (2. *. (dt +. connected_time)) in
        {
          Experiment.id = "E17";
          title =
            "Undo-oriented lazy-group: durability lag tracks the disconnect";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  Printf.sprintf
                    "durability lag grows with the disconnect (lag ratio %g/%g \
                     vs model %g)"
                    dt2 dt1
                    (model dt2 /. model dt1);
                expected = model dt2 /. model dt1;
                actual = lag2 /. lag1;
                tolerance = model dt2 /. model dt1;
              };
              {
                Experiment_.label =
                  "mean lag at the largest disconnect is minutes-scale (> dt/4)";
                expected = 1.;
                actual = (if lag2 > dt2 /. 4. then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "Durability held hostage by the least-connected replica is the \
               reason §7 rejects undo-oriented lazy-group for mobile use; \
               two-tier moves the durability point to the base transaction \
               instead.";
            ];
        });
  }
