(* E15 — the second-order effect equation (12) ignores: "it does not
   distinguish between Master and Group replication. If DB_Size >> Nodes,
   such conflicts will be rare" — and §3's "Having a master for each
   object helps eager replication avoid deadlocks". We make the conflicts
   non-rare (small database) and measure the group-vs-master gap, then
   grow the database to show the two laws merging, as the model assumes. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Eager_impl = Dangers_replication.Eager_impl
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with nodes = 4; tps = 5.; actions = 2 }

let experiment =
  {
    Experiment.id = "E15";
    title = "Eager group vs master: the second-order race equation (12) drops";
    paper_ref = "Section 3 (object-master remark; eq 12 footnote)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let db_sizes = if quick then [ 40; 400 ] else [ 40; 100; 400; 1600 ] in
        let table =
          Table.create
            ~caption:
              "Eager deadlock rates, group vs master visit order (4 nodes, \
               TPS=5, Actions=2)"
            [
              Table.column "DB_Size";
              Table.column "group deadlocks/s";
              Table.column "master deadlocks/s";
              Table.column "group/master ratio";
            ]
        in
        let points =
          List.map
            (fun db_size ->
              let params = { base with db_size } in
              let rate scheme =
                Experiment.mean_over_seeds ~seeds (fun seed ->
                    (Scheme.run_named scheme (Scheme.spec params) ~seed
                       ~warmup:5. ~span)
                      .Repl_stats.deadlock_rate)
              in
              let group = rate "eager-group" in
              let master = rate "eager-master" in
              Table.add_row table
                [
                  Table.cell_int db_size;
                  Table.cell_rate group;
                  Table.cell_rate master;
                  (if master > 0. then Table.cell_float ~digits:2 (group /. master)
                   else "inf");
                ];
              (db_size, group, master))
            db_sizes
        in
        let _, g_small, m_small = Experiment.first_point points in
        {
          Experiment.id = "E15";
          title = "Eager group vs master: the second-order race equation (12) drops";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "hot database: group deadlocks exceed master's (1 = yes)";
                expected = 1.;
                actual = (if g_small > m_small then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "Group ownership lets two transactions start locking the same \
               object's replicas from different ends; master ownership \
               serializes same-object access at the owner first. Both rates \
               fall as DB_Size grows and the absolute gap vanishes - the \
               DB_Size >> Nodes regime where equation (12) can afford to \
               ignore the difference.";
            ];
        });
  }
