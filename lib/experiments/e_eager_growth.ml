(* E2 — Equations (6)-(8): how eager replication inflates transactions.
   The model columns come straight from the equations; the measured columns
   come from uncontended simulator runs (duration) and from the generator
   load (commit rate), confirming the simulator embodies the model's
   transaction shape. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Eager = Dangers_analytic.Eager
module Repl_stats = Dangers_replication.Repl_stats

let base = { Params.default with db_size = 4000; tps = 5.; actions = 4 }

let experiment =
  {
    Experiment.id = "E2";
    title = "Equations (6)-(8): eager transaction growth with nodes";
    paper_ref = "Section 3, equations (6)-(8)";
    run =
      (fun ~quick ~seed ->
        let nodes_values = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
        let span = if quick then 20. else 60. in
        let table =
          Table.create
            ~caption:"Eager growth (TPS=5/node, Actions=4, DB=4000)"
            [
              Table.column "Nodes";
              Table.column "txn size";
              Table.column "duration model (s)";
              Table.column "duration measured (s)";
              Table.column "total txns (eq 7)";
              Table.column "actions/s (eq 8)";
              Table.column "commits/s measured";
            ]
        in
        let points =
          List.map
            (fun nodes ->
              let params = { base with nodes } in
              let summary = Scheme.run_named "eager-group" (Scheme.spec params) ~seed ~warmup:5. ~span in
              Table.add_row table
                [
                  Table.cell_int nodes;
                  Table.cell_float ~digits:0 (Eager.transaction_size params);
                  Table.cell_float ~digits:3 (Eager.transaction_duration params);
                  Table.cell_float ~digits:3 summary.Repl_stats.mean_duration;
                  Table.cell_float ~digits:2 (Eager.total_transactions params);
                  Table.cell_float ~digits:0 (Eager.action_rate params);
                  Table.cell_float ~digits:1 summary.Repl_stats.commit_rate;
                ];
              (nodes, summary.Repl_stats.mean_duration))
            nodes_values
        in
        let d1 = List.assoc 1 points and d4 = List.assoc 4 points in
        {
          Experiment.id = "E2";
          title = "Equations (6)-(8): eager transaction growth with nodes";
          tables = [ table ];
          findings =
            [
              {
                Experiment.label = "duration grows linearly: 4 nodes / 1 node";
                expected = 4.;
                actual = d4 /. d1;
                tolerance = 0.5;
              };
            ];
          notes =
            [
              "Commit rate stays at Nodes x TPS while each commit does Nodes \
               x Actions work: the update rate grows as N^2 (equation 8).";
            ];
        });
  }
