(* E9 — Section 6: convergence without serializability. Three probes:
   Lotus-Notes-style timestamped replace loses concurrent updates while
   appends lose nothing; Access version vectors detect and report exactly
   the concurrent pairs; and in the running lazy-group system the additive
   (commutative) rule reproduces the exact sums that timestamp-priority
   loses. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Convergence = Dangers_replication.Convergence
module Reconcile = Dangers_replication.Reconcile
module Lazy_group = Dangers_replication.Lazy_group
module Common = Dangers_replication.Common
module Clock = Dangers_runtime.Clock
module Experiment_ = Experiment

(* Notes: [sites] replicas each replace every one of [registers] keys once,
   concurrently, then exchange all-pairs until converged. Every register
   keeps exactly one winner: lost = issued - registers. *)
let notes_probe ~sites ~registers =
  let replicas = List.init sites (fun site -> Convergence.Notes.create ~site) in
  List.iteri
    (fun i r ->
      for k = 0 to registers - 1 do
        Convergence.Notes.replace r ~key:(string_of_int k)
          ~value:(float_of_int ((i * registers) + k));
        Convergence.Notes.append r (Printf.sprintf "note-%d-%d" i k)
      done)
    replicas;
  let rec exchange_round () =
    List.iteri
      (fun i a ->
        List.iteri (fun j b -> if i < j then Convergence.Notes.exchange a b) replicas)
      replicas;
    if not (Convergence.Notes.converged replicas) then exchange_round ()
  in
  exchange_round ();
  let issued = Convergence.Notes.updates_issued replicas in
  let lost = Convergence.Notes.lost_updates replicas in
  let appends_kept =
    match replicas with
    | r :: _ -> List.length (Convergence.Notes.notes r)
    | [] -> 0
  in
  (issued, lost, appends_kept)

let access_probe ~sites ~db_size ~updates_per_site =
  let replicas =
    Array.init sites (fun site -> Convergence.Access.create ~site ~db_size)
  in
  Array.iteri
    (fun i r ->
      for k = 0 to updates_per_site - 1 do
        Convergence.Access.update r (Oid.of_int (k mod db_size))
          (float_of_int ((i * 100) + k))
      done)
    replicas;
  let conflicts = ref 0 in
  let rec exchange_round () =
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b -> if i < j then conflicts := !conflicts + Convergence.Access.exchange a b)
          replicas)
      replicas;
    if not (Convergence.Access.converged (Array.to_list replicas)) then
      exchange_round ()
  in
  exchange_round ();
  (!conflicts, Convergence.Access.converged (Array.to_list replicas))

(* Lazy-group increments: total absolute deviation of the converged state
   from the exact sums. *)
let lazy_group_loss ~rule ~seed ~span =
  let params =
    { Params.default with db_size = 50; nodes = 3; tps = 5.; actions = 2 }
  in
  let profile = Profile.create ~update_kind:Profile.Increments ~actions:2 () in
  let sys = Lazy_group.create ~profile ~initial_value:0. ~rule params ~seed in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock span;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  let store = (Lazy_group.base sys).Common.stores.(0) in
  Fstore.fold store ~init:0. ~f:(fun acc oid value _ ->
      acc +. Float.abs (value -. Lazy_group.expected_sum sys oid))

let experiment =
  {
    Experiment.id = "E9";
    title = "Section 6: convergence schemes and the lost-update problem";
    paper_ref = "Section 6 (Notes, Access, Oracle rules)";
    run =
      (fun ~quick ~seed ->
        let span = if quick then 30. else 120. in
        let sites = 5 and registers = 10 in
        let issued, lost, appends_kept = notes_probe ~sites ~registers in
        let table_notes =
          Table.create ~caption:"Lotus Notes model: 5 replicas, 10 registers"
            [
              Table.column ~align:Table.Left "update form";
              Table.column "issued";
              Table.column "lost";
            ]
        in
        Table.add_row table_notes
          [ "timestamped replace"; Table.cell_int issued; Table.cell_int lost ];
        Table.add_row table_notes
          [ "timestamped append"; Table.cell_int appends_kept; "0" ];
        let conflicts, access_converged =
          access_probe ~sites:4 ~db_size:20 ~updates_per_site:20
        in
        let table_access =
          Table.create ~caption:"Access version vectors: 4 replicas, 20 records"
            [
              Table.column ~align:Table.Left "metric";
              Table.column "value";
            ]
        in
        Table.add_row table_access
          [ "conflicts reported"; Table.cell_int conflicts ];
        Table.add_row table_access
          [ "converged"; (if access_converged then "yes" else "NO") ];
        let ts_loss = lazy_group_loss ~rule:Reconcile.Timestamp_priority ~seed ~span in
        let additive_loss = lazy_group_loss ~rule:Reconcile.Additive ~seed ~span in
        let table_rules =
          Table.create
            ~caption:
              "Lazy-group increments: absolute deviation from exact sums \
               after full sync"
            [
              Table.column ~align:Table.Left "reconciliation rule";
              Table.column "total |deviation|";
            ]
        in
        Table.add_row table_rules
          [ "timestamp-priority (lost updates)"; Table.cell_float ~digits:1 ts_loss ];
        Table.add_row table_rules
          [ "additive (commutative)"; Table.cell_float ~digits:1 additive_loss ];
        {
          Experiment.id = "E9";
          title = "Section 6: convergence schemes and the lost-update problem";
          tables = [ table_notes; table_access; table_rules ];
          findings =
            [
              {
                Experiment_.label =
                  "Notes replace: lost = issued - registers (one winner each)";
                expected = float_of_int (issued - registers);
                actual = float_of_int lost;
                tolerance = 0.;
              };
              {
                Experiment_.label = "Notes appends kept";
                expected = float_of_int (sites * registers);
                actual = float_of_int appends_kept;
                tolerance = 0.;
              };
              {
                Experiment_.label = "timestamp rule loses increments (>0)";
                expected = 1.;
                actual = (if ts_loss > 0. then 1. else 0.);
                tolerance = 0.;
              };
              {
                Experiment_.label = "additive rule is exact (deviation = 0)";
                expected = 0.;
                actual = additive_loss;
                tolerance = 1e-6;
              };
            ];
          notes =
            [
              "Convergence alone is not enough: the converged state should \
               reflect all committed transactions, which only the \
               commutative discipline achieves.";
            ];
        });
  }
