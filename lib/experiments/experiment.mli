(** Experiment descriptors: one per paper table / figure / equation group.

    Each experiment regenerates the paper's predicted series and, where a
    system is involved, the matching measurement from the simulator; the
    result is a set of printable tables plus machine-readable findings
    (fitted exponents, growth ratios) that EXPERIMENTS.md records and the
    test-suite can assert on. *)

module Table = Dangers_util.Table

type finding = {
  label : string;
  expected : float;  (** the paper's value (exponent, ratio, count ...) *)
  actual : float;  (** what we measured *)
  tolerance : float;  (** |actual - expected| acceptable for "reproduced" *)
}

type result = {
  id : string;
  title : string;
  tables : Table.t list;
  findings : finding list;
  notes : string list;
}

type t = {
  id : string;  (** "T1", "F1", "E3", ... *)
  title : string;
  paper_ref : string;  (** where in the paper this comes from *)
  run : quick:bool -> seed:int -> result;
      (** [quick] shrinks sweeps/durations for smoke runs; [seed] drives
          every random stream, so results are reproducible. *)
}

val finding_ok : finding -> bool
val pp_result : Format.formatter -> result -> unit

(** {1 Measurement helpers} *)

val mean_over_seeds : seeds:int list -> (int -> float) -> float
(** Average a measured rate over several seeded runs. *)

val first_point : 'a list -> 'a
(** Head of a sweep's point list; raises [Invalid_argument] when empty.
    Experiments use this instead of [List.nth _ 0] so the failure mode on
    an empty sweep is an explicit message rather than a bare exception. *)

val last_point : 'a list -> 'a
(** Final point of a sweep; raises [Invalid_argument] when empty. *)

val fitted_exponent : (float * float) list -> float
(** Log-log slope of (x, rate) points, skipping non-positive rates; [nan]
    when fewer than two usable points remain (e.g. an event too rare to
    observe). *)
