(* E13 — Figure 3's footnote: "Read-only transactions need not generate
   any additional load on remote nodes." The model drops reads entirely;
   the simulator supports them (S locks, local-only under eager), and this
   experiment verifies that adding reads to a replicated transaction costs
   local time only: duration = (updates x Nodes + reads) x Action_Time. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let base = { Params.default with db_size = 2000; nodes = 3; tps = 1.; actions = 2 }

let experiment =
  {
    Experiment.id = "E13";
    title = "Reads add no remote load (Figure 3 note)";
    paper_ref = "Figure 3 / section 2 (reads ignored by the model)";
    run =
      (fun ~quick ~seed ->
        let span = if quick then 30. else 120. in
        let table =
          Table.create
            ~caption:
              "Eager, 3 nodes, 2 updates per transaction, uncontended: \
               duration vs reads per transaction"
            [
              Table.column "reads/txn";
              Table.column "duration model (s)";
              Table.column "duration measured (s)";
            ]
        in
        let points =
          List.map
            (fun reads ->
              let profile = Profile.create ~reads ~actions:base.Params.actions () in
              let summary = Scheme.run_named "eager-group" (Scheme.spec ~profile base) ~seed ~warmup:5. ~span in
              (* updates lock all replicas (2 x 3 steps); reads lock the
                 local copy only (1 step each). *)
              let model =
                float_of_int
                  ((base.Params.actions * base.Params.nodes) + reads)
                *. base.Params.action_time
              in
              Table.add_row table
                [
                  Table.cell_int reads;
                  Table.cell_float ~digits:3 model;
                  Table.cell_float ~digits:3 summary.Repl_stats.mean_duration;
                ];
              (reads, model, summary.Repl_stats.mean_duration))
            [ 0; 2; 6 ]
        in
        let findings =
          List.map
            (fun (reads, model, measured) ->
              {
                Experiment_.label =
                  Printf.sprintf "duration with %d reads (local cost only)" reads;
                expected = model;
                actual = measured;
                tolerance = 0.01;
              })
            points
        in
        {
          Experiment.id = "E13";
          title = "Reads add no remote load (Figure 3 note)";
          tables = [ table ];
          findings;
          notes =
            [
              "If reads replicated like writes, each read would cost Nodes x \
               Action_Time; the measured durations confirm reads are \
               local-only, which is why read-mostly systems replicate so \
               well.";
            ];
        });
  }
