module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Eager_impl = Dangers_replication.Eager_impl
module Two_tier = Dangers_core.Two_tier

let eager ?(ownership = Eager_impl.Group) ?profile ?delay params ~seed ~warmup
    ~span =
  let name =
    match ownership with
    | Eager_impl.Group -> "eager-group"
    | Eager_impl.Master -> "eager-master"
  in
  Scheme.run_named name
    (Scheme.spec ?profile ?delay params)
    ~seed ~warmup ~span

let lazy_group ?profile ?rule ?delay ?mobility ?mobile_nodes params ~seed
    ~warmup ~span =
  Scheme.run_named "lazy-group"
    (Scheme.spec ?profile ?rule ?delay ?mobility ?mobile_nodes params)
    ~seed ~warmup ~span

let lazy_master ?profile params ~seed ~warmup ~span =
  Scheme.run_named "lazy-master" (Scheme.spec ?profile params) ~seed ~warmup
    ~span

(* Returns the quiesced system, which Scheme.run cannot: kept direct. *)
let two_tier ?profile ?acceptance ?mobility ?initial_value ~base_nodes params
    ~seed ~warmup ~span =
  let sys =
    Two_tier.create ?profile ?acceptance ?mobility ?initial_value ~base_nodes
      params ~seed
  in
  Two_tier.start sys;
  Common.measure (Two_tier.base sys) ~warmup ~span;
  let summary = Two_tier.summary sys in
  Two_tier.quiesce_and_sync sys;
  (summary, sys)

let seeds = Scheme.seeds
