(* E16 — "system delusion": "The database at each node diverges further
   and further from the others as reconciliation fails. Each
   reconciliation failure implies differences among nodes. Soon, the
   system suffers system delusion — the database is inconsistent and there
   is no obvious way to repair it" (§1).

   We run the same lazy-group workload three ways: with failed
   reconciliation (dangerous updates dropped), divergence grows with
   runtime; with timestamp-priority, it drains to zero; under two-tier,
   the master state is consistent by construction. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Reconcile = Dangers_replication.Reconcile
module Lazy_group = Dangers_replication.Lazy_group
module Common = Dangers_replication.Common
module Connectivity = Dangers_net.Connectivity
module Two_tier = Dangers_core.Two_tier
module Clock = Dangers_runtime.Clock
module Experiment_ = Experiment

let params =
  { Params.default with db_size = 100; nodes = 4; tps = 5.; actions = 2 }

let lazy_divergence ~rule ~seed ~span =
  let sys = Lazy_group.create ~rule params ~seed in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock span;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  Lazy_group.divergence sys

let experiment =
  {
    Experiment.id = "E16";
    title = "System delusion: failed reconciliation diverges without bound";
    paper_ref = "Section 1 (scaleup pitfall), section 6";
    run =
      (fun ~quick ~seed ->
        let spans = if quick then [ 20.; 80. ] else [ 30.; 120.; 480. ] in
        let table =
          Table.create
            ~caption:
              "Divergent (replica, object) pairs after load + full \
               exchange (4 nodes, TPS=5, Actions=2, DB=100)"
            [
              Table.column "runtime (s)";
              Table.column "failed reconciliation (Ignore)";
              Table.column "timestamp-priority";
            ]
        in
        let points =
          List.map
            (fun span ->
              let deluded = lazy_divergence ~rule:Reconcile.Ignore ~seed ~span in
              let lww =
                lazy_divergence ~rule:Reconcile.Timestamp_priority ~seed ~span
              in
              Table.add_row table
                [
                  Table.cell_float ~digits:0 span;
                  Table.cell_int deluded;
                  Table.cell_int lww;
                ];
              (span, deluded, lww))
            spans
        in
        (* Two-tier at the same load never deludes. *)
        let tt =
          Two_tier.create ~base_nodes:2
            ~mobility:(Connectivity.day_cycle ~connected:10. ~disconnected:20.)
            params ~seed
        in
        Two_tier.start tt;
        Clock.run_for (Two_tier.base tt).Common.clock (Experiment.last_point spans);
        Two_tier.quiesce_and_sync tt;
        let _, d_first, _ = Experiment.first_point points in
        let _, d_last, lww_last = Experiment.last_point points in
        {
          Experiment.id = "E16";
          title = "System delusion: failed reconciliation diverges without bound";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "failed reconciliation: divergence grows with runtime \
                   (1 = yes)";
                expected = 1.;
                actual = (if d_last > d_first && d_first > 0 then 1. else 0.);
                tolerance = 0.;
              };
              {
                Experiment_.label = "timestamp rule converges (0 divergence)";
                expected = 0.;
                actual = float_of_int lww_last;
                tolerance = 0.;
              };
              {
                Experiment_.label =
                  "two-tier at the same load: converged (1 = yes)";
                expected = 1.;
                actual = (if Two_tier.converged tt then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "Divergence under failed reconciliation is a ratchet: once a \
               replica's timestamp chain breaks, every later update in that \
               lineage is dangerous too, so the inconsistency compounds \
               instead of healing - the paper's system delusion.";
            ];
        });
  }
