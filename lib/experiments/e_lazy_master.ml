(* E7 — Equation (19): lazy-master deadlocks rise as Nodes^2 — unstable,
   but a full power of N better than eager's cubic law. The exponent sweep
   runs at a hot parameter point (TPS=10, DB=200) so the waits^2-rare
   deadlock events are actually observable; the eager-vs-lazy-master
   ordering claim is measured separately at E3's milder point, where the
   eager simulator is still in the model's regime. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Eager_eq = Dangers_analytic.Eager
module Lazy_master_eq = Dangers_analytic.Lazy_master
module Repl_stats = Dangers_replication.Repl_stats
module Experiment_ = Experiment

let hot = { Params.default with db_size = 200; tps = 10.; actions = 4 }
let mild = { Params.default with db_size = 400; tps = 5.; actions = 4 }

let experiment =
  {
    Experiment.id = "E7";
    title = "Equation (19): lazy-master deadlocks rise as Nodes^2";
    paper_ref = "Section 5, equation (19)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 400. in
        let nodes_values = if quick then [ 2; 4 ] else [ 2; 3; 4; 6 ] in
        let table =
          Table.create
            ~caption:
              "Lazy-master at a hot point (TPS=10/node, Actions=4, DB=200)"
            [
              Table.column "Nodes";
              Table.column "eq19 deadlocks/s";
              Table.column "measured deadlocks/s";
              Table.column "eq10-style waits/s model";
              Table.column "measured waits/s";
            ]
        in
        let points =
          List.map
            (fun nodes ->
              let params = { hot with nodes } in
              let mean f =
                Experiment.mean_over_seeds ~seeds (fun seed ->
                    f (Scheme.run_named "lazy-master" (Scheme.spec params) ~seed ~warmup:5. ~span))
              in
              let deadlocks = mean (fun s -> s.Repl_stats.deadlock_rate) in
              let waits = mean (fun s -> s.Repl_stats.wait_rate) in
              (* The master lock space behaves like one node at N x TPS:
                 waits ~ (N TPS)^2 AT A^3 / (2 DB). *)
              let wait_model =
                ((params.Params.tps *. float_of_int nodes) ** 2.)
                *. params.Params.action_time
                *. (float_of_int params.Params.actions ** 3.)
                /. (2. *. float_of_int params.Params.db_size)
              in
              Table.add_row table
                [
                  Table.cell_int nodes;
                  Table.cell_rate (Lazy_master_eq.deadlock_rate params);
                  Table.cell_rate deadlocks;
                  Table.cell_rate wait_model;
                  Table.cell_rate waits;
                ];
              (float_of_int nodes, deadlocks, waits))
            nodes_values
        in
        (* Ordering vs eager at the milder point, largest N. *)
        let big = Experiment.last_point nodes_values in
        let mild_params = { mild with nodes = big } in
        let eager_deadlocks =
          Experiment.mean_over_seeds ~seeds (fun seed ->
              (Scheme.run_named "eager-group" (Scheme.spec mild_params) ~seed ~warmup:5. ~span)
                .Repl_stats.deadlock_rate)
        in
        let lm_mild_deadlocks =
          Experiment.mean_over_seeds ~seeds (fun seed ->
              (Scheme.run_named "lazy-master" (Scheme.spec mild_params) ~seed ~warmup:5. ~span)
                .Repl_stats.deadlock_rate)
        in
        let table_order =
          Table.create
            ~caption:
              (Printf.sprintf
                 "Ordering at %d nodes (TPS=5, DB=400): who deadlocks more?"
                 big)
            [
              Table.column ~align:Table.Left "scheme";
              Table.column "model deadlocks/s";
              Table.column "measured";
            ]
        in
        Table.add_row table_order
          [
            "eager-group";
            Table.cell_rate (Eager_eq.total_deadlock_rate mild_params);
            Table.cell_rate eager_deadlocks;
          ];
        Table.add_row table_order
          [
            "lazy-master";
            Table.cell_rate (Lazy_master_eq.deadlock_rate mild_params);
            Table.cell_rate lm_mild_deadlocks;
          ];
        let wait_exp =
          Experiment.fitted_exponent (List.map (fun (n, _, w) -> (n, w)) points)
        in
        let deadlock_exp =
          Experiment.fitted_exponent (List.map (fun (n, d, _) -> (n, d)) points)
        in
        {
          Experiment.id = "E7";
          title = "Equation (19): lazy-master deadlocks rise as Nodes^2";
          tables = [ table; table_order ];
          findings =
            [
              {
                Experiment_.label =
                  "lazy-master deadlock exponent in Nodes (model: 2)";
                expected = 2.;
                actual = deadlock_exp;
                tolerance = 1.2;
              };
              {
                Experiment_.label =
                  "lazy-master wait exponent in Nodes (model: 2)";
                expected = 2.;
                actual = wait_exp;
                tolerance = 0.8;
              };
              {
                Experiment_.label =
                  "eager deadlocks exceed lazy-master at the same load \
                   (1 = yes; model ratio is N)";
                expected = 1.;
                actual = (if eager_deadlocks > lm_mild_deadlocks then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "Shorter transactions are the whole advantage: lazy-master \
               holds each lock for Actions x Action_Time instead of eager's \
               Nodes x Actions x Action_Time.";
            ];
        });
  }
