module Table = Dangers_util.Table
module Stats = Dangers_util.Stats

type finding = {
  label : string;
  expected : float;
  actual : float;
  tolerance : float;
}

type result = {
  id : string;
  title : string;
  tables : Table.t list;
  findings : finding list;
  notes : string list;
}

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : quick:bool -> seed:int -> result;
}

let finding_ok f = Float.abs (f.actual -. f.expected) <= f.tolerance

let pp_result ppf (r : result) =
  Format.fprintf ppf "=== %s: %s ===@." r.id r.title;
  List.iter (fun table -> Format.fprintf ppf "%a@." Table.pp table) r.tables;
  List.iter
    (fun f ->
      Format.fprintf ppf "finding: %s expected %.4g measured %.4g (+/- %.2g) %s@."
        f.label f.expected f.actual f.tolerance
        (if finding_ok f then "[ok]" else "[off]"))
    r.findings;
  List.iter (fun note -> Format.fprintf ppf "note: %s@." note) r.notes

let mean_over_seeds ~seeds f =
  match seeds with
  | [] -> invalid_arg "Experiment.mean_over_seeds: no seeds"
  | _ ->
      let total = List.fold_left (fun acc seed -> acc +. f seed) 0. seeds in
      total /. float_of_int (List.length seeds)

let first_point = function
  | [] -> invalid_arg "Experiment.first_point: empty sweep"
  | p :: _ -> p

let rec last_point = function
  | [] -> invalid_arg "Experiment.last_point: empty sweep"
  | [ p ] -> p
  | _ :: rest -> last_point rest

let fitted_exponent points =
  let usable = List.filter (fun (x, y) -> x > 0. && y > 0.) points in
  if List.length usable < 2 then Float.nan else Stats.loglog_slope usable
