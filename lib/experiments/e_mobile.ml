(* E6 — Equations (15)-(18): disconnected lazy-group. One mobile node
   cycles against an otherwise-connected network (the paper's model: the
   node "connects and downloads to the rest of the network"); updates park
   while it is down and exchange at reconnect. We sweep Disconnected_Time
   and compare the measured dangerous-updates-per-cycle with equation
   (17)'s collision count and its rate with equation (18) (both quadratic
   in the disconnected batch). The measured count runs a small constant
   factor above eq (17): each colliding object produces a dangerous event
   at every replica that sees the stale chain, where the equation counts
   the node-cycle once. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Lazy_group_eq = Dangers_analytic.Lazy_group
module Repl_stats = Dangers_replication.Repl_stats
module Connectivity = Dangers_net.Connectivity
module Experiment_ = Experiment

let connected_time = 10.

let base =
  {
    Params.default with
    db_size = 8000;
    nodes = 4;
    tps = 0.2;
    actions = 2;
    time_between_disconnects = connected_time;
  }

let experiment =
  {
    Experiment.id = "E6";
    title = "Equations (15)-(18): mobile reconciliation vs disconnect time";
    paper_ref = "Section 4, equations (15)-(18)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let disconnect_values =
          if quick then [ 25.; 100. ] else [ 12.5; 25.; 50.; 100. ]
        in
        let cycles = if quick then 40 else 120 in
        let table =
          Table.create
            ~caption:
              "One mobile node among 4 (TPS=0.2, Actions=2, DB=8000, connect \
               window 10s); events per disconnect cycle"
            [
              Table.column "Disconnected_Time (s)";
              Table.column "outbound eq15";
              Table.column "inbound eq16";
              Table.column "collisions/cycle eq17";
              Table.column "dangerous/cycle measured";
              Table.column "rate eq18 (/s, 1 node)";
              Table.column "rate measured (/s)";
            ]
        in
        let points =
          List.map
            (fun dt ->
              let params = { base with disconnected_time = dt } in
              let cycle = dt +. connected_time in
              let span = float_of_int cycles *. cycle in
              let mobility =
                Connectivity.day_cycle ~connected:connected_time ~disconnected:dt
              in
              let rate =
                Experiment.mean_over_seeds ~seeds (fun seed ->
                    (Scheme.run_named "lazy-group" (Scheme.spec ~connectivity:mobility ~mobile_nodes:[ 0 ] params) ~seed
                       ~warmup:cycle ~span)
                      .Repl_stats.reconciliation_rate)
              in
              let per_cycle = rate *. cycle in
              (* eq17 without the all-nodes factor: the one mobile node's
                 expected collisions per cycle. *)
              let model_collisions =
                Lazy_group_eq.p_collision params
                /. float_of_int params.Params.nodes
              in
              let model_rate =
                Lazy_group_eq.mobile_reconciliation_rate params
                /. float_of_int params.Params.nodes
              in
              Table.add_row table
                [
                  Table.cell_float ~digits:1 dt;
                  Table.cell_float ~digits:1 (Lazy_group_eq.outbound_updates params);
                  Table.cell_float ~digits:1 (Lazy_group_eq.inbound_updates params);
                  Table.cell_float ~digits:4 model_collisions;
                  Table.cell_float ~digits:4 per_cycle;
                  Table.cell_rate model_rate;
                  Table.cell_rate rate;
                ];
              (dt, per_cycle, rate))
            disconnect_values
        in
        let per_cycle_exponent =
          Experiment.fitted_exponent (List.map (fun (dt, p, _) -> (dt, p)) points)
        in
        let rate_exponent =
          Experiment.fitted_exponent (List.map (fun (dt, _, r) -> (dt, r)) points)
        in
        {
          Experiment.id = "E6";
          title = "Equations (15)-(18): mobile reconciliation vs disconnect time";
          tables = [ table ];
          findings =
            [
              {
                Experiment_.label =
                  "collisions-per-cycle exponent in Disconnected_Time (model: 2)";
                expected = 2.;
                actual = per_cycle_exponent;
                tolerance = 0.9;
              };
              {
                Experiment_.label =
                  "reconciliation-rate exponent in Disconnected_Time (model: 1)";
                expected = 1.;
                actual = rate_exponent;
                tolerance = 0.9;
              };
            ];
          notes =
            [
              "Each doubling of the disconnected period quadruples the \
               collisions per sync: overnight batches survive where weekly \
               ones drown.";
            ];
        });
  }
