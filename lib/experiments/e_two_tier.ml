(* E8 — Section 7's claims about the two-tier scheme:
   (a) base transactions behave like lazy-master (equation 19 deadlocks);
   (b) with commutative transaction design the reconciliation (rejection)
       rate is zero and every replica converges — no system delusion;
   (c) with non-commutative updates under a strict acceptance criterion,
       rejections appear and grow with the disconnection period, yet the
       base state stays consistent. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Lazy_master_eq = Dangers_analytic.Lazy_master
module Profile = Dangers_workload.Profile
module Connectivity = Dangers_net.Connectivity
module Repl_stats = Dangers_replication.Repl_stats
module Acceptance = Dangers_core.Acceptance
module Two_tier = Dangers_core.Two_tier
module Metrics = Dangers_sim.Metrics
module Common = Dangers_replication.Common
module Experiment_ = Experiment

let base = { Params.default with db_size = 400; tps = 5.; actions = 4 }

(* (a) all nodes connected: the scheme degenerates to lazy-master. A hot
   parameter point (TPS=10, DB=200) makes the rare deadlock events
   observable within the measurement window. *)
let connected_deadlock_rates ~seeds ~span =
  List.map
    (fun nodes ->
      let params = { base with nodes; tps = 10.; db_size = 200 } in
      let two_tier =
        Experiment.mean_over_seeds ~seeds (fun seed ->
            (Scheme.run_named "two-tier"
               (Scheme.spec ~connectivity:Connectivity.base_node
                  ~base_nodes:(nodes / 2) params)
               ~seed ~warmup:5. ~span)
              .Repl_stats.deadlock_rate)
      in
      let lazy_master =
        Experiment.mean_over_seeds ~seeds (fun seed ->
            (Scheme.run_named "lazy-master" (Scheme.spec params) ~seed ~warmup:5. ~span)
              .Repl_stats.deadlock_rate)
      in
      (nodes, Lazy_master_eq.deadlock_rate params, two_tier, lazy_master))
    [ 2; 4 ]

(* (b)/(c) a mobile fleet on a disconnect cycle. *)
let mobile_run ~profile ~acceptance ~dt ~seed ~cycles =
  let params =
    {
      base with
      nodes = 4;
      tps = 1.;
      actions = 2;
      db_size = 200;
      time_between_disconnects = 10.;
      disconnected_time = dt;
    }
  in
  let span = float_of_int cycles *. (dt +. 10.) in
  Scheme.run_outcome_named "two-tier"
    (Scheme.spec ~profile ~acceptance ~initial_value:10_000. ~base_nodes:2
       params)
    ~seed ~warmup:(dt +. 10.) ~span

(* Diagnostics are 0/1-encoded counters; see Scheme.Two_tier. *)
let diag outcome key =
  match Scheme.diagnostic outcome key with
  | Some v -> v
  | None -> invalid_arg ("two-tier outcome lacks diagnostic " ^ key)

let diag_int outcome key = int_of_float (diag outcome key)
let diag_flag outcome key = Float.equal (diag outcome key) 1.

let experiment =
  {
    Experiment.id = "E8";
    title = "Section 7: two-tier replication";
    paper_ref = "Section 7 (protocol properties 1-5)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let cycles = if quick then 10 else 30 in
        (* (a) connected behaviour *)
        let table_a =
          Table.create
            ~caption:
              "(a) Connected operation (TPS=10, DB=200): base deadlock rate \
               vs eq (19) and vs plain lazy-master"
            [
              Table.column "Nodes";
              Table.column "eq19 deadlocks/s";
              Table.column "two-tier measured";
              Table.column "lazy-master measured";
            ]
        in
        let connected_points = connected_deadlock_rates ~seeds ~span in
        List.iter
          (fun (nodes, model, two_tier, lazy_master) ->
            Table.add_row table_a
              [
                Table.cell_int nodes;
                Table.cell_rate model;
                Table.cell_rate two_tier;
                Table.cell_rate lazy_master;
              ])
          connected_points;
        let tt4, lm4 =
          match connected_points with
          | _ :: (_, _, tt4, lm4) :: _ -> (tt4, lm4)
          | _ -> invalid_arg "E6: sweep needs at least two node counts"
        in
        (* (b) commutative mobile fleet *)
        let commutative_profile =
          Profile.create ~update_kind:Profile.Increments ~actions:2 ()
        in
        let out_b =
          mobile_run ~profile:commutative_profile ~acceptance:Acceptance.Always
            ~dt:40. ~seed ~cycles
        in
        let tentative_b = diag_int out_b "tentative_commits" in
        let table_b =
          Table.create
            ~caption:
              "(b) Disconnected fleet, commutative (increment) transactions"
            [
              Table.column ~align:Table.Left "metric";
              Table.column "value";
            ]
        in
        Table.add_row table_b [ "tentative transactions"; Table.cell_int tentative_b ];
        Table.add_row table_b
          [
            "accepted at base";
            Table.cell_int (diag_int out_b "tentative_accepted");
          ];
        Table.add_row table_b
          [ "rejected"; Table.cell_int (diag_int out_b "tentative_rejected") ];
        Table.add_row table_b
          [
            "converged after sync";
            (if diag_flag out_b "converged" then "yes" else "NO");
          ];
        (* (c) non-commutative + strict acceptance, sweeping the
           disconnected period *)
        let table_c =
          Table.create
            ~caption:
              "(c) Increment transactions under exact-match acceptance \
               (re-execution drifts when anyone else touched the object): \
               rejects vs Disconnected_Time"
            [
              Table.column "Disconnected_Time (s)";
              Table.column "tentative";
              Table.column "rejected";
              Table.column "reject fraction";
              Table.column "converged";
            ]
        in
        let drift_profile =
          Profile.create ~update_kind:Profile.Increments ~actions:2 ()
        in
        let dts = if quick then [ 10.; 80. ] else [ 10.; 40.; 160. ] in
        let reject_fractions =
          List.map
            (fun dt ->
              let out =
                mobile_run ~profile:drift_profile
                  ~acceptance:Acceptance.Exact_match ~dt ~seed:(seed + 31)
                  ~cycles
              in
              let tentative = diag_int out "tentative_commits" in
              let rejected = diag_int out "tentative_rejected" in
              let fraction =
                if tentative = 0 then 0.
                else float_of_int rejected /. float_of_int tentative
              in
              Table.add_row table_c
                [
                  Table.cell_float ~digits:0 dt;
                  Table.cell_int tentative;
                  Table.cell_int rejected;
                  Table.cell_float ~digits:4 fraction;
                  (if diag_flag out "converged" then "yes" else "NO");
                ];
              (dt, fraction, diag_flag out "converged"))
            dts
        in
        let _, first_fraction, _ = Experiment.first_point reject_fractions in
        let _, last_fraction, last_converged =
          Experiment.last_point reject_fractions
        in
        {
          Experiment.id = "E8";
          title = "Section 7: two-tier replication";
          tables = [ table_a; table_b; table_c ];
          findings =
            [
              {
                Experiment_.label =
                  "connected two-tier deadlock rate matches lazy-master \
                   (ratio at 4 nodes; eq 19 for both)";
                expected = 1.;
                actual = (if lm4 > 0. then tt4 /. lm4 else Float.nan);
                tolerance = 2.;
              };
              {
                Experiment_.label =
                  "commutative design: rejected tentative transactions";
                expected = 0.;
                actual = diag out_b "tentative_rejected";
                tolerance = 0.;
              };
              {
                Experiment_.label = "commutative design: converged (1 = yes)";
                expected = 1.;
                actual = diag out_b "converged";
                tolerance = 0.;
              };
              {
                Experiment_.label =
                  "strict acceptance: reject fraction grows with disconnect \
                   time (last - first > 0)";
                expected = 1.;
                actual = (if last_fraction > first_fraction then 1. else 0.);
                tolerance = 0.;
              };
              {
                Experiment_.label =
                  "no system delusion even while rejecting (converged, 1 = yes)";
                expected = 1.;
                actual = (if last_converged then 1. else 0.);
                tolerance = 0.;
              };
            ];
          notes =
            [
              "Base transactions run lazy-master, so their deadlock rate is \
               equation (19)'s N^2 law; mobiles never block the base, and \
               rejected tentative work returns to its author with a \
               diagnostic instead of corrupting the master state.";
            ];
        });
  }
