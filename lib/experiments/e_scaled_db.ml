(* E4 — Equation (13): growing the database with the number of nodes
   (TPC-style) tames eager replication's cubic deadlock law to linear (and
   the wait law to quadratic). *)

module Experiment_ = Experiment

let experiment =
  {
    Experiment.id = "E4";
    title = "Equation (13): deadlocks with a database scaled by nodes";
    paper_ref = "Section 3, equation (13)";
    run =
      (fun ~quick ~seed ->
        let seeds = Scheme.seeds ~quick ~base:seed in
        let span = if quick then 80. else 300. in
        let nodes_values = if quick then [ 2; 4 ] else [ 2; 3; 4; 6 ] in
        let table, points =
          E_eager_deadlock.sweep ~scale_db:true ~nodes_values ~seeds ~span ()
        in
        let findings =
          [
            {
              Experiment_.label =
                "wait-rate exponent in Nodes with scaled DB (model: 2)";
              expected = 2.;
              actual = E_eager_deadlock.wait_exponent points;
              tolerance = 0.8;
            };
          ]
        in
        {
          Experiment.id = "E4";
          title = "Equation (13): deadlocks with a database scaled by nodes";
          tables = [ table ];
          findings;
          notes =
            [
              "Compare with E3: scaling DB_Size with Nodes removes two powers \
               of N from the deadlock law (cubic -> linear) and one from the \
               wait law (cubic -> quadratic). Still growing, but no longer \
               explosive.";
            ];
        });
  }
