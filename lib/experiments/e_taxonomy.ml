(* T1 — Table 1: the replication taxonomy. For each strategy we submit a
   fixed batch of non-conflicting user transactions, drain, and count the
   transactions the system actually ran: eager = 1 per user update, lazy =
   N (root + one replica-update transaction per remote node), two-tier =
   N + 1 (tentative + base + lazy updates). Ownership comes from the
   model. *)

module Table = Dangers_util.Table
module Params = Dangers_analytic.Params
module Model = Dangers_analytic.Model
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Metrics = Dangers_sim.Metrics
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_group = Dangers_replication.Lazy_group
module Lazy_master = Dangers_replication.Lazy_master
module Two_tier = Dangers_core.Two_tier
module Connectivity = Dangers_net.Connectivity

let nodes = 3
let batch = 20

let params =
  { Params.default with nodes; db_size = 240; tps = 0.001; actions = 2 }

(* Transaction i updates two objects mastered at the same node and disjoint
   from every other transaction, so there is no contention and no
   restarts. *)
let ops_for i =
  [ Op.Increment (Oid.of_int (6 * i), 1.); Op.Increment (Oid.of_int ((6 * i) + 3), 1.) ]

let count_txns metrics =
  let get name = Metrics.total_count metrics name in
  float_of_int
    (get Repl_stats.commits + get Repl_stats.restarts + get "replica_txns"
   + get "tentative_commits")
  /. float_of_int batch

let measure_eager ownership ~seed =
  let sys = Eager_impl.create ownership params ~seed in
  for i = 0 to batch - 1 do
    Eager_impl.submit sys ~node:(i mod nodes) (ops_for i)
  done;
  Common.drain (Eager_impl.base sys);
  count_txns (Eager_impl.base sys).Common.metrics

let measure_lazy_group ~seed =
  let sys = Lazy_group.create params ~seed in
  for i = 0 to batch - 1 do
    Lazy_group.submit sys ~node:(i mod nodes) (ops_for i)
  done;
  Common.drain (Lazy_group.base sys);
  count_txns (Lazy_group.base sys).Common.metrics

let measure_lazy_master ~seed =
  let sys = Lazy_master.create params ~seed in
  for i = 0 to batch - 1 do
    Lazy_master.submit sys ~node:(i mod nodes) (ops_for i)
  done;
  Common.drain (Lazy_master.base sys);
  count_txns (Lazy_master.base sys).Common.metrics

let measure_two_tier ~seed =
  (* One mobile, disconnected: every transaction is tentative, replayed at
     the sync. *)
  let sys =
    Two_tier.create ~base_nodes:(nodes - 1)
      ~mobility:
        {
          Connectivity.time_between_disconnects = 5.;
          disconnected_time = 1_000_000.;
          distribution = Connectivity.Fixed;
          start_connected = true;
        }
      params ~seed
  in
  let clock = (Two_tier.base sys).Common.clock in
  Dangers_runtime.Clock.run clock ~until:1_000_010.;
  let mobile = nodes - 1 in
  (* Both objects mastered at base node 0 (owner = oid mod base_nodes), so
     the batch matches Table 1's one-object-owner accounting. *)
  for i = 0 to batch - 1 do
    Two_tier.submit sys ~node:mobile
      [
        Op.Increment (Oid.of_int (6 * i), 1.);
        Op.Increment (Oid.of_int ((6 * i) + 2), 1.);
      ]
  done;
  Two_tier.quiesce_and_sync sys;
  count_txns (Two_tier.base sys).Common.metrics

let experiment =
  {
    Experiment.id = "T1";
    title = "Table 1: transactions per user update by strategy";
    paper_ref = "Table 1, section 2";
    run =
      (fun ~quick:_ ~seed ->
        let table =
          Table.create
            ~caption:
              (Printf.sprintf
                 "Taxonomy at N = %d nodes: transactions run per user update"
                 nodes)
            [
              Table.column ~align:Table.Left "strategy";
              Table.column "model txns/update";
              Table.column "measured";
              Table.column "object owners (model)";
            ]
        in
        let predictions scheme = Model.predict scheme params in
        let add scheme measured =
          let p = predictions scheme in
          Table.add_row table
            [
              Model.scheme_name scheme;
              Table.cell_float ~digits:0 p.Model.transactions_per_user_update;
              Table.cell_float ~digits:2 measured;
              Table.cell_float ~digits:0 p.Model.object_owners;
            ];
          (Model.scheme_name scheme, p.Model.transactions_per_user_update, measured)
        in
        let rows =
          [
            add Model.Eager_group (measure_eager Eager_impl.Group ~seed);
            add Model.Eager_master (measure_eager Eager_impl.Master ~seed);
            add Model.Lazy_group (measure_lazy_group ~seed);
            add Model.Lazy_master (measure_lazy_master ~seed);
            add Model.Two_tier (measure_two_tier ~seed);
          ]
        in
        let findings =
          List.map
            (fun (name, expected, actual) ->
              {
                Experiment.label = name ^ " transactions per user update";
                expected;
                actual;
                tolerance = 0.5;
              })
            rows
        in
        {
          Experiment.id = "T1";
          title = "Table 1: transactions per user update by strategy";
          tables = [ table ];
          findings;
          notes =
            [
              "Measured = (user commits + restarts + replica-update \
               transactions + tentative transactions) / user updates, on a \
               contention-free batch.";
            ];
        });
  }
