(** Event-driven transaction executor.

    Runs a transaction as the model prescribes: a sequence of actions, each
    of which first acquires a lock on its resource and then occupies
    Action_Time of simulated time. Waits stretch the transaction; a request
    that closes a waits-for cycle kills it (victim = requester, matching the
    derivation of equation (3)).

    The executor is scheme-agnostic: callers provide the step list (a
    single-node transaction has [Actions] steps; an eager-replicated one has
    [Actions x Nodes] steps over per-node resources) and the commit/deadlock
    continuations. *)

type t

val create :
  ?on_wait:(unit -> unit) ->
  clock:Dangers_runtime.Clock.t ->
  locks:Dangers_lock.Lock_manager.t ->
  action_time:float ->
  unit ->
  t
(** [on_wait] fires every time a request blocks (whether or not it then
    deadlocks) — the paper's wait events. @raise Invalid_argument on a
    negative action time. *)

type step = {
  resource : int;  (** lock to take *)
  mode : Dangers_lock.Mode.t;
      (** [X] for updates; [S] for reads (the model ignores read locks, but
          §5's serializable lazy-master sends read-lock RPCs — schemes
          choose) *)
  cost : float option;
      (** duration of this action; [None] = the executor's Action_Time.
          Eager replication uses it to charge message delay on remote
          steps (the "delays make it worse" ablation). *)
  work : unit -> unit;
      (** runs when the action completes (cost seconds after the grant);
          typically buffers a write *)
}

val update_step : resource:int -> step
(** An [X]-mode step with no work — the common case. *)

val read_step : resource:int -> step
(** An [S]-mode step with no work. *)

val run :
  t ->
  owner:Txn_id.t ->
  steps:step list ->
  on_commit:(unit -> unit) ->
  on_deadlock:(cycle:int list -> unit) ->
  unit
(** Start the transaction now. [on_commit] runs after the last step's work
    with all locks still held (publish writes / trigger propagation there);
    the locks are released immediately afterwards. On deadlock the victim's
    locks are released first, then [on_deadlock] runs — resubmit from there
    if desired. An empty step list commits immediately. *)

val active : t -> int
(** Transactions started but not yet committed or killed. *)

val locks : t -> Dangers_lock.Lock_manager.t
val action_time : t -> float
