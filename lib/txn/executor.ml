module Clock = Dangers_runtime.Clock
module Lock_manager = Dangers_lock.Lock_manager
module Mode = Dangers_lock.Mode

type t = {
  clock : Clock.t;
  locks : Lock_manager.t;
  action_time : float;
  on_wait : unit -> unit;
  mutable active : int;
}

type step = { resource : int; mode : Mode.t; cost : float option; work : unit -> unit }

let update_step ~resource = { resource; mode = Mode.X; cost = None; work = Fun.id }
let read_step ~resource = { resource; mode = Mode.S; cost = None; work = Fun.id }

let create ?(on_wait = fun () -> ()) ~clock ~locks ~action_time () =
  if action_time < 0. then invalid_arg "Executor.create: negative action time";
  { clock; locks; action_time; on_wait; active = 0 }

let run t ~owner ~steps ~on_commit ~on_deadlock =
  let owner_id = Txn_id.to_int owner in
  (* Trace events are allocated only when a tracer is attached; the
     untraced hot path must not build a record per lock grant. *)
  let traced = Clock.tracing t.clock in
  t.active <- t.active + 1;
  if traced then
    Clock.trace t.clock (Dangers_sim.Trace.Txn_started { owner = owner_id });
  let finish_commit () =
    on_commit ();
    Lock_manager.release_all t.locks ~owner:owner_id;
    t.active <- t.active - 1;
    if traced then
      Clock.trace t.clock (Dangers_sim.Trace.Txn_committed { owner = owner_id })
  in
  let kill cycle =
    Lock_manager.release_all t.locks ~owner:owner_id;
    t.active <- t.active - 1;
    on_deadlock ~cycle
  in
  let rec start_step remaining =
    match remaining with
    | [] -> finish_commit ()
    | step :: rest ->
        let proceed () =
          let cost = Option.value step.cost ~default:t.action_time in
          Clock.schedule_unit t.clock ~delay:cost (fun () ->
              step.work ();
              start_step rest)
        in
        (match
           Lock_manager.request t.locks ~owner:owner_id ~resource:step.resource
             ~mode:step.mode ~on_grant:proceed
         with
        | Lock_manager.Granted ->
            if traced then
              Clock.trace t.clock
                (Dangers_sim.Trace.Lock_granted
                   { owner = owner_id; resource = step.resource });
            proceed ()
        | Lock_manager.Waiting ->
            if traced then
              Clock.trace t.clock
                (Dangers_sim.Trace.Lock_waited
                   { owner = owner_id; resource = step.resource });
            t.on_wait ()
        | Lock_manager.Deadlock cycle ->
            if traced then
              Clock.trace t.clock
                (Dangers_sim.Trace.Deadlock_victim { owner = owner_id; cycle });
            t.on_wait ();
            kill cycle)
  in
  start_step steps

let active t = t.active
let locks t = t.locks
let action_time t = t.action_time
