(** A persistent pool of worker domains for barrier-style parallel loops.

    {!Task_pool}'s spawn-per-call model is right for coarse sweep tasks
    (seconds each), but the conservative parallel simulation engine runs
    one parallel loop per synchronization window — thousands per run — and
    [Domain.spawn] costs far too much to pay per window. This pool spawns
    its workers once and reuses them: each {!parallel_for} call is a
    generation; workers claim indices off a shared cursor, run the body,
    and meet at a barrier before the call returns.

    Memory model: all pool state is accessed under one mutex, and the
    barrier in {!parallel_for} orders every write made by the body before
    the return — callers may freely read plain (non-atomic) state written
    by the loop body after {!parallel_for} returns, exactly as they could
    after [Domain.join].

    Determinism: the pool only decides {e which domain} runs index [i],
    never {e whether} or {e in what generation}; a body whose work for
    index [i] depends only on [i] (the invariant the parallel simulator
    maintains) gives byte-identical results at any pool size, including
    the inline [size = 1] pool. *)

type t

val create : workers:int -> t
(** [create ~workers] spawns [workers - 1] domains (the caller's domain is
    the remaining worker: it participates in every {!parallel_for}).
    [workers <= 1] spawns nothing and runs every loop inline.
    @raise Invalid_argument if [workers < 1] or [workers > 128]. *)

val size : t -> int
(** The [workers] it was created with. *)

val parallel_for : t -> n:int -> f:(int -> unit) -> unit
(** [parallel_for t ~n ~f] runs [f i] once for every [i] in [[0, n)],
    distributed over the pool, and returns when all have finished. If any
    [f i] raises, remaining un-started indices are abandoned and the
    exception of the lowest-claimed failing index is re-raised after the
    barrier. Not reentrant: [f] must not itself call {!parallel_for} on
    the same pool. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; {!parallel_for} after shutdown
    raises [Invalid_argument]. *)
