(** Streaming and batch statistics used by the measurement harness. *)

(** {1 Streaming moments} *)

type t
(** Welford accumulator: numerically stable running mean and variance. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [infinity] when empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val total : t -> float
(** Sum of the observations. *)

val confidence95 : t -> float
(** Half-width of the 95% confidence interval for the mean under a normal
    approximation (1.96 sigma / sqrt n); 0 when fewer than two
    observations. *)

(** {1 Batch helpers} *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [0,1]; linear interpolation between order
    statistics. Sorts a copy. @raise Invalid_argument on an empty array or
    [p] outside [0,1]. *)

val loglog_slope : (float * float) list -> float
(** Least-squares slope of [log y] against [log x] — the measured growth
    exponent of a power law. Points with non-positive coordinates are
    rejected with [Invalid_argument]; fewer than two points, or points all
    sharing one x (a vertical line has no slope), likewise. *)

val geometric_mean : float array -> float
(** Geometric mean of positive values. @raise Invalid_argument if empty or
    any value is non-positive. *)

(** {1 Histogram} *)

module Histogram : sig
  type t

  val create : min:float -> max:float -> buckets:int -> t
  (** Fixed-width buckets spanning [min, max); out-of-range observations go
      to saturating end buckets. @raise Invalid_argument if [buckets <= 0]
      or [min >= max]. *)

  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  val bucket_bounds : t -> (float * float) array
  (** Inclusive-lower, exclusive-upper bound per bucket. *)

  val pp : Format.formatter -> t -> unit
  (** Compact ASCII rendering, one line per non-empty bucket. *)
end
