(* One mutex guards every field; workers sleep on [work] between
   generations and the coordinator sleeps on [finished] at the barrier.
   Indices are claimed one at a time under the lock — a window body is a
   batch of simulation events, microseconds at least, so cursor contention
   is noise. *)

type job = { n : int; f : int -> unit }

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* workers: a new generation (or shutdown) arrived *)
  finished : Condition.t;  (* coordinator: the current generation completed *)
  workers : int;
  mutable job : job option;
  mutable generation : int;
  mutable next : int;  (* next unclaimed index of the current job *)
  mutable running : int;  (* claimed indices whose [f] has not returned *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* Claim-and-run loop shared by workers and the coordinator. Call with the
   mutex held; returns with the mutex held, after this generation has no
   unclaimed indices (the barrier itself is the coordinator's wait for
   [running = 0]). *)
let drain_current t job =
  while t.next < job.n do
    let i = t.next in
    t.next <- i + 1;
    t.running <- t.running + 1;
    Mutex.unlock t.mutex;
    let outcome =
      try
        job.f i;
        None
      with e -> Some (i, e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    (match outcome with
    | None -> ()
    | Some (i, e, bt) ->
        (match t.failure with
        | Some (j, _, _) when j <= i -> ()
        | _ -> t.failure <- Some (i, e, bt));
        (* Abandon unclaimed indices: the generation is failing anyway. *)
        t.next <- job.n);
    t.running <- t.running - 1;
    if t.running = 0 && t.next >= job.n then Condition.broadcast t.finished
  done

let worker_loop t =
  Mutex.lock t.mutex;
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    if t.stop then continue := false
    else
      match t.job with
      | Some job when t.generation <> !seen ->
          seen := t.generation;
          drain_current t job
      | _ -> Condition.wait t.work t.mutex
  done;
  Mutex.unlock t.mutex

let create ~workers =
  if workers < 1 || workers > 128 then
    invalid_arg "Domain_pool.create: workers must be in [1, 128]";
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      workers;
      job = None;
      generation = 0;
      next = 0;
      running = 0;
      failure = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (workers - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.workers

let parallel_for t ~n ~f =
  if n < 0 then invalid_arg "Domain_pool.parallel_for: negative n";
  if n = 0 then ()
  else if t.workers = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.parallel_for: pool is shut down"
    end;
    if t.job <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.parallel_for: reentrant call"
    end;
    let job = { n; f } in
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.next <- 0;
    t.running <- 0;
    t.failure <- None;
    Condition.broadcast t.work;
    (* The coordinator is a worker too: claim indices until none are left,
       then wait out stragglers. *)
    drain_current t job;
    while t.running > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join domains
