type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean_acc = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean_acc
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min_v
let max t = t.max_v
let total t = t.sum

let confidence95 t =
  if t.n < 2 then 0. else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) and hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let loglog_slope points =
  let usable =
    List.map
      (fun (x, y) ->
        if x <= 0. || y <= 0. then
          invalid_arg "Stats.loglog_slope: coordinates must be positive"
        else (log x, log y))
      points
  in
  let n = List.length usable in
  if n < 2 then invalid_arg "Stats.loglog_slope: need at least two points";
  (* All-equal x must be rejected up front: the summed denominator below
     can round to a tiny nonzero value and yield a garbage slope. *)
  (match usable with
  | (x0, _) :: rest when List.for_all (fun (x, _) -> Float.equal x x0) rest ->
      invalid_arg "Stats.loglog_slope: degenerate x values"
  | _ -> ());
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. usable in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. usable in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. usable in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. usable in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.equal denom 0. then invalid_arg "Stats.loglog_slope: degenerate x values";
  ((nf *. sxy) -. (sx *. sy)) /. denom

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.geometric_mean: empty array";
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive value"
        else acc +. log x)
      0. xs
  in
  exp (log_sum /. float_of_int n)

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;
    mutable n : int;
  }

  let create ~min ~max ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    if min >= max then invalid_arg "Histogram.create: min must be < max";
    {
      lo = min;
      hi = max;
      width = (max -. min) /. float_of_int buckets;
      counts = Array.make buckets 0;
      n = 0;
    }

  let bucket_of t x =
    let buckets = Array.length t.counts in
    if x < t.lo then 0
    else if x >= t.hi then buckets - 1
    else
      let idx = int_of_float ((x -. t.lo) /. t.width) in
      if idx >= buckets then buckets - 1 else idx

  let add t x =
    t.n <- t.n + 1;
    let idx = bucket_of t x in
    t.counts.(idx) <- t.counts.(idx) + 1

  let count t = t.n
  let bucket_counts t = Array.copy t.counts

  let bucket_bounds t =
    Array.init (Array.length t.counts) (fun i ->
        let lo = t.lo +. (float_of_int i *. t.width) in
        (lo, lo +. t.width))

  let pp ppf t =
    let bounds = bucket_bounds t in
    Array.iteri
      (fun i c ->
        if c > 0 then
          let lo, hi = bounds.(i) in
          Format.fprintf ppf "[%.4g, %.4g): %d@." lo hi c)
      t.counts
end
