type align = Left | Right
type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

type line = Row of string list | Separator

type t = {
  caption : string option;
  columns : column array;
  mutable rev_lines : line list;
}

let create ?caption columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { caption; columns = Array.of_list columns; rev_lines = [] }

let add_row t cells =
  if List.length cells <> Array.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rev_lines <- Row cells :: t.rev_lines

let add_separator t = t.rev_lines <- Separator :: t.rev_lines

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let pp ppf t =
  let lines = List.rev t.rev_lines in
  let widths = Array.map (fun c -> String.length c.header) t.columns in
  List.iter
    (function
      | Separator -> ()
      | Row cells ->
          List.iteri
            (fun i cell ->
              if String.length cell > widths.(i) then
                widths.(i) <- String.length cell)
            cells)
    lines;
  let rule =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  (match t.caption with
  | Some caption -> Format.fprintf ppf "%s@." caption
  | None -> ());
  let render_cells cells =
    let rendered =
      List.mapi (fun i cell -> pad t.columns.(i).align widths.(i) cell) cells
    in
    Format.fprintf ppf "%s@." (String.concat " | " rendered)
  in
  render_cells (Array.to_list (Array.map (fun c -> c.header) t.columns));
  Format.fprintf ppf "%s@." rule;
  List.iter
    (function
      | Separator -> Format.fprintf ppf "%s@." rule
      | Row cells -> render_cells cells)
    lines

let to_string t = Format.asprintf "%a" pp t

let to_markdown t =
  let buffer = Buffer.create 256 in
  (match t.caption with
  | Some caption -> Buffer.add_string buffer ("**" ^ caption ^ "**\n\n")
  | None -> ());
  let headers = Array.to_list (Array.map (fun c -> c.header) t.columns) in
  let line cells = "| " ^ String.concat " | " cells ^ " |\n" in
  Buffer.add_string buffer (line headers);
  Buffer.add_string buffer
    (line
       (Array.to_list
          (Array.map
             (fun c -> match c.align with Left -> ":--" | Right -> "--:")
             t.columns)));
  List.iter
    (function
      | Separator -> ()
      | Row cells -> Buffer.add_string buffer (line cells))
    (List.rev t.rev_lines);
  Buffer.contents buffer

let cell_float ?(digits = 4) x = Printf.sprintf "%.*f" digits x
let cell_sci x = Printf.sprintf "%.2e" x
let cell_int n = string_of_int n

let cell_rate x =
  let magnitude = Float.abs x in
  if Float.equal magnitude 0. then "0"
  else if magnitude >= 0.001 && magnitude < 100000. then cell_float ~digits:4 x
  else cell_sci x
