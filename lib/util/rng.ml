(* SplitMix64: a 64-bit state advanced by a Weyl sequence and finalized by a
   variant of the MurmurHash3 mixer. Passes BigCrush; splitting is done by
   drawing a fresh gamma from a secondary mix, per Steele-Lea-Flood. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let popcount64 x =
  let rec loop x acc =
    if x = 0L then acc
    else loop (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  loop x 0

(* Gamma values must be odd; weak gammas (too few 01/10 bit transitions) are
   repaired as in the reference implementation. *)
let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  let z = Int64.logor z 1L in
  let transitions = popcount64 (Int64.logxor z (Int64.shift_right_logical z 1)) in
  if transitions < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create ~seed =
  let s = mix64 (Int64.of_int seed) in
  { state = s; gamma = golden_gamma }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_seed t)

let split t =
  let state' = mix64 (next_seed t) in
  let gamma' = mix_gamma (next_seed t) in
  { state = state'; gamma = gamma' }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the high bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let value = Int64.rem bits bound64 in
    if Int64.(sub (add bits (sub bound64 1L)) value) < 0L then draw ()
    else Int64.to_int value
  in
  draw ()

let float t bound =
  if not (bound > 0. && Float.is_finite bound) then
    invalid_arg "Rng.float: bound must be finite and positive";
  (* 53 uniform mantissa bits in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float bits *. 0x1.0p-53 in
  unit *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if not (mean > 0.) then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let poisson t ~mean =
  if not (mean >= 0.) then invalid_arg "Rng.poisson: mean must be >= 0";
  if Float.equal mean 0. then 0
  else if mean < 30. then begin
    (* Knuth: multiply uniforms until the product drops below e^-mean. *)
    let limit = exp (-.mean) in
    let rec loop k product =
      let product = product *. float t 1.0 in
      if product <= limit then k else loop (k + 1) product
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation with continuity correction, adequate for the
       arrival counts we need. *)
    let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
    let gauss = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let value = mean +. (sqrt mean *. gauss) in
    if value < 0. then 0 else int_of_float (value +. 0.5)
  end

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta < 0. then invalid_arg "Rng.zipf: theta must be >= 0";
  if Float.equal theta 0. then int t n
  else begin
    (* Closed-form inverse of the approximate Zipf CDF (Gray et al. '94). *)
    let nf = float_of_int n in
    let zeta2 = 1.0 +. (0.5 ** theta) in
    let zetan =
      let rec sum i acc =
        if i > n then acc else sum (i + 1) (acc +. (1.0 /. (float_of_int i ** theta)))
      in
      sum 1 0.0
    in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. nf) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan))
    in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < zeta2 then 1
    else
      let rank = int_of_float (nf *. ((eta *. u -. eta +. 1.0) ** alpha)) in
      if rank >= n then n - 1 else rank
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected time, no O(n) allocation. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  for j = n - k to n - 1 do
    let candidate = int t (j + 1) in
    let slot = j - (n - k) in
    if Hashtbl.mem seen candidate then begin
      Hashtbl.replace seen j ();
      out.(slot) <- j
    end
    else begin
      Hashtbl.replace seen candidate ();
      out.(slot) <- candidate
    end
  done;
  out

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
