module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Executor = Dangers_txn.Executor
module Lock_manager = Dangers_lock.Lock_manager
module Clock = Dangers_runtime.Clock
module Runtime = Dangers_runtime.Runtime
module Metrics = Dangers_sim.Metrics
module Rng = Dangers_util.Rng
module Repl_stats = Dangers_replication.Repl_stats
module Common = Dangers_replication.Common
module Obs = Dangers_obs.Metrics

type slave_update = { su_oid : Oid.t; su_value : float; su_stamp : Timestamp.t }

type mobile_state = {
  record : Mobile_node.t;
  mutable connected : bool;
  mutable syncing : bool;
  mutable needs_refresh : bool;
}

type t = {
  common : Common.base;
  base_count : int;
  acceptance : Acceptance.t;
  owner : int array; (* node mastering each object *)
  base_executor : Executor.t; (* the shared base-tier lock space *)
  mobiles : mobile_state array; (* node id = base_count + index *)
  retry_rng : Rng.t;
  mutable network : slave_update list Network.t option;
  mutable schedules : Connectivity.t list;
  mutable pending_installs : Clock.event_id list;
  mutable rejections_rev : (Tentative.t * string) list;
  mutable sync_listeners : (mobile:int -> unit) list;
  initial_value : float;
  mutable committed_rev : Op.t list list; (* base commits, newest first *)
  unsafe_skip_acceptance : bool;
  reconcile_lag : Obs.histogram option;
      (* local-commit to base-replay delay of every replayed tentative txn *)
}

let base t = t.common
let base_count t = t.base_count
let mobile_count t = Array.length t.mobiles
let owner_of t oid = t.owner.(Oid.to_int oid)

let mobile t ~node =
  if node < t.base_count || node >= t.base_count + Array.length t.mobiles then
    invalid_arg "Two_tier.mobile: not a mobile node id";
  t.mobiles.(node - t.base_count).record

let network t =
  match t.network with Some n -> n | None -> assert false

let is_mobile t node = node >= t.base_count

(* The authoritative copy of an object lives at its owner: a base replica
   store, or a mobile node's master-version store. *)
let master_store t oid =
  let owner = owner_of t oid in
  if owner < t.base_count then t.common.Common.stores.(owner)
  else Mobile_node.master_store t.mobiles.(owner - t.base_count).record

let deliver t ~src:_ ~dst updates =
  Metrics.incr t.common.Common.metrics "replica_txns";
  List.iter
    (fun u ->
      Timestamp.Clock.witness t.common.Common.clocks.(dst) u.su_stamp;
      let outcome =
        if is_mobile t dst then
          Mobile_node.apply_master_update
            t.mobiles.(dst - t.base_count).record
            u.su_oid u.su_value u.su_stamp
        else
          Fstore.apply_if_newer t.common.Common.stores.(dst) u.su_oid u.su_value
            u.su_stamp
      in
      match outcome with
      | `Applied -> Metrics.incr t.common.Common.metrics Repl_stats.replica_applied
      | `Stale -> Metrics.incr t.common.Common.metrics Repl_stats.stale_discards)
    updates

(* One lazy slave transaction per node that does not master everything in
   the batch (Figure 1's one-lazy-transaction-per-replica-node). *)
let propagate_batch t ~src updates =
  for dst = 0 to t.common.Common.params.Params.nodes - 1 do
    let relevant =
      List.filter (fun (u : slave_update) -> owner_of t u.su_oid <> dst) updates
    in
    if relevant <> [] && dst <> src then
      Network.send (network t) ~src ~dst relevant
    else if relevant <> [] && dst = src then
      (* The sender applies its own share directly. *)
      deliver t ~src ~dst relevant
  done

(* Prospective results of re-executing [ops] against current master copies,
   without writing: op order respected, later ops see earlier ones' values. *)
let prospective_results t ops =
  let scratch : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let current oid =
    match Hashtbl.find_opt scratch (Oid.to_int oid) with
    | Some v -> v
    | None -> Fstore.read (master_store t oid) oid
  in
  List.iter
    (fun op ->
      if Op.is_update op then begin
        let oid = Op.oid op in
        let value = Op.apply ~read:current ~current:(current oid) op in
        Hashtbl.replace scratch (Oid.to_int oid) value
      end)
    ops;
  Hashtbl.fold (fun i v acc -> (Oid.of_int i, v) :: acc) scratch []
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)

let run_base_transaction t ?(acceptance = Acceptance.Always)
    ?(tentative_results = []) ~ops ~on_done () =
  let common = t.common in
  let metrics = common.Common.metrics in
  let rec attempt () =
    let owner_id = Txn_id.Gen.next common.Common.txn_gen in
    let started = Clock.now common.Common.clock in
    let steps =
      List.map
        (fun op ->
          let resource = Oid.to_int (Op.oid op) in
          if Op.is_update op then Executor.update_step ~resource
          else Executor.read_step ~resource)
        ops
    in
    Executor.run t.base_executor ~owner:owner_id ~steps
      ~on_commit:(fun () ->
        let results = prospective_results t ops in
        (* Deliberate fault for the scheme fuzzer: trust the mobile's
           tentative results blindly instead of the base re-execution —
           exactly the delusion §7's acceptance test exists to prevent.
           The invariant checker must catch this. *)
        let results =
          if not t.unsafe_skip_acceptance then results
          else
            List.map
              (fun (oid, base_value) ->
                match
                  List.find_opt (fun (o, _) -> Oid.equal o oid) tentative_results
                with
                | Some (_, tentative) -> (oid, tentative)
                | None -> (oid, base_value))
              results
        in
        let outcomes =
          List.map
            (fun (oid, base_value) ->
              let tentative =
                match
                  List.find_opt (fun (o, _) -> Oid.equal o oid) tentative_results
                with
                | Some (_, v) -> v
                | None -> base_value
              in
              { Acceptance.oid; tentative; base = base_value })
            results
        in
        match
          (if t.unsafe_skip_acceptance then None
           else Acceptance.explain acceptance outcomes)
        with
        | None ->
            let updates =
              List.map
                (fun (oid, value) ->
                  let owner = owner_of t oid in
                  let stamp = Timestamp.Clock.tick common.Common.clocks.(owner) in
                  Fstore.write (master_store t oid) oid value stamp;
                  { su_oid = oid; su_value = value; su_stamp = stamp })
                results
            in
            (match updates with
            | [] -> ()
            | first :: _ ->
                propagate_batch t ~src:(owner_of t first.su_oid) updates);
            t.committed_rev <- ops :: t.committed_rev;
            Common.commit_duration common ~started;
            on_done (`Committed results)
        | Some reason ->
            (* The base transaction aborts: no master copy changes. *)
            on_done (`Rejected reason))
      ~on_deadlock:(fun ~cycle:_ ->
        Metrics.incr metrics Repl_stats.deadlocks;
        Metrics.incr metrics Repl_stats.restarts;
        Clock.schedule_unit common.Common.clock
          ~delay:(Common.backoff_delay common t.retry_rng)
          attempt)
  in
  attempt ()

let host_of t mobile_index = mobile_index mod t.base_count

let finish_sync t mobile_index =
  let m = t.mobiles.(mobile_index) in
  m.syncing <- false;
  if m.connected then begin
    Mobile_node.refresh_from m.record
      t.common.Common.stores.(host_of t mobile_index);
    m.needs_refresh <- false;
    Metrics.incr t.common.Common.metrics "syncs";
    List.iter (fun listener -> listener ~mobile:mobile_index) t.sync_listeners
  end
  else m.needs_refresh <- true

let rec replay t mobile_index = function
  | [] -> finish_sync t mobile_index
  | txn :: rest ->
      run_base_transaction t ~acceptance:txn.Tentative.acceptance
        ~tentative_results:txn.Tentative.tentative_results
        ~ops:txn.Tentative.ops
        ~on_done:(fun result ->
          let metrics = t.common.Common.metrics in
          (match t.reconcile_lag with
          | None -> ()
          | Some h ->
              Obs.observe h
                (Clock.now t.common.Common.clock -. txn.Tentative.committed_at));
          (match result with
          | `Committed _ -> Metrics.incr metrics "tentative_accepted"
          | `Rejected reason ->
              Metrics.incr metrics "tentative_rejected";
              Metrics.incr metrics Repl_stats.reconciliations;
              t.rejections_rev <- (txn, reason) :: t.rejections_rev);
          replay t mobile_index rest)
        ()

(* Step 2: push the mobile's mastered objects so base replicas are not
   behind the master. Idempotent (slaves apply-if-newer). *)
let send_mobile_mastered t mobile_index =
  let node = t.base_count + mobile_index in
  let store = Mobile_node.master_store t.mobiles.(mobile_index).record in
  let updates = ref [] in
  Array.iteri
    (fun i owner ->
      if owner = node then begin
        let oid = Oid.of_int i in
        updates :=
          {
            su_oid = oid;
            su_value = Fstore.read store oid;
            su_stamp = Fstore.stamp store oid;
          }
          :: !updates
      end)
    t.owner;
  if !updates <> [] then propagate_batch t ~src:node !updates

let start_sync t mobile_index =
  let m = t.mobiles.(mobile_index) in
  if not m.syncing then begin
    let pending = Mobile_node.take_pending m.record in
    if pending <> [] || m.needs_refresh then begin
      m.syncing <- true;
      send_mobile_mastered t mobile_index;
      replay t mobile_index pending
    end
  end

let on_connectivity t ~node ~connected =
  if is_mobile t node then begin
    let mobile_index = node - t.base_count in
    let m = t.mobiles.(mobile_index) in
    m.connected <- connected;
    if connected then start_sync t mobile_index
  end

let scope_ok t ~node ops =
  List.for_all
    (fun op ->
      let owner = owner_of t (Op.oid op) in
      owner < t.base_count || owner = node)
    ops

type submit_result =
  [ `Committed of (Oid.t * float) list
  | `Rejected of string
  | `Tentative
  | `Scope_violation ]

let submit_with t ~node ~on_result ops =
  let metrics = t.common.Common.metrics in
  if not (scope_ok t ~node ops) then begin
    Metrics.incr metrics "scope_violations";
    on_result `Scope_violation
  end
  else if not (is_mobile t node) then
    run_base_transaction t ~ops
      ~on_done:(fun result -> on_result (result :> submit_result))
      ()
  else begin
    let m = t.mobiles.(node - t.base_count) in
    if m.connected && not m.syncing then
      run_base_transaction t ~ops
        ~on_done:(fun result -> on_result (result :> submit_result))
        ()
    else begin
      Metrics.incr metrics "tentative_commits";
      ignore
        (Mobile_node.run_tentative m.record ~ops ~acceptance:t.acceptance
           ~now:(Clock.now t.common.Common.clock));
      on_result `Tentative
    end
  end

let submit t ~node ops = submit_with t ~node ~on_result:ignore ops

let on_sync t listener = t.sync_listeners <- listener :: t.sync_listeners

let master_value t oid = Fstore.read (master_store t oid) oid

let create ?obs ?runtime ?profile ?(initial_value = 0.)
    ?(acceptance = Acceptance.Always) ?(delay = Delay.Zero) ?faults ?mobility
    ?(mobile_owned_per_node = 0) ?(unsafe_skip_acceptance = false) ~base_nodes
    params ~seed =
  if base_nodes < 1 || base_nodes > params.Params.nodes then
    invalid_arg "Two_tier.create: base_nodes out of range";
  let mobile_total = params.Params.nodes - base_nodes in
  if mobile_owned_per_node < 0 then
    invalid_arg "Two_tier.create: negative mobile_owned_per_node";
  if mobile_owned_per_node * mobile_total >= params.Params.db_size then
    invalid_arg "Two_tier.create: mobile-owned blocks exceed the database";
  let common = Common.make ?obs ?runtime ?profile ~initial_value params ~seed in
  let obs = common.Common.obs in
  let owner =
    Array.init params.Params.db_size (fun i ->
        let tail = params.Params.db_size - (mobile_owned_per_node * mobile_total) in
        if i < tail then i mod base_nodes
        else base_nodes + ((i - tail) / mobile_owned_per_node))
  in
  let base_executor =
    Executor.create
      ~on_wait:(fun () -> Metrics.incr common.Common.metrics Repl_stats.waits)
      ~clock:common.Common.clock
      ~locks:(Lock_manager.create ?obs ())
      ~action_time:params.Params.action_time ()
  in
  let mobiles =
    Array.init mobile_total (fun i ->
        {
          record =
            Mobile_node.create ~node:(base_nodes + i)
              ~db_size:params.Params.db_size ~initial_value;
          connected = true;
          syncing = false;
          needs_refresh = false;
        })
  in
  let t =
    {
      common;
      base_count = base_nodes;
      acceptance;
      owner;
      base_executor;
      mobiles;
      retry_rng = Rng.split common.Common.rng;
      network = None;
      schedules = [];
      rejections_rev = [];
      sync_listeners = [];
      initial_value;
      committed_rev = [];
      pending_installs = [];
      unsafe_skip_acceptance;
      reconcile_lag =
        Option.map
          (fun registry ->
            (* Reconciliation lag is dominated by the disconnect window —
               hours of simulated time, not the sub-second latency spread
               the default buckets cover. *)
            Obs.histogram
              ~buckets:
                [| 0.1; 1.; 10.; 60.; 300.; 1800.; 3600.; 14400.; 86400. |]
              registry "two_tier.reconcile_lag_seconds")
          obs;
    }
  in
  (match obs with
  | None -> ()
  | Some registry ->
      (* Mobile-tier replication lag, read at snapshot time: queue depths
         and the age of each node's oldest unreplayed tentative txn. The
         per-mobile breakdown is capped so a thousand-mobile sweep cannot
         bloat every snapshot. *)
      let detailed = min mobile_total 64 in
      Obs.register_source registry (fun () ->
          let now = Clock.now common.Common.clock in
          let depth_sum = ref 0 and oldest_age = ref 0. in
          let per_mobile = ref [] in
          for i = mobile_total - 1 downto 0 do
            let record = t.mobiles.(i).record in
            let depth = Mobile_node.pending_count record in
            let age =
              match Mobile_node.pending record with
              | [] -> 0.
              | oldest :: _ -> Float.max 0. (now -. oldest.Tentative.committed_at)
            in
            depth_sum := !depth_sum + depth;
            oldest_age := Float.max !oldest_age age;
            if i < detailed then
              per_mobile :=
                Obs.Gauge
                  ( Printf.sprintf "two_tier.mobile.%02d.tentative_queue_depth" i,
                    float_of_int depth )
                :: Obs.Gauge
                     ( Printf.sprintf
                         "two_tier.mobile.%02d.oldest_tentative_age_seconds" i,
                       age )
                :: !per_mobile
          done;
          Obs.Gauge
            ("two_tier.tentative_queue_depth", float_of_int !depth_sum)
          :: Obs.Gauge ("two_tier.oldest_tentative_age_seconds", !oldest_age)
          :: !per_mobile));
  let net =
    Network.create ?obs ?faults ~clock:common.Common.clock
      ~rng:(Rng.split common.Common.rng) ~delay ~nodes:params.Params.nodes
      ~deliver:(fun ~src ~dst u -> deliver t ~src ~dst u) ()
  in
  Network.on_connectivity_change net (fun ~node ~connected ->
      on_connectivity t ~node ~connected);
  t.network <- Some net;
  let spec =
    match mobility with
    | Some spec -> spec
    | None ->
        Connectivity.day_cycle ~connected:params.Params.time_between_disconnects
          ~disconnected:params.Params.disconnected_time
  in
  if mobile_total > 0 && not (Connectivity.always_connected spec) then begin
    let cycle =
      spec.Connectivity.time_between_disconnects
      +. spec.Connectivity.disconnected_time
    in
    let stagger_rng = Rng.split common.Common.rng in
    for i = 0 to mobile_total - 1 do
      let node = base_nodes + i in
      let offset = Rng.float stagger_rng cycle in
      let install =
        Clock.schedule common.Common.clock ~delay:offset (fun () ->
            let schedule =
              Connectivity.install ~clock:common.Common.clock
                ~rng:(Rng.split stagger_rng) ~spec
                ~set_connected:(fun connected ->
                  Network.set_connected net ~node connected)
            in
            t.schedules <- schedule :: t.schedules)
      in
      t.pending_installs <- install :: t.pending_installs
    done
  end;
  t

let start t = Common.start_generators t.common ~submit:(fun ~node ops -> submit t ~node ops)
let stop_load t = Common.stop_generators t.common

let summary t = Repl_stats.summarize ~scheme:"two-tier" t.common.Common.metrics

let set_node_connected t ~node state = Network.set_connected (network t) ~node state
let flush_node t ~node = Network.flush_node (network t) ~node

let tentative_accepted t = Metrics.total_count t.common.Common.metrics "tentative_accepted"
let tentative_rejected t = Metrics.total_count t.common.Common.metrics "tentative_rejected"
let rejection_log t = List.rev t.rejections_rev

let connect_all t =
  (* Mobility installs still waiting to fire must not resurrect toggles
     after the quiesce. *)
  List.iter (Clock.cancel t.common.Common.clock) t.pending_installs;
  t.pending_installs <- [];
  List.iter Connectivity.stop t.schedules;
  t.schedules <- [];
  Array.iteri
    (fun i _ -> Network.set_connected (network t) ~node:(t.base_count + i) true)
    t.mobiles

let converged t =
  let reference = t.common.Common.stores.(0) in
  let bases_equal =
    Array.for_all
      (fun store -> Fstore.content_equal reference store)
      (Array.sub t.common.Common.stores 0 t.base_count)
  in
  bases_equal
  && Array.for_all
       (fun m ->
         Fstore.content_equal reference (Mobile_node.master_store m.record)
         && Fstore.content_equal reference (Mobile_node.tentative_store m.record)
         && Mobile_node.pending_count m.record = 0)
       t.mobiles

(* Single-copy serializability of the base tier: replaying the committed
   base transactions in commit order on a fresh database must land exactly
   on the master state. 2PL with commit-ordered application makes this an
   invariant; the check is the §7 claim "base transactions execute with
   single-copy serializability" made executable. *)
let base_history_serializable t =
  let db_size = t.common.Common.params.Params.db_size in
  let replayed = Array.make db_size t.initial_value in
  List.iter
    (fun ops ->
      List.iter
        (fun op ->
          if Op.is_update op then begin
            let i = Oid.to_int (Op.oid op) in
            let read oid = replayed.(Oid.to_int oid) in
            replayed.(i) <- Op.apply ~read ~current:replayed.(i) op
          end)
        ops)
    (List.rev t.committed_rev);
  let ok = ref true in
  Array.iteri
    (fun i expected ->
      let oid = Oid.of_int i in
      let actual = Fstore.read (master_store t oid) oid in
      if Float.abs (actual -. expected) > 1e-9 then ok := false)
    replayed;
  !ok

let quiesce_and_sync t =
  stop_load t;
  connect_all t;
  Common.drain t.common;
  (* A sync that raced a disconnect may have left a refresh pending. *)
  Array.iteri (fun i _ -> start_sync t i) t.mobiles;
  Array.iteri (fun i _ -> finish_sync t i) t.mobiles;
  Common.drain t.common
