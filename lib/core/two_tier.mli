(** The two-tier replication scheme (§7) — the paper's solution.

    Topology: [base_nodes] always-connected base nodes plus
    [params.nodes - base_nodes] mobile nodes that cycle between connected
    and disconnected on the Table 2 schedule. Objects are mastered
    round-robin at base nodes; optionally each mobile masters a block of
    objects of its own ([mobile_owned_per_node]).

    Execution:
    - Base nodes (and connected mobiles) run ordinary base transactions:
      lazy-master execution against the object masters — locks and
      Action_Time per action in the base lock space, lazy slave updates
      fanned out after commit. Deadlock victims are resubmitted until they
      commit, so base behaviour (and its deadlock rate) is equation (19)'s.
    - A disconnected mobile runs tentative transactions against its
      tentative versions and queues them.
    - On reconnect the mobile (1) discards tentative versions, (2) sends
      updates for objects it masters, (3) has its host base node re-execute
      every queued tentative transaction, in local commit order, as a base
      transaction guarded by the transaction's acceptance criterion —
      rejects return a diagnostic — and (4–5) refreshes its replica from
      the host, converging with the base state.

    Tentative transactions must respect the scope rule: they may touch only
    objects mastered at base nodes or at the originating mobile; violations
    are counted and refused at submission.

    Metrics: [Repl_stats.commits]/[waits]/[deadlocks]/[restarts] cover base
    transactions; ["tentative_commits"], ["tentative_accepted"],
    ["tentative_rejected"] (mirrored into [Repl_stats.reconciliations]),
    ["scope_violations"], and ["syncs"] cover the mobile protocol. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Repl_stats = Dangers_replication.Repl_stats
module Common = Dangers_replication.Common

type t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?runtime:Dangers_runtime.Runtime.t ->
  ?profile:Profile.t ->
  ?initial_value:float ->
  ?acceptance:Acceptance.t ->
  ?delay:Delay.t ->
  ?faults:Dangers_net.Network.faults ->
  ?mobility:Connectivity.spec ->
  ?mobile_owned_per_node:int ->
  ?unsafe_skip_acceptance:bool ->
  base_nodes:int ->
  Params.t ->
  seed:int ->
  t
(** Defaults: [Always] acceptance, zero delay, the Table 2 day-cycle
    mobility derived from [params] (fixed phases, staggered starts), no
    mobile-mastered objects, and a fresh simulator runtime — pass
    [Dangers_runtime.Runtime.live_virtual ()] or [live_wall ()] to run
    the identical scheme code on the live timer wheel (the serving
    path). @raise Invalid_argument if [base_nodes] is not
    in [1, params.nodes] or mobile-owned blocks exceed the database.

    [faults] plugs a fault injector into the slave-update network.

    [unsafe_skip_acceptance] (default false) is a DELIBERATE BUG for
    fuzzer self-validation: the base skips the acceptance re-check and
    blindly commits the mobile's tentative results, producing exactly the
    base-tier delusion §7 prevents. {!base_history_serializable} must then
    fail under concurrent load; never enable it outside tests. *)

val base : t -> Common.base
val base_count : t -> int
val mobile_count : t -> int
val owner_of : t -> Oid.t -> int
val mobile : t -> node:int -> Mobile_node.t
(** @raise Invalid_argument for a base-node id. *)

val submit : t -> node:int -> Op.t list -> unit
(** What the generators call: routes to a direct base transaction or a
    tentative transaction depending on the node's connectivity. *)

type submit_result =
  [ `Committed of (Oid.t * float) list
  | `Rejected of string
  | `Tentative
  | `Scope_violation ]

val submit_with :
  t -> node:int -> on_result:(submit_result -> unit) -> Op.t list -> unit
(** {!submit} with the outcome reported: [`Tentative] fires immediately
    (the transaction is queued on the mobile), the base outcomes fire
    when the base transaction finishes — that asynchrony is what lets a
    live server answer each client request exactly once. *)

val on_sync : t -> (mobile:int -> unit) -> unit
(** Subscribe to sync completions: fires after protocol step 4 (replica
    refresh) each time a mobile finishes replaying its queue. [mobile]
    is the mobile index, i.e. node id minus {!base_count}. *)

val master_value : t -> Oid.t -> float
(** Read an object's current master copy (wherever it is mastered) —
    the live protocol's query path. *)

val run_base_transaction :
  t -> ?acceptance:Acceptance.t ->
  ?tentative_results:(Oid.t * float) list ->
  ops:Op.t list ->
  on_done:([ `Committed of (Oid.t * float) list | `Rejected of string ] -> unit) ->
  unit ->
  unit
(** Run one base transaction explicitly (examples and tests use this; the
    scheme itself uses it for everything). With an acceptance criterion and
    recorded tentative results it is a replay; committed results are the
    new master values. *)

val start : t -> unit
val stop_load : t -> unit
val summary : t -> Repl_stats.summary

val tentative_accepted : t -> int
val tentative_rejected : t -> int
val rejection_log : t -> (Tentative.t * string) list
(** Every rejected tentative transaction with its §7 diagnostic, oldest
    first. *)

val connect_all : t -> unit
(** Stop the mobility schedules and reconnect every mobile (triggering
    their syncs). *)

val set_node_connected : t -> node:int -> bool -> unit
(** Drive one node's connectivity directly (the fault injector's crash /
    restart lever). Disconnecting a mobile sends it tentative; reconnecting
    triggers its sync, like a schedule toggle would. *)

val flush_node : t -> node:int -> unit
(** Retry the node's partition-parked slave updates
    (see {!Dangers_net.Network.flush_node}). *)

val base_history_serializable : t -> bool
(** §7 property 2, made executable: replaying every committed base
    transaction in commit order on a fresh database reproduces the master
    state exactly (single-copy serializability of the base tier). Check
    after a quiesce. *)

val converged : t -> bool
(** All base replicas identical and every mobile's stores equal to them.
    Meaningful after [stop_load], [connect_all], and draining the engine. *)

val quiesce_and_sync : t -> unit
(** [stop_load], [connect_all], then drain the engine — after this
    [converged] must hold; used by experiments to verify the paper's
    "master database is always converged" claim. *)
