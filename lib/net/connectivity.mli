(** Mobile connectivity schedules.

    Table 2 models a mobile node by two parameters: the mean time between
    network disconnects (Time_Between_Disconnects) and the mean time a node
    stays disconnected (Disconnected_time). A schedule alternates
    connected / disconnected phases on the simulation clock and drives a
    {!Network.t} (or any callback) accordingly.

    Phase lengths are either exactly the mean ([Fixed], the paper's
    day-cycle story: "accepts and applies transactions for a day, then at
    night it connects") or exponentially distributed ([Exponential]). *)

type distribution = Fixed | Exponential

type spec = {
  time_between_disconnects : float;  (** mean connected-phase length, s *)
  disconnected_time : float;  (** mean disconnected-phase length, s *)
  distribution : distribution;
  start_connected : bool;
}

val always_connected : spec -> bool
(** True for the degenerate spec used by base nodes. *)

val base_node : spec
(** Never disconnects. *)

val day_cycle : connected:float -> disconnected:float -> spec
(** Fixed alternation, starting connected.
    @raise Invalid_argument on non-positive phase lengths. *)

type t

val install :
  clock:Dangers_runtime.Clock.t ->
  rng:Dangers_util.Rng.t ->
  spec:spec ->
  set_connected:(bool -> unit) ->
  t
(** Start driving [set_connected] on the schedule. The initial state is
    applied immediately (time 0 of the schedule); subsequent toggles are
    clock events. *)

val stop : t -> unit
(** Cancel future toggles; the current state persists. *)

val toggles : t -> int
(** Connectivity changes applied so far (excluding the initial state). *)
