module Clock = Dangers_runtime.Clock
module Rng = Dangers_util.Rng

type distribution = Fixed | Exponential

type spec = {
  time_between_disconnects : float;
  disconnected_time : float;
  distribution : distribution;
  start_connected : bool;
}

let always_connected spec =
  Float.equal spec.time_between_disconnects infinity && spec.start_connected

let base_node =
  {
    time_between_disconnects = infinity;
    disconnected_time = 0.;
    distribution = Fixed;
    start_connected = true;
  }

let day_cycle ~connected ~disconnected =
  if connected <= 0. || disconnected <= 0. then
    invalid_arg "Connectivity.day_cycle: phase lengths must be positive";
  {
    time_between_disconnects = connected;
    disconnected_time = disconnected;
    distribution = Fixed;
    start_connected = true;
  }

type t = {
  clock : Clock.t;
  rng : Rng.t;
  spec : spec;
  set_connected : bool -> unit;
  mutable next_event : Clock.event_id option;
  mutable toggle_count : int;
  mutable stopped : bool;
}

let phase_length t ~connected =
  let mean =
    if connected then t.spec.time_between_disconnects else t.spec.disconnected_time
  in
  match t.spec.distribution with
  | Fixed -> mean
  | Exponential -> Rng.exponential t.rng ~mean

let rec arm t ~connected =
  if not t.stopped then begin
    let span = phase_length t ~connected in
    if Float.is_finite span then
      t.next_event <-
        Some
          (Clock.schedule t.clock ~delay:span (fun () ->
               (* [stop] cancels this event, but guard anyway: a stop racing
                  an in-flight toggle (e.g. issued from another event at the
                  same timestamp) must never fire a late [set_connected]. *)
               if not t.stopped then begin
                 let connected' = not connected in
                 t.toggle_count <- t.toggle_count + 1;
                 t.set_connected connected';
                 arm t ~connected:connected'
               end))
    else t.next_event <- None
  end

let install ~clock ~rng ~spec ~set_connected =
  if spec.time_between_disconnects <= 0. then
    invalid_arg "Connectivity.install: time_between_disconnects must be positive";
  if spec.disconnected_time < 0. then
    invalid_arg "Connectivity.install: disconnected_time must be >= 0";
  let t =
    {
      clock;
      rng;
      spec;
      set_connected;
      next_event = None;
      toggle_count = 0;
      stopped = false;
    }
  in
  set_connected spec.start_connected;
  arm t ~connected:spec.start_connected;
  t

let stop t =
  t.stopped <- true;
  match t.next_event with
  | Some event ->
      Clock.cancel t.clock event;
      t.next_event <- None
  | None -> ()

let toggles t = t.toggle_count
