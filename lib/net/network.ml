module Clock = Dangers_runtime.Clock
module Runtime = Dangers_runtime.Runtime
module Rng = Dangers_util.Rng

type 'msg parked = { p_src : int; p_dst : int; p_msg : 'msg }

type fault_action = Runtime.fault_action =
  | Pass
  | Drop
  | Duplicate
  | Delay_extra of float

type faults = Runtime.faults = {
  blocked : src:int -> dst:int -> bool;
  on_transmit : src:int -> dst:int -> fault_action;
}

let no_faults = Runtime.no_faults

type 'msg t = {
  clock : Clock.t;
  rng : Rng.t;
  delay : Delay.t;
  node_count : int;
  faults : faults;
  connected : bool array;
  parked : 'msg parked Queue.t array; (* indexed by the disconnected endpoint *)
  deliver : src:int -> dst:int -> 'msg -> unit;
  mutable observers : (node:int -> connected:bool -> unit) list;
  mutable sent : int;
  mutable delivered : int;
  mutable parked_count : int;
  mutable dropped : int;
  mutable duplicated : int;
  (* Pre-resolved metrics handle, [None] when no registry is attached —
     same zero-cost-when-detached shape as the engine's tracer. *)
  latency : Dangers_obs.Metrics.histogram option;
}

let create ?obs ?(faults = no_faults) ~clock ~rng ~delay ~nodes ~deliver () =
  if nodes <= 0 then invalid_arg "Network.create: nodes must be positive";
  Delay.validate delay;
  let t =
    {
      clock;
      rng;
      delay;
      node_count = nodes;
      faults;
      connected = Array.make nodes true;
      parked = Array.init nodes (fun _ -> Queue.create ());
      deliver;
      observers = [];
      sent = 0;
      delivered = 0;
      parked_count = 0;
      dropped = 0;
      duplicated = 0;
      latency =
        Option.map
          (fun registry ->
            Dangers_obs.Metrics.histogram registry "net.hop_latency_seconds")
          obs;
    }
  in
  (match obs with
  | None -> ()
  | Some registry ->
      Dangers_obs.Metrics.register_source registry (fun () ->
          [
            Dangers_obs.Metrics.Count ("net.messages_sent_total", t.sent);
            Dangers_obs.Metrics.Count
              ("net.messages_delivered_total", t.delivered);
            Dangers_obs.Metrics.Count ("net.messages_dropped_total", t.dropped);
            Dangers_obs.Metrics.Count
              ("net.messages_duplicated_total", t.duplicated);
            Dangers_obs.Metrics.Gauge
              ("net.messages_parked", float_of_int t.parked_count);
          ]));
  t

let nodes t = t.node_count

let check_node t node name =
  if node < 0 || node >= t.node_count then invalid_arg (name ^ ": node out of range")

let is_connected t ~node =
  check_node t node "Network.is_connected";
  t.connected.(node)

let park t ~at message =
  Clock.trace t.clock (Dangers_sim.Trace.Message_parked { at });
  Queue.add message t.parked.(at);
  t.parked_count <- t.parked_count + 1

(* Arrival: if the destination went down while the message was in flight, it
   parks there and is re-delivered after the reconnect flush. A partition
   that started mid-flight does not stop an arrival: the message was already
   on the wire. *)
let arrive t ({ p_src; p_dst; p_msg } as message) =
  if t.connected.(p_dst) then begin
    t.delivered <- t.delivered + 1;
    Clock.trace t.clock
      (Dangers_sim.Trace.Message_delivered { src = p_src; dst = p_dst });
    t.deliver ~src:p_src ~dst:p_dst p_msg
  end
  else park t ~at:p_dst message

let schedule_arrival t message ~extra =
  let delay = Delay.sample t.delay t.rng +. extra in
  (match t.latency with
  | None -> ()
  | Some h -> Dangers_obs.Metrics.observe h delay);
  Clock.schedule_unit t.clock ~delay (fun () -> arrive t message)

(* Put a message on the wire, consulting the per-message fault hook. *)
let transmit t ({ p_src; p_dst; _ } as message) =
  match t.faults.on_transmit ~src:p_src ~dst:p_dst with
  | Pass -> schedule_arrival t message ~extra:0.
  | Drop ->
      t.dropped <- t.dropped + 1;
      Clock.trace t.clock
        (Dangers_sim.Trace.Message_dropped { src = p_src; dst = p_dst })
  | Duplicate ->
      t.duplicated <- t.duplicated + 1;
      Clock.trace t.clock
        (Dangers_sim.Trace.Message_duplicated { src = p_src; dst = p_dst });
      schedule_arrival t message ~extra:0.;
      schedule_arrival t message ~extra:0.
  | Delay_extra extra -> schedule_arrival t message ~extra:(Float.max 0. extra)

(* Decide where a message goes right now: onto the wire, or parked at a
   down or partitioned endpoint. Partition-blocked messages wait at the
   sender and are retried by [flush_node] after the partition heals. *)
let route t ({ p_src; p_dst; _ } as message) =
  if not t.connected.(p_src) then park t ~at:p_src message
  else if not t.connected.(p_dst) then park t ~at:p_dst message
  else if t.faults.blocked ~src:p_src ~dst:p_dst then park t ~at:p_src message
  else transmit t message

let send t ~src ~dst msg =
  check_node t src "Network.send";
  check_node t dst "Network.send";
  if src = dst then invalid_arg "Network.send: src = dst";
  t.sent <- t.sent + 1;
  Clock.trace t.clock (Dangers_sim.Trace.Message_sent { src; dst });
  route t { p_src = src; p_dst = dst; p_msg = msg }

let broadcast t ~src msg =
  for dst = 0 to t.node_count - 1 do
    if dst <> src then send t ~src ~dst msg
  done

(* Drain a node's parked queue and re-route everything; a message may park
   again immediately (other endpoint down, or still partitioned). *)
let reroute_parked t ~node =
  let queue = t.parked.(node) in
  let backlog = Queue.length queue in
  for _ = 1 to backlog do
    let message = Queue.pop queue in
    t.parked_count <- t.parked_count - 1;
    route t message
  done

let flush_node t ~node =
  check_node t node "Network.flush_node";
  if t.connected.(node) then reroute_parked t ~node

let set_connected t ~node state =
  check_node t node "Network.set_connected";
  if t.connected.(node) <> state then begin
    t.connected.(node) <- state;
    Clock.trace t.clock
      (if state then Dangers_sim.Trace.Node_connected { node }
       else Dangers_sim.Trace.Node_disconnected { node });
    if state then reroute_parked t ~node;
    List.iter (fun observer -> observer ~node ~connected:state) t.observers
  end

let on_connectivity_change t observer = t.observers <- observer :: t.observers

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_parked t = t.parked_count
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated

(* Compile-time proof that the simulated network satisfies the runtime's
   transport interface — the contract a third transport must meet. *)
module _ : Runtime.TRANSPORT = struct
  type nonrec 'msg t = 'msg t

  let create = create
  let nodes = nodes
  let is_connected = is_connected
  let send = send
  let broadcast = broadcast
  let set_connected = set_connected
  let flush_node = flush_node
  let on_connectivity_change = on_connectivity_change
  let messages_sent = messages_sent
  let messages_delivered = messages_delivered
  let messages_parked = messages_parked
  let messages_dropped = messages_dropped
  let messages_duplicated = messages_duplicated
end
