(* Moved to [Dangers_runtime.Delay] when the runtime abstraction landed;
   this alias keeps the historical [Dangers_net.Delay] spelling working
   with full type equality. *)

type t = Dangers_runtime.Delay.t =
  | Zero
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

let validate = Dangers_runtime.Delay.validate
let sample = Dangers_runtime.Delay.sample
let min_bound = Dangers_runtime.Delay.min_bound
let pp = Dangers_runtime.Delay.pp
