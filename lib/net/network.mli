(** Message network with store-and-forward for disconnected nodes — the
    canonical {!Dangers_runtime.Runtime.TRANSPORT} implementation.

    Nodes are integers in [0, nodes). A message is delivered by invoking the
    network's [deliver] callback after the sampled delay — but only when both
    endpoints are connected. Messages involving a disconnected endpoint are
    parked and flushed when that node reconnects; this models the paper's
    mobile pattern of exchanging deferred replica updates at reconnect
    (§2, §4). Base nodes simply never disconnect.

    All timing goes through the runtime {!Dangers_runtime.Clock}: on a
    simulator clock this is the simulated network it always was, and on a
    live clock the same delivery semantics play out in real elapsed time
    (the live runtime's in-process transport).

    A {!faults} hook lets a fault injector perturb delivery: drop, duplicate
    or delay individual messages, and block (partition) pairs of nodes.
    Without hooks the network is loss-free and duplicate-free. *)

type 'msg t

(** {1 Fault hooks}

    The types live in {!Dangers_runtime.Runtime} (any transport can be
    fault-injected); re-exported here with full equality. *)

type fault_action = Dangers_runtime.Runtime.fault_action =
  | Pass  (** deliver normally *)
  | Drop  (** lose the message (counted and traced) *)
  | Duplicate  (** put two copies in flight, each with its own delay *)
  | Delay_extra of float  (** add this much latency (reordering) *)

type faults = Dangers_runtime.Runtime.faults = {
  blocked : src:int -> dst:int -> bool;
      (** partition test, consulted at transmission time; blocked messages
          park at the sender and are retried by {!flush_node} *)
  on_transmit : src:int -> dst:int -> fault_action;
      (** per-message perturbation, consulted each time a message is put on
          the wire (including reconnect flushes) *)
}

val no_faults : faults
(** Never blocks, always [Pass] — the default. *)

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?faults:faults ->
  clock:Dangers_runtime.Clock.t ->
  rng:Dangers_util.Rng.t ->
  delay:Delay.t ->
  nodes:int ->
  deliver:(src:int -> dst:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** All nodes start connected. @raise Invalid_argument if [nodes <= 0] or
    the delay model is invalid.

    When [obs] is given, the network registers a pull source for its
    message counters ([net.messages_*]) and observes every sampled hop
    delay into the [net.hop_latency_seconds] histogram; without it the
    send path is byte-identical to an uninstrumented network. *)

val nodes : 'msg t -> int
val is_connected : 'msg t -> node:int -> bool

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. @raise Invalid_argument on out-of-range node ids or
    [src = dst]. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** Send to every other node. *)

val set_connected : 'msg t -> node:int -> bool -> unit
(** Reconnecting flushes messages parked for and by the node, each with a
    fresh delay sample. Observers registered with [on_connectivity_change]
    run after the flush is scheduled. Setting the current state is a
    no-op. *)

val flush_node : 'msg t -> node:int -> unit
(** Re-route the node's parked messages without a connectivity change —
    called by the fault injector after a partition heals, since heals do not
    toggle [set_connected]. A no-op on a disconnected node. *)

val on_connectivity_change : 'msg t -> (node:int -> connected:bool -> unit) -> unit

(** {1 Counters} *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int
val messages_parked : 'msg t -> int
(** Currently parked (waiting for a reconnect). *)

val messages_dropped : 'msg t -> int
(** Lost to injected faults. *)

val messages_duplicated : 'msg t -> int
(** Extra copies put in flight by injected faults. *)
