(* The one JSON codec in the tree. It started life inside the sweep
   runner's Export module; the observability layer needs the same encoding
   below the runner in the dependency order (sim traces, metrics
   snapshots), so the codec lives here and Export re-exports it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Shortest decimal that parses back to the same double. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if Float.equal (float_of_string s) f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_string buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf key;
          Buffer.add_char buf ':';
          to_buf buf value)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buf buf j;
  Buffer.contents buf

(* Recursive-descent parser over a string. *)
type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> parse_error "expected %c at offset %d, got %c" ch c.pos got
  | None -> parse_error "expected %c at offset %d, got end of input" ch c.pos

let literal c word value =
  if
    c.pos + String.length word <= String.length c.input
    && String.sub c.input c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else parse_error "bad literal at offset %d" c.pos

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.input then
              parse_error "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.input c.pos 4) in
            c.pos <- c.pos + 4;
            (* We only ever emit \u00xx for control characters; decode the
               Latin-1 range and refuse the rest rather than mis-encode. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else parse_error "unsupported \\u escape %04x" code;
            loop ()
        | _ -> parse_error "bad escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> number_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.input start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> parse_error "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              Arr (List.rev (v :: acc))
          | _ -> parse_error "expected , or ] at offset %d" c.pos
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          (key, parse_value c)
        in
        let rec fields acc =
          let f = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (f :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev (f :: acc))
          | _ -> parse_error "expected , or } at offset %d" c.pos
        in
        fields []
  | Some _ -> parse_number c

let of_string input =
  let c = { input; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length input then
    parse_error "trailing garbage at offset %d" c.pos;
  v

let of_float f =
  if Float.is_nan f then Str "nan"
  else if Float.equal f Float.infinity then Str "inf"
  else if Float.equal f Float.neg_infinity then Str "-inf"
  else Num f

let to_float = function
  | Num f -> f
  | Str "nan" -> Float.nan
  | Str "inf" -> Float.infinity
  | Str "-inf" -> Float.neg_infinity
  | j -> parse_error "expected a float, got %s" (to_string j)

let int_ i = Num (float_of_int i)

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> parse_error "missing field %S" key)
  | j -> parse_error "expected an object, got %s" (to_string j)

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | j -> parse_error "expected an object, got %s" (to_string j)

let string_of = function
  | Str s -> s
  | j -> parse_error "expected a string, got %s" (to_string j)

let int_of = function
  | Num f when Float.is_integer f -> int_of_float f
  | j -> parse_error "expected an integer, got %s" (to_string j)

let list_of = function
  | Arr items -> items
  | j -> parse_error "expected an array, got %s" (to_string j)
