(** Dependency-free JSON: the codec shared by every exporter in the tree.

    Deliberately tiny (the container bakes in no JSON library) but complete
    for the subset we emit: objects, arrays, strings, bools, null and
    doubles. Floats print with the shortest representation that parses back
    exactly, so a JSONL file round-trips. Non-finite floats (fitted
    exponents can be [nan]) are encoded as the strings ["nan"], ["inf"],
    ["-inf"] by {!of_float}.

    [Dangers_runner.Export] re-exports this module's type and functions
    under its historical names; new code should use this module directly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse_error : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Parse_error} with a formatted message. *)

val to_string : t -> string
(** Single-line (JSONL-safe) rendering. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val float_repr : float -> string
(** Shortest decimal that parses back to the same double. *)

val of_float : float -> t
(** [Num] for finite floats, [Str "nan"]/[Str "inf"]/[Str "-inf"] else. *)

val to_float : t -> float
(** Inverse of {!of_float}. @raise Parse_error otherwise. *)

val int_ : int -> t

(** {1 Accessors}

    All raise {!Parse_error} on a shape mismatch, so decoders read as a
    straight-line description of the expected schema. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val string_of : t -> string
val int_of : t -> int
val list_of : t -> t list
