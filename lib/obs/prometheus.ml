let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_metric_name name =
  if name = "" then "_"
  else begin
    let out =
      String.map (fun c -> if is_name_char c then c else '_') name
    in
    match out.[0] with '0' .. '9' -> "_" ^ out | _ -> out
  end

let escape ~quote s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value = escape ~quote:true
let escape_help = escape ~quote:false

let float_repr x =
  if Float.is_nan x then "NaN"
  else if Float.equal x Float.infinity then "+Inf"
  else if Float.equal x Float.neg_infinity then "-Inf"
  else Json.float_repr x

(* Sanitisation can merge distinct registry names; suffix later comers so
   every family stays unique. Input lists are sorted, so the assignment is
   deterministic. *)
let uniquifier () =
  let used : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  fun name ->
    let base = sanitize_metric_name name in
    let rec pick candidate i =
      if Hashtbl.mem used candidate then pick (Printf.sprintf "%s_%d" base i) (i + 1)
      else candidate
    in
    let picked = pick base 2 in
    Hashtbl.replace used picked ();
    picked

let of_snapshot (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let unique = uniquifier () in
  let family name kind emit =
    let name = unique name in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
    emit name
  in
  let sample name value = Buffer.add_string buf (name ^ " " ^ value ^ "\n") in
  List.iter
    (fun (name, v) ->
      family name "counter" (fun name -> sample name (string_of_int v)))
    s.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      family name "gauge" (fun name -> sample name (float_repr v)))
    s.Metrics.s_gauges;
  List.iter
    (fun (name, (h : Metrics.histogram_snapshot)) ->
      family name "histogram" (fun name ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i upper ->
              cumulative := !cumulative + h.Metrics.hs_counts.(i);
              sample
                (Printf.sprintf "%s_bucket{le=\"%s\"}" name
                   (escape_label_value (float_repr upper)))
                (string_of_int !cumulative))
            h.Metrics.hs_uppers;
          sample
            (Printf.sprintf "%s_bucket{le=\"+Inf\"}" name)
            (string_of_int h.Metrics.hs_count);
          sample (name ^ "_sum") (float_repr h.Metrics.hs_sum);
          sample (name ^ "_count") (string_of_int h.Metrics.hs_count)))
    s.Metrics.s_histograms;
  family "warnings_total" "counter" (fun name ->
      sample name (string_of_int s.Metrics.s_warnings_total));
  Buffer.contents buf

let content_type = "text/plain; version=0.0.4"

(* --- format check --- *)

type lint_state = {
  types : (string, string) Hashtbl.t; (* family -> declared type *)
  buckets : (string, int) Hashtbl.t; (* histogram family -> last cumulative *)
  inf_buckets : (string, int) Hashtbl.t; (* histogram family -> +Inf value *)
  mutable samples : int;
}

exception Bad of string

let valid_name name =
  name <> ""
  && (match name.[0] with '0' .. '9' -> false | _ -> true)
  && String.for_all is_name_char name

let parse_value text =
  match text with
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
      match float_of_string_opt text with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "unparsable value %S" text)))

let strip_suffix name suffix =
  let n = String.length name and k = String.length suffix in
  if n > k && String.sub name (n - k) k = suffix then
    Some (String.sub name 0 (n - k))
  else None

let lint_sample state ~name ~labels ~value =
  if not (valid_name name) then
    raise (Bad (Printf.sprintf "invalid metric name %S" name));
  state.samples <- state.samples + 1;
  match strip_suffix name "_bucket" with
  | Some base when Hashtbl.find_opt state.types base = Some "histogram" ->
      let le =
        match labels with
        | Some l -> (
            match String.index_opt l '=' with
            | Some _ when String.length l >= 5 && String.sub l 0 4 = "le=\"" ->
                String.sub l 4 (String.length l - 5)
            | _ -> raise (Bad (base ^ "_bucket without an le label")))
        | None -> raise (Bad (base ^ "_bucket without labels"))
      in
      let count = int_of_float value in
      (match Hashtbl.find_opt state.buckets base with
      | Some prev when count < prev ->
          raise (Bad (base ^ " buckets are not cumulative"))
      | _ -> ());
      Hashtbl.replace state.buckets base count;
      if le = "+Inf" then Hashtbl.replace state.inf_buckets base count
  | _ -> (
      match strip_suffix name "_count" with
      | Some base when Hashtbl.find_opt state.types base = Some "histogram" -> (
          match Hashtbl.find_opt state.inf_buckets base with
          | Some inf when int_of_float value <> inf ->
              raise (Bad (base ^ "_count disagrees with its +Inf bucket"))
          | Some _ -> ()
          | None -> raise (Bad (base ^ "_count before its +Inf bucket")))
      | _ -> ())

let lint_line state line =
  if line = "" then ()
  else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
    match String.split_on_char ' ' line with
    | "#" :: "TYPE" :: name :: [ kind ] ->
        if not (valid_name name) then
          raise (Bad (Printf.sprintf "invalid family name %S" name));
        if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
        then raise (Bad (Printf.sprintf "unknown metric type %S" kind));
        if Hashtbl.mem state.types name then
          raise (Bad (Printf.sprintf "duplicate # TYPE for %S" name));
        Hashtbl.replace state.types name kind
    | "#" :: "HELP" :: _ -> ()
    | _ -> () (* other comments are legal and ignored *)
  end
  else begin
    (* name[{labels}] value *)
    let name_end =
      match String.index_opt line '{' with
      | Some i -> i
      | None -> (
          match String.index_opt line ' ' with
          | Some i -> i
          | None -> raise (Bad (Printf.sprintf "no value on line %S" line)))
    in
    let name = String.sub line 0 name_end in
    let labels, rest =
      if name_end < String.length line && line.[name_end] = '{' then begin
        match String.index_from_opt line name_end '}' with
        | None -> raise (Bad (Printf.sprintf "unterminated labels on %S" line))
        | Some close ->
            ( Some (String.sub line (name_end + 1) (close - name_end - 1)),
              String.sub line (close + 1) (String.length line - close - 1) )
      end
      else (None, String.sub line name_end (String.length line - name_end))
    in
    match String.split_on_char ' ' (String.trim rest) with
    | [ value ] -> lint_sample state ~name ~labels ~value:(parse_value value)
    | [ value; _timestamp ] ->
        lint_sample state ~name ~labels ~value:(parse_value value)
    | _ -> raise (Bad (Printf.sprintf "malformed sample line %S" line))
  end

let lint text =
  let state =
    {
      types = Hashtbl.create 32;
      buckets = Hashtbl.create 8;
      inf_buckets = Hashtbl.create 8;
      samples = 0;
    }
  in
  match List.iter (lint_line state) (String.split_on_char '\n' text) with
  | () -> Ok state.samples
  | exception Bad message -> Error message
