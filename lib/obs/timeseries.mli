(** Fixed-capacity time-series recorder over a {!Metrics} registry.

    A {!t} samples its registry on demand ({!sample}) and turns each
    sample into a {e window}: the cumulative counters at that instant,
    the per-window deltas against the previous sample, and the current
    gauges and histogram snapshots. Windows land in a ring that keeps the
    newest [capacity] of them — a long-running server records forever in
    bounded memory while streaming every window to disk as it is taken.

    Sampling is read-only (it calls {!Metrics.snapshot}, which runs pull
    sources but mutates nothing the instrumented system reads), so a
    sampled run's simulated behaviour is identical to an unsampled one.

    The JSONL form ([dangers/metrics-series/v1]) mirrors
    {!Dangers_sim.Trace_export}: one header line per series, then one
    line per window. *)

type t

type window = {
  w_index : int;  (** 0-based, counts every sample ever taken *)
  w_time : float;  (** the [~now] the sample was taken at *)
  w_dt : float;  (** seconds since the previous sample (or {!rebase}) *)
  w_counters : (string * int) list;  (** cumulative, sorted by name *)
  w_deltas : (string * int) list;  (** increase since the previous sample *)
  w_gauges : (string * float) list;  (** sorted by name *)
  w_histograms : (string * Metrics.histogram_snapshot) list;
}

val create : ?capacity:int -> ?interval:float -> ?now:float -> Metrics.t -> t
(** A recorder over [registry]. [capacity] (default 1024) bounds the
    retained ring; [interval] (default 1.0) is the nominal seconds between
    samples — the recorder does not schedule anything itself, it only
    reports the value to whoever drives {!sample} (and stamps it into the
    series header). [now] (default 0.) is the time origin the first
    window's [w_dt] is measured from.
    @raise Invalid_argument if [capacity < 1] or [interval <= 0]. *)

val interval : t -> float
val capacity : t -> int

val sample : t -> now:float -> window
(** Snapshot the registry, compute deltas against the previous sample,
    append the window to the ring (evicting the oldest past capacity) and
    return it. [w_dt] is clamped to [>= 0]. *)

val rebase : t -> now:float -> unit
(** Reset the delta baseline to the registry's current state without
    emitting a window — used after a warmup phase so the first measured
    window does not lump the warmup's counts. *)

val windows : t -> window list
(** Retained windows, oldest first. *)

val last : t -> window option

val sampled : t -> int
(** Windows ever taken, including evicted ones. *)

val dropped : t -> int
(** Windows evicted from the ring. *)

val delta : window -> string -> int
(** The window's delta for a counter; 0 when absent. *)

val rate : window -> string -> float
(** [delta / w_dt] per second; 0 when [w_dt = 0]. *)

(** {1 dangers/metrics-series/v1 JSONL} *)

val schema_id : string
(** ["dangers/metrics-series/v1"]. *)

val header_json : ?label:string -> ?seed:int -> t -> Json.t
(** The series header line: schema, kind, the sampling interval, and the
    optional run identity. *)

val window_to_json : window -> Json.t
val window_of_json : Json.t -> window
(** @raise Json.Parse_error on a shape mismatch. *)

val to_jsonl : ?label:string -> ?seed:int -> t -> string
(** Header plus every retained window, one JSON object per line — the
    whole-series form [--series-out] writes for simulated runs. A
    streaming writer (the live server) emits the same bytes by writing
    {!header_json} once and each {!sample}'s {!window_to_json} as taken. *)

val validate : string -> (int * int, string) result
(** Check a JSONL string against the schema:
    [Ok (series, windows)] or [Error message]. Windows before any header,
    an unknown schema or kind, and malformed window shapes are errors. *)
