type phase = {
  phase : string;
  wall_seconds : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

(* [Gc.quick_stat] only folds the minor allocation pointer in at collection
   points, so a phase that never triggers a minor GC would report zero;
   [Gc.minor_words] reads the live pointer and stays accurate. *)
let timed name f =
  let g0 = Gc.quick_stat () in
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  let m1 = Gc.minor_words () in
  let g1 = Gc.quick_stat () in
  ( result,
    {
      phase = name;
      wall_seconds = t1 -. t0;
      minor_words = m1 -. m0;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    } )

(* Allocation attributed to the mutator: minor plus major, minus the
   promoted words counted by both. *)
let allocated_words p = p.minor_words +. p.major_words -. p.promoted_words

let to_json p =
  Json.Obj
    [
      ("phase", Json.Str p.phase);
      ("wall_seconds", Json.of_float p.wall_seconds);
      ("minor_words", Json.of_float p.minor_words);
      ("major_words", Json.of_float p.major_words);
      ("promoted_words", Json.of_float p.promoted_words);
    ]

let of_json j =
  {
    phase = Json.string_of (Json.member "phase" j);
    wall_seconds = Json.to_float (Json.member "wall_seconds" j);
    minor_words = Json.to_float (Json.member "minor_words" j);
    major_words = Json.to_float (Json.member "major_words" j);
    promoted_words = Json.to_float (Json.member "promoted_words" j);
  }

let pp ppf p =
  Format.fprintf ppf "%s: %.3fs wall, %.0f minor + %.0f major words"
    p.phase p.wall_seconds p.minor_words p.major_words
