(* Process-global so a warn-once deep in a library (the lock table, say)
   needs no plumbing to be visible: the snapshot builder reads the totals
   back out. Guarded for multicore — sweep workers run on their own
   domains. *)

let lock = Mutex.create ()
let total_count = Atomic.make 0
let per_key : (string, int) Hashtbl.t = Hashtbl.create 8

let warn ~key message =
  Atomic.incr total_count;
  let first =
    Mutex.lock lock;
    let n = match Hashtbl.find_opt per_key key with Some n -> n | None -> 0 in
    Hashtbl.replace per_key key (n + 1);
    Mutex.unlock lock;
    n = 0
  in
  if first then Printf.eprintf "dangers: warning [%s]: %s\n%!" key message

let total () = Atomic.get total_count

let count ~key =
  Mutex.lock lock;
  let n = match Hashtbl.find_opt per_key key with Some n -> n | None -> 0 in
  Mutex.unlock lock;
  n

let keys () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) per_key []))

let reset () =
  Mutex.lock lock;
  Hashtbl.reset per_key;
  Mutex.unlock lock;
  Atomic.set total_count 0
