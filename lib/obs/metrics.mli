(** The observability metrics registry: named counters, gauges and
    fixed-bucket histograms, plus pull-style sources, collapsed into one
    serialisable snapshot.

    Two integration styles, matching how the simulator's layers are built:

    - {b Push}: resolve a handle once at construction time
      ({!counter}/{!gauge}/{!histogram}) and mutate it on the hot path.
      An increment is a single unboxed store — no hashing, no allocation.
      Components guard the handle behind an [option] exactly like the
      engine's tracer, so a detached run pays nothing.
    - {b Pull}: a component that already keeps plain integer counters
      (the network, the lock manager, the engine) registers a
      {!register_source} closure; it is read only when {!snapshot} runs,
      leaving the component's hot path untouched.

    A registry belongs to one simulated system and is not thread-safe;
    sweep workers each observe their own. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Interned: the same name returns the same handle. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** Keep the maximum of the current and given value. *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val default_latency_buckets : unit -> float array
(** 100 µs to 100 s in roughly 1–3–10 steps, for simulated-seconds
    latencies. Returns a fresh array each call, so callers may mutate
    their copy and no mutable state is shared across domains. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** Fixed upper-bound buckets plus an implicit overflow bucket. Interned by
    name; [buckets] is only consulted on first creation.
    @raise Invalid_argument if [buckets] is empty or not strictly
    increasing. *)

val observe : histogram -> float -> unit
(** [x] lands in the first bucket with [x <= upper], else overflow. *)

(** {1 Sources and phases} *)

type source_value = Count of string * int | Gauge of string * float

val register_source : t -> (unit -> source_value list) -> unit
(** Called at {!snapshot} time. Same-name [Count]s from different sources
    accumulate; same-name [Gauge]s keep the maximum. *)

val record_phase : t -> Profiling.phase -> unit
(** Append a profiled phase to the snapshot's phase list. *)

(** {1 Snapshots} *)

type histogram_snapshot = {
  hs_uppers : float array;
  hs_counts : int array;  (** one longer than [hs_uppers]: overflow last *)
  hs_count : int;
  hs_sum : float;
}

type snapshot = {
  s_counters : (string * int) list;  (** sorted by name *)
  s_gauges : (string * float) list;
  s_histograms : (string * histogram_snapshot) list;
  s_phases : Profiling.phase list;  (** in recording order *)
  s_warnings_total : int;  (** {!Warnings.total} at snapshot time *)
}

val snapshot : t -> snapshot
(** Runs every registered source, merges with the push-side handles, and
    freezes the result. *)

val snapshot_counter : snapshot -> string -> int option
val snapshot_gauge : snapshot -> string -> float option
val snapshot_histogram : snapshot -> string -> histogram_snapshot option

val histogram_quantile : histogram_snapshot -> q:float -> float
(** Estimate the [q]-quantile (clamped to [0, 1]) by linear interpolation
    inside the winning bucket, the standard Prometheus
    [histogram_quantile] construction: the first bucket interpolates from
    0, the overflow bucket clamps to the largest finite upper bound.
    0 when the histogram is empty. *)

val schema_id : string
(** ["dangers/metrics/v1"]. *)

val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> snapshot
(** @raise Json.Parse_error on a shape or schema mismatch. *)

val histogram_to_json : histogram_snapshot -> Json.t
val histogram_of_json : Json.t -> histogram_snapshot
(** The snapshot codec's histogram object, exposed for the
    {!Timeseries} window codec.
    @raise Json.Parse_error on a shape mismatch. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
