(** Prometheus text-exposition (version 0.0.4) over {!Metrics.snapshot}.

    Dependency-free: the encoder walks the already-sorted snapshot lists
    and prints one [# TYPE] comment plus the samples for each metric
    family. Counters and gauges map directly; a histogram becomes the
    conventional cumulative [_bucket{le="..."}] series (overflow under
    [le="+Inf"]) plus [_sum] and [_count]. The snapshot's
    [s_warnings_total] is exposed as the [warnings_total] counter; phase
    profiles have no Prometheus shape and are skipped.

    Registry names such as [scheme.commits_total] use characters outside
    the Prometheus name alphabet; {!sanitize_metric_name} folds them to
    ['_'] (a leading digit gets a ['_'] prefix). Two distinct registry
    names that collide after sanitisation get ["_2"], ["_3"], ...
    suffixes in snapshot (alphabetical) order, so the exposition never
    emits a duplicate family. *)

val sanitize_metric_name : string -> string
(** Fold to the Prometheus name alphabet [[a-zA-Z0-9_:]], prefixing ['_']
    if the result would start with a digit; [""] becomes ["_"]. *)

val escape_label_value : string -> string
(** Backslash-escape backslashes, double quotes and newlines for a quoted
    label value. *)

val escape_help : string -> string
(** Backslash-escape backslashes and newlines for a [# HELP] line. *)

val of_snapshot : Metrics.snapshot -> string
(** The full exposition, one family per metric, [# TYPE] first. The text
    ends with a newline as the format requires. *)

val content_type : string
(** ["text/plain; version=0.0.4"] — what an HTTP scrape endpoint would
    declare. *)

val lint : string -> (int, string) result
(** Format check over an exposition: every line must be a comment or a
    valid sample ([name{labels} value]), names must fit the alphabet,
    a family may be [# TYPE]-declared at most once, histogram bucket
    series must be cumulative and agree with their [_count]. Returns the
    number of samples, or the first violation. *)
