type window = {
  w_index : int;
  w_time : float;
  w_dt : float;
  w_counters : (string * int) list;
  w_deltas : (string * int) list;
  w_gauges : (string * float) list;
  w_histograms : (string * Metrics.histogram_snapshot) list;
}

type t = {
  registry : Metrics.t;
  t_capacity : int;
  t_interval : float;
  ring : window option array;
  mutable next : int; (* ring slot the next window lands in *)
  mutable t_sampled : int;
  mutable prev_time : float;
  mutable prev_counters : (string * int) list; (* sorted, the delta baseline *)
}

let create ?(capacity = 1024) ?(interval = 1.0) ?(now = 0.) registry =
  if capacity < 1 then invalid_arg "Timeseries.create: capacity must be >= 1";
  if not (interval > 0.) then
    invalid_arg "Timeseries.create: interval must be positive";
  {
    registry;
    t_capacity = capacity;
    t_interval = interval;
    ring = Array.make capacity None;
    next = 0;
    t_sampled = 0;
    prev_time = now;
    prev_counters = [];
  }

let interval t = t.t_interval
let capacity t = t.t_capacity

(* Both lists are sorted by name; a merge walk yields every current
   counter with its increase over the baseline (absent before = 0). *)
let rec deltas_of prev cur =
  match (prev, cur) with
  | _, [] -> []
  | [], cur -> cur
  | (pk, pv) :: prest, (ck, cv) :: crest ->
      let order = String.compare pk ck in
      if order = 0 then (ck, cv - pv) :: deltas_of prest crest
      else if order < 0 then deltas_of prest cur (* counter vanished: skip *)
      else (ck, cv) :: deltas_of prev crest

let rebase t ~now =
  t.prev_time <- now;
  t.prev_counters <- (Metrics.snapshot t.registry).Metrics.s_counters

let sample t ~now =
  let snapshot = Metrics.snapshot t.registry in
  let counters = snapshot.Metrics.s_counters in
  let w =
    {
      w_index = t.t_sampled;
      w_time = now;
      w_dt = Float.max 0. (now -. t.prev_time);
      w_counters = counters;
      w_deltas = deltas_of t.prev_counters counters;
      w_gauges = snapshot.Metrics.s_gauges;
      w_histograms = snapshot.Metrics.s_histograms;
    }
  in
  t.ring.(t.next) <- Some w;
  t.next <- (t.next + 1) mod t.t_capacity;
  t.t_sampled <- t.t_sampled + 1;
  t.prev_time <- now;
  t.prev_counters <- counters;
  w

let windows t =
  (* Oldest-first: the slot after [next] holds the oldest retained window
     once the ring has wrapped. *)
  let acc = ref [] in
  for i = t.t_capacity - 1 downto 0 do
    match t.ring.((t.next + i) mod t.t_capacity) with
    | Some w -> acc := w :: !acc
    | None -> ()
  done;
  !acc

let last t =
  if t.t_sampled = 0 then None
  else t.ring.((t.next + t.t_capacity - 1) mod t.t_capacity)

let sampled t = t.t_sampled
let dropped t = max 0 (t.t_sampled - t.t_capacity)

let delta w name =
  match List.assoc_opt name w.w_deltas with Some d -> d | None -> 0

let rate w name =
  if w.w_dt <= 0. then 0. else float_of_int (delta w name) /. w.w_dt

(* --- dangers/metrics-series/v1 JSONL --- *)

let schema_id = "dangers/metrics-series/v1"

let header_json ?label ?seed t =
  Json.Obj
    (("schema", Json.Str schema_id)
    :: ("kind", Json.Str "header")
    :: ((match label with Some l -> [ ("label", Json.Str l) ] | None -> [])
       @ (match seed with Some s -> [ ("seed", Json.int_ s) ] | None -> [])
       @ [ ("interval", Json.of_float t.t_interval) ]))

let window_to_json w =
  let ints kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.int_ v)) kvs) in
  Json.Obj
    [
      ("kind", Json.Str "window");
      ("i", Json.int_ w.w_index);
      ("t", Json.of_float w.w_time);
      ("dt", Json.of_float w.w_dt);
      ("counters", ints w.w_counters);
      ("deltas", ints w.w_deltas);
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.of_float v)) w.w_gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) -> (k, Metrics.histogram_to_json h))
             w.w_histograms) );
    ]

let fields_of = function
  | Json.Obj fields -> fields
  | j -> Json.parse_error "expected an object, got %s" (Json.to_string j)

let window_of_json j =
  let ints m =
    List.map (fun (k, v) -> (k, Json.int_of v)) (fields_of (Json.member m j))
  in
  {
    w_index = Json.int_of (Json.member "i" j);
    w_time = Json.to_float (Json.member "t" j);
    w_dt = Json.to_float (Json.member "dt" j);
    w_counters = ints "counters";
    w_deltas = ints "deltas";
    w_gauges =
      List.map
        (fun (k, v) -> (k, Json.to_float v))
        (fields_of (Json.member "gauges" j));
    w_histograms =
      List.map
        (fun (k, v) -> (k, Metrics.histogram_of_json v))
        (fields_of (Json.member "histograms" j));
  }

let to_jsonl ?label ?seed t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Json.to_string (header_json ?label ?seed t));
  Buffer.add_char buf '\n';
  List.iter
    (fun w ->
      Buffer.add_string buf (Json.to_string (window_to_json w));
      Buffer.add_char buf '\n')
    (windows t);
  Buffer.contents buf

let validate input =
  let series = ref 0 and windows = ref 0 in
  match
    String.split_on_char '\n' input
    |> List.iter (fun line ->
           if String.trim line <> "" then begin
             let j = Json.of_string line in
             match Json.string_of (Json.member "kind" j) with
             | "header" ->
                 (match Json.member "schema" j with
                 | Json.Str s when String.equal s schema_id -> ()
                 | Json.Str s -> Json.parse_error "unsupported series schema %S" s
                 | _ -> Json.parse_error "series schema is not a string");
                 let ival = Json.to_float (Json.member "interval" j) in
                 if not (ival > 0.) then
                   Json.parse_error "series interval must be positive";
                 incr series
             | "window" ->
                 if !series = 0 then
                   Json.parse_error "series window before any header line";
                 ignore (window_of_json j);
                 incr windows
             | kind -> Json.parse_error "unknown series line kind %S" kind
           end)
  with
  | () -> Ok (!series, !windows)
  | exception Json.Parse_error message -> Error message
