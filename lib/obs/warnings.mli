(** Warn-once paths, counted.

    A defensive code path that fires (a broken invariant handled
    conservatively, a fallback taken) used to print to stderr once and
    vanish from every later report. Routing it through {!warn} keeps the
    one-line stderr notice for interactive runs, and additionally counts
    every occurrence so {!Metrics.snapshot} can expose a [warnings_total]
    counter — a run that tripped a defensive path is visibly different
    from one that did not.

    State is process-global and domain-safe. *)

val warn : key:string -> string -> unit
(** Count an occurrence of [key]; print [message] to stderr the first time
    only. *)

val total : unit -> int
(** Occurrences across all keys since start (or {!reset}). *)

val count : key:string -> int

val keys : unit -> (string * int) list
(** Keys seen with their counts, sorted. *)

val reset : unit -> unit
(** For tests. *)
