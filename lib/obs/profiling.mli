(** Run profiling: per-phase wall-clock and allocation accounting.

    A phase is one named stretch of work — a sweep task, a warmup, a
    measured window. {!timed} brackets the work with [Unix.gettimeofday]
    and [Gc.quick_stat] (both cheap: no heap walk), so profiling a phase
    costs two clock reads and two stat reads, independent of the work
    inside. *)

type phase = {
  phase : string;
  wall_seconds : float;
  minor_words : float;  (** words allocated in the minor heap *)
  major_words : float;  (** words allocated directly in the major heap,
                            plus promotions *)
  promoted_words : float;
}

val timed : string -> (unit -> 'a) -> 'a * phase
(** [timed name f] runs [f ()] and reports what it cost. Exceptions from
    [f] propagate unprofiled. *)

val allocated_words : phase -> float
(** Total mutator allocation: minor + major − promoted (promoted words are
    counted in both). *)

val to_json : phase -> Json.t
val of_json : Json.t -> phase
(** @raise Json.Parse_error on a shape mismatch. *)

val pp : Format.formatter -> phase -> unit
