(* Two ways in, one way out.

   Push: a component resolves a handle once ([counter]/[gauge]/[histogram])
   and mutates it on its hot path — an increment is one unboxed store, no
   hashing, no option check. Pull: a component that already keeps its own
   plain counters registers a [source] closure and is read only when a
   snapshot is built, so its hot path is untouched. Both land in the same
   snapshot. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  uppers : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length uppers + 1; last is the overflow bucket *)
  mutable h_count : int;
  mutable h_sum : float;
}

type source_value = Count of string * int | Gauge of string * float

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable sources : (unit -> source_value list) list;
  mutable phases_rev : Profiling.phase list;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
    sources = [];
    phases_rev = [];
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add t.counters name c;
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.add t.gauges name g;
      g

let set_gauge g v = g.g_value <- v
let max_gauge g v = if v > g.g_value then g.g_value <- v
let gauge_value g = g.g_value

(* Power-of-two-ish spread from 100us to ~100s: wide enough for simulated
   message latencies under any delay model in the tree. A fresh array per
   call — a shared module-level array would be mutable state visible to
   every domain that opens a histogram. *)
let default_latency_buckets () =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3.; 10.; 30.; 100. |]

let histogram ?(buckets = default_latency_buckets ()) t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let n = Array.length buckets in
      if n = 0 then invalid_arg "Metrics.histogram: no buckets";
      for i = 1 to n - 1 do
        if buckets.(i) <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: buckets must increase strictly"
      done;
      let h =
        {
          h_name = name;
          uppers = Array.copy buckets;
          counts = Array.make (n + 1) 0;
          h_count = 0;
          h_sum = 0.;
        }
      in
      Hashtbl.add t.histograms name h;
      h

let observe h x =
  let n = Array.length h.uppers in
  let rec slot i = if i >= n || x <= h.uppers.(i) then i else slot (i + 1) in
  h.counts.(slot 0) <- h.counts.(slot 0) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x

let register_source t f = t.sources <- f :: t.sources
let record_phase t p = t.phases_rev <- p :: t.phases_rev

(* --- snapshots --- *)

type histogram_snapshot = {
  hs_uppers : float array;
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * histogram_snapshot) list;
  s_phases : Profiling.phase list;
  s_warnings_total : int;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot t =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let gauges : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (* Both iters copy into scratch tables keyed by name, so visit order
     cannot leak into the snapshot; emission sorts with [by_name] below. *)
  (Hashtbl.iter (fun name c -> Hashtbl.replace counts name c.c_value)
     t.counters [@lint.allow "D2"]);
  (Hashtbl.iter (fun name g -> Hashtbl.replace gauges name g.g_value)
     t.gauges [@lint.allow "D2"]);
  (* Sources registered first run first; same-name counters accumulate
     (several lock managers report into one [lock_waits]), gauges take the
     maximum (the interesting high-water across components). *)
  List.iter
    (fun source ->
      List.iter
        (function
          | Count (name, n) ->
              let old =
                match Hashtbl.find_opt counts name with Some v -> v | None -> 0
              in
              Hashtbl.replace counts name (old + n)
          | Gauge (name, v) ->
              let keep =
                match Hashtbl.find_opt gauges name with
                | Some old -> Float.max old v
                | None -> v
              in
              Hashtbl.replace gauges name keep)
        (source ()))
    (List.rev t.sources);
  let assoc tbl = List.sort by_name (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  {
    s_counters = assoc counts;
    s_gauges = assoc gauges;
    s_histograms =
      List.sort by_name
        (Hashtbl.fold
           (fun name h acc ->
             ( name,
               {
                 hs_uppers = Array.copy h.uppers;
                 hs_counts = Array.copy h.counts;
                 hs_count = h.h_count;
                 hs_sum = h.h_sum;
               } )
             :: acc)
           t.histograms []);
    s_phases = List.rev t.phases_rev;
    s_warnings_total = Warnings.total ();
  }

let histogram_quantile hs ~q =
  if hs.hs_count = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let target = q *. float_of_int hs.hs_count in
    let n = Array.length hs.hs_uppers in
    let rec walk i cum =
      if i >= n then hs.hs_uppers.(n - 1) (* overflow: clamp to the last bound *)
      else
        let here = hs.hs_counts.(i) in
        let cum' = cum + here in
        if float_of_int cum' >= target || i = n - 1 && hs.hs_counts.(n) = 0 then begin
          let lower = if i = 0 then 0. else hs.hs_uppers.(i - 1) in
          let upper = hs.hs_uppers.(i) in
          if here = 0 then upper
          else
            let into = (target -. float_of_int cum) /. float_of_int here in
            lower +. (Float.min 1. (Float.max 0. into) *. (upper -. lower))
        end
        else walk (i + 1) cum'
    in
    walk 0 0
  end

let snapshot_counter s name = List.assoc_opt name s.s_counters
let snapshot_gauge s name = List.assoc_opt name s.s_gauges
let snapshot_histogram s name = List.assoc_opt name s.s_histograms

let schema_id = "dangers/metrics/v1"

let histogram_to_json hs =
  Json.Obj
    [
      ("uppers", Json.Arr (Array.to_list (Array.map Json.of_float hs.hs_uppers)));
      ("counts", Json.Arr (Array.to_list (Array.map Json.int_ hs.hs_counts)));
      ("count", Json.int_ hs.hs_count);
      ("sum", Json.of_float hs.hs_sum);
    ]

let snapshot_to_json s =
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int_ v)) s.s_counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.of_float v)) s.s_gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, histogram_to_json h)) s.s_histograms) );
      ("phases", Json.Arr (List.map Profiling.to_json s.s_phases));
      ("warnings_total", Json.int_ s.s_warnings_total);
    ]

let histogram_of_json j =
  {
    hs_uppers =
      Array.of_list (List.map Json.to_float (Json.list_of (Json.member "uppers" j)));
    hs_counts =
      Array.of_list (List.map Json.int_of (Json.list_of (Json.member "counts" j)));
    hs_count = Json.int_of (Json.member "count" j);
    hs_sum = Json.to_float (Json.member "sum" j);
  }

let fields_of = function
  | Json.Obj fields -> fields
  | j -> Json.parse_error "expected an object, got %s" (Json.to_string j)

let snapshot_of_json j =
  (match Json.member "schema" j with
  | Json.Str s when String.equal s schema_id -> ()
  | Json.Str s -> Json.parse_error "unsupported metrics schema %S" s
  | _ -> Json.parse_error "metrics schema is not a string");
  {
    s_counters =
      List.map (fun (k, v) -> (k, Json.int_of v)) (fields_of (Json.member "counters" j));
    s_gauges =
      List.map (fun (k, v) -> (k, Json.to_float v)) (fields_of (Json.member "gauges" j));
    s_histograms =
      List.map
        (fun (k, v) -> (k, histogram_of_json v))
        (fields_of (Json.member "histograms" j));
    s_phases = List.map Profiling.of_json (Json.list_of (Json.member "phases" j));
    s_warnings_total = Json.int_of (Json.member "warnings_total" j);
  }

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s: %d@ " k v) s.s_counters;
  List.iter (fun (k, v) -> Format.fprintf ppf "%s: %g@ " k v) s.s_gauges;
  List.iter
    (fun (k, h) ->
      Format.fprintf ppf "%s: n=%d sum=%g mean=%g@ " k h.hs_count h.hs_sum
        (if h.hs_count = 0 then 0. else h.hs_sum /. float_of_int h.hs_count))
    s.s_histograms;
  List.iter (fun p -> Format.fprintf ppf "%a@ " Profiling.pp p) s.s_phases;
  Format.fprintf ppf "warnings_total: %d@]" s.s_warnings_total
