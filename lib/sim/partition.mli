(** Cross-partition message channels for the conservative parallel engine.

    Each partition of a {!Par_engine} run owns a private {!Engine.t}; the
    only way state crosses partitions is a timestamped message posted
    here. Posts accumulate in per-source outboxes during a window (each
    outbox is written only by the domain running that partition, so no
    synchronization is needed beyond the window barrier) and are drained
    at the barrier in one deterministic merge order: ascending
    [(time, source, per-source sequence)]. That order is a function of
    the simulation state alone — never of which OS thread ran what — and
    is what makes a parallel run byte-identical to the serial one.

    The router also tracks each partition's {e completed horizon} (the
    simulated time through which it has fired every event); a receiver's
    {!safe_time} is the least sender horizon plus the lookahead, and no
    delivery may precede it — the conservative (Chandy–Misra) invariant,
    checked on every drain. *)

type 'msg post = private {
  p_time : float;  (** delivery time at the destination *)
  p_src : int;
  p_dst : int;
  p_seq : int;  (** per-source send sequence *)
  p_msg : 'msg;
}

type 'msg t

val create : parts:int -> lookahead:float -> 'msg t
(** @raise Invalid_argument unless [parts >= 1] and [lookahead] is
    positive and finite. *)

val parts : _ t -> int
val lookahead : _ t -> float

val post : 'msg t -> src:int -> dst:int -> time:float -> 'msg -> unit
(** Enqueue a delivery. May be called concurrently for distinct [src]
    (each source box is single-writer); the caller — {!Par_engine.post} —
    enforces the conservative contract that [time] lies at or beyond the
    current window horizon.
    @raise Invalid_argument on an out-of-range index or non-finite
    [time]. *)

val advance : _ t -> part:int -> time:float -> unit
(** Record that [part] has completed its window through [time].
    Monotonic; single-writer per partition. *)

val advance_all : _ t -> time:float -> unit
val horizon : _ t -> part:int -> float

val safe_time : _ t -> dst:int -> float
(** Earliest time at which a not-yet-posted message could still arrive at
    [dst]: the minimum over other partitions' completed horizons, plus the
    lookahead ([infinity] for a single partition). Deliveries below this
    bound are causality violations. *)

val pending : _ t -> int
(** Posts accumulated since the last {!drain}. *)

val drain : 'msg t -> deliver:('msg post -> unit) -> unit
(** Deliver every pending post in ascending [(time, src, seq)] order and
    clear the outboxes. Call only from the coordinating domain, at the
    window barrier.
    @raise Invalid_argument if a post's time precedes its destination's
    completed horizon (a conservative-synchronization violation — a
    message was produced with less than the promised lookahead). *)

val posts_total : _ t -> int
val delivered_total : _ t -> int
