(** Named counters and samples tied to simulated time.

    Experiments run a warmup phase and then a measured window; rates are
    reported as events per simulated second within the window, which is what
    the paper's per-second equations predict. *)

type t

val create : now:(unit -> float) -> unit -> t
(** [now] is the time source the window rates divide by — any runtime
    clock's [now] (the metrics layer cannot depend on the runtime
    library, so it takes the closure rather than the clock). *)

val of_engine : Engine.t -> t
(** [create] over an engine's simulated clock. *)

(** {1 Counters} *)

val incr : t -> string -> unit
val incr_by : t -> string -> int -> unit

val count : t -> string -> int
(** Count within the current window (0 for unknown names). *)

val total_count : t -> string -> int
(** Count since creation, ignoring windows. *)

val rate : t -> string -> float
(** [count / elapsed-window-time]; 0 when no time has elapsed. *)

(** {1 Samples} *)

val sample : t -> string -> float -> unit
(** Record an observation (e.g. a transaction's duration) into the named
    accumulator. *)

val sample_stats : t -> string -> Dangers_util.Stats.t
(** The accumulator for a name; an empty one for unknown names. Samples are
    not windowed. *)

(** {1 Windows} *)

val start_window : t -> unit
(** Zero all window counts and mark the current simulated time as the window
    start. Call after warmup. *)

val window_elapsed : t -> float

val counter_names : t -> string list
(** Sorted; for reporting. *)
