type event =
  | Txn_started of { owner : int }
  | Lock_granted of { owner : int; resource : int }
  | Lock_waited of { owner : int; resource : int }
  | Deadlock_victim of { owner : int; cycle : int list }
  | Txn_committed of { owner : int }
  | Message_sent of { src : int; dst : int }
  | Message_delivered of { src : int; dst : int }
  | Message_parked of { at : int }
  | Node_connected of { node : int }
  | Node_disconnected of { node : int }
  | Message_dropped of { src : int; dst : int }
  | Message_duplicated of { src : int; dst : int }
  | Node_crashed of { node : int }
  | Node_restarted of { node : int }
  | Partition_started of { blocks : int }
  | Partition_healed
  | Note of string

type entry = { at : float; event : event }

type t = {
  ring : entry option array;
  mutable next : int; (* total recorded; ring slot = next mod capacity *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0 }

let record t ~now event =
  t.ring.(t.next mod Array.length t.ring) <- Some { at = now; event };
  t.next <- t.next + 1

let recorded t = t.next
let dropped t = max 0 (t.next - Array.length t.ring)
let retained t = min t.next (Array.length t.ring)

(* The ring slot for the [i]th retained entry (oldest first). *)
let slot t i =
  let capacity = Array.length t.ring in
  match t.ring.((t.next - retained t + i) mod capacity) with
  | Some entry -> entry
  | None -> assert false

let iter t f =
  for i = 0 to retained t - 1 do
    f (slot t i)
  done

let fold t ~init f =
  let acc = ref init in
  for i = 0 to retained t - 1 do
    acc := f !acc (slot t i)
  done;
  !acc

let entries t = List.rev (fold t ~init:[] (fun acc entry -> entry :: acc))

let matching t predicate =
  List.rev
    (fold t ~init:[] (fun acc entry ->
         if predicate entry.event then entry :: acc else acc))

let pp_event ppf = function
  | Txn_started { owner } -> Format.fprintf ppf "txn t%d started" owner
  | Lock_granted { owner; resource } ->
      Format.fprintf ppf "t%d granted r%d" owner resource
  | Lock_waited { owner; resource } ->
      Format.fprintf ppf "t%d waits on r%d" owner resource
  | Deadlock_victim { owner; cycle } ->
      Format.fprintf ppf "t%d killed (cycle %s)" owner
        (String.concat "->" (List.map string_of_int cycle))
  | Txn_committed { owner } -> Format.fprintf ppf "txn t%d committed" owner
  | Message_sent { src; dst } -> Format.fprintf ppf "msg n%d -> n%d sent" src dst
  | Message_delivered { src; dst } ->
      Format.fprintf ppf "msg n%d -> n%d delivered" src dst
  | Message_parked { at } -> Format.fprintf ppf "msg parked at n%d" at
  | Node_connected { node } -> Format.fprintf ppf "n%d connected" node
  | Node_disconnected { node } -> Format.fprintf ppf "n%d disconnected" node
  | Message_dropped { src; dst } ->
      Format.fprintf ppf "msg n%d -> n%d dropped" src dst
  | Message_duplicated { src; dst } ->
      Format.fprintf ppf "msg n%d -> n%d duplicated" src dst
  | Node_crashed { node } -> Format.fprintf ppf "n%d crashed" node
  | Node_restarted { node } -> Format.fprintf ppf "n%d restarted" node
  | Partition_started { blocks } ->
      Format.fprintf ppf "partition into %d blocks" blocks
  | Partition_healed -> Format.fprintf ppf "partition healed"
  | Note text -> Format.fprintf ppf "note: %s" text

let pp_entry ppf { at; event } = Format.fprintf ppf "[%10.4f] %a" at pp_event event

let pp ppf t = iter t (fun entry -> Format.fprintf ppf "%a@." pp_entry entry)
