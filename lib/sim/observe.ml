type context = {
  obs : Dangers_obs.Metrics.t option;
  tracer : Trace.t option;
}

let empty = { obs = None; tracer = None }
let key = Domain.DLS.new_key (fun () -> empty)
let current () = Domain.DLS.get key

let with_observation ?obs ?tracer f =
  let saved = current () in
  Domain.DLS.set key { obs; tracer };
  Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

let ambient_obs () = (current ()).obs
let ambient_tracer () = (current ()).tracer
