type context = {
  obs : Dangers_obs.Metrics.t option;
  tracer : Trace.t option;
  series : Dangers_obs.Timeseries.t option;
  domains : int;
}

let empty = { obs = None; tracer = None; series = None; domains = 1 }
let key = Domain.DLS.new_key (fun () -> empty)
let current () = Domain.DLS.get key

let with_observation ?obs ?tracer ?series f =
  let saved = current () in
  Domain.DLS.set key { obs; tracer; series; domains = saved.domains };
  Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

let with_domains domains f =
  if domains < 1 then invalid_arg "Observe.with_domains: domains must be >= 1";
  let saved = current () in
  Domain.DLS.set key { saved with domains };
  Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

let ambient_obs () = (current ()).obs
let ambient_tracer () = (current ()).tracer
let ambient_series () = (current ()).series
let ambient_domains () = (current ()).domains
