type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;
  queue : event Heap.t;
  mutable trace : Trace.t option;
}

let compare_events a b =
  match Float.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | order -> order

let create () =
  {
    clock = 0.;
    next_seq = 0;
    fired = 0;
    live = 0;
    queue = Heap.create ~cmp:compare_events ();
    trace = None;
  }

let now t = t.clock

let schedule_at t ~time action =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let event = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue event;
  event

let schedule t ~delay action =
  if not (Float.is_finite delay && delay >= 0.) then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t event =
  if not event.cancelled then begin
    event.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some event ->
      if event.cancelled then step t
      else begin
        (* Mark fired events as no longer live so a later [cancel] (e.g. a
           schedule stopped from inside its own callback) stays a no-op
           instead of corrupting the live count. *)
        event.cancelled <- true;
        t.live <- t.live - 1;
        t.clock <- event.time;
        t.fired <- t.fired + 1;
        event.action ();
        true
      end

exception Runaway of int

let run ?max_events ?until t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let tick () =
    if !budget = 0 then
      raise (Runaway (match max_events with Some n -> n | None -> max_int));
    decr budget
  in
  match until with
  | None ->
      let continue = ref true in
      while !continue do
        tick ();
        if not (step t) then continue := false
      done
  | Some deadline ->
      let rec loop () =
        match Heap.peek t.queue with
        | None -> ()
        | Some event when event.cancelled ->
            ignore (Heap.pop t.queue);
            loop ()
        | Some event ->
            if event.time <= deadline then begin
              tick ();
              ignore (step t);
              loop ()
            end
      in
      loop ();
      if deadline > t.clock then t.clock <- deadline

let run_for t span =
  if not (Float.is_finite span && span >= 0.) then
    invalid_arg "Engine.run_for: span must be finite and non-negative";
  run t ~until:(t.clock +. span)

let events_fired t = t.fired

let set_tracer t tracer = t.trace <- tracer
let tracer t = t.trace

let trace t event =
  match t.trace with
  | Some tr -> Trace.record tr ~now:t.clock event
  | None -> ()
