(* The event queue is the hottest loop of every simulation: an eager run at
   nodes=10 fires tens of millions of events. The engine therefore keeps its
   own inline binary min-heap over parallel arrays instead of a generic
   [Heap.t] of event records:

   - [times] is a plain [float array] (unboxed floats), so the key compare
     in sift operations is a raw float compare, not two closure calls into a
     polymorphic [cmp].
   - [seqs] breaks ties so equal-time events fire in schedule order, as
     before.
   - The only per-event allocation is the two-field handle given back to the
     caller ([action] plus the [cancelled] flag); the time and sequence live
     only in the heap arrays.
   - Sift up/down move a hole instead of swapping, and [step]/[run] never
     allocate an [option]. *)

type event = { action : unit -> unit; mutable cancelled : bool }
type event_id = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;
  (* binary min-heap over (times.(i), seqs.(i)), [size] live entries *)
  mutable times : float array;
  mutable seqs : int array;
  mutable evs : event array;
  mutable size : int;
  mutable high_water : int;
  mutable trace : Trace.t option;
}

(* Allocated per call: heap slots briefly alias the filler event, and
   engines may live on different domains — a single shared record
   would be cross-domain mutable state. *)
let dummy_event () = { action = ignore; cancelled = true }

let create () =
  {
    clock = 0.;
    next_seq = 0;
    fired = 0;
    live = 0;
    times = Array.make 16 0.;
    seqs = Array.make 16 0;
    evs = Array.make 16 (dummy_event ());
    size = 0;
    high_water = 0;
    trace = None;
  }

let now t = t.clock

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0. in
  let seqs = Array.make cap' 0 in
  let evs = Array.make cap' (dummy_event ()) in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.evs 0 evs 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.evs <- evs

let push t time seq ev =
  if t.size = Array.length t.times then grow t;
  t.size <- t.size + 1;
  if t.size > t.high_water then t.high_water <- t.size;
  (* bubble a hole up from the new slot, then drop the event in *)
  let i = ref (t.size - 1) in
  let placed = ref false in
  while not !placed do
    if !i = 0 then placed := true
    else begin
      let parent = (!i - 1) / 2 in
      let pt = t.times.(parent) in
      if time < pt || (Float.equal time pt && seq < t.seqs.(parent)) then begin
        t.times.(!i) <- pt;
        t.seqs.(!i) <- t.seqs.(parent);
        t.evs.(!i) <- t.evs.(parent);
        i := parent
      end
      else placed := true
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.evs.(!i) <- ev

(* Remove the root. The last entry re-enters at the root and a hole sifts
   down ahead of it; [evs] slots past [size] are reset so the engine never
   pins dead events (and their closures) against the GC. *)
let remove_min t =
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then t.evs.(0) <- dummy_event ()
  else begin
    let time = t.times.(n) and seq = t.seqs.(n) and ev = t.evs.(n) in
    t.evs.(n) <- dummy_event ();
    let i = ref 0 in
    let placed = ref false in
    while not !placed do
      let l = (2 * !i) + 1 in
      if l >= n then placed := true
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (t.times.(r) < t.times.(l)
               || (Float.equal t.times.(r) t.times.(l) && t.seqs.(r) < t.seqs.(l)))
          then r
          else l
        in
        let ct = t.times.(c) in
        if ct < time || (Float.equal ct time && t.seqs.(c) < seq) then begin
          t.times.(!i) <- ct;
          t.seqs.(!i) <- t.seqs.(c);
          t.evs.(!i) <- t.evs.(c);
          i := c
        end
        else placed := true
      end
    done;
    t.times.(!i) <- time;
    t.seqs.(!i) <- seq;
    t.evs.(!i) <- ev
  end

let schedule_at t ~time action =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let event = { action; cancelled = false } in
  push t time t.next_seq event;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  event

let schedule t ~delay action =
  if not (Float.is_finite delay && delay >= 0.) then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t event =
  if not event.cancelled then begin
    event.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

(* Cancelled roots are popped eagerly so the answer is the time of an event
   that will actually fire; this keeps the parallel engine's window bound
   (the global minimum of these) exact rather than pessimistic. *)
let rec next_time t =
  if t.size = 0 then None
  else if t.evs.(0).cancelled then begin
    remove_min t;
    next_time t
  end
  else Some t.times.(0)

let rec step t =
  if t.size = 0 then false
  else begin
    let event = t.evs.(0) in
    let time = t.times.(0) in
    remove_min t;
    if event.cancelled then step t
    else begin
      (* Mark fired events as no longer live so a later [cancel] (e.g. a
         schedule stopped from inside its own callback) stays a no-op
         instead of corrupting the live count. *)
      event.cancelled <- true;
      t.live <- t.live - 1;
      t.clock <- time;
      t.fired <- t.fired + 1;
      event.action ();
      true
    end
  end

exception Runaway of int

let run ?max_events ?until t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let tick () =
    if !budget = 0 then
      raise (Runaway (match max_events with Some n -> n | None -> max_int));
    decr budget
  in
  match until with
  | None ->
      let continue = ref true in
      while !continue do
        tick ();
        if not (step t) then continue := false
      done
  | Some deadline ->
      let rec loop () =
        if t.size > 0 then
          if t.evs.(0).cancelled then begin
            remove_min t;
            loop ()
          end
          else if t.times.(0) <= deadline then begin
            tick ();
            ignore (step t);
            loop ()
          end
      in
      loop ();
      if deadline > t.clock then t.clock <- deadline

let run_for t span =
  if not (Float.is_finite span && span >= 0.) then
    invalid_arg "Engine.run_for: span must be finite and non-negative";
  run t ~until:(t.clock +. span)

let events_fired t = t.fired
let queue_high_water t = t.high_water

let set_tracer t tracer = t.trace <- tracer
let tracer t = t.trace
let tracing t = match t.trace with Some _ -> true | None -> false

let trace t event =
  match t.trace with
  | Some tr -> Trace.record tr ~now:t.clock event
  | None -> ()
