(** Array-backed binary min-heap, the event queue of the simulator.

    Elements are ordered by a caller-supplied comparison. The simulator keys
    events by [(time, sequence)] so equal-time events pop in schedule
    order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Empty the heap, keeping the backing array so a refill does not regrow
    from the initial capacity. At most one previously-pushed element stays
    reachable through the retained array (every slot is overwritten with
    it); the rest are immediately collectable. *)

val capacity : 'a t -> int
(** Current backing-array capacity (>= {!length}). *)

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is unchanged. For tests and
    debugging. *)
