(** Ambient observation context: the metrics registry and tracer a run
    should attach to, carried implicitly to wherever the simulated system
    is actually built.

    The scheme registry's [run] functions construct their systems deep
    inside opaque experiment code; threading an [?obs]/[?tracer] pair
    through every such signature would ripple across the whole repo. The
    CLI (or the sweep worker) instead wraps one run in
    {!with_observation}, and {!Dangers_replication.Common.make}-style
    constructors consult the ambient as their default. The context is
    domain-local, so parallel sweep workers each observe only their own
    task; with nothing installed every lookup is [None] and behaviour is
    byte-identical to an unobserved run. *)

val with_observation :
  ?obs:Dangers_obs.Metrics.t ->
  ?tracer:Trace.t ->
  ?series:Dangers_obs.Timeseries.t ->
  (unit -> 'a) ->
  'a
(** Install the given registry/tracer/series recorder as this domain's
    ambient context for the duration of the callback (restoring the
    previous context even on exceptions). Omitted arguments clear the
    corresponding slot; the ambient domain budget (see {!with_domains}) is
    preserved. A [series] only makes sense alongside the [obs] registry it
    records — schemes sample it on the simulated clock during their
    measured window. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** Install a simulation-domain budget — the CLI's [--sim-domains N] —
    as part of this domain's ambient context for the duration of the
    callback, preserving the registry/tracer slots. Schemes that support
    partitioned execution size their {!Dangers_util.Domain_pool} from
    {!ambient_domains}; every other scheme ignores it and runs serially
    (which is trivially byte-identical at any budget).
    @raise Invalid_argument if [domains < 1]. *)

val ambient_obs : unit -> Dangers_obs.Metrics.t option
val ambient_tracer : unit -> Trace.t option
val ambient_series : unit -> Dangers_obs.Timeseries.t option

val ambient_domains : unit -> int
(** The installed budget; 1 with nothing installed. *)
