(** Ambient observation context: the metrics registry and tracer a run
    should attach to, carried implicitly to wherever the simulated system
    is actually built.

    The scheme registry's [run] functions construct their systems deep
    inside opaque experiment code; threading an [?obs]/[?tracer] pair
    through every such signature would ripple across the whole repo. The
    CLI (or the sweep worker) instead wraps one run in
    {!with_observation}, and {!Dangers_replication.Common.make}-style
    constructors consult the ambient as their default. The context is
    domain-local, so parallel sweep workers each observe only their own
    task; with nothing installed every lookup is [None] and behaviour is
    byte-identical to an unobserved run. *)

val with_observation :
  ?obs:Dangers_obs.Metrics.t -> ?tracer:Trace.t -> (unit -> 'a) -> 'a
(** Install the given registry/tracer as this domain's ambient context for
    the duration of the callback (restoring the previous context even on
    exceptions). Omitted arguments clear the corresponding slot. *)

val ambient_obs : unit -> Dangers_obs.Metrics.t option
val ambient_tracer : unit -> Trace.t option
