(** Execution tracing: a bounded ring of typed simulator events.

    Debugging a replication schedule from aggregate counters alone is
    miserable; a trace shows *which* transaction waited on whom and when a
    message actually crossed. Attach a trace to an {!Engine} with
    {!Engine.set_tracer} and the executor and network record into it;
    detached engines pay nothing. The ring keeps the most recent
    [capacity] entries. *)

type event =
  | Txn_started of { owner : int }
  | Lock_granted of { owner : int; resource : int }
  | Lock_waited of { owner : int; resource : int }
  | Deadlock_victim of { owner : int; cycle : int list }
  | Txn_committed of { owner : int }
  | Message_sent of { src : int; dst : int }
  | Message_delivered of { src : int; dst : int }
  | Message_parked of { at : int }
  | Node_connected of { node : int }
  | Node_disconnected of { node : int }
  | Message_dropped of { src : int; dst : int }
      (** lost in flight by an injected fault *)
  | Message_duplicated of { src : int; dst : int }
      (** a second copy was put in flight by an injected fault *)
  | Node_crashed of { node : int }
  | Node_restarted of { node : int }
  | Partition_started of { blocks : int }  (** number of partition blocks *)
  | Partition_healed
  | Note of string  (** free-form marker from application code *)

type entry = { at : float;  (** simulated seconds *) event : event }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096. @raise Invalid_argument if non-positive. *)

val record : t -> now:float -> event -> unit

val entries : t -> entry list
(** Oldest retained first. Builds a fresh list; prefer {!iter}/{!fold} on
    query paths that run often. *)

val recorded : t -> int
(** Events ever recorded (including those the ring has dropped). *)

val dropped : t -> int

val retained : t -> int
(** Entries currently held in the ring: [min recorded capacity]. *)

val iter : t -> (entry -> unit) -> unit
(** Visit the retained entries oldest-first without building a list — the
    export sinks walk multi-hundred-thousand-entry rings, where
    {!entries}'s cons cells dominate. *)

val fold : t -> init:'a -> ('a -> entry -> 'a) -> 'a
(** Oldest-first fold; allocation-free apart from what the callback does. *)

val matching : t -> (event -> bool) -> entry list

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
(** The whole retained trace, one entry per line. *)
