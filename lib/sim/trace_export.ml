module Json = Dangers_obs.Json

let schema_id = "dangers/trace/v1"

(* --- event codec --- *)

(* One flat object per event: a tag under "ev" plus the constructor's
   fields. Field names never collide with the envelope ("kind", "t"). *)
let event_fields : Trace.event -> string * (string * Json.t) list = function
  | Trace.Txn_started { owner } -> ("txn_started", [ ("owner", Json.int_ owner) ])
  | Trace.Lock_granted { owner; resource } ->
      ("lock_granted", [ ("owner", Json.int_ owner); ("resource", Json.int_ resource) ])
  | Trace.Lock_waited { owner; resource } ->
      ("lock_waited", [ ("owner", Json.int_ owner); ("resource", Json.int_ resource) ])
  | Trace.Deadlock_victim { owner; cycle } ->
      ( "deadlock_victim",
        [
          ("owner", Json.int_ owner);
          ("cycle", Json.Arr (List.map Json.int_ cycle));
        ] )
  | Trace.Txn_committed { owner } ->
      ("txn_committed", [ ("owner", Json.int_ owner) ])
  | Trace.Message_sent { src; dst } ->
      ("message_sent", [ ("src", Json.int_ src); ("dst", Json.int_ dst) ])
  | Trace.Message_delivered { src; dst } ->
      ("message_delivered", [ ("src", Json.int_ src); ("dst", Json.int_ dst) ])
  | Trace.Message_parked { at } -> ("message_parked", [ ("node", Json.int_ at) ])
  | Trace.Node_connected { node } ->
      ("node_connected", [ ("node", Json.int_ node) ])
  | Trace.Node_disconnected { node } ->
      ("node_disconnected", [ ("node", Json.int_ node) ])
  | Trace.Message_dropped { src; dst } ->
      ("message_dropped", [ ("src", Json.int_ src); ("dst", Json.int_ dst) ])
  | Trace.Message_duplicated { src; dst } ->
      ("message_duplicated", [ ("src", Json.int_ src); ("dst", Json.int_ dst) ])
  | Trace.Node_crashed { node } -> ("node_crashed", [ ("node", Json.int_ node) ])
  | Trace.Node_restarted { node } ->
      ("node_restarted", [ ("node", Json.int_ node) ])
  | Trace.Partition_started { blocks } ->
      ("partition_started", [ ("blocks", Json.int_ blocks) ])
  | Trace.Partition_healed -> ("partition_healed", [])
  | Trace.Note text -> ("note", [ ("text", Json.Str text) ])

let event_to_json event =
  let tag, fields = event_fields event in
  Json.Obj (("ev", Json.Str tag) :: fields)

let event_of_json j =
  let owner () = Json.int_of (Json.member "owner" j) in
  let node () = Json.int_of (Json.member "node" j) in
  let src () = Json.int_of (Json.member "src" j) in
  let dst () = Json.int_of (Json.member "dst" j) in
  match Json.string_of (Json.member "ev" j) with
  | "txn_started" -> Trace.Txn_started { owner = owner () }
  | "lock_granted" ->
      Trace.Lock_granted
        { owner = owner (); resource = Json.int_of (Json.member "resource" j) }
  | "lock_waited" ->
      Trace.Lock_waited
        { owner = owner (); resource = Json.int_of (Json.member "resource" j) }
  | "deadlock_victim" ->
      Trace.Deadlock_victim
        {
          owner = owner ();
          cycle = List.map Json.int_of (Json.list_of (Json.member "cycle" j));
        }
  | "txn_committed" -> Trace.Txn_committed { owner = owner () }
  | "message_sent" -> Trace.Message_sent { src = src (); dst = dst () }
  | "message_delivered" -> Trace.Message_delivered { src = src (); dst = dst () }
  | "message_parked" -> Trace.Message_parked { at = node () }
  | "node_connected" -> Trace.Node_connected { node = node () }
  | "node_disconnected" -> Trace.Node_disconnected { node = node () }
  | "message_dropped" -> Trace.Message_dropped { src = src (); dst = dst () }
  | "message_duplicated" -> Trace.Message_duplicated { src = src (); dst = dst () }
  | "node_crashed" -> Trace.Node_crashed { node = node () }
  | "node_restarted" -> Trace.Node_restarted { node = node () }
  | "partition_started" ->
      Trace.Partition_started { blocks = Json.int_of (Json.member "blocks" j) }
  | "partition_healed" -> Trace.Partition_healed
  | "note" -> Trace.Note (Json.string_of (Json.member "text" j))
  | tag -> Json.parse_error "unknown trace event tag %S" tag

(* --- sections and files --- *)

type section = {
  label : string;
  seed : int;
  recorded : int;
  dropped : int;
  entries : Trace.entry list;
}

let section ~label ~seed tracer =
  {
    label;
    seed;
    recorded = Trace.recorded tracer;
    dropped = Trace.dropped tracer;
    entries = Trace.entries tracer;
  }

let header_to_json s =
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("kind", Json.Str "header");
      ("label", Json.Str s.label);
      ("seed", Json.int_ s.seed);
      ("recorded", Json.int_ s.recorded);
      ("dropped", Json.int_ s.dropped);
    ]

let entry_to_json (entry : Trace.entry) =
  match event_to_json entry.Trace.event with
  | Json.Obj fields ->
      Json.Obj
        (("kind", Json.Str "event")
        :: ("t", Json.of_float entry.Trace.at)
        :: fields)
  | _ -> assert false

let entry_of_json j =
  { Trace.at = Json.to_float (Json.member "t" j); event = event_of_json j }

let add_section buf s =
  Buffer.add_string buf (Json.to_string (header_to_json s));
  Buffer.add_char buf '\n';
  List.iter
    (fun entry ->
      Buffer.add_string buf (Json.to_string (entry_to_json entry));
      Buffer.add_char buf '\n')
    s.entries

let to_jsonl sections =
  let buf = Buffer.create 4096 in
  List.iter (add_section buf) sections;
  Buffer.contents buf

let of_jsonl input =
  let close header entries_rev acc =
    match header with
    | None -> acc
    | Some s -> { s with entries = List.rev entries_rev } :: acc
  in
  let finish (acc, header, entries_rev) = List.rev (close header entries_rev acc) in
  String.split_on_char '\n' input
  |> List.filteri (fun _ line -> String.trim line <> "")
  |> List.fold_left
       (fun (acc, header, entries_rev) line ->
         let j = Json.of_string line in
         match Json.string_of (Json.member "kind" j) with
         | "header" ->
             (match Json.member "schema" j with
             | Json.Str s when String.equal s schema_id -> ()
             | Json.Str s -> Json.parse_error "unsupported trace schema %S" s
             | _ -> Json.parse_error "trace schema is not a string");
             let s =
               {
                 label = Json.string_of (Json.member "label" j);
                 seed = Json.int_of (Json.member "seed" j);
                 recorded = Json.int_of (Json.member "recorded" j);
                 dropped = Json.int_of (Json.member "dropped" j);
                 entries = [];
               }
             in
             (close header entries_rev acc, Some s, [])
         | "event" ->
             if header = None then
               Json.parse_error "trace event before any header line";
             (acc, header, entry_of_json j :: entries_rev)
         | kind -> Json.parse_error "unknown trace line kind %S" kind)
       ([], None, [])
  |> finish

let write path sections =
  let oc = open_out path in
  output_string oc (to_jsonl sections);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  of_jsonl contents

let validate input =
  match of_jsonl input with
  | sections ->
      Ok
        ( List.length sections,
          List.fold_left (fun n s -> n + List.length s.entries) 0 sections )
  | exception Json.Parse_error message -> Error message

(* --- Chrome trace-event (Perfetto-loadable) conversion --- *)

(* Transactions become duration events (ph B/E) on a per-section
   "transactions" process, one thread track per owner id; messages become
   flow events (ph s/f) between node tracks, paired FIFO per (src, dst);
   everything else is an instant. Times are simulated seconds, scaled to
   the format's microseconds. *)

let us at = Json.Num (at *. 1e6)

let to_chrome sections =
  let events = ref [] in
  let emit fields = events := Json.Obj fields :: !events in
  let flow_seq = ref 0 in
  List.iteri
    (fun si s ->
      let pid_txn = (2 * si) + 1 and pid_node = (2 * si) + 2 in
      let run = Printf.sprintf "%s seed %d" s.label s.seed in
      let meta pid suffix =
        emit
          [
            ("ph", Json.Str "M");
            ("pid", Json.int_ pid);
            ("name", Json.Str "process_name");
            ("args", Json.Obj [ ("name", Json.Str (run ^ " " ^ suffix)) ]);
          ]
      in
      meta pid_txn "transactions";
      meta pid_node "nodes";
      let instant pid tid at name =
        emit
          [
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("pid", Json.int_ pid);
            ("tid", Json.int_ tid);
            ("ts", us at);
            ("name", Json.Str name);
            ("cat", Json.Str "event");
          ]
      in
      let txn pid tid at ph args =
        emit
          (("ph", Json.Str ph)
          :: ("pid", Json.int_ pid)
          :: ("tid", Json.int_ tid)
          :: ("ts", us at)
          :: ("name", Json.Str "txn")
          :: ("cat", Json.Str "txn")
          :: args)
      in
      let open_txns : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let in_flight : (int * int, int Queue.t) Hashtbl.t = Hashtbl.create 64 in
      let flow ph extra at tid id =
        emit
          (("ph", Json.Str ph)
          :: ("pid", Json.int_ pid_node)
          :: ("tid", Json.int_ tid)
          :: ("ts", us at)
          :: ("id", Json.int_ id)
          :: ("name", Json.Str "msg")
          :: ("cat", Json.Str "net")
          :: extra)
      in
      let last_at = ref 0. in
      List.iter
        (fun (entry : Trace.entry) ->
          let at = entry.Trace.at in
          last_at := Float.max !last_at at;
          match entry.Trace.event with
          | Trace.Txn_started { owner } ->
              Hashtbl.replace open_txns owner ();
              txn pid_txn owner at "B" []
          | Trace.Txn_committed { owner } ->
              if Hashtbl.mem open_txns owner then begin
                Hashtbl.remove open_txns owner;
                txn pid_txn owner at "E" []
              end
              else instant pid_txn owner at "commit (started pre-trace)"
          | Trace.Deadlock_victim { owner; cycle } ->
              instant pid_txn owner at
                (Printf.sprintf "deadlock (cycle %s)"
                   (String.concat "->" (List.map string_of_int cycle)));
              if Hashtbl.mem open_txns owner then begin
                Hashtbl.remove open_txns owner;
                txn pid_txn owner at "E"
                  [ ("args", Json.Obj [ ("deadlock", Json.Bool true) ]) ]
              end
          | Trace.Lock_granted { owner; resource } ->
              instant pid_txn owner at (Printf.sprintf "lock r%d" resource)
          | Trace.Lock_waited { owner; resource } ->
              instant pid_txn owner at (Printf.sprintf "wait r%d" resource)
          | Trace.Message_sent { src; dst } ->
              let id = !flow_seq in
              incr flow_seq;
              let q =
                match Hashtbl.find_opt in_flight (src, dst) with
                | Some q -> q
                | None ->
                    let q = Queue.create () in
                    Hashtbl.add in_flight (src, dst) q;
                    q
              in
              Queue.add id q;
              flow "s" [] at src id;
              instant pid_node src at (Printf.sprintf "send n%d->n%d" src dst)
          | Trace.Message_delivered { src; dst } ->
              (match Hashtbl.find_opt in_flight (src, dst) with
              | Some q when not (Queue.is_empty q) ->
                  flow "f" [ ("bp", Json.Str "e") ] at dst (Queue.pop q)
              | _ -> ());
              instant pid_node dst at (Printf.sprintf "recv n%d->n%d" src dst)
          | Trace.Message_parked { at = node } ->
              instant pid_node node at "parked"
          | Trace.Message_dropped { src; dst } ->
              instant pid_node src at (Printf.sprintf "dropped n%d->n%d" src dst)
          | Trace.Message_duplicated { src; dst } ->
              instant pid_node src at
                (Printf.sprintf "duplicated n%d->n%d" src dst)
          | Trace.Node_connected { node } -> instant pid_node node at "connected"
          | Trace.Node_disconnected { node } ->
              instant pid_node node at "disconnected"
          | Trace.Node_crashed { node } -> instant pid_node node at "crashed"
          | Trace.Node_restarted { node } -> instant pid_node node at "restarted"
          | Trace.Partition_started { blocks } ->
              instant pid_node 0 at
                (Printf.sprintf "partition into %d blocks" blocks)
          | Trace.Partition_healed -> instant pid_node 0 at "partition healed"
          | Trace.Note text -> instant pid_node 0 at ("note: " ^ text))
        s.entries;
      (* Close transactions still open when the trace ended, so the viewer
         is not left with dangling B events. *)
      Hashtbl.fold (fun owner () acc -> owner :: acc) open_txns []
      |> List.sort Int.compare
      |> List.iter (fun owner ->
             txn pid_txn owner !last_at "E"
               [ ("args", Json.Obj [ ("truncated", Json.Bool true) ]) ]))
    sections;
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
    ]
