(** Structured export of {!Trace} rings: the versioned [dangers/trace/v1]
    JSONL format, plus a Chrome trace-event conversion that Perfetto and
    [chrome://tracing] load directly.

    A JSONL file holds one or more {e sections}, each a header line

    {v {"schema":"dangers/trace/v1","kind":"header","label":...,"seed":...,
   "recorded":N,"dropped":M} v}

    followed by its event lines

    {v {"kind":"event","t":<simulated seconds>,"ev":"txn_started",...} v}

    so several runs (a sweep, say) can share a file and still be pulled
    apart without heuristics. *)

type section = {
  label : string;  (** scheme or experiment name *)
  seed : int;
  recorded : int;  (** events ever recorded, including dropped ones *)
  dropped : int;  (** overwritten by the bounded ring before export *)
  entries : Trace.entry list;
}

val section : label:string -> seed:int -> Trace.t -> section
(** Snapshot a tracer's retained entries into an exportable section. *)

val schema_id : string
(** ["dangers/trace/v1"]. *)

val event_to_json : Trace.event -> Dangers_obs.Json.t
val event_of_json : Dangers_obs.Json.t -> Trace.event
(** @raise Dangers_obs.Json.Parse_error on an unknown tag or shape. *)

val to_jsonl : section list -> string
val of_jsonl : string -> section list
(** @raise Dangers_obs.Json.Parse_error on malformed input, a schema
    mismatch, or an event line before any header. *)

val write : string -> section list -> unit
val load : string -> section list

val validate : string -> (int * int, string) result
(** [validate input] is [Ok (sections, events)] when the input parses as
    v1 JSONL, [Error message] otherwise. *)

val to_chrome : section list -> Dangers_obs.Json.t
(** Chrome trace-event JSON ([{"traceEvents":[...]}]): transactions as
    duration events on one process per section (thread = owner id),
    messages as flow events between node tracks paired FIFO per
    [(src, dst)], everything else as instants. Timestamps are simulated
    seconds scaled to microseconds. *)
