module Obs = Dangers_obs.Metrics
module Domain_pool = Dangers_util.Domain_pool

type 'msg handler = src:int -> dst:int -> time:float -> 'msg -> unit

type 'msg t = {
  engines : Engine.t array;
  router : 'msg Partition.t;
  lookahead : float;
  mutable handler : 'msg handler option;
  (* events_fired per partition at window start, for stall accounting;
     written and read only at barriers *)
  win_fired : int array;
  mutable windows : int;
  mutable stalls : int;
  mutable nulls : int;
}

let create ?obs ~parts ~lookahead () =
  if parts < 1 then invalid_arg "Par_engine.create: parts must be >= 1";
  let t =
    {
      engines = Array.init parts (fun _ -> Engine.create ());
      router = Partition.create ~parts ~lookahead;
      lookahead;
      handler = None;
      win_fired = Array.make parts 0;
      windows = 0;
      stalls = 0;
      nulls = 0;
    }
  in
  (match obs with
  | None -> ()
  | Some registry ->
      Obs.register_source registry (fun () ->
          [
            Obs.Gauge ("parsim.partitions", float_of_int parts);
            Obs.Count ("parsim.windows_total", t.windows);
            Obs.Count ("parsim.lookahead_stalls_total", t.stalls);
            Obs.Count ("parsim.null_messages_total", t.nulls);
            Obs.Count ("parsim.channel_posts_total", Partition.posts_total t.router);
            Obs.Count
              ("parsim.channel_delivered_total", Partition.delivered_total t.router);
          ]));
  t

let parts t = Array.length t.engines
let lookahead t = t.lookahead

let engine t p =
  if p < 0 || p >= Array.length t.engines then
    invalid_arg
      (Printf.sprintf "Par_engine.engine: partition %d outside [0, %d)" p
         (Array.length t.engines));
  t.engines.(p)

let set_handler t handler = t.handler <- Some handler

let post t ~src ~dst ~delay msg =
  if not (Float.is_finite delay && delay >= t.lookahead) then
    invalid_arg
      (Printf.sprintf
         "Par_engine.post: delay %.9g is below the lookahead %.9g — the \
          conservative window bound would be unsound"
         delay t.lookahead);
  let time = Engine.now (engine t src) +. delay in
  Partition.post t.router ~src ~dst ~time msg

let safe_time t ~dst = Partition.safe_time t.router ~dst

let now t =
  Array.fold_left (fun acc e -> Float.min acc (Engine.now e)) infinity t.engines

let events_fired t =
  Array.fold_left (fun acc e -> acc + Engine.events_fired e) 0 t.engines

let next_global t =
  Array.fold_left
    (fun acc e ->
      match Engine.next_time e with
      | None -> acc
      | Some w -> (
          match acc with
          | None -> Some w
          | Some best -> if w < best then Some w else acc))
    None t.engines

let run ?pool ?max_events ?until t =
  let handler =
    match t.handler with
    | Some h -> h
    | None -> invalid_arg "Par_engine.run: no message handler set"
  in
  let budget = match max_events with Some n -> n | None -> max_int in
  let fired_at_entry = events_fired t in
  let n = Array.length t.engines in
  let deliver post =
    handler ~src:post.Partition.p_src ~dst:post.Partition.p_dst
      ~time:post.Partition.p_time post.Partition.p_msg
  in
  (* Every barrier drains, so posts are only pending at entry when they
     were made outside a run — seeding an otherwise-idle system, or
     between runs. Turn them into engine events now or the loop below
     would see an empty schedule and stop short of them. *)
  if Partition.pending t.router > 0 then Partition.drain t.router ~deliver;
  (* Drain everything at or below [u] is done; set every clock to [u],
     mirroring the serial engine's [run ~until]. *)
  let finish () =
    match until with
    | None -> ()
    | Some u ->
        Array.iter (fun e -> Engine.run e ~until:u) t.engines;
        Partition.advance_all t.router ~time:u
  in
  let continue = ref true in
  while !continue do
    match next_global t with
    | None ->
        finish ();
        continue := false
    | Some w -> (
        match until with
        | Some u when w > u ->
            finish ();
            continue := false
        | _ ->
            let bound = w +. t.lookahead in
            (* When the deadline cuts the window short, fire through it
               inclusively (serial [run ~until] semantics); posts made at or
               after [w] still land at or beyond [w + lookahead >= u]. *)
            let inclusive, bound =
              match until with
              | Some u when u < bound -> (true, u)
              | _ -> (false, bound)
            in
            t.windows <- t.windows + 1;
            Array.iteri
              (fun p e -> t.win_fired.(p) <- Engine.events_fired e)
              t.engines;
            let window p =
              (* Suppressed DR1: partitions are disjoint — worker [p]
                 touches only [t.engines.(p)] and its own router column —
                 and [parallel_for] joins every window before [t] is read
                 again on this domain. *)
              let e = (t.engines.(p) [@lint.allow "dr1"]) in
              if inclusive then Engine.run e ~until:bound
              else begin
                let more = ref true in
                while !more do
                  match Engine.next_time e with
                  | Some tm when tm < bound -> ignore (Engine.step e)
                  | _ -> more := false
                done
              end;
              Partition.advance t.router ~part:p ~time:bound
            in
            (match pool with
            | Some pool when Domain_pool.size pool > 1 && n > 1 ->
                Domain_pool.parallel_for pool ~n ~f:window
            | _ ->
                for p = 0 to n - 1 do
                  window p
                done);
            Array.iteri
              (fun p e ->
                if Engine.events_fired e = t.win_fired.(p) then begin
                  t.stalls <- t.stalls + 1;
                  t.nulls <- t.nulls + 1
                end)
              t.engines;
            if events_fired t - fired_at_entry > budget then
              raise (Engine.Runaway budget);
            Partition.drain t.router ~deliver)
  done

let windows t = t.windows
let stalls t = t.stalls
let null_messages t = t.nulls
let posts_total t = Partition.posts_total t.router
let delivered_total t = Partition.delivered_total t.router
