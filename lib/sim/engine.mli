(** Discrete-event simulation engine.

    A single simulated clock and a priority queue of events. Everything in
    the replication simulator — transaction actions taking Action_Time,
    replica-update message delays, mobile disconnect/reconnect cycles,
    Poisson arrivals — is an event scheduled here. The engine is
    single-threaded and deterministic: equal-time events fire in the order
    they were scheduled. Time is in seconds. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t

val now : t -> float
(** Current simulated time; starts at 0. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant. @raise Invalid_argument if [time] is in the
    simulated past. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val next_time : t -> float option
(** Simulated time of the next event that will actually fire, or [None] on
    an empty (or all-cancelled) queue. The conservative parallel engine
    uses the minimum of these across partitions as its window bound. *)

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

exception Runaway of int
(** Raised by {!run} when [max_events] fire without draining the queue —
    almost always a self-rescheduling loop (a connectivity schedule or
    generator left running before a drain). Failing fast beats hanging. *)

val run : ?max_events:int -> ?until:float -> t -> unit
(** Drain the queue. With [~until], stops (leaving later events queued) once
    the next event lies beyond [until] and sets the clock to [until]. With
    [~max_events], raises {!Runaway} after that many events fire in this
    call. *)

val run_for : t -> float -> unit
(** [run_for t span] = [run t ~until:(now t +. span)]. *)

val events_fired : t -> int
(** Total events executed since creation; a cheap progress/work measure.
    Events per second of wall time — the throughput number the
    microbenchmarks report — is this divided by elapsed real time. *)

val queue_high_water : t -> int
(** Largest number of queued events (including cancelled ones not yet
    popped) ever reached; a cheap memory-pressure measure. *)

(** {1 Tracing}

    Components built over the engine (the transaction executor, the
    network) record into the attached trace, if any; no tracer, no cost. *)

val set_tracer : t -> Trace.t option -> unit
val tracer : t -> Trace.t option

val tracing : t -> bool
(** Whether a tracer is attached. Hot paths check this before building a
    {!Trace.event}, so the no-tracer case allocates nothing. *)

val trace : t -> Trace.event -> unit
(** Record at the current simulated time; no-op without a tracer. *)
