module Stats = Dangers_util.Stats

type counter = { mutable window : int; mutable lifetime : int }

type t = {
  now : unit -> float;
  counters : (string, counter) Hashtbl.t;
  samples : (string, Stats.t) Hashtbl.t;
  mutable window_start : float;
}

let create ~now () =
  {
    now;
    counters = Hashtbl.create 32;
    samples = Hashtbl.create 32;
    window_start = now ();
  }

let of_engine engine = create ~now:(fun () -> Engine.now engine) ()

let counter_for t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { window = 0; lifetime = 0 } in
      Hashtbl.add t.counters name c;
      c

let incr_by t name n =
  let c = counter_for t name in
  c.window <- c.window + n;
  c.lifetime <- c.lifetime + n

let incr t name = incr_by t name 1

let count t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.window | None -> 0

let total_count t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.lifetime | None -> 0

let window_elapsed t = t.now () -. t.window_start

let rate t name =
  let elapsed = window_elapsed t in
  if elapsed <= 0. then 0. else float_of_int (count t name) /. elapsed

let sample t name x =
  let stats =
    match Hashtbl.find_opt t.samples name with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add t.samples name s;
        s
  in
  Stats.add stats x

let sample_stats t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> s
  | None -> Stats.create ()

let start_window t =
  (* In-place reset of every window counter; no output depends on the
     table's visit order. *)
  (Hashtbl.iter (fun _ c -> c.window <- 0) t.counters [@lint.allow "D2"]);
  t.window_start <- t.now ()

let counter_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.counters []
  |> List.sort String.compare
