(** Conservative (Chandy–Misra-style) parallel discrete-event simulation.

    The serial {!Engine} is one heap and one clock. This engine is [parts]
    of them — one private engine per logical partition — advanced in
    lockstep {e windows}: every partition may safely fire all events
    strictly below [W + L], where [W] is the global minimum next-event
    time and [L] the {e lookahead}, because any message a partition sends
    carries at least [L] of transmission delay and therefore lands at or
    beyond the window bound. Windows are separated by a barrier at which
    the {!Partition} router drains cross-partition messages in a
    deterministic merge order.

    {b Determinism.} Partitions are a property of the model, not of the
    hardware: a run with [parts] partitions produces the same per-engine
    event sequences, clocks, and counters whether the windows execute on
    one domain or eight, because the pool only chooses {e which domain}
    runs a partition's window, never the window decomposition or the
    message order. Fixed-seed runs are byte-identical at any
    {!Dangers_util.Domain_pool} size.

    {b Stalls and null advancement.} A partition with no event inside the
    current window still participates in the barrier — the moral
    equivalent of a Chandy–Misra null message; the engine counts one
    lookahead stall (and one null advancement) per idle partition per
    window, observable through the registry passed to {!create}. *)

type 'msg t

type 'msg handler = src:int -> dst:int -> time:float -> 'msg -> unit

val create :
  ?obs:Dangers_obs.Metrics.t ->
  parts:int ->
  lookahead:float ->
  unit ->
  'msg t
(** [parts] private engines with a shared router. With [?obs], registers a
    pull source reporting the [parsim.*] counters below.
    @raise Invalid_argument unless [parts >= 1] and [lookahead] is
    positive and finite. *)

val parts : _ t -> int
val lookahead : _ t -> float

val engine : _ t -> int -> Engine.t
(** The partition's private engine: schedule partition-local events
    directly on it. @raise Invalid_argument on an out-of-range index. *)

val set_handler : 'msg t -> 'msg handler -> unit
(** How a drained cross-partition message enters its destination: called
    at the barrier, on the coordinating domain, in deterministic merge
    order. A handler almost always [Engine.schedule_at (engine t dst)
    ~time] an event that interprets the message; it must touch only
    [dst]-partition state. Must be set before the first {!run}. *)

val post : 'msg t -> src:int -> dst:int -> delay:float -> 'msg -> unit
(** Send a message from [src]'s current simulated time. [delay] is the
    transmission delay and must be at least the lookahead — that is the
    conservative contract that makes the window bound safe.
    @raise Invalid_argument if [delay < lookahead] (or indices are out of
    range). *)

val safe_time : _ t -> dst:int -> float
(** See {!Partition.safe_time}. *)

val now : _ t -> float
(** Global minimum of the partition clocks. *)

val run :
  ?pool:Dangers_util.Domain_pool.t ->
  ?max_events:int ->
  ?until:float ->
  'msg t ->
  unit
(** Advance in windows until no partition has a pending event (or none at
    or below [until]; the partition clocks are then set to [until],
    mirroring {!Engine.run}). Windows execute on [pool] when given —
    sized independently of [parts]; extra workers idle, extra partitions
    queue — and inline otherwise. [max_events] bounds the events fired in
    this call, checked at each barrier: {!Engine.Runaway} is raised once
    the total exceeds it (a window may overshoot by its batch, unlike the
    serial engine's exact cut).
    @raise Invalid_argument if no handler was set. *)

val events_fired : _ t -> int
(** Sum over partitions. *)

(** {1 Synchronization counters}

    Exported to a registry as [parsim.windows_total],
    [parsim.lookahead_stalls_total], [parsim.null_messages_total],
    [parsim.channel_posts_total], [parsim.channel_delivered_total] and the
    gauge [parsim.partitions]. *)

val windows : _ t -> int
val stalls : _ t -> int
val null_messages : _ t -> int
val posts_total : _ t -> int
val delivered_total : _ t -> int
