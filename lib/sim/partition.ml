type 'msg post = {
  p_time : float;
  p_src : int;
  p_dst : int;
  p_seq : int;
  p_msg : 'msg;
}

type 'msg t = {
  parts : int;
  lookahead : float;
  (* Per-source accumulation, newest first. Written only by the domain
     running [src]'s window; read only at the barrier, which orders those
     writes before the coordinator's reads. *)
  boxes : 'msg post list array;
  seqs : int array;
  horizons : float array;
  mutable posts_total : int;
  mutable delivered_total : int;
}

let create ~parts ~lookahead =
  if parts < 1 then invalid_arg "Partition.create: parts must be >= 1";
  if not (Float.is_finite lookahead && lookahead > 0.) then
    invalid_arg "Partition.create: lookahead must be positive and finite";
  {
    parts;
    lookahead;
    boxes = Array.make parts [];
    seqs = Array.make parts 0;
    horizons = Array.make parts 0.;
    posts_total = 0;
    delivered_total = 0;
  }

let parts t = t.parts
let lookahead t = t.lookahead

let check_part t what p =
  if p < 0 || p >= t.parts then
    invalid_arg (Printf.sprintf "Partition.%s: partition %d outside [0, %d)" what p t.parts)

let post t ~src ~dst ~time msg =
  check_part t "post" src;
  check_part t "post" dst;
  if not (Float.is_finite time) then invalid_arg "Partition.post: non-finite time";
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  t.boxes.(src) <-
    { p_time = time; p_src = src; p_dst = dst; p_seq = seq; p_msg = msg }
    :: t.boxes.(src)

let advance t ~part ~time =
  check_part t "advance" part;
  if time > t.horizons.(part) then t.horizons.(part) <- time

let advance_all t ~time =
  for p = 0 to t.parts - 1 do
    advance t ~part:p ~time
  done

let horizon t ~part =
  check_part t "horizon" part;
  t.horizons.(part)

let safe_time t ~dst =
  check_part t "safe_time" dst;
  if t.parts = 1 then infinity
  else begin
    let least = ref infinity in
    for src = 0 to t.parts - 1 do
      if src <> dst && t.horizons.(src) < !least then least := t.horizons.(src)
    done;
    !least +. t.lookahead
  end

let pending t = Array.fold_left (fun acc box -> acc + List.length box) 0 t.boxes

let compare_posts a b =
  let c = Float.compare a.p_time b.p_time in
  if c <> 0 then c
  else
    let c = Int.compare a.p_src b.p_src in
    if c <> 0 then c else Int.compare a.p_seq b.p_seq

let drain t ~deliver =
  let all = ref [] in
  for src = t.parts - 1 downto 0 do
    all := List.rev_append t.boxes.(src) !all;
    t.boxes.(src) <- []
  done;
  let ordered = List.sort compare_posts !all in
  List.iter
    (fun post ->
      (* The receiver finished its window through [horizons.(dst)]; an
         earlier delivery would rewrite its past. *)
      if post.p_time < t.horizons.(post.p_dst) then
        invalid_arg
          (Printf.sprintf
             "Partition.drain: post from %d to %d at t=%.9g precedes the \
              receiver's completed horizon %.9g (conservative synchronization \
              violated)"
             post.p_src post.p_dst post.p_time t.horizons.(post.p_dst));
      t.posts_total <- t.posts_total + 1;
      deliver post;
      t.delivered_total <- t.delivered_total + 1)
    ordered

let posts_total t = t.posts_total
let delivered_total t = t.delivered_total
