type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t element =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = if capacity = 0 then 16 else 2 * capacity in
    let data' = Array.make capacity' element in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.cmp t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.size && t.cmp t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t element =
  grow t element;
  t.data.(t.size) <- element;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Overwrite the vacated slot with a still-live element so popped
         values (and anything their closures capture) are collectable
         immediately, not pinned until the slot is re-pushed. *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some element -> element
  | None -> invalid_arg "Heap.pop_exn: empty heap"

(* Keep the backing array: a cleared heap that is refilled (the common
   reuse pattern in benchmarks, repeated runs, and per-partition engine
   reuse) must not regrow from scratch. 'a has no universal dummy, so
   every slot is overwritten with one surviving element instead: a clear
   pins at most that single value, not the whole previous population —
   with event closures that difference is the entire captured simulation
   state. *)
let clear t =
  if t.size > 0 then Array.fill t.data 0 (Array.length t.data) t.data.(0);
  t.size <- 0

let capacity t = Array.length t.data

let to_sorted_list t =
  let copy = { cmp = t.cmp; data = Array.sub t.data 0 t.size; size = t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
