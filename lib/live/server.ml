module Clock = Dangers_runtime.Clock
module Runtime = Dangers_runtime.Runtime
module Live_clock = Dangers_runtime.Live_clock
module Codec = Dangers_runtime.Codec
module Params = Dangers_analytic.Params
module Connectivity = Dangers_net.Connectivity
module Two_tier = Dangers_core.Two_tier
module Common = Dangers_replication.Common
module Obs = Dangers_obs.Metrics
module Json = Dangers_obs.Json
module Timeseries = Dangers_obs.Timeseries
module Prometheus = Dangers_obs.Prometheus
module Warnings = Dangers_obs.Warnings
module Oid = Dangers_storage.Oid

type config = {
  socket_path : string;
  base_nodes : int;
  params : Params.t;
  seed : int;
  metrics_out : string option;
  series_out : string option;
  sample_interval : float;
  quiet : bool;
  print_summary : bool;
}

type client = {
  fd : Unix.file_descr;
  node : int;
  splitter : Protocol.Splitter.t;
  mutable alive : bool;
}

type t = {
  config : config;
  sys : Two_tier.t;
  clock : Clock.t;
  live : Live_clock.t;
  obs : Obs.t;
  request_seconds : Obs.histogram;
  series : Timeseries.t;
  series_oc : out_channel option;
  mutable next_sample : float;
  listen_fd : Unix.file_descr;
  mutable clients : client list;
  mutable next_mobile : int;
  (* Sync requests waiting for a mobile's replay to finish, keyed by
     mobile index (node - base_count). *)
  sync_waiters : (int, (unit -> unit) Queue.t) Hashtbl.t;
  mutable shutdown : bool;
}

let log t fmt =
  if t.config.quiet then Printf.ifprintf stderr fmt
  else Printf.eprintf (fmt ^^ "\n%!")

let scheme_stats t =
  let metrics = (Two_tier.base t.sys).Common.metrics in
  {
    Protocol.commits = (Two_tier.summary t.sys).Dangers_replication.Repl_stats.commits;
    tentative_accepted = Two_tier.tentative_accepted t.sys;
    tentative_rejected = Two_tier.tentative_rejected t.sys;
    scope_violations =
      Dangers_sim.Metrics.total_count metrics "scope_violations";
    warnings_total = Warnings.total ();
    warnings = Warnings.keys ();
  }

(* One window per [sample_interval] of wall time, taken from the idle
   waiter — the same place client I/O is serviced, so sampling never races
   scheme events. Each window streams to [series_out] as it is taken,
   giving a crash-readable series. *)
let emit_sample t =
  let now = Live_clock.now t.live in
  let window = Timeseries.sample t.series ~now in
  (match t.series_oc with
  | None -> ()
  | Some oc ->
      output_string oc (Json.to_string (Timeseries.window_to_json window));
      output_char oc '\n';
      flush oc);
  t.next_sample <- now +. Timeseries.interval t.series

let maybe_sample t =
  if Live_clock.now t.live >= t.next_sample then emit_sample t

let respond _t client response =
  if client.alive then
    try Protocol.send client.fd Protocol.response response
    with Unix.Unix_error _ -> client.alive <- false

let drop_client t client =
  if client.alive then begin
    client.alive <- false;
    (try Unix.close client.fd with Unix.Unix_error _ -> ())
  end;
  t.clients <- List.filter (fun c -> c != client) t.clients

(* Answer [Sync] once the mobile's replay completes: the scheme's
   [on_sync] listener fires after protocol step 4 and drains the queue of
   waiting responders for that mobile. *)
let await_sync t ~node k =
  let mobile = node - Two_tier.base_count t.sys in
  let queue =
    match Hashtbl.find_opt t.sync_waiters mobile with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.sync_waiters mobile q;
        q
  in
  Queue.add k queue

let handle_request t client request =
  let started = Live_clock.now t.live in
  let finish response =
    Obs.observe t.request_seconds (Live_clock.now t.live -. started);
    respond t client response
  in
  match request with
  | Protocol.Hello ->
      finish
        (Protocol.Assigned
           {
             node = client.node;
             base_nodes = Two_tier.base_count t.sys;
             nodes = t.config.params.Params.nodes;
           })
  | Protocol.Set_connected state ->
      Two_tier.set_node_connected t.sys ~node:client.node state;
      finish Protocol.Done
  | Protocol.Submit ops -> (
      match
        Two_tier.submit_with t.sys ~node:client.node ops
          ~on_result:(fun result ->
            finish
              (match result with
              | `Committed results -> Protocol.Committed results
              | `Rejected reason -> Protocol.Rejected reason
              | `Tentative -> Protocol.Tentative
              | `Scope_violation -> Protocol.Scope_violation))
      with
      | () -> ()
      | exception Invalid_argument message -> finish (Protocol.Error message))
  | Protocol.Sync ->
      await_sync t ~node:client.node (fun () -> finish Protocol.Synced);
      (* Reconnecting triggers the sync; if already connected, bounce the
         node so an empty replay still completes a sync and answers. *)
      Two_tier.set_node_connected t.sys ~node:client.node false;
      Two_tier.set_node_connected t.sys ~node:client.node true
  | Protocol.Query oid -> (
      match Two_tier.master_value t.sys oid with
      | value -> finish (Protocol.Value value)
      | exception Invalid_argument message -> finish (Protocol.Error message))
  | Protocol.Stats -> finish (Protocol.Stats_reply (scheme_stats t))
  | Protocol.Metrics_snapshot ->
      let json = Obs.snapshot_to_json (Obs.snapshot t.obs) in
      finish (Protocol.Metrics_json (Json.to_string json ^ "\n"))
  | Protocol.Metrics_prom ->
      finish (Protocol.Metrics_text (Prometheus.of_snapshot (Obs.snapshot t.obs)))
  | Protocol.Shutdown ->
      finish Protocol.Done;
      t.shutdown <- true;
      Live_clock.stop t.live

let handle_payload t client payload =
  match Protocol.of_payload Protocol.request payload with
  | request -> handle_request t client request
  | exception Codec.Malformed message ->
      log t "serve: dropping client (malformed request: %s)" message;
      respond t client (Protocol.Error ("malformed request: " ^ message));
      drop_client t client

let read_client t client =
  let chunk = Bytes.create 65536 in
  match Unix.read client.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_client t client
  | n ->
      Protocol.Splitter.feed client.splitter (Bytes.sub_string chunk 0 n);
      let continue = ref true in
      while !continue && client.alive do
        match Protocol.Splitter.next client.splitter with
        | Some payload -> handle_payload t client payload
        | None -> continue := false
        | exception Codec.Malformed message ->
            log t "serve: dropping client (%s)" message;
            drop_client t client
      done
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> drop_client t client

let accept_client t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      if t.next_mobile >= t.config.params.Params.nodes then begin
        (* Mobile pool exhausted: recycle round-robin; concurrent clients
           sharing a mobile see each other's connectivity toggles. *)
        t.next_mobile <- Two_tier.base_count t.sys
      end;
      let node = t.next_mobile in
      t.next_mobile <- t.next_mobile + 1;
      let client =
        { fd; node; splitter = Protocol.Splitter.create (); alive = true }
      in
      t.clients <- client :: t.clients;
      log t "serve: client connected as mobile node %d" node
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()

(* The idle waiter: the wall-clock run loop parks here whenever no timer
   is due, so client I/O is serviced between scheme events on the same
   domain — requests can call straight into the scheme. *)
let wait_io t ~timeout =
  maybe_sample t;
  let fds = t.listen_fd :: List.map (fun c -> c.fd) t.clients in
  match Unix.select fds [] [] (Float.min timeout 0.05) with
  | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.listen_fd then accept_client t
          else
            match List.find_opt (fun c -> c.fd = fd) t.clients with
            | Some client -> read_client t client
            | None -> ())
        readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let validate_snapshot_json json =
  (* Self-check: the exported snapshot must round-trip through the
     dangers/metrics/v1 parser — a malformed export fails loudly here
     rather than downstream. *)
  ignore (Obs.snapshot_of_json (Json.of_string (Json.to_string json)))

let write_metrics t =
  let snapshot = Obs.snapshot t.obs in
  let json = Obs.snapshot_to_json snapshot in
  validate_snapshot_json json;
  match t.config.metrics_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string json ^ "\n");
      close_out oc;
      log t "serve: wrote %s" file

let serve config =
  Params.validate config.params;
  let obs = Obs.create () in
  let runtime = Runtime.live_wall () in
  (* Mobility is client-driven over the protocol, not scheduled: the
     base-node spec never cycles, so [Set_connected]/[Sync] are the only
     connectivity levers. *)
  let sys =
    Two_tier.create ~obs ~runtime ~mobility:Connectivity.base_node
      ~base_nodes:config.base_nodes config.params ~seed:config.seed
  in
  let clock = (Two_tier.base sys).Common.clock in
  let live =
    match Clock.live clock with
    | Some live -> live
    | None -> invalid_arg "Server.serve: runtime is not live"
  in
  (match Unix.stat config.socket_path with
  | _ -> Unix.unlink config.socket_path
  | exception Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  if not (config.sample_interval > 0.) then
    invalid_arg "Server.serve: sample_interval must be positive";
  let series =
    Timeseries.create ~interval:config.sample_interval
      ~now:(Live_clock.now live) obs
  in
  let series_oc =
    Option.map
      (fun file ->
        let oc = open_out file in
        output_string oc
          (Json.to_string
             (Timeseries.header_json ~label:"serve" ~seed:config.seed series));
        output_char oc '\n';
        flush oc;
        oc)
      config.series_out
  in
  let t =
    {
      config;
      sys;
      clock;
      live;
      obs;
      request_seconds = Obs.histogram obs "serve.request_seconds";
      series;
      series_oc;
      next_sample = Live_clock.now live +. config.sample_interval;
      listen_fd;
      clients = [];
      next_mobile = Two_tier.base_count sys;
      sync_waiters = Hashtbl.create 16;
      shutdown = false;
    }
  in
  Two_tier.on_sync sys (fun ~mobile ->
      match Hashtbl.find_opt t.sync_waiters mobile with
      | None -> ()
      | Some queue ->
          while not (Queue.is_empty queue) do
            (Queue.pop queue) ()
          done);
  Live_clock.set_idle_waiter live (Some (fun ~timeout -> wait_io t ~timeout));
  let previous_sigint =
    Sys.signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           t.shutdown <- true;
           Live_clock.stop live))
  in
  log t "serve: two-tier on %s (%d base node(s), %d mobile slot(s), seed %d)"
    config.socket_path config.base_nodes
    (config.params.Params.nodes - config.base_nodes)
    config.seed;
  (try Clock.run clock
   with exn ->
     Sys.set_signal Sys.sigint previous_sigint;
     raise exn);
  Sys.set_signal Sys.sigint previous_sigint;
  Live_clock.set_idle_waiter live None;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  (* A final window captures whatever landed after the last tick. *)
  emit_sample t;
  (match (t.series_oc, config.series_out) with
  | Some oc, Some path ->
      close_out oc;
      log t "serve: wrote %d series window(s) to %s"
        (Timeseries.sampled t.series) path
  | Some oc, None -> close_out oc
  | None, _ -> ());
  write_metrics t;
  let stats = scheme_stats t in
  if config.print_summary then
    Printf.printf
      "serve: done after %.3fs wall — %d base commit(s), %d tentative \
       accepted, %d rejected, %d scope violation(s)\n%!"
      (Live_clock.now live) stats.Protocol.commits
      stats.Protocol.tentative_accepted stats.Protocol.tentative_rejected
      stats.Protocol.scope_violations;
  stats
