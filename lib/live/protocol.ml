module Codec = Dangers_runtime.Codec
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid

type request =
  | Hello
  | Set_connected of bool
  | Submit of Op.t list
  | Sync
  | Query of Oid.t
  | Stats
  | Shutdown
  | Metrics_snapshot
  | Metrics_prom

type stats = {
  commits : int;
  tentative_accepted : int;
  tentative_rejected : int;
  scope_violations : int;
  warnings_total : int;
  warnings : (string * int) list;
}

type response =
  | Assigned of { node : int; base_nodes : int; nodes : int }
  | Done
  | Committed of (Oid.t * float) list
  | Rejected of string
  | Tentative
  | Scope_violation
  | Synced
  | Value of float
  | Stats_reply of stats
  | Error of string
  | Metrics_json of string
  | Metrics_text of string

(* --- operation payloads --- *)

let put_oid buf oid = Codec.put_u32 buf (Oid.to_int oid)
let get_oid r = Oid.of_int (Codec.get_u32 r)

let encode_op buf = function
  | Op.Read oid ->
      Codec.put_u8 buf 0;
      put_oid buf oid
  | Op.Assign (oid, v) ->
      Codec.put_u8 buf 1;
      put_oid buf oid;
      Codec.put_f64 buf v
  | Op.Increment (oid, v) ->
      Codec.put_u8 buf 2;
      put_oid buf oid;
      Codec.put_f64 buf v
  | Op.Assign_from { target; source; offset } ->
      Codec.put_u8 buf 3;
      put_oid buf target;
      put_oid buf source;
      Codec.put_f64 buf offset

let decode_op r =
  match Codec.get_u8 r with
  | 0 -> Op.Read (get_oid r)
  | 1 ->
      let oid = get_oid r in
      Op.Assign (oid, Codec.get_f64 r)
  | 2 ->
      let oid = get_oid r in
      Op.Increment (oid, Codec.get_f64 r)
  | 3 ->
      let target = get_oid r in
      let source = get_oid r in
      Op.Assign_from { target; source; offset = Codec.get_f64 r }
  | tag -> raise (Codec.Malformed (Printf.sprintf "unknown op tag %d" tag))

let encode_ops buf ops =
  let n = List.length ops in
  if n > 0xffff then invalid_arg "Protocol: too many ops in one transaction";
  Codec.put_u16 buf n;
  List.iter (encode_op buf) ops

let decode_ops r =
  let n = Codec.get_u16 r in
  List.init n (fun _ -> decode_op r)

(* --- requests --- *)

let encode_request buf = function
  | Hello -> Codec.put_u8 buf 1
  | Set_connected state ->
      Codec.put_u8 buf 2;
      Codec.put_u8 buf (if state then 1 else 0)
  | Submit ops ->
      Codec.put_u8 buf 3;
      encode_ops buf ops
  | Sync -> Codec.put_u8 buf 4
  | Query oid ->
      Codec.put_u8 buf 5;
      put_oid buf oid
  | Stats -> Codec.put_u8 buf 6
  | Shutdown -> Codec.put_u8 buf 7
  | Metrics_snapshot -> Codec.put_u8 buf 8
  | Metrics_prom -> Codec.put_u8 buf 9

let decode_request r =
  let req =
    match Codec.get_u8 r with
    | 1 -> Hello
    | 2 -> Set_connected (Codec.get_u8 r <> 0)
    | 3 -> Submit (decode_ops r)
    | 4 -> Sync
    | 5 -> Query (get_oid r)
    | 6 -> Stats
    | 7 -> Shutdown
    | 8 -> Metrics_snapshot
    | 9 -> Metrics_prom
    | tag -> raise (Codec.Malformed (Printf.sprintf "unknown request tag %d" tag))
  in
  Codec.expect_end r;
  req

(* --- responses --- *)

let encode_results buf results =
  let n = List.length results in
  if n > 0xffff then invalid_arg "Protocol: too many results";
  Codec.put_u16 buf n;
  List.iter
    (fun (oid, v) ->
      put_oid buf oid;
      Codec.put_f64 buf v)
    results

let decode_results r =
  let n = Codec.get_u16 r in
  List.init n (fun _ ->
      let oid = get_oid r in
      (oid, Codec.get_f64 r))

let encode_response buf = function
  | Assigned { node; base_nodes; nodes } ->
      Codec.put_u8 buf 1;
      Codec.put_u16 buf node;
      Codec.put_u16 buf base_nodes;
      Codec.put_u16 buf nodes
  | Done -> Codec.put_u8 buf 2
  | Committed results ->
      Codec.put_u8 buf 3;
      encode_results buf results
  | Rejected reason ->
      Codec.put_u8 buf 4;
      Codec.put_string buf reason
  | Tentative -> Codec.put_u8 buf 5
  | Scope_violation -> Codec.put_u8 buf 6
  | Synced -> Codec.put_u8 buf 7
  | Value v ->
      Codec.put_u8 buf 8;
      Codec.put_f64 buf v
  | Stats_reply s ->
      Codec.put_u8 buf 9;
      Codec.put_u32 buf s.commits;
      Codec.put_u32 buf s.tentative_accepted;
      Codec.put_u32 buf s.tentative_rejected;
      Codec.put_u32 buf s.scope_violations;
      Codec.put_u32 buf s.warnings_total;
      let n = List.length s.warnings in
      if n > 0xffff then invalid_arg "Protocol: too many warning keys";
      Codec.put_u16 buf n;
      List.iter
        (fun (key, count) ->
          Codec.put_string buf key;
          Codec.put_u32 buf count)
        s.warnings
  | Error message ->
      Codec.put_u8 buf 10;
      Codec.put_string buf message
  | Metrics_json json ->
      Codec.put_u8 buf 11;
      Codec.put_string buf json
  | Metrics_text text ->
      Codec.put_u8 buf 12;
      Codec.put_string buf text

let decode_response r =
  let resp =
    match Codec.get_u8 r with
    | 1 ->
        let node = Codec.get_u16 r in
        let base_nodes = Codec.get_u16 r in
        Assigned { node; base_nodes; nodes = Codec.get_u16 r }
    | 2 -> Done
    | 3 -> Committed (decode_results r)
    | 4 -> Rejected (Codec.get_string r)
    | 5 -> Tentative
    | 6 -> Scope_violation
    | 7 -> Synced
    | 8 -> Value (Codec.get_f64 r)
    | 9 ->
        let commits = Codec.get_u32 r in
        let tentative_accepted = Codec.get_u32 r in
        let tentative_rejected = Codec.get_u32 r in
        let scope_violations = Codec.get_u32 r in
        let warnings_total = Codec.get_u32 r in
        let warning_keys = Codec.get_u16 r in
        let warnings =
          List.init warning_keys (fun _ ->
              let key = Codec.get_string r in
              (key, Codec.get_u32 r))
        in
        Stats_reply
          {
            commits;
            tentative_accepted;
            tentative_rejected;
            scope_violations;
            warnings_total;
            warnings;
          }
    | 10 -> Error (Codec.get_string r)
    | 11 -> Metrics_json (Codec.get_string r)
    | 12 -> Metrics_text (Codec.get_string r)
    | tag ->
        raise (Codec.Malformed (Printf.sprintf "unknown response tag %d" tag))
  in
  Codec.expect_end r;
  resp

let request : request Codec.t = { encode = encode_request; decode = decode_request }
let response : response Codec.t =
  { encode = encode_response; decode = decode_response }

(* --- framing over a file descriptor (blocking client side) --- *)

let to_frame codec value =
  let buf = Buffer.create 64 in
  codec.Codec.encode buf value;
  Codec.frame buf

let of_payload codec payload = codec.Codec.decode (Codec.reader payload)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let read_exact fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let k = Unix.read fd b !got (n - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  if !got = n then Some (Bytes.unsafe_to_string b) else None

let read_frame fd =
  match read_exact fd 4 with
  | None -> None
  | Some header ->
      let len =
        Char.code header.[0] lsl 24
        lor (Char.code header.[1] lsl 16)
        lor (Char.code header.[2] lsl 8)
        lor Char.code header.[3]
      in
      if len > Codec.max_frame then
        raise (Codec.Malformed (Printf.sprintf "frame of %d bytes" len));
      if len = 0 then Some "" else read_exact fd len

let send fd codec value = write_all fd (to_frame codec value)

let recv fd codec =
  Option.map (fun payload -> of_payload codec payload) (read_frame fd)

(* --- incremental frame splitter (non-blocking server side) --- *)

module Splitter = struct
  type t = { mutable pending : string }

  let create () = { pending = "" }

  let feed t chunk = t.pending <- t.pending ^ chunk

  let next t =
    let s = t.pending in
    if String.length s < 4 then None
    else
      let len =
        Char.code s.[0] lsl 24
        lor (Char.code s.[1] lsl 16)
        lor (Char.code s.[2] lsl 8)
        lor Char.code s.[3]
      in
      if len > Codec.max_frame then
        raise (Codec.Malformed (Printf.sprintf "frame of %d bytes" len))
      else if String.length s < 4 + len then None
      else begin
        t.pending <- String.sub s (4 + len) (String.length s - 4 - len);
        Some (String.sub s 4 len)
      end
end
