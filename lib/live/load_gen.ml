module Rng = Dangers_util.Rng
module Stats = Dangers_util.Stats
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid

type config = {
  socket_path : string;
  clients : int;
  txns : int;
  burst : int;
  ops_per_txn : int;
  db_size : int;
  seed : int;
  shutdown : bool;
}

type worker_result = {
  w_submitted : int;
  w_tentative : int;
  w_committed : int;
  w_rejected : int;
  w_scope_violations : int;
  w_syncs : int;
  w_submit_latencies : float list;
  w_sync_latencies : float list;
  w_errors : string list;
}

type report = {
  submitted : int;
  tentative : int;
  committed : int;
  rejected : int;
  scope_violations : int;
  syncs : int;
  elapsed_seconds : float;
  throughput_tps : float;
  submit_p50 : float;
  submit_p95 : float;
  submit_p99 : float;
  sync_p50 : float;
  sync_p99 : float;
  errors : string list;
  server_stats : Protocol.stats option;
}

let now_seconds () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let rpc fd request =
  Protocol.send fd Protocol.request request;
  match Protocol.recv fd Protocol.response with
  | Some response -> response
  | None -> failwith "load: server closed the connection"

(* One transaction: [ops_per_txn] increments on distinct objects, the
   churn workload of a mobile sales rep (§7): all objects are
   base-mastered, so every tentative transaction is in scope. *)
let gen_ops rng ~db_size ~ops_per_txn =
  let k = min ops_per_txn db_size in
  Rng.sample_without_replacement rng ~n:db_size ~k
  |> Array.to_list
  |> List.map (fun i ->
         Op.Increment (Oid.of_int i, float_of_int (1 + Rng.int rng 8) *. 0.25))

let empty_result =
  {
    w_submitted = 0;
    w_tentative = 0;
    w_committed = 0;
    w_rejected = 0;
    w_scope_violations = 0;
    w_syncs = 0;
    w_submit_latencies = [];
    w_sync_latencies = [];
    w_errors = [];
  }

let worker config ~index ~txns =
  let rng = Rng.create ~seed:(config.seed + (1000 * (index + 1))) in
  let fd = connect config.socket_path in
  let result = ref empty_result in
  let fail message =
    result := { !result with w_errors = message :: (!result).w_errors }
  in
  (try
     (match rpc fd Protocol.Hello with
     | Protocol.Assigned _ -> ()
     | _ -> fail "unexpected Hello response");
     let remaining = ref txns in
     while !remaining > 0 && (!result).w_errors = [] do
       let burst = min config.burst !remaining in
       (* Churn cycle: go offline, work tentatively, reconnect and sync. *)
       (match rpc fd (Protocol.Set_connected false) with
       | Protocol.Done -> ()
       | _ -> fail "unexpected Set_connected response");
       for _ = 1 to burst do
         let ops = gen_ops rng ~db_size:config.db_size ~ops_per_txn:config.ops_per_txn in
         let started = now_seconds () in
         let response = rpc fd (Protocol.Submit ops) in
         let latency = now_seconds () -. started in
         let r = !result in
         let r =
           { r with w_submitted = r.w_submitted + 1;
                    w_submit_latencies = latency :: r.w_submit_latencies }
         in
         result :=
           (match response with
           | Protocol.Tentative -> { r with w_tentative = r.w_tentative + 1 }
           | Protocol.Committed _ -> { r with w_committed = r.w_committed + 1 }
           | Protocol.Rejected _ -> { r with w_rejected = r.w_rejected + 1 }
           | Protocol.Scope_violation ->
               { r with w_scope_violations = r.w_scope_violations + 1 }
           | Protocol.Error message ->
               { r with w_errors = message :: r.w_errors }
           | _ -> { r with w_errors = "unexpected Submit response" :: r.w_errors })
       done;
       remaining := !remaining - burst;
       let started = now_seconds () in
       (match rpc fd Protocol.Sync with
       | Protocol.Synced ->
           let latency = now_seconds () -. started in
           let r = !result in
           result :=
             { r with w_syncs = r.w_syncs + 1;
                      w_sync_latencies = latency :: r.w_sync_latencies }
       | _ -> fail "unexpected Sync response");
       match rpc fd (Protocol.Query (Oid.of_int (Rng.int rng config.db_size))) with
       | Protocol.Value _ -> ()
       | _ -> fail "unexpected Query response"
     done
   with
  | Failure message -> fail message
  | Unix.Unix_error (err, fn, _) ->
      fail (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | Dangers_runtime.Codec.Malformed message -> fail ("malformed response: " ^ message));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !result

let percentile_of latencies ~p =
  match latencies with
  | [] -> 0.
  | _ -> Stats.percentile (Array.of_list latencies) ~p

let run config =
  if config.clients <= 0 then invalid_arg "Load_gen.run: clients must be positive";
  if config.txns <= 0 then invalid_arg "Load_gen.run: txns must be positive";
  if config.burst <= 0 then invalid_arg "Load_gen.run: burst must be positive";
  let share index =
    (* Split txns as evenly as possible; the first workers take the rest. *)
    (config.txns / config.clients)
    + (if index < config.txns mod config.clients then 1 else 0)
  in
  let started = now_seconds () in
  let domains =
    List.init config.clients (fun index ->
        Domain.spawn (fun () -> worker config ~index ~txns:(share index)))
  in
  let results = List.map Domain.join domains in
  let elapsed = now_seconds () -. started in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let submit_latencies = List.concat_map (fun r -> r.w_submit_latencies) results in
  let sync_latencies = List.concat_map (fun r -> r.w_sync_latencies) results in
  let server_stats =
    try
      let fd = connect config.socket_path in
      let stats =
        match rpc fd Protocol.Stats with
        | Protocol.Stats_reply stats -> Some stats
        | _ -> None
      in
      if config.shutdown then ignore (rpc fd Protocol.Shutdown);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      stats
    with _ -> None
  in
  let submitted = sum (fun r -> r.w_submitted) in
  {
    submitted;
    tentative = sum (fun r -> r.w_tentative);
    committed = sum (fun r -> r.w_committed);
    rejected = sum (fun r -> r.w_rejected);
    scope_violations = sum (fun r -> r.w_scope_violations);
    syncs = sum (fun r -> r.w_syncs);
    elapsed_seconds = elapsed;
    throughput_tps = (if elapsed > 0. then float_of_int submitted /. elapsed else 0.);
    submit_p50 = percentile_of submit_latencies ~p:0.50;
    submit_p95 = percentile_of submit_latencies ~p:0.95;
    submit_p99 = percentile_of submit_latencies ~p:0.99;
    sync_p50 = percentile_of sync_latencies ~p:0.50;
    sync_p99 = percentile_of sync_latencies ~p:0.99;
    errors = List.concat_map (fun r -> r.w_errors) results;
    server_stats;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>load: %d txn(s) in %.3fs — %.0f txn/s@,\
     outcomes: %d tentative, %d committed, %d rejected, %d scope violation(s), \
     %d sync(s)@,\
     submit latency: p50 %.6fs  p95 %.6fs  p99 %.6fs@,\
     sync latency:   p50 %.6fs  p99 %.6fs@]" r.submitted r.elapsed_seconds
    r.throughput_tps r.tentative r.committed r.rejected r.scope_violations
    r.syncs r.submit_p50 r.submit_p95 r.submit_p99 r.sync_p50 r.sync_p99;
  (match r.server_stats with
  | None -> ()
  | Some s ->
      Format.fprintf ppf
        "@,server: %d base commit(s), %d accepted, %d rejected, %d scope \
         violation(s)"
        s.Protocol.commits s.Protocol.tentative_accepted
        s.Protocol.tentative_rejected s.Protocol.scope_violations);
  List.iter (fun e -> Format.fprintf ppf "@,error: %s" e) r.errors
