(** Load generator for the live two-tier service: replays the paper's
    churning mobile users against a {!Server} over its Unix socket.

    Each of [clients] worker domains opens its own connection, is
    assigned a mobile node by [Hello], and then loops the §7 usage
    pattern: disconnect, submit a burst of tentative increment
    transactions, reconnect-and-sync (the base replays the queue under
    the acceptance criterion), and read back one master value. Workers
    measure per-request wall latency; the report aggregates counts,
    throughput and latency percentiles, plus the server's own counters
    (fetched over a final connection, which optionally also sends
    [Shutdown]). *)

type config = {
  socket_path : string;
  clients : int;  (** worker domains, one connection each *)
  txns : int;  (** total submits across all workers *)
  burst : int;  (** submits per disconnect/sync churn cycle *)
  ops_per_txn : int;
  db_size : int;  (** must match the server's [--db-size] *)
  seed : int;
  shutdown : bool;  (** send [Shutdown] after the final stats fetch *)
}

type report = {
  submitted : int;
  tentative : int;
  committed : int;
  rejected : int;
  scope_violations : int;
  syncs : int;
  elapsed_seconds : float;
  throughput_tps : float;
  submit_p50 : float;
  submit_p95 : float;
  submit_p99 : float;
  sync_p50 : float;
  sync_p99 : float;
  errors : string list;  (** empty on a clean run *)
  server_stats : Protocol.stats option;
}

val run : config -> report
(** Blocks until every worker finishes its share.
    @raise Invalid_argument on non-positive [clients], [txns] or
    [burst]. *)

val pp_report : Format.formatter -> report -> unit
