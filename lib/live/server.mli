(** The wall-clock two-tier service: the §7 scheme, unchanged, run on the
    live runtime and exposed to out-of-process clients over a Unix-domain
    stream socket speaking {!Protocol}.

    Single-domain by construction: the live clock's run loop parks in the
    idle waiter ([Unix.select] over the listen and client sockets)
    whenever no timer is due, so requests are handled on the same domain
    that fires scheme events and can call straight into the scheme — the
    live analogue of the simulator's single-threaded event loop, with no
    locks in scheme code.

    Each connecting client is assigned a mobile node (round-robin over
    the mobile tier; recycled if clients outnumber mobiles). Mobility is
    client-driven: the scheme is created with the never-cycling
    {!Dangers_net.Connectivity.base_node} spec and clients churn
    themselves with [Set_connected] / [Sync].

    Observability: per-request latency lands in the
    [serve.request_seconds] histogram of the server's registry (alongside
    the scheme's own counters, the two-tier lag gauges and the [net.*]
    sources); on shutdown the snapshot is self-validated against the
    dangers/metrics/v1 schema and optionally written as JSON. The registry
    is additionally sampled into a {!Dangers_obs.Timeseries} every
    [sample_interval] wall seconds from the idle waiter, each window
    streaming to [series_out] as dangers/metrics-series/v1 JSONL as it is
    taken. Clients scrape the registry mid-run with
    [Metrics_snapshot]/[Metrics_prom] — what [dangers stat] and
    [dangers top] poll. *)

type config = {
  socket_path : string;  (** Unix-domain socket; unlinked and rebound *)
  base_nodes : int;
  params : Dangers_analytic.Params.t;
  seed : int;
  metrics_out : string option;  (** write the final snapshot here *)
  series_out : string option;  (** stream sampled windows here as JSONL *)
  sample_interval : float;  (** wall seconds between series windows *)
  quiet : bool;  (** suppress per-connection stderr notes *)
  print_summary : bool;  (** print the one-line stdout summary on exit *)
}

val serve : config -> Protocol.stats
(** Run until a client sends [Shutdown] (or SIGINT). Blocks. Returns the
    final scheme counters after printing a one-line summary (unless
    [print_summary] is false).
    @raise Invalid_argument on invalid [params], [base_nodes] or a
    non-positive [sample_interval]. *)
