(** Client-side scraping and rendering for [dangers top] and
    [dangers stat]: one persistent {!Protocol} connection to a running
    {!Server}, polled for metrics.

    The connection is deliberately held open across polls — the server
    assigns a mobile node per connection, so a poller that reconnected for
    every sample would churn the round-robin assignment under the feet of
    real load clients. A monitor never submits transactions; its node
    assignment is inert. *)

module Obs = Dangers_obs.Metrics

type t

val connect : socket:string -> t
(** @raise Unix.Unix_error when the socket is absent or refuses. *)

val close : t -> unit

val stats : t -> Protocol.stats
val snapshot_json : t -> string
(** The raw [dangers/metrics/v1] document, newline-terminated. *)

val prom : t -> string
(** The raw Prometheus text exposition. *)

(** {1 Polling with rates} *)

type frame = {
  f_time : float;  (** client wall clock when the scrape returned *)
  f_dt : float;  (** seconds since the previous {!poll}; 0 on the first *)
  f_snapshot : Obs.snapshot;
  f_prev : Obs.snapshot option;
}

val poll : t -> frame
(** Scrape a snapshot and pair it with the previous poll so the renderer
    can show per-second rates.
    @raise Failure on an unexpected reply or closed connection. *)

val counter_rate : frame -> string -> float option
(** The counter's per-second increase across the poll gap; [None] on the
    first frame or when the counter is absent. *)

val render : frame -> string
(** A plain-text dashboard: headline totals, per-second rates, latency
    percentiles ({!Obs.histogram_quantile}) and per-mobile replication
    lag. Ends with a newline. *)
