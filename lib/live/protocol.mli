(** The live service's client protocol: length-prefixed {!Dangers_runtime.Codec}
    frames over a stream socket.

    One request, one response, in order — except that a [Submit] whose
    transaction runs as a base transaction answers only when that
    transaction finishes (commit or reject), which is still before any
    later request from the same client is answered (the server processes a
    client's frames in order). A disconnected mobile's [Submit] answers
    [Tentative] immediately: the transaction was applied to the tentative
    versions and queued, exactly the paper's §7 contract.

    The protocol is deliberately tiny and versionless; it exists to drive
    the wall-clock two-tier service ({!Server}) from out-of-process
    clients ({!Load_gen}, the CI smoke job) and to demonstrate the
    {!Dangers_runtime.Codec} boundary a cross-machine transport would
    use. *)

module Codec = Dangers_runtime.Codec
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid

type request =
  | Hello  (** assign me a mobile node *)
  | Set_connected of bool  (** churn lever: drive my node's connectivity *)
  | Submit of Op.t list  (** run a transaction at my node *)
  | Sync  (** reconnect (if needed) and answer after my sync completes *)
  | Query of Oid.t  (** read the object's master copy *)
  | Stats  (** server-side counters *)
  | Shutdown  (** stop the server after answering *)
  | Metrics_snapshot
      (** scrape: the full registry as [dangers/metrics/v1] JSON *)
  | Metrics_prom  (** scrape: Prometheus text exposition *)

type stats = {
  commits : int;
  tentative_accepted : int;
  tentative_rejected : int;
  scope_violations : int;
  warnings_total : int;  (** warn-once registry total at reply time *)
  warnings : (string * int) list;  (** per-key warn counts, sorted *)
}

type response =
  | Assigned of { node : int; base_nodes : int; nodes : int }
  | Done
  | Committed of (Oid.t * float) list
  | Rejected of string
  | Tentative
  | Scope_violation
  | Synced
  | Value of float
  | Stats_reply of stats
  | Error of string
  | Metrics_json of string  (** a [dangers/metrics/v1] snapshot document *)
  | Metrics_text of string  (** a Prometheus 0.0.4 exposition *)

val request : request Codec.t
val response : response Codec.t

(** {1 Framing} *)

val to_frame : 'a Codec.t -> 'a -> string
(** Encode as a 4-byte big-endian length prefix plus payload. *)

val of_payload : 'a Codec.t -> string -> 'a
(** Decode one frame's payload. @raise Codec.Malformed on garbage. *)

val send : Unix.file_descr -> 'a Codec.t -> 'a -> unit
(** Blocking framed write. *)

val recv : Unix.file_descr -> 'a Codec.t -> 'a option
(** Blocking framed read; [None] on a clean EOF.
    @raise Codec.Malformed on garbage or an oversized frame. *)

(** Reassemble frames from arbitrarily chunked reads (the server's
    select loop). *)
module Splitter : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit

  val next : t -> string option
  (** The next complete payload, if one is buffered.
      @raise Codec.Malformed on an oversized frame. *)
end
