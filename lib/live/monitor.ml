module Obs = Dangers_obs.Metrics
module Json = Dangers_obs.Json

type t = {
  fd : Unix.file_descr;
  mutable prev : (float * Obs.snapshot) option;
}

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; prev = None }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t request =
  Protocol.send t.fd Protocol.request request;
  match Protocol.recv t.fd Protocol.response with
  | Some response -> response
  | None -> failwith "monitor: server closed the connection"

let unexpected response =
  ignore response;
  failwith "monitor: unexpected response from server"

let stats t =
  match rpc t Protocol.Stats with
  | Protocol.Stats_reply s -> s
  | r -> unexpected r

let snapshot_json t =
  match rpc t Protocol.Metrics_snapshot with
  | Protocol.Metrics_json json -> json
  | r -> unexpected r

let prom t =
  match rpc t Protocol.Metrics_prom with
  | Protocol.Metrics_text text -> text
  | r -> unexpected r

type frame = {
  f_time : float;  (** client wall clock when the scrape returned *)
  f_dt : float;  (** seconds since the previous {!poll}; 0 on the first *)
  f_snapshot : Obs.snapshot;
  f_prev : Obs.snapshot option;
}

let poll t =
  let snapshot = Obs.snapshot_of_json (Json.of_string (snapshot_json t)) in
  let now = Unix.gettimeofday () in
  let prev_time, prev_snapshot =
    match t.prev with
    | Some (time, s) -> (time, Some s)
    | None -> (now, None)
  in
  t.prev <- Some (now, snapshot);
  { f_time = now; f_dt = now -. prev_time; f_snapshot = snapshot; f_prev = prev_snapshot }

(* --- rendering --- *)

let counter_rate frame name =
  match (frame.f_prev, Obs.snapshot_counter frame.f_snapshot name) with
  | None, _ | _, None -> None
  | Some prev, Some cur when frame.f_dt > 0. ->
      let before =
        match Obs.snapshot_counter prev name with Some v -> v | None -> 0
      in
      Some (float_of_int (cur - before) /. frame.f_dt)
  | Some _, Some _ -> None

let pp_rate ppf = function
  | None -> Format.fprintf ppf "%8s" "-"
  | Some rate -> Format.fprintf ppf "%8.1f" rate

let quantiles frame name =
  Option.map
    (fun h ->
      ( Obs.histogram_quantile h ~q:0.5,
        Obs.histogram_quantile h ~q:0.9,
        Obs.histogram_quantile h ~q:0.99,
        h.Obs.hs_count ))
    (Obs.snapshot_histogram frame.f_snapshot name)

(* The per-mobile gauge families Two_tier registers, recovered from the
   snapshot's flat namespace. *)
let mobile_rows frame =
  let prefix = "two_tier.mobile." in
  let plen = String.length prefix in
  let rows : (string, float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, value) ->
      if String.length name > plen && String.sub name 0 plen = prefix then
        match String.index_from_opt name plen '.' with
        | None -> ()
        | Some dot ->
            let id = String.sub name plen (dot - plen) in
            let field = String.sub name (dot + 1) (String.length name - dot - 1) in
            let depth, age =
              match Hashtbl.find_opt rows id with
              | Some pair -> pair
              | None -> (0., 0.)
            in
            if field = "tentative_queue_depth" then
              Hashtbl.replace rows id (value, age)
            else if field = "oldest_tentative_age_seconds" then
              Hashtbl.replace rows id (depth, value))
    frame.f_snapshot.Obs.s_gauges;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun id pair acc -> (id, pair) :: acc) rows [])

let render frame =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let gauge name =
    match Obs.snapshot_gauge frame.f_snapshot name with Some v -> v | None -> 0.
  in
  let counter name =
    match Obs.snapshot_counter frame.f_snapshot name with Some v -> v | None -> 0
  in
  out "dangers top — commits %d, tentative %d, syncs %d, warnings %d\n"
    (counter "scheme.commits_total")
    (counter "scheme.tentative_commits_total")
    (counter "scheme.syncs_total")
    frame.f_snapshot.Obs.s_warnings_total;
  out "\n%-28s %8s\n" "rate (per second)" "now";
  List.iter
    (fun (label, name) ->
      out "%-28s %s\n" label
        (Format.asprintf "%a" pp_rate (counter_rate frame name)))
    [
      ("commits", "scheme.commits_total");
      ("tentative commits", "scheme.tentative_commits_total");
      ("syncs", "scheme.syncs_total");
      ("reconciliations", "scheme.reconciliations_total");
      ("replica applied", "scheme.replica_applied_total");
    ];
  out "\n%-28s %9s %9s %9s %8s\n" "latency (seconds)" "p50" "p90" "p99" "n";
  List.iter
    (fun (label, name) ->
      match quantiles frame name with
      | None -> ()
      | Some (p50, p90, p99, n) ->
          out "%-28s %9.4f %9.4f %9.4f %8d\n" label p50 p90 p99 n)
    [
      ("submit -> commit", "scheme.commit_seconds");
      ("reconcile lag", "two_tier.reconcile_lag_seconds");
      ("request service", "serve.request_seconds");
    ];
  out "\nreplication lag: queue depth %.0f, oldest tentative %.1fs\n"
    (gauge "two_tier.tentative_queue_depth")
    (gauge "two_tier.oldest_tentative_age_seconds");
  (match mobile_rows frame with
  | [] -> ()
  | rows ->
      out "%-8s %12s %12s\n" "mobile" "queue" "oldest age";
      List.iter
        (fun (id, (depth, age)) -> out "%-8s %12.0f %11.1fs\n" id depth age)
        rows);
  Buffer.contents buf
