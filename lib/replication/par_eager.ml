module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Generator = Dangers_workload.Generator
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Par_engine = Dangers_sim.Par_engine
module Observe = Dangers_sim.Observe
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp
module Op = Dangers_txn.Op
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Rng = Dangers_util.Rng
module Domain_pool = Dangers_util.Domain_pool
module Obs = Dangers_obs.Metrics
module Profiling = Dangers_obs.Profiling
module Repl_stats = Repl_stats

(* Transaction identity: home node plus a home-local serial. Retries are
   new transactions (fresh tid), so a stale message can never be confused
   with the current attempt. *)
type owner = { home : int; tid : int }

type msg =
  | Lock_req of { owner : owner; oid : int }
  | Lock_grant of { owner : owner; oid : int }
  | Commit_apply of { owner : owner; writes : (int * float * Timestamp.t) list }
  | Release of { owner : owner }
  | Probe of { initiator : owner; subject : owner; ttl : int }
  | Probe_at of { initiator : owner; waiter : owner; oid : int; ttl : int }
  | Victim of { owner : owner }

type lmode = S | X

type waiter = { w_owner : owner; w_mode : lmode }

type entry = {
  mutable holders : owner list;  (* S: many; X: exactly one *)
  mutable hmode : lmode;
  mutable queue : waiter list;  (* FIFO; appends are O(n) but queues are short *)
}

type txn = {
  t_owner : owner;
  t_ops : Op.t array;
  t_started : float;
  mutable t_op : int;  (* index of the op being locked/worked *)
  mutable t_awaiting : (int * int) list;  (* (node, oid) grants outstanding *)
  mutable t_deadline : Engine.event_id option;
  mutable t_done : bool;
}

type node = {
  id : int;
  engine : Engine.t;
  metrics : Metrics.t;
  store : Fstore.t;
  lamport : Timestamp.Clock.t;
  locks : (int, entry) Hashtbl.t;
  held : (owner, int list ref) Hashtbl.t;  (* every oid held or queued here *)
  active : (int, txn) Hashtbl.t;  (* home transactions by tid *)
  mutable next_tid : int;
  gen_rng : Rng.t;
  delay_rng : Rng.t;
  retry_rng : Rng.t;
}

type t = {
  params : Params.t;
  profile : Profile.t;
  delay : Delay.t;
  lookahead : float;
  faults : Network.faults option;
  nodes : node array;
  par : msg Par_engine.t;
  mutable generators : Generator.t list;
}

let scheme_name = "par-eager-group"

(* Extra counters beyond the shared Repl_stats names. *)
let c_timeout_aborts = "timeout_aborts"
let c_probes = "deadlock_probes"
let c_apply_dropped = "apply_dropped"

let node_count t = Array.length t.nodes

let lock_timeout t =
  (* Generous next to any plausible wait chain: a probe round trip is
     2 x lookahead and a transaction's own work is actions x action_time.
     Purely a liveness backstop for cycles formed between probes. *)
  25.
  *. ((float_of_int t.params.Params.actions *. t.params.Params.action_time)
     +. (4. *. t.lookahead))

let send_delay t node = Float.max t.lookahead (Delay.sample t.delay node.delay_rng)

(* --- lock table ------------------------------------------------------ *)

let entry_for node oid =
  match Hashtbl.find_opt node.locks oid with
  | Some e -> e
  | None ->
      let e = { holders = []; hmode = X; queue = [] } in
      Hashtbl.add node.locks oid e;
      e

let note_interest node owner oid =
  match Hashtbl.find_opt node.held owner with
  | Some oids -> if not (List.mem oid !oids) then oids := oid :: !oids
  | None -> Hashtbl.add node.held owner (ref [ oid ])

let owner_equal a b = a.home = b.home && a.tid = b.tid

(* Request a lock at this node. Queued requests wait behind earlier queued
   ones even when instantaneously compatible — FIFO fairness, and writers
   cannot starve. *)
let request node ~owner ~mode oid =
  let e = entry_for node oid in
  note_interest node owner oid;
  match (e.holders, mode) with
  | [], _ ->
      e.holders <- [ owner ];
      e.hmode <- mode;
      `Granted
  | _, S when e.hmode = S && e.queue = [] ->
      e.holders <- owner :: e.holders;
      `Granted
  | _ ->
      e.queue <- e.queue @ [ { w_owner = owner; w_mode = mode } ];
      `Queued e.holders

let promote node oid ~grant =
  let e = entry_for node oid in
  if e.holders = [] then
    match e.queue with
    | [] -> ()
    | { w_mode = X; w_owner } :: rest ->
        e.holders <- [ w_owner ];
        e.hmode <- X;
        e.queue <- rest;
        grant w_owner
    | { w_mode = S; _ } :: _ ->
        let rec split acc = function
          | { w_mode = S; w_owner } :: rest -> split (w_owner :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let readers, rest = split [] e.queue in
        e.holders <- readers;
        e.hmode <- S;
        e.queue <- rest;
        List.iter grant readers

let release_owner node owner ~grant =
  match Hashtbl.find_opt node.held owner with
  | None -> ()
  | Some oids ->
      Hashtbl.remove node.held owner;
      List.iter
        (fun oid ->
          match Hashtbl.find_opt node.locks oid with
          | None -> ()
          | Some e ->
              e.holders <-
                List.filter (fun o -> not (owner_equal o owner)) e.holders;
              e.queue <-
                List.filter (fun w -> not (owner_equal w.w_owner owner)) e.queue;
              promote node oid ~grant:(grant ~oid))
        !oids

(* --- protocol -------------------------------------------------------- *)

let rec send t ~src ~dst msg =
  if src = dst then
    (* Home-local protocol step: decouple from the current callback (the
       lock table may be mid-mutation) but stay at the same simulated
       time. *)
    ignore
      (Engine.schedule t.nodes.(src).engine ~delay:0. (fun () ->
           handle t ~src ~dst msg))
  else Par_engine.post t.par ~src ~dst ~delay:(send_delay t t.nodes.(src)) msg

(* A lock at [site] became grantable for [owner]: tell its home. *)
and granted t site ~oid owner =
  if owner.home = site.id then on_granted t ~site:site.id ~oid owner
  else send t ~src:site.id ~dst:owner.home (Lock_grant { owner; oid })

(* Probes: initiated where a request blocks, chased from the subject's
   home to wherever it is waiting, and back through that lock's holders.
   A cycle returns to the initiator, which becomes the victim. *)
and probe_blockers t site ~waiter ~holders =
  List.iter
    (fun blocker ->
      if not (owner_equal blocker waiter) then begin
        Metrics.incr site.metrics c_probes;
        send t ~src:site.id ~dst:blocker.home
          (Probe { initiator = waiter; subject = blocker; ttl = 2 * node_count t })
      end)
    holders

and blocked t site ~owner ~holders =
  Metrics.incr site.metrics Repl_stats.waits;
  probe_blockers t site ~waiter:owner ~holders

and handle t ~src ~dst msg =
  let node = t.nodes.(dst) in
  match msg with
  | Lock_req { owner; oid } -> (
      match request node ~owner ~mode:X oid with
      | `Granted -> granted t node ~oid owner
      | `Queued holders -> blocked t node ~owner ~holders)
  | Lock_grant { owner; oid } ->
      (* [src] is the granting site. A grant for a dead transaction needs
         no reply: the abort already sent that site a Release. *)
      if owner.home = dst then on_granted t ~site:src ~oid owner
  | Commit_apply { owner; writes } ->
      List.iter
        (fun (oid, value, stamp) ->
          Timestamp.Clock.witness node.lamport stamp;
          match Fstore.apply_if_newer node.store (Oid.of_int oid) value stamp with
          | `Applied -> Metrics.incr node.metrics Repl_stats.replica_applied
          | `Stale -> Metrics.incr node.metrics Repl_stats.stale_discards)
        writes;
      release_owner node owner ~grant:(fun ~oid o -> granted t node ~oid o)
  | Release { owner } ->
      release_owner node owner ~grant:(fun ~oid o -> granted t node ~oid o)
  | Probe { initiator; subject; ttl } -> (
      if ttl > 0 && subject.home = dst then
        match Hashtbl.find_opt node.active subject.tid with
        | None -> ()
        | Some txn ->
            if (not txn.t_done) && owner_equal txn.t_owner subject then
              List.iter
                (fun (site, oid) ->
                  send t ~src:dst ~dst:site
                    (Probe_at { initiator; waiter = subject; oid; ttl = ttl - 1 }))
                txn.t_awaiting)
  | Probe_at { initiator; waiter; oid; ttl } -> (
      if ttl > 0 then
        match Hashtbl.find_opt node.locks oid with
        | None -> ()
        | Some e ->
            let still_queued =
              List.exists (fun w -> owner_equal w.w_owner waiter) e.queue
            in
            if still_queued then
              List.iter
                (fun holder ->
                  if owner_equal holder initiator then
                    send t ~src:dst ~dst:initiator.home (Victim { owner = initiator })
                  else begin
                    Metrics.incr node.metrics c_probes;
                    send t ~src:dst ~dst:holder.home
                      (Probe { initiator; subject = holder; ttl = ttl - 1 })
                  end)
                e.holders)
  | Victim { owner } -> (
      if owner.home = dst then
        match Hashtbl.find_opt node.active owner.tid with
        | None -> ()
        | Some txn ->
            (* Still blocked: a genuine cycle. Already granted everything:
               the probe is stale; let it run. *)
            if (not txn.t_done) && txn.t_awaiting <> [] then begin
              Metrics.incr node.metrics Repl_stats.deadlocks;
              abort_and_retry t node txn
            end)

and on_granted t ~site ~oid owner =
  let node = t.nodes.(owner.home) in
  match Hashtbl.find_opt node.active owner.tid with
  | None -> ()
  | Some txn ->
      if not txn.t_done then begin
        txn.t_awaiting <-
          List.filter
            (fun (s, o) -> not (s = site && o = oid))
            txn.t_awaiting;
        if txn.t_awaiting = [] then work t node txn
      end

(* The op's locks are all held: charge Action_Time, then move on. *)
and work t node txn =
  ignore
    (Engine.schedule node.engine ~delay:t.params.Params.action_time (fun () ->
         if not txn.t_done then next_op t node txn))

and next_op t node txn =
  txn.t_op <- txn.t_op + 1;
  if txn.t_op >= Array.length txn.t_ops then commit t node txn
  else begin
    let op = txn.t_ops.(txn.t_op) in
    let oid = Oid.to_int (Op.oid op) in
    if Op.is_update op then begin
      (* Update-everywhere: X at every replica, requested in one scatter.
         Remote requests are outstanding immediately; the local one only
         if it queued. *)
      let awaiting = ref [] in
      for dst = node_count t - 1 downto 0 do
        if dst <> node.id then awaiting := (dst, oid) :: !awaiting
      done;
      let local =
        match request node ~owner:txn.t_owner ~mode:X oid with
        | `Granted -> []
        | `Queued holders ->
            blocked t node ~owner:txn.t_owner ~holders;
            [ (node.id, oid) ]
      in
      txn.t_awaiting <- local @ !awaiting;
      for dst = 0 to node_count t - 1 do
        if dst <> node.id then
          send t ~src:node.id ~dst (Lock_req { owner = txn.t_owner; oid })
      done;
      if txn.t_awaiting = [] then work t node txn
    end
    else begin
      (* Reads touch only the local replica (the model ignores reads). *)
      match request node ~owner:txn.t_owner ~mode:S oid with
      | `Granted -> work t node txn
      | `Queued holders ->
          txn.t_awaiting <- [ (node.id, oid) ];
          blocked t node ~owner:txn.t_owner ~holders
    end
  end

and commit t node txn =
  finish_txn t node txn;
  let writes =
    Array.to_list txn.t_ops
    |> List.filter Op.is_update
    |> List.map (fun op ->
           let oid = Op.oid op in
           let value =
             Op.apply ~read:(Fstore.read node.store)
               ~current:(Fstore.read node.store oid) op
           in
           let stamp = Timestamp.Clock.tick node.lamport in
           Fstore.write node.store oid value stamp;
           (Oid.to_int oid, value, stamp))
  in
  release_owner node txn.t_owner ~grant:(fun ~oid o -> granted t node ~oid o);
  broadcast_apply t node ~owner:txn.t_owner ~writes;
  Metrics.incr node.metrics Repl_stats.commits;
  Metrics.sample node.metrics Repl_stats.duration_sample
    (Engine.now node.engine -. txn.t_started)

and broadcast_apply t node ~owner ~writes =
  let apply = Commit_apply { owner; writes } in
  for dst = 0 to node_count t - 1 do
    if dst <> node.id then begin
      let post ?(extra = 0.) m =
        Par_engine.post t.par ~src:node.id ~dst
          ~delay:(send_delay t node +. Float.max 0. extra)
          m
      in
      match t.faults with
      | None -> post apply
      | Some faults ->
          if faults.Network.blocked ~src:node.id ~dst then begin
            (* Partitioned link: the update is lost to this replica, but
               its locks must still release — the control plane is
               reliable (see the mli). *)
            Metrics.incr node.metrics c_apply_dropped;
            post (Release { owner })
          end
          else begin
            match faults.Network.on_transmit ~src:node.id ~dst with
            | Network.Pass -> post apply
            | Network.Drop ->
                Metrics.incr node.metrics c_apply_dropped;
                post (Release { owner })
            | Network.Duplicate ->
                post apply;
                post apply
            | Network.Delay_extra extra -> post ~extra apply
          end
    end
  done

and finish_txn _t node txn =
  txn.t_done <- true;
  (match txn.t_deadline with
  | Some ev ->
      Engine.cancel node.engine ev;
      txn.t_deadline <- None
  | None -> ());
  Hashtbl.remove node.active txn.t_owner.tid

and abort_and_retry t node txn =
  finish_txn t node txn;
  Metrics.incr node.metrics Repl_stats.restarts;
  release_owner node txn.t_owner ~grant:(fun ~oid o -> granted t node ~oid o);
  for dst = 0 to node_count t - 1 do
    if dst <> node.id then send t ~src:node.id ~dst (Release { owner = txn.t_owner })
  done;
  let backoff =
    let duration =
      float_of_int t.params.Params.actions *. t.params.Params.action_time
    in
    (0.5 +. Rng.float node.retry_rng 1.0) *. duration
  in
  ignore
    (Engine.schedule node.engine ~delay:backoff (fun () ->
         start_txn t node txn.t_ops))

and start_txn t node ops =
  let tid = node.next_tid in
  node.next_tid <- tid + 1;
  let owner = { home = node.id; tid } in
  let txn =
    {
      t_owner = owner;
      t_ops = ops;
      t_started = Engine.now node.engine;
      t_op = -1;
      t_awaiting = [];
      t_deadline = None;
      t_done = false;
    }
  in
  Hashtbl.add node.active tid txn;
  txn.t_deadline <-
    Some
      (Engine.schedule node.engine ~delay:(lock_timeout t) (fun () ->
           if not txn.t_done then
             if txn.t_awaiting <> [] then begin
               Metrics.incr node.metrics c_timeout_aborts;
               abort_and_retry t node txn
             end
             else
               (* Working, not blocked; no cycle can involve it. *)
               txn.t_deadline <- None));
  next_op t node txn

(* --- construction and driving --------------------------------------- *)

let create ?profile ?(initial_value = 0.) ?delay ?faults params ~seed =
  Params.validate params;
  let profile =
    match profile with Some p -> p | None -> Profile.of_params params
  in
  let delay =
    match delay with
    | Some d -> d
    | None -> Delay.Constant (Float.max params.Params.message_delay 0.05)
  in
  Delay.validate delay;
  let lookahead = Delay.min_bound delay in
  if not (lookahead > 0.) then
    invalid_arg
      (Format.asprintf
         "Par_eager.create: delay model %a has a zero minimum transmit \
          delay, so it admits no conservative lookahead"
         Delay.pp delay);
  let obs = Observe.ambient_obs () in
  let par = Par_engine.create ?obs ~parts:params.Params.nodes ~lookahead () in
  let root = Rng.create ~seed in
  let nodes =
    Array.init params.Params.nodes (fun id ->
        let rng = Rng.split root in
        let node =
          {
            id;
            engine = Par_engine.engine par id;
            metrics = Metrics.of_engine (Par_engine.engine par id);
            store =
              Fstore.create ~db_size:params.Params.db_size ~init:(fun _ ->
                  initial_value);
            lamport = Timestamp.Clock.create ~node:id;
            locks = Hashtbl.create 64;
            held = Hashtbl.create 64;
            active = Hashtbl.create 16;
            next_tid = 0;
            gen_rng = Rng.split rng;
            delay_rng = Rng.split rng;
            retry_rng = Rng.split rng;
          }
        in
        node)
  in
  let t =
    { params; profile; delay; lookahead; faults; nodes; par; generators = [] }
  in
  (match obs with
  | None -> ()
  | Some registry ->
      Array.iter
        (fun node ->
          Obs.register_source registry (fun () ->
              [
                Obs.Count
                  ("engine.events_fired_total", Engine.events_fired node.engine);
                Obs.Gauge
                  ( "engine.queue_high_water",
                    float_of_int (Engine.queue_high_water node.engine) );
              ]);
          Obs.register_source registry (fun () ->
              List.map
                (fun name ->
                  Obs.Count
                    ("scheme." ^ name ^ "_total", Metrics.total_count node.metrics name))
                (Metrics.counter_names node.metrics)))
        nodes);
  Par_engine.set_handler par (fun ~src ~dst ~time msg ->
      ignore
        (Engine.schedule_at (Par_engine.engine par dst) ~time (fun () ->
             handle t ~src ~dst msg)));
  t

let start t =
  if t.generators <> [] then invalid_arg "Par_eager.start: already started";
  t.generators <-
    Array.to_list
      (Array.map
         (fun node ->
           Generator.start ~clock:(Clock.of_engine node.engine) ~rng:node.gen_rng
             ~tps:t.params.Params.tps ~profile:t.profile
             ~db_size:t.params.Params.db_size
             ~submit:(fun ops -> start_txn t node (Array.of_list ops)))
         t.nodes)

let stop_load t =
  List.iter Generator.stop t.generators;
  t.generators <- []

let with_pool ~domains f =
  if domains < 1 then invalid_arg "Par_eager: domains must be >= 1";
  if domains = 1 then f None
  else begin
    let pool = Domain_pool.create ~workers:domains in
    Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () ->
        f (Some pool))
  end

let profiled t phase f =
  match Observe.ambient_obs () with
  | None -> f ()
  | Some registry ->
      ignore t;
      let (), p = Profiling.timed phase f in
      Obs.record_phase registry p

let measure ?(domains = 1) t ~warmup ~span =
  with_pool ~domains (fun pool ->
      profiled t "warmup" (fun () ->
          Par_engine.run ?pool t.par ~until:warmup);
      Array.iter (fun node -> Metrics.start_window node.metrics) t.nodes;
      profiled t "measured" (fun () ->
          Par_engine.run ?pool t.par ~until:(warmup +. span)))

let quiesce ?(domains = 1) ?(max_events = 200_000_000) t =
  stop_load t;
  with_pool ~domains (fun pool -> Par_engine.run ?pool ~max_events t.par)

let summary t =
  let sum name =
    Array.fold_left
      (fun acc node -> acc + Metrics.count node.metrics name)
      0 t.nodes
  in
  let window = Metrics.window_elapsed t.nodes.(0).metrics in
  let rate count =
    if window <= 0. then 0. else float_of_int count /. window
  in
  let commits = sum Repl_stats.commits in
  let waits = sum Repl_stats.waits in
  let deadlocks = sum Repl_stats.deadlocks in
  let restarts = sum Repl_stats.restarts in
  let duration_total, duration_count =
    Array.fold_left
      (fun (total, count) node ->
        let s = Metrics.sample_stats node.metrics Repl_stats.duration_sample in
        (total +. Dangers_util.Stats.total s, count + Dangers_util.Stats.count s))
      (0., 0) t.nodes
  in
  {
    Repl_stats.scheme = scheme_name;
    window;
    commits;
    waits;
    deadlocks;
    restarts;
    reconciliations = 0;
    commit_rate = rate commits;
    wait_rate = rate waits;
    deadlock_rate = rate deadlocks;
    reconciliation_rate = 0.;
    mean_duration =
      (if duration_count = 0 then 0.
       else duration_total /. float_of_int duration_count);
  }

let diagnostics t =
  let sum name =
    Array.fold_left
      (fun acc node -> acc + Metrics.total_count node.metrics name)
      0 t.nodes
  in
  [
    ("windows", float_of_int (Par_engine.windows t.par));
    ("lookahead_stalls", float_of_int (Par_engine.stalls t.par));
    ("null_messages", float_of_int (Par_engine.null_messages t.par));
    ("channel_posts", float_of_int (Par_engine.posts_total t.par));
    ("deadlock_probes", float_of_int (sum c_probes));
    ("timeout_aborts", float_of_int (sum c_timeout_aborts));
    ("apply_dropped", float_of_int (sum c_apply_dropped));
  ]

let converged t =
  let reference = t.nodes.(0).store in
  Array.for_all (fun node -> Fstore.content_equal reference node.store) t.nodes

let store_fingerprint t idx =
  if idx < 0 || idx >= Array.length t.nodes then
    invalid_arg "Par_eager.store_fingerprint: bad node index";
  let store = t.nodes.(idx).store in
  Fstore.fold store ~init:[] ~f:(fun acc _ value stamp ->
      (value, stamp.Timestamp.counter) :: acc)
  |> List.rev

let lookahead t = t.lookahead
let events_fired t = Par_engine.events_fired t.par
