module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Rng = Dangers_util.Rng
module Stats = Dangers_util.Stats

type update = {
  u_oid : Oid.t;
  u_old_stamp : Timestamp.t;
  u_value : float;
  u_stamp : Timestamp.t;
}

type msg =
  | Replicate of { txn : int; updates : update list }
  | Ack of int
  | Nack of int
  | Abort of { txn : int; updates : update list }

(* Per-transaction origin-side record. *)
type pending = {
  p_origin : int;
  p_updates : update list;
  p_undo : (Oid.t * float * Timestamp.t) list; (* origin's pre-images *)
  p_committed_at : float;
  mutable p_acks : int;
  mutable p_aborted : bool;
}

type t = {
  common : Common.base;
  mutable network : msg Network.t option;
  pending : (int, pending) Hashtbl.t;
  (* Receiver-side pre-images for possible backout, per (node, txn). *)
  applied : (int * int, (Oid.t * float * Timestamp.t) list) Hashtbl.t;
  mutable next_txn : int;
  mutable durable_count : int;
  mutable undone_count : int;
  lag : Stats.t;
  mutable schedules : Connectivity.t list;
  mutable pending_installs : Clock.event_id list;
}

let base t = t.common

let network t = match t.network with Some n -> n | None -> assert false

let revert store undo_list =
  List.iter
    (fun (oid, value, stamp) -> Fstore.write store oid value stamp)
    undo_list

let finish_undo t txn pending =
  if not pending.p_aborted then begin
    pending.p_aborted <- true;
    t.undone_count <- t.undone_count + 1;
    Metrics.incr t.common.Common.metrics "undone";
    revert t.common.Common.stores.(pending.p_origin) pending.p_undo;
    (* Tell everyone who might have applied it to back it out. *)
    Network.broadcast (network t) ~src:pending.p_origin
      (Abort { txn; updates = pending.p_updates });
    Hashtbl.remove t.pending txn
  end

let handle_replicate t ~src ~dst ~txn updates =
  let store = t.common.Common.stores.(dst) in
  let chain_ok =
    List.for_all
      (fun u -> Timestamp.equal (Fstore.stamp store u.u_oid) u.u_old_stamp)
      updates
  in
  if chain_ok then begin
    let pre_images =
      List.map
        (fun u -> (u.u_oid, Fstore.read store u.u_oid, Fstore.stamp store u.u_oid))
        updates
    in
    List.iter
      (fun u ->
        Timestamp.Clock.witness t.common.Common.clocks.(dst) u.u_stamp;
        Fstore.write store u.u_oid u.u_value u.u_stamp)
      updates;
    Hashtbl.replace t.applied (dst, txn) pre_images;
    Network.send (network t) ~src:dst ~dst:src (Ack txn)
  end
  else begin
    Metrics.incr t.common.Common.metrics Repl_stats.reconciliations;
    Network.send (network t) ~src:dst ~dst:src (Nack txn)
  end

let handle_abort t ~dst ~txn updates =
  match Hashtbl.find_opt t.applied (dst, txn) with
  | None -> ()
  | Some pre_images ->
      Hashtbl.remove t.applied (dst, txn);
      let store = t.common.Common.stores.(dst) in
      (* Back out only values this transaction still owns (a newer update
         over the top wins; cascades are out of the model's scope). *)
      List.iter
        (fun (oid, value, stamp) ->
          let still_ours =
            List.exists
              (fun u ->
                Oid.equal u.u_oid oid
                && Timestamp.equal (Fstore.stamp store oid) u.u_stamp)
              updates
          in
          if still_ours then Fstore.write store oid value stamp)
        pre_images

let deliver t ~src ~dst message =
  match message with
  | Replicate { txn; updates } -> handle_replicate t ~src ~dst ~txn updates
  | Ack txn ->
      (match Hashtbl.find_opt t.pending txn with
      | None -> ()
      | Some pending ->
          pending.p_acks <- pending.p_acks + 1;
          if
            (not pending.p_aborted)
            && pending.p_acks = t.common.Common.params.Params.nodes - 1
          then begin
            t.durable_count <- t.durable_count + 1;
            Metrics.incr t.common.Common.metrics "durable";
            Stats.add t.lag
              (Clock.now t.common.Common.clock -. pending.p_committed_at);
            Hashtbl.remove t.pending txn
          end)
  | Nack txn ->
      (match Hashtbl.find_opt t.pending txn with
      | None -> ()
      | Some pending -> finish_undo t txn pending)
  | Abort { txn; updates } -> handle_abort t ~dst ~txn updates

(* Local commit is instantaneous (the locking dynamics live in Lazy_group;
   this scheme isolates the durability question). *)
let submit t ~node ops =
  let store = t.common.Common.stores.(node) in
  let clock = t.common.Common.clocks.(node) in
  let undo = ref [] and updates = ref [] in
  List.iter
    (fun op ->
      if Op.is_update op then begin
        let oid = Op.oid op in
        let current = Fstore.read store oid in
        let value = Op.apply ~read:(Fstore.read store) ~current op in
        undo := (oid, current, Fstore.stamp store oid) :: !undo;
        let u =
          {
            u_oid = oid;
            u_old_stamp = Fstore.stamp store oid;
            u_value = value;
            u_stamp = Timestamp.Clock.tick clock;
          }
        in
        Fstore.write store oid value u.u_stamp;
        updates := u :: !updates
      end)
    ops;
  if !updates <> [] then begin
    let txn = t.next_txn in
    t.next_txn <- t.next_txn + 1;
    Hashtbl.replace t.pending txn
      {
        p_origin = node;
        p_updates = List.rev !updates;
        p_undo = !undo;
        p_committed_at = Clock.now t.common.Common.clock;
        p_acks = 0;
        p_aborted = false;
      };
    Metrics.incr t.common.Common.metrics Repl_stats.commits;
    Network.broadcast (network t) ~src:node
      (Replicate { txn; updates = List.rev !updates })
  end

let create ?obs ?profile ?initial_value ?mobility ?mobile_nodes params ~seed =
  let common = Common.make ?obs ?profile ?initial_value params ~seed in
  let obs = common.Common.obs in
  let t =
    {
      common;
      network = None;
      pending = Hashtbl.create 256;
      applied = Hashtbl.create 256;
      next_txn = 0;
      durable_count = 0;
      undone_count = 0;
      lag = Stats.create ();
      schedules = [];
      pending_installs = [];
    }
  in
  let net =
    Network.create ?obs ~clock:common.Common.clock
      ~rng:(Rng.split common.Common.rng) ~delay:Delay.Zero
      ~nodes:params.Params.nodes
      ~deliver:(fun ~src ~dst message -> deliver t ~src ~dst message) ()
  in
  t.network <- Some net;
  (match mobility with
  | None -> ()
  | Some spec ->
      let targets =
        match mobile_nodes with
        | Some nodes -> nodes
        | None -> List.init params.Params.nodes Fun.id
      in
      let cycle =
        spec.Connectivity.time_between_disconnects
        +. spec.Connectivity.disconnected_time
      in
      let stagger_rng = Rng.split common.Common.rng in
      List.iter
        (fun node ->
          let offset = Rng.float stagger_rng cycle in
          let install =
            Clock.schedule common.Common.clock ~delay:offset (fun () ->
                let schedule =
                  Connectivity.install ~clock:common.Common.clock
                    ~rng:(Rng.split stagger_rng) ~spec
                    ~set_connected:(fun connected ->
                      Network.set_connected net ~node connected)
                in
                t.schedules <- schedule :: t.schedules)
          in
          t.pending_installs <- install :: t.pending_installs)
        targets);
  t

let start t = Common.start_generators t.common ~submit:(fun ~node ops -> submit t ~node ops)
let stop_load t = Common.stop_generators t.common

let durable t = t.durable_count
let tentative_outstanding t = Hashtbl.length t.pending
let undone t = t.undone_count
let durability_lag t = t.lag

let force_sync t =
  List.iter (Clock.cancel t.common.Common.clock) t.pending_installs;
  t.pending_installs <- [];
  List.iter Connectivity.stop t.schedules;
  t.schedules <- [];
  for node = 0 to t.common.Common.params.Params.nodes - 1 do
    Network.set_connected (network t) ~node true
  done;
  Common.drain t.common
