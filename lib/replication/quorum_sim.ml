module Params = Dangers_analytic.Params
module Connectivity = Dangers_net.Connectivity
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Rng = Dangers_util.Rng

type t = {
  common : Common.base;
  quorum : Quorum.t;
  up : bool array;
  version : int array; (* last committed update each replica has applied *)
  mutable latest : int; (* version of the most recent committed update *)
  mutable committed : int;
  mutable unavailable : int;
  mutable catch_ups : int;
  mutable schedules : Connectivity.t list;
}

let base t = t.common

(* The up node holding the newest state; None when everyone is down. *)
let freshest_up t =
  let best = ref None in
  Array.iteri
    (fun node is_up ->
      if is_up then
        match !best with
        | None -> best := Some node
        | Some current -> if t.version.(node) > t.version.(current) then best := Some node)
    t.up;
  !best

let sync_from t ~node ~source =
  if t.version.(source) > t.version.(node) then begin
    Fstore.overwrite_from t.common.Common.stores.(node)
      ~src:t.common.Common.stores.(source);
    t.version.(node) <- t.version.(source);
    t.catch_ups <- t.catch_ups + 1
  end

(* Gifford-style commit. The submitter is a *client* (clients do not fail
   with replicas, so measured availability is the closed-form quantity): an
   update succeeds iff the up-set holds a write quorum. It then reads the
   freshest up replica (version numbers play the role of Gifford's version
   vectors) and installs the update at every up replica, leaving all up
   nodes current. *)
let submit t ~node:_ ops =
  if Quorum.can_write t.quorum ~up:t.up then begin
    match freshest_up t with
    | None -> assert false (* a write quorum implies at least one up node *)
    | Some source ->
        (* Bring any laggard in the write set current first. *)
        Array.iteri
          (fun peer is_up -> if is_up then sync_from t ~node:peer ~source)
          t.up;
        let authoritative = t.common.Common.stores.(source) in
        let stamp = Timestamp.Clock.tick t.common.Common.clocks.(source) in
        t.latest <- t.latest + 1;
        List.iter
          (fun op ->
            if Op.is_update op then begin
              let oid = Op.oid op in
              let current = Fstore.read authoritative oid in
              let value = Op.apply ~read:(Fstore.read authoritative) ~current op in
              Array.iteri
                (fun peer is_up ->
                  if is_up then
                    Fstore.write t.common.Common.stores.(peer) oid value stamp)
                t.up
            end)
          ops;
        Array.iteri
          (fun peer is_up -> if is_up then t.version.(peer) <- t.latest)
          t.up;
        t.committed <- t.committed + 1
  end
  else t.unavailable <- t.unavailable + 1

let set_up t ~node state =
  if t.up.(node) <> state then begin
    t.up.(node) <- state;
    if state then
      match freshest_up t with
      | Some source when source <> node -> sync_from t ~node ~source
      | Some _ | None -> ()
  end

let create ?initial_value ~quorum ~uptime ~mean_downtime params ~seed =
  if not (uptime > 0. && uptime < 1.) then
    invalid_arg "Quorum_sim.create: uptime must be in (0,1)";
  if mean_downtime <= 0. then
    invalid_arg "Quorum_sim.create: mean_downtime must be positive";
  if Quorum.replicas quorum <> params.Params.nodes then
    invalid_arg "Quorum_sim.create: quorum replica count mismatch";
  let common = Common.make ?initial_value params ~seed in
  let t =
    {
      common;
      quorum;
      up = Array.make params.Params.nodes true;
      version = Array.make params.Params.nodes 0;
      latest = 0;
      committed = 0;
      unavailable = 0;
      catch_ups = 0;
      schedules = [];
    }
  in
  let mean_uptime = mean_downtime *. uptime /. (1. -. uptime) in
  let spec =
    {
      Connectivity.time_between_disconnects = mean_uptime;
      disconnected_time = mean_downtime;
      distribution = Connectivity.Exponential;
      start_connected = true;
    }
  in
  for node = 0 to params.Params.nodes - 1 do
    let schedule =
      Connectivity.install ~clock:common.Common.clock
        ~rng:(Rng.split common.Common.rng) ~spec
        ~set_connected:(fun state -> set_up t ~node state)
    in
    t.schedules <- schedule :: t.schedules
  done;
  t

let start t = Common.start_generators t.common ~submit:(fun ~node ops -> submit t ~node ops)

let stop_load t =
  Common.stop_generators t.common;
  List.iter Connectivity.stop t.schedules;
  t.schedules <- []

let committed t = t.committed
let unavailable t = t.unavailable

let availability t =
  let total = t.committed + t.unavailable in
  if total = 0 then 1. else float_of_int t.committed /. float_of_int total

let catch_ups t = t.catch_ups

let up_replicas_consistent t =
  match freshest_up t with
  | None -> true
  | Some source ->
      Array.for_all Fun.id
        (Array.mapi
           (fun node is_up ->
             (not is_up)
             || t.version.(node) < t.version.(source)
             || Fstore.content_equal t.common.Common.stores.(node)
                  t.common.Common.stores.(source))
           t.up)
