module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Executor = Dangers_txn.Executor
module Lock_manager = Dangers_lock.Lock_manager
module Rng = Dangers_util.Rng

type t = {
  common : Common.base;
  executors : Executor.t array; (* one local lock space per node *)
  mutable network : Reconcile.update list Network.t option;
  rule : Reconcile.rule;
  retry_rng : Rng.t;
  expected : float array; (* initial_value + committed increment deltas *)
  mutable schedules : Connectivity.t list;
  mutable pending_installs : Clock.event_id list;
}

let base t = t.common
let rule t = t.rule

let network t =
  match t.network with
  | Some network -> network
  | None -> assert false (* set at the end of [create] *)

let max_stamp a b = if Timestamp.newer a ~than:b then a else b

(* Apply one incoming replica update at [dst], counting §4's outcomes. *)
let apply_update t ~dst (u : Reconcile.update) =
  let common = t.common in
  let metrics = common.Common.metrics in
  let store = common.Common.stores.(dst) in
  Timestamp.Clock.witness common.Common.clocks.(dst) u.Reconcile.stamp;
  let current_stamp = Fstore.stamp store u.Reconcile.oid in
  let chain_intact = Timestamp.equal current_stamp u.Reconcile.old_stamp in
  let is_additive_delta =
    match (t.rule, u.Reconcile.delta) with
    | Reconcile.Additive, Some _ -> true
    | Reconcile.Additive, None -> false
    | ( ( Reconcile.Ignore | Reconcile.Timestamp_priority
        | Reconcile.Site_priority _ | Reconcile.Value_priority _
        | Reconcile.Custom _ ),
        _ ) -> false
  in
  if is_additive_delta then begin
    (* Commutative discipline: always merge the delta, never overwrite with
       the absolute value — any application order yields the same sum. *)
    if not chain_intact then Metrics.incr metrics Repl_stats.reconciliations;
    let delta = match u.Reconcile.delta with Some d -> d | None -> assert false in
    let current = Fstore.read store u.Reconcile.oid in
    Fstore.write store u.Reconcile.oid (current +. delta)
      (max_stamp current_stamp u.Reconcile.stamp);
    Metrics.incr metrics Repl_stats.replica_applied
  end
  else if chain_intact then begin
    Fstore.write store u.Reconcile.oid u.Reconcile.value u.Reconcile.stamp;
    Metrics.incr metrics Repl_stats.replica_applied
  end
  else begin
    Metrics.incr metrics Repl_stats.reconciliations;
    let current_value = Fstore.read store u.Reconcile.oid in
    let stamp' = max_stamp current_stamp u.Reconcile.stamp in
    match Reconcile.resolve t.rule ~current_value ~current_stamp u with
    | Reconcile.Keep_current ->
        Fstore.write store u.Reconcile.oid current_value stamp'
    | Reconcile.Take_incoming ->
        Fstore.write store u.Reconcile.oid u.Reconcile.value stamp'
    | Reconcile.Merge value -> Fstore.write store u.Reconcile.oid value stamp'
    | Reconcile.Drop -> () (* failed reconciliation: the chain stays broken *)
  end

(* A replica-update transaction: the model charges it the same Actions x
   Action_Time work as the root (equation 7's lazy accounting). Local
   deadlocks restart it without user impact. *)
let deliver t ~src:_ ~dst updates =
  let common = t.common in
  let rec attempt () =
    let owner = Txn_id.Gen.next common.Common.txn_gen in
    let steps =
      List.map
        (fun (u : Reconcile.update) ->
          Executor.update_step ~resource:(Oid.to_int u.Reconcile.oid))
        updates
    in
    Executor.run t.executors.(dst) ~owner ~steps
      ~on_commit:(fun () ->
        Metrics.incr common.Common.metrics "replica_txns";
        List.iter (apply_update t ~dst) updates)
      ~on_deadlock:(fun ~cycle:_ ->
        Metrics.incr common.Common.metrics "replica_restarts";
        ignore
          (Clock.schedule common.Common.clock
             ~delay:(Common.backoff_delay common t.retry_rng)
             attempt))
  in
  attempt ()

let root_commit t ~node ops =
  let common = t.common in
  let store = common.Common.stores.(node) in
  let clock = common.Common.clocks.(node) in
  let updates =
    List.filter_map
      (fun op ->
        if not (Op.is_update op) then None
        else begin
          let oid = Op.oid op in
          let current = Fstore.read store oid in
          let value = Op.apply ~read:(Fstore.read store) ~current op in
          let old_stamp = Fstore.stamp store oid in
          let stamp = Timestamp.Clock.tick clock in
          Fstore.write store oid value stamp;
          let delta =
            match op with
            | Op.Increment (_, d) ->
                t.expected.(Oid.to_int oid) <- t.expected.(Oid.to_int oid) +. d;
                Some d
            | Op.Assign _ | Op.Read _ | Op.Assign_from _ -> None
          in
          Some
            {
              Reconcile.oid;
              old_stamp;
              value;
              delta;
              stamp;
              origin = node;
            }
        end)
      ops
  in
  if updates <> [] then Network.broadcast (network t) ~src:node updates

let submit t ~node ops =
  let common = t.common in
  let rec attempt () =
    let owner = Txn_id.Gen.next common.Common.txn_gen in
    let started = Clock.now common.Common.clock in
    let steps =
      List.map
        (fun op ->
          let resource = Oid.to_int (Op.oid op) in
          if Op.is_update op then Executor.update_step ~resource
          else Executor.read_step ~resource)
        ops
    in
    Executor.run t.executors.(node) ~owner ~steps
      ~on_commit:(fun () ->
        root_commit t ~node ops;
        Common.commit_duration common ~started)
      ~on_deadlock:(fun ~cycle:_ ->
        Metrics.incr common.Common.metrics Repl_stats.deadlocks;
        Metrics.incr common.Common.metrics Repl_stats.restarts;
        ignore
          (Clock.schedule common.Common.clock
             ~delay:(Common.backoff_delay common t.retry_rng)
             attempt))
  in
  attempt ()

let create ?obs ?profile ?initial_value ?(rule = Reconcile.Timestamp_priority)
    ?(delay = Delay.Zero) ?faults ?mobility ?mobile_nodes params ~seed =
  let common = Common.make ?obs ?profile ?initial_value params ~seed in
  let obs = common.Common.obs in
  let executors =
    Array.init params.Params.nodes (fun _ ->
        Executor.create
          ~on_wait:(fun () -> Metrics.incr common.Common.metrics Repl_stats.waits)
          ~clock:common.Common.clock
          ~locks:(Lock_manager.create ?obs ())
          ~action_time:params.Params.action_time ())
  in
  let init_value = match initial_value with Some v -> v | None -> 0. in
  let t =
    {
      common;
      executors;
      network = None;
      rule;
      retry_rng = Rng.split common.Common.rng;
      expected = Array.make params.Params.db_size init_value;
      schedules = [];
      pending_installs = [];
    }
  in
  let network =
    Network.create ?obs ?faults ~clock:common.Common.clock
      ~rng:(Rng.split common.Common.rng) ~delay ~nodes:params.Params.nodes
      ~deliver:(fun ~src ~dst updates -> deliver t ~src ~dst updates) ()
  in
  t.network <- Some network;
  (match mobility with
  | None -> ()
  | Some spec ->
      let targets =
        match mobile_nodes with
        | Some nodes -> nodes
        | None -> List.init params.Params.nodes Fun.id
      in
      (* Stagger the phases so the fleet does not disconnect in lockstep. *)
      let cycle = spec.Connectivity.time_between_disconnects
                  +. spec.Connectivity.disconnected_time in
      let stagger_rng = Rng.split common.Common.rng in
      List.iter
        (fun node ->
          let offset = Rng.float stagger_rng cycle in
          let install =
            Clock.schedule common.Common.clock ~delay:offset (fun () ->
                let schedule =
                  Connectivity.install ~clock:common.Common.clock
                    ~rng:(Rng.split stagger_rng) ~spec
                    ~set_connected:(fun connected ->
                      Network.set_connected network ~node connected)
                in
                t.schedules <- schedule :: t.schedules)
          in
          t.pending_installs <- install :: t.pending_installs)
        targets);
  t

let start t = Common.start_generators t.common ~submit:(fun ~node ops -> submit t ~node ops)
let stop_load t = Common.stop_generators t.common

let summary t = Repl_stats.summarize ~scheme:"lazy-group" t.common.Common.metrics

let expected_sum t oid = t.expected.(Oid.to_int oid)

let divergence t =
  let stores = t.common.Common.stores in
  let reference = stores.(0) in
  let count = ref 0 in
  Array.iteri
    (fun node store ->
      if node > 0 then
        Fstore.iter store (fun oid value _ ->
            if not (Float.equal value (Fstore.read reference oid)) then incr count))
    stores;
  !count

let is_connected t ~node = Network.is_connected (network t) ~node
let set_node_connected t ~node state = Network.set_connected (network t) ~node state
let flush_node t ~node = Network.flush_node (network t) ~node

let force_sync t =
  List.iter (Clock.cancel t.common.Common.clock) t.pending_installs;
  t.pending_installs <- [];
  List.iter Connectivity.stop t.schedules;
  t.schedules <- [];
  let n = t.common.Common.params.Params.nodes in
  for node = 0 to n - 1 do
    Network.set_connected (network t) ~node true
  done;
  Common.drain t.common
