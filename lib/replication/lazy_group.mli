(** Lazy group replication (§4): update anywhere, propagate afterwards.

    A root transaction updates its local replicas under local locks and
    commits; one replica-update transaction per peer then carries
    [(oid, old timestamp, new value, new timestamp)] tuples. A receiver
    whose replica timestamp equals the update's old timestamp applies it;
    otherwise the update is {e dangerous} and goes through the configured
    {!Reconcile.rule} (counted as a reconciliation).

    Under the [Additive] rule, updates that carry deltas are always applied
    as pure delta-merges — the commutative-update discipline of §6 — so no
    update's effect is ever lost and all replicas converge to the exact
    sum; the priority rules exhibit the lost-update problem instead.

    With a [mobility] spec each node cycles between connected and
    disconnected (staggered start phases); updates involving a disconnected
    node are parked by the network and exchanged at reconnect, which is the
    equation (15)–(18) regime. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network

type t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?profile:Profile.t ->
  ?initial_value:float ->
  ?rule:Reconcile.rule ->
  ?delay:Delay.t ->
  ?faults:Network.faults ->
  ?mobility:Connectivity.spec ->
  ?mobile_nodes:int list ->
  Params.t ->
  seed:int ->
  t
(** Defaults: timestamp-priority rule, zero message delay (the model's
    assumption), always-connected nodes. When [mobility] is given it
    applies to [mobile_nodes] (default: every node, staggered phases);
    restricting it to a subset models mobile nodes syncing against an
    otherwise-connected network. *)

val base : t -> Common.base
val rule : t -> Reconcile.rule

val submit : t -> node:int -> Op.t list -> unit
(** Inject one root transaction at [node]. *)

val start : t -> unit
val stop_load : t -> unit
val summary : t -> Repl_stats.summary

val expected_sum : t -> Oid.t -> float
(** For increment workloads: [initial_value] plus every committed
    increment's delta — the value every replica must converge to when no
    update is lost. *)

val divergence : t -> int
(** Number of (replica, object) pairs whose value differs from node 0's
    replica — the system-delusion gauge. Zero after a drain under any
    converging rule; grows without bound under [Reconcile.Ignore]. *)

val is_connected : t -> node:int -> bool

val set_node_connected : t -> node:int -> bool -> unit
(** Drive a node's connectivity directly — the fault injector's crash /
    restart lever (a [mobility] spec does the same through a schedule). *)

val flush_node : t -> node:int -> unit
(** Retry the node's partition-parked messages (see {!Network.flush_node}). *)

val force_sync : t -> unit
(** Testing/diagnosis helper: reconnect everyone and drain the engine
    (generators must be stopped), so all parked updates apply. *)
