(** Eager group replication: update anywhere, all replicas updated inside
    the originating transaction (Table 1, top-right). See {!Eager_impl} for
    the execution model. *)

type t = Eager_impl.t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?profile:Dangers_workload.Profile.t ->
  ?initial_value:float ->
  Dangers_analytic.Params.t ->
  seed:int ->
  t

val base : t -> Common.base
val submit : t -> node:int -> Dangers_txn.Op.t list -> unit
val start : t -> unit
val stop_load : t -> unit
val summary : t -> Repl_stats.summary
