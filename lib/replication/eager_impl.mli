(** Shared implementation of the two eager schemes (§3).

    An eager transaction updates every replica of every object it touches
    inside the one originating transaction, serially — the paper's model of
    message-handling cost — so it takes [Actions x Nodes] lock-steps of
    Action_Time each. Locking is global (the simulator plays a perfect
    distributed lock manager / waits-for graph); resources are
    (node, object) pairs. Deadlock victims are resubmitted after a short
    backoff until they commit.

    The two public schemes differ only in the order replicas are visited
    for each action: group starts at the originating node's copy, master at
    the object owner's copy (§3: "updates go to this node first and are then
    applied to the replicas"). *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid

type ownership =
  | Group  (** visit origin's replica first *)
  | Master  (** visit the object master's replica first; owner = oid mod nodes *)

type t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?profile:Profile.t -> ?initial_value:float ->
  ?delay:Dangers_net.Delay.t ->
  ?on_commit:(node:int -> Op.t list -> unit) ->
  ownership -> Params.t -> seed:int -> t
(** [delay] charges each *remote* update step its sampled message delay on
    top of Action_Time — the paper's "if message delays were added ...
    transactions would hold resources much longer" ablation. Default
    [Zero], the model's assumption.

    [on_commit] observes every committed transaction in commit order — the
    serial history witness the fault fuzzer replays to check one-copy
    serializability. *)

val base : t -> Common.base
val ownership : t -> ownership
val master_of : t -> Oid.t -> int
(** Round-robin object ownership (meaningful under [Master]). *)

val submit : t -> node:int -> Op.t list -> unit
(** Inject one user transaction originating at [node]; it will be retried
    through deadlocks until it commits. *)

val start : t -> unit
(** Attach the Poisson generators (one per node). *)

val stop_load : t -> unit

val summary : t -> Repl_stats.summary
