module Params = Dangers_analytic.Params
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Runtime = Dangers_runtime.Runtime
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Profile = Dangers_workload.Profile
module Generator = Dangers_workload.Generator
module Rng = Dangers_util.Rng
module Obs = Dangers_obs.Metrics
module Profiling = Dangers_obs.Profiling

type base = {
  params : Params.t;
  profile : Profile.t;
  initial_value : float;
  runtime : Runtime.t;
  clock : Clock.t;
  metrics : Metrics.t;
  rng : Rng.t;
  stores : Fstore.t array;
  clocks : Timestamp.Clock.t array;
  txn_gen : Txn_id.Gen.t;
  mutable generators : Generator.t list;
  obs : Obs.t option;
  commit_seconds : Obs.histogram option;
  series : Dangers_obs.Timeseries.t option;
}

let make ?obs ?runtime ?profile ?(initial_value = 0.) params ~seed =
  Params.validate params;
  let profile =
    match profile with Some p -> p | None -> Profile.of_params params
  in
  (* An explicit registry wins; otherwise pick up whatever observation
     context the caller's entry point installed (see {!Dangers_sim.Observe}),
     which is how `--trace-out`/`--metrics-out` reach systems built deep
     inside opaque experiment code. *)
  let obs =
    match obs with Some _ -> obs | None -> Dangers_sim.Observe.ambient_obs ()
  in
  (* A series recorder is only meaningful over a registry; ignoring it
     otherwise keeps unobserved runs entirely schedule-free. *)
  let series =
    match obs with None -> None | Some _ -> Dangers_sim.Observe.ambient_series ()
  in
  let runtime =
    match runtime with Some r -> r | None -> Runtime.sim ()
  in
  let clock = runtime.Runtime.clock in
  (* Attach the ambient tracer unless the runtime came with one. *)
  (match (Dangers_sim.Observe.ambient_tracer (), Clock.tracer clock) with
  | Some tracer, None -> Clock.set_tracer clock (Some tracer)
  | (None | Some _), _ -> ());
  let metrics = Metrics.create ~now:(fun () -> Clock.now clock) () in
  (match obs with
  | None -> ()
  | Some registry ->
      Obs.register_source registry (fun () ->
          [
            Obs.Count ("engine.events_fired_total", Clock.events_fired clock);
            Obs.Gauge
              ( "engine.queue_high_water",
                float_of_int (Clock.queue_high_water clock) );
          ]);
      (* The scheme's own simulated-time counters (commits, restarts,
         replica_applied, ...), since-creation totals rather than the
         measured window the paper-facing summary reports. *)
      Obs.register_source registry (fun () ->
          List.map
            (fun name ->
              Obs.Count ("scheme." ^ name ^ "_total", Metrics.total_count metrics name))
            (Metrics.counter_names metrics)));
  {
    params;
    profile;
    initial_value;
    runtime;
    clock;
    metrics;
    rng = Rng.create ~seed;
    stores =
      Array.init params.Params.nodes (fun _ ->
          Fstore.create ~db_size:params.Params.db_size ~init:(fun _ -> initial_value));
    clocks =
      Array.init params.Params.nodes (fun node -> Timestamp.Clock.create ~node);
    txn_gen = Txn_id.Gen.create ();
    generators = [];
    obs;
    commit_seconds =
      Option.map (fun registry -> Obs.histogram registry "scheme.commit_seconds") obs;
    series;
  }

let start_generators base ~submit =
  if base.generators <> [] then
    invalid_arg "Common.start_generators: generators already running";
  base.generators <-
    List.init base.params.Params.nodes (fun node ->
        let rng = Rng.split base.rng in
        Generator.start ~clock:base.clock ~rng ~tps:base.params.Params.tps
          ~profile:base.profile ~db_size:base.params.Params.db_size
          ~submit:(fun ops -> submit ~node ops))

let stop_generators base =
  List.iter Generator.stop base.generators;
  base.generators <- []

let backoff_delay base rng =
  let duration =
    float_of_int base.params.Params.actions *. base.params.Params.action_time
  in
  (0.5 +. Rng.float rng 1.0) *. duration

let commit_duration base ~started =
  Metrics.incr base.metrics Repl_stats.commits;
  let duration = Clock.now base.clock -. started in
  Metrics.sample base.metrics Repl_stats.duration_sample duration;
  match base.commit_seconds with
  | None -> ()
  | Some h -> Obs.observe h duration

(* A drain that never ends is a bug (a generator or connectivity schedule
   left running); surface it instead of hanging. *)
let drain base = Clock.run ~max_events:200_000_000 base.clock

let profiled base phase f =
  match base.obs with
  | None -> f ()
  | Some registry ->
      let (), p = Profiling.timed phase f in
      Obs.record_phase registry p

(* Sample the attached series on the simulated clock across the measured
   window. The loop never reschedules past [stop_at], so [drain] still
   terminates, and each tick only reads the registry — the instrumented
   system's own schedule is untouched. *)
let start_series_sampling base series ~stop_at =
  let interval = Dangers_obs.Timeseries.interval series in
  let rec tick () =
    let now = Clock.now base.clock in
    ignore (Dangers_obs.Timeseries.sample series ~now);
    if now +. interval <= stop_at +. 1e-9 then
      Clock.schedule_unit base.clock ~delay:interval tick
  in
  Clock.schedule_unit base.clock ~delay:interval tick

let measure base ~warmup ~span =
  profiled base "warmup" (fun () -> Clock.run_for base.clock warmup);
  Metrics.start_window base.metrics;
  (match base.series with
  | None -> ()
  | Some series ->
      Dangers_obs.Timeseries.rebase series ~now:(Clock.now base.clock);
      start_series_sampling base series
        ~stop_at:(Clock.now base.clock +. span));
  profiled base "measured" (fun () -> Clock.run_for base.clock span)
