(** Eager master replication: each object is owned by one node; updates hit
    the owner's copy first, then the replicas, all inside the originating
    transaction (Table 1, bottom-right). See {!Eager_impl}. *)

type t = Eager_impl.t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?profile:Dangers_workload.Profile.t ->
  ?initial_value:float ->
  Dangers_analytic.Params.t ->
  seed:int ->
  t

val base : t -> Common.base
val master_of : t -> Dangers_storage.Oid.t -> int
val submit : t -> node:int -> Dangers_txn.Op.t list -> unit
val start : t -> unit
val stop_load : t -> unit
val summary : t -> Repl_stats.summary
