(** Lazy master replication (§5).

    Each object has a master node (round-robin: [oid mod nodes]). A user
    transaction runs as one atomic transaction against the master copies of
    the objects it updates (lock + Action_Time per action in the shared
    master lock space — which is why contention scales with [Nodes x TPS],
    equation 19). After commit, the masters fan timestamped slave updates
    out to the other replicas; a slave ignores updates older than its
    replica's timestamp, so all replicas converge to the masters' state.
    Slave application is the model's background housekeeping: it is applied
    on delivery without locks and never aborts a user transaction.

    There are no reconciliations; conflicts surface as waits and
    deadlocks, and deadlock victims are resubmitted until they commit.
    Lazy-master requires connectivity to the masters — the scheme has no
    mobility knob, which is §5's point about mobile applications. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Delay = Dangers_net.Delay

type master_assignment =
  | Round_robin  (** owner = oid mod nodes — the default spread *)
  | Datacycle of int
      (** one node masters every object — the Datacycle architecture
          (Herman et al.) §7 compares the two-tier scheme against *)

type t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?profile:Profile.t ->
  ?initial_value:float ->
  ?delay:Delay.t ->
  ?master_assignment:master_assignment ->
  Params.t ->
  seed:int ->
  t
(** @raise Invalid_argument when a [Datacycle] master is out of range. *)

val base : t -> Common.base
val master_of : t -> Oid.t -> int
val submit : t -> node:int -> Op.t list -> unit
val start : t -> unit
val stop_load : t -> unit
val summary : t -> Repl_stats.summary
