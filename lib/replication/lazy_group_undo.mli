(** Undo-oriented lazy-group replication — the alternative §7 examines and
    rejects.

    "One approach is to undo all the work of any transaction that needs
    reconciliation — backing out all the updates of the transaction. This
    makes transactions atomic, consistent, and isolated, but not durable —
    or at least not durable until the updates are propagated to each node.
    In such a lazy group system, every transaction is tentative until all
    its replica updates have been propagated. If some mobile replica node
    is disconnected for a very long time, all transactions will be
    tentative until the missing node reconnects."

    The model: a root transaction commits locally and stays {e tentative}
    until every peer acknowledges its replica updates. A peer whose
    timestamp chain matches applies and ACKs; a conflicting peer NACKs,
    and the origin then undoes the transaction everywhere (value-level
    backout; cascades are not chased — the paper's point stands without
    them). Durability lag — commit to last ACK — is the measurable cost:
    with a disconnected node it is the rest of the disconnection, which is
    what makes the scheme untenable for mobile use. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Connectivity = Dangers_net.Connectivity

type t

val create :
  ?obs:Dangers_obs.Metrics.t ->
  ?profile:Profile.t ->
  ?initial_value:float ->
  ?mobility:Connectivity.spec ->
  ?mobile_nodes:int list ->
  Params.t ->
  seed:int ->
  t

val base : t -> Common.base
val submit : t -> node:int -> Op.t list -> unit
val start : t -> unit
val stop_load : t -> unit

val durable : t -> int
(** Transactions fully acknowledged. *)

val tentative_outstanding : t -> int
(** Transactions still waiting for acknowledgements. *)

val undone : t -> int
(** Transactions backed out after a conflict NACK. *)

val durability_lag : t -> Dangers_util.Stats.t
(** Seconds from local commit to the last acknowledgement, per durable
    transaction. *)

val force_sync : t -> unit
(** Reconnect everyone and drain (generators must be stopped). *)
