(** Shared scaffolding for the replication-scheme simulators: one engine,
    one metrics registry, a replica store and Lamport clock per node,
    per-node RNG splits, and the measured-window drill. *)

module Params = Dangers_analytic.Params
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Runtime = Dangers_runtime.Runtime
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Profile = Dangers_workload.Profile
module Generator = Dangers_workload.Generator
module Rng = Dangers_util.Rng

type base = {
  params : Params.t;
  profile : Profile.t;
  initial_value : float;
  runtime : Runtime.t;  (** the execution runtime this system was built on *)
  clock : Clock.t;  (** = [runtime.clock]; every event the scheme schedules *)
  metrics : Metrics.t;
  rng : Rng.t;
  stores : Fstore.t array;  (** one replica of the whole database per node *)
  clocks : Timestamp.Clock.t array;
  txn_gen : Txn_id.Gen.t;
  mutable generators : Generator.t list;
  obs : Dangers_obs.Metrics.t option;
      (** observability registry shared by every layer of this system;
          [None] runs fully uninstrumented *)
  commit_seconds : Dangers_obs.Metrics.histogram option;
      (** submit-to-commit latency histogram ([scheme.commit_seconds]),
          present iff [obs] is *)
  series : Dangers_obs.Timeseries.t option;
      (** ambient time-series recorder; {!measure} samples it on the
          simulated clock across the measured window *)
}

val make :
  ?obs:Dangers_obs.Metrics.t ->
  ?runtime:Runtime.t ->
  ?profile:Profile.t -> ?initial_value:float -> Params.t -> seed:int -> base
(** Validates the parameters. The profile defaults to the model's
    ([Profile.of_params]); every object starts at [initial_value]
    (default 0). The runtime defaults to a fresh simulator
    ([Runtime.sim ()]); pass [Runtime.live_virtual]/[live_wall] to run
    the same scheme on the live timer wheel. When [obs] is given, pull
    sources for the clock ([engine.events_fired_total],
    [engine.queue_high_water]) and the scheme's simulated-time counters
    ([scheme.*_total], since-creation totals) are registered, and
    {!measure} records per-phase wall-clock and allocation profiles. *)

val start_generators : base -> submit:(node:int -> Dangers_txn.Op.t list -> unit) -> unit
(** One Poisson generator per node at [params.tps], each on its own RNG
    split. @raise Invalid_argument if generators are already running. *)

val stop_generators : base -> unit

val backoff_delay : base -> Rng.t -> float
(** Restart delay for a deadlock victim: uniform in [0.5, 1.5] x the
    scheme-free transaction duration (Actions x Action_Time) — long enough
    to let the conflicting transaction finish, short enough not to distort
    the load. *)

val commit_duration : base -> started:float -> unit
(** Record a committed transaction's duration sample and bump the commit
    counter. *)

val drain : base -> unit
(** Run the clock until no events remain (generators must be stopped). *)

val measure : base -> warmup:float -> span:float -> unit
(** Run [warmup] seconds, reset the metrics window, run [span] more. When
    a {!base.series} recorder is attached, it is rebased after warmup and
    sampled every [Timeseries.interval] simulated seconds across the
    measured window (never rescheduling past its end, so {!drain} still
    terminates). Detached runs schedule nothing and stay byte-identical
    to pre-telemetry behaviour. *)
