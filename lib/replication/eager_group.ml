type t = Eager_impl.t

let create ?obs ?profile ?initial_value params ~seed =
  Eager_impl.create ?obs ?profile ?initial_value Eager_impl.Group params ~seed

let base = Eager_impl.base
let submit = Eager_impl.submit
let start = Eager_impl.start
let stop_load = Eager_impl.stop_load
let summary = Eager_impl.summary
