module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Executor = Dangers_txn.Executor
module Lock_manager = Dangers_lock.Lock_manager
module Rng = Dangers_util.Rng

type ownership = Group | Master

type t = {
  common : Common.base;
  executor : Executor.t;
  retry_rng : Rng.t;
  delay_rng : Rng.t;
  delay : Dangers_net.Delay.t;
  ownership : ownership;
  on_commit : (node:int -> Op.t list -> unit) option;
  (* visit_orders.(first) = first :: the other replicas in node order;
     precomputed because the hot path builds steps from these lists for
     every update of every attempt. *)
  visit_orders : int list array;
}

let scheme_name = function Group -> "eager-group" | Master -> "eager-master"

let create ?obs ?profile ?initial_value ?(delay = Dangers_net.Delay.Zero)
    ?on_commit ownership params ~seed =
  Dangers_net.Delay.validate delay;
  let common = Common.make ?obs ?profile ?initial_value params ~seed in
  let obs = common.Common.obs in
  let locks = Lock_manager.create ?obs () in
  let executor =
    Executor.create
      ~on_wait:(fun () -> Metrics.incr common.Common.metrics Repl_stats.waits)
      ~clock:common.Common.clock ~locks
      ~action_time:params.Params.action_time ()
  in
  let nodes = params.Params.nodes in
  {
    common;
    executor;
    retry_rng = Rng.split common.Common.rng;
    delay_rng = Rng.split common.Common.rng;
    delay;
    ownership;
    on_commit;
    visit_orders =
      Array.init nodes (fun first ->
          first :: List.filter (fun m -> m <> first) (List.init nodes Fun.id));
  }

let base t = t.common
let ownership t = t.ownership

let master_of t oid = Oid.to_int oid mod t.common.Common.params.Params.nodes

(* The replicas an action visits, first-lock first. *)
let visit_order t ~origin oid =
  let first = match t.ownership with Group -> origin | Master -> master_of t oid in
  t.visit_orders.(first)

let resource t ~node oid =
  (node * t.common.Common.params.Params.db_size) + Oid.to_int oid

let apply_everywhere t ~origin ops =
  let common = t.common in
  List.iter
    (fun op ->
      if Op.is_update op then begin
      let oid = Op.oid op in
      let origin_store = common.Common.stores.(origin) in
      let current = Fstore.read origin_store oid in
      let value = Op.apply ~read:(Fstore.read origin_store) ~current op in
      let stamp = Timestamp.Clock.tick common.Common.clocks.(origin) in
      Array.iter (fun store -> Fstore.write store oid value stamp)
        common.Common.stores
      end)
    ops

let submit t ~node ops =
  let common = t.common in
  let metrics = common.Common.metrics in
  let build_steps () =
    List.concat_map
      (fun op ->
        let oid = Op.oid op in
        if Op.is_update op then
          List.map
            (fun m ->
              let step =
                Executor.update_step ~resource:(resource t ~node:m oid)
              in
              if m = node then step
              else begin
                (* A remote update costs Action_Time plus the message
                   delay the model ignores; charged here for the
                   delay ablation. *)
                let extra = Dangers_net.Delay.sample t.delay t.delay_rng in
                if Float.equal extra 0. then step
                else
                  {
                    step with
                    Executor.cost =
                      Some
                        (t.common.Common.params.Params.action_time +. extra);
                  }
              end)
            (visit_order t ~origin:node oid)
        else
          (* Reads touch only the local replica: read-only work adds no
             remote load (Figure 3). *)
          [ Executor.read_step ~resource:(resource t ~node oid) ])
      ops
  in
  (* Sampling a [Zero] or [Constant] delay draws nothing from the RNG and
     always yields the same steps, so retries can reuse the first attempt's
     list instead of rebuilding it — the dominant allocation of a contended
     run, where one submission can restart thousands of times. Randomized
     delay models must keep resampling per attempt. *)
  let fixed_steps =
    match t.delay with
    | Dangers_net.Delay.Zero | Dangers_net.Delay.Constant _ ->
        Some (build_steps ())
    | Dangers_net.Delay.Uniform _ | Dangers_net.Delay.Exponential _ -> None
  in
  let rec attempt () =
    let owner = Txn_id.Gen.next common.Common.txn_gen in
    let started = Clock.now common.Common.clock in
    let steps =
      match fixed_steps with Some steps -> steps | None -> build_steps ()
    in
    Executor.run t.executor ~owner ~steps
      ~on_commit:(fun () ->
        apply_everywhere t ~origin:node ops;
        Common.commit_duration common ~started;
        match t.on_commit with Some f -> f ~node ops | None -> ())
      ~on_deadlock:(fun ~cycle:_ ->
        Metrics.incr metrics Repl_stats.deadlocks;
        Metrics.incr metrics Repl_stats.restarts;
        ignore
          (Clock.schedule common.Common.clock
             ~delay:(Common.backoff_delay common t.retry_rng)
             attempt))
  in
  attempt ()

let start t = Common.start_generators t.common ~submit:(fun ~node ops -> submit t ~node ops)
let stop_load t = Common.stop_generators t.common

let summary t =
  Repl_stats.summarize ~scheme:(scheme_name t.ownership) t.common.Common.metrics
