(** Partitioned eager update-anywhere replication on the parallel engine.

    The legacy eager simulator ({!Eager_impl}) runs every node's locks,
    transactions and RNG streams through one shared executor on one heap —
    faithful to the model, but structurally serial: no partitioning of
    that global lock space can execute in parallel and stay byte-identical.
    This module is the same §3 scheme re-derived as a distributed system,
    one {!Dangers_sim.Par_engine} partition per node:

    - every per-node structure (store, Lamport clock, lock table, metrics,
      RNG streams, transaction table) is confined to its partition;
    - a transaction X-locks the object at {e every} replica — lock
      requests, grants, commit-applies and aborts are timestamped messages
      whose transmission delay is at least the network's minimum delay,
      which is exactly the engine's lookahead;
    - replicas release a transaction's locks when its commit-apply
      arrives, so a later conflicting transaction cannot read a replica
      that has not yet seen the earlier commit — update-everywhere
      serialization without any shared lock manager;
    - distributed deadlocks are found by Chandy–Misra–Haas-style
      edge-chasing probes (hop-bounded, stale-probe-tolerant), victims
      restart with backoff exactly like the legacy scheme, and a
      deterministic lock-wait deadline backstops any cycle a probe in
      flight misses.

    Fixed-seed runs are byte-identical at any domain count: partitions are
    per-node regardless of how many domains execute them, so the event
    sequences — and hence metrics, stores, clocks and counters — do not
    depend on [domains] at all. [domains] only buys wall-clock speed on
    multicore hosts. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Repl_stats = Repl_stats

type t

val create :
  ?profile:Profile.t ->
  ?initial_value:float ->
  ?delay:Delay.t ->
  ?faults:Network.faults ->
  Params.t ->
  seed:int ->
  t
(** [delay] defaults to [Constant (max params.message_delay 0.05)]; its
    {!Delay.min_bound} is the lookahead and must be positive ([Zero] and
    [Exponential] models admit no lookahead — use the legacy scheme for
    those).

    [faults] perturbs commit-apply messages only (locks and probes are
    the control plane and stay reliable, so a fault plan degrades
    convergence, never liveness); a dropped apply still releases the
    replica's locks. The hooks are consulted from partition windows, which
    may run concurrently: they must be pure functions of [(src, dst)] —
    a plan closed over shared mutable state (e.g. a probabilistic
    injector's RNG) would race and break determinism.

    @raise Invalid_argument on invalid parameters or a zero lookahead. *)

val start : t -> unit
(** Start the per-node Poisson open-transaction generators. *)

val stop_load : t -> unit

val measure : ?domains:int -> t -> warmup:float -> span:float -> unit
(** Advance through [warmup] simulated seconds, open the metrics windows,
    and advance [span] more — on a freshly-spawned pool of [domains]
    (default 1) worker domains. Byte-identical results at any [domains]. *)

val quiesce : ?domains:int -> ?max_events:int -> t -> unit
(** Stop the load and drain every in-flight transaction, message and
    probe. @raise Dangers_sim.Engine.Runaway after [max_events] (default
    200M) events, like {!Common.drain}. *)

val summary : t -> Repl_stats.summary
(** Per-node counters folded in node order over the measured window;
    [scheme] is ["par-eager-group"]. *)

val diagnostics : t -> (string * float) list
(** Synchronization facts, all invariant in the domain count:
    [windows], [lookahead_stalls], [null_messages], [channel_posts],
    [deadlock_probes], [timeout_aborts], [apply_dropped]. *)

val converged : t -> bool
(** Every replica byte-equal to node 0's — meaningful after {!quiesce}
    with no fault plan (drops leave measurable divergence). *)

val store_fingerprint : t -> int -> (float * int) list
(** [(value, timestamp counter)] per object at the given node, for
    equivalence tests. @raise Invalid_argument on a bad node index. *)

val lookahead : t -> float
val events_fired : t -> int
