module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Txn_id = Dangers_txn.Txn_id
module Executor = Dangers_txn.Executor
module Lock_manager = Dangers_lock.Lock_manager
module Rng = Dangers_util.Rng

type master_assignment = Round_robin | Datacycle of int

type slave_update = { oid : Oid.t; value : float; stamp : Timestamp.t }

type t = {
  common : Common.base;
  master_executor : Executor.t; (* the shared master lock space *)
  mutable network : slave_update list Network.t option;
  retry_rng : Rng.t;
  assignment : master_assignment;
}

let base t = t.common

let master_of t oid =
  match t.assignment with
  | Round_robin -> Oid.to_int oid mod t.common.Common.params.Params.nodes
  | Datacycle node -> node

let network t =
  match t.network with Some network -> network | None -> assert false

(* One slave transaction per remote node (Figure 1): background
   housekeeping (§5) applied on delivery, stale updates discarded by the
   Thomas write rule. *)
let deliver t ~src:_ ~dst (updates : slave_update list) =
  let common = t.common in
  Metrics.incr common.Common.metrics "replica_txns";
  List.iter
    (fun u ->
      Timestamp.Clock.witness common.Common.clocks.(dst) u.stamp;
      match
        Fstore.apply_if_newer common.Common.stores.(dst) u.oid u.value u.stamp
      with
      | `Applied -> Metrics.incr common.Common.metrics Repl_stats.replica_applied
      | `Stale -> Metrics.incr common.Common.metrics Repl_stats.stale_discards)
    updates

let master_commit t ~origin ops =
  let common = t.common in
  let updates =
    List.filter_map
      (fun op ->
        if not (Op.is_update op) then None
        else begin
          let oid = Op.oid op in
          let m = master_of t oid in
          let store = common.Common.stores.(m) in
          let current = Fstore.read store oid in
          let read oid' = Fstore.read common.Common.stores.(master_of t oid') oid' in
          let value = Op.apply ~read ~current op in
          let stamp = Timestamp.Clock.tick common.Common.clocks.(m) in
          Fstore.write store oid value stamp;
          Some (m, { oid; value; stamp })
        end)
      ops
  in
  (* The originating node broadcasts one slave transaction per other node
     carrying the updates that node does not master; its own replica it
     refreshes directly (it just read the master copies). *)
  for dst = 0 to common.Common.params.Params.nodes - 1 do
    let relevant =
      List.filter_map (fun (m, u) -> if m <> dst then Some u else None) updates
    in
    if relevant <> [] then begin
      if dst = origin then deliver t ~src:origin ~dst relevant
      else Network.send (network t) ~src:origin ~dst relevant
    end
  done

let submit t ~node ops =
  let common = t.common in
  let rec attempt () =
    let owner = Txn_id.Gen.next common.Common.txn_gen in
    let started = Clock.now common.Common.clock in
    let steps =
      List.map
        (fun op ->
          let resource = Oid.to_int (Op.oid op) in
          if Op.is_update op then Executor.update_step ~resource
          else Executor.read_step ~resource (* read-lock RPC to the master *))
        ops
    in
    Executor.run t.master_executor ~owner ~steps
      ~on_commit:(fun () ->
        master_commit t ~origin:node ops;
        Common.commit_duration common ~started)
      ~on_deadlock:(fun ~cycle:_ ->
        Metrics.incr common.Common.metrics Repl_stats.deadlocks;
        Metrics.incr common.Common.metrics Repl_stats.restarts;
        ignore
          (Clock.schedule common.Common.clock
             ~delay:(Common.backoff_delay common t.retry_rng)
             attempt))
  in
  attempt ()

let create ?obs ?profile ?initial_value ?(delay = Delay.Zero)
    ?(master_assignment = Round_robin) params ~seed =
  (match master_assignment with
  | Datacycle node when node < 0 || node >= params.Params.nodes ->
      invalid_arg "Lazy_master.create: Datacycle master out of range"
  | Datacycle _ | Round_robin -> ());
  let common = Common.make ?obs ?profile ?initial_value params ~seed in
  let obs = common.Common.obs in
  let master_executor =
    Executor.create
      ~on_wait:(fun () -> Metrics.incr common.Common.metrics Repl_stats.waits)
      ~clock:common.Common.clock
      ~locks:(Lock_manager.create ?obs ())
      ~action_time:params.Params.action_time ()
  in
  let t =
    {
      common;
      master_executor;
      network = None;
      retry_rng = Rng.split common.Common.rng;
      assignment = master_assignment;
    }
  in
  t.network <-
    Some
      (Network.create ?obs ~clock:common.Common.clock
         ~rng:(Rng.split common.Common.rng) ~delay ~nodes:params.Params.nodes
         ~deliver:(fun ~src ~dst u -> deliver t ~src ~dst u) ());
  t

let start t = Common.start_generators t.common ~submit:(fun ~node ops -> submit t ~node ops)
let stop_load t = Common.stop_generators t.common

let summary t = Repl_stats.summarize ~scheme:"lazy-master" t.common.Common.metrics
