(** Lock manager: lock table + deadlock detection + statistics.

    Policy follows the paper's model: detection runs the moment a request
    blocks, and the victim is the *requester* — equation (3) derives the
    deadlock probability per request, so a deadlock costs exactly the
    requesting transaction. The victim's queued request is withdrawn before
    [Deadlock] is returned; the caller must then abort the transaction
    ([release_all]) and, per §7, resubmit it. *)

type t

val create : ?obs:Dangers_obs.Metrics.t -> ?debug_check:bool -> unit -> t
(** Deadlock detection walks the lock table's incrementally-maintained
    blocker lists with a reusable visited-stamp array. With
    [~debug_check:true] (or the [DANGERS_LOCK_DEBUG] environment variable
    set) every blocked request is additionally cross-checked against the
    original from-scratch DFS ({!Waits_for.find_cycle} over freshly
    recomputed blockers); divergence raises [Failure]. Owner ids must be
    non-negative.

    When [obs] is given, the manager registers a pull source exposing
    [lock.waits_total], [lock.deadlocks_total] and
    [lock.deadlock_dfs_visits_total] at snapshot time; the request path is
    unchanged either way. *)

type outcome =
  | Granted
  | Waiting
      (** Blocked with no deadlock; [on_grant] will fire when the lock is
          granted. Counted as a wait. *)
  | Deadlock of int list
      (** This request closed a waits-for cycle (the list, starting with the
          requester). The request has been withdrawn; [on_grant] will never
          fire. Counted as a wait and a deadlock. *)

val request :
  t -> owner:int -> resource:int -> mode:Mode.t -> on_grant:(unit -> unit) ->
  outcome

val release_all : t -> owner:int -> unit
(** Commit or abort: drop all locks and any queued request, waking
    unblocked waiters. *)

val table : t -> Lock_table.t
(** The underlying table, for invariant checks in tests. *)

val waits : t -> int
(** Requests that blocked (including those that then deadlocked). *)

val deadlocks : t -> int

val dfs_visits : t -> int
(** Nodes expanded by deadlock detection since creation (or the last
    {!reset_counters}) — the cost driver equation (3) prices. *)

val reset_counters : t -> unit
