type t = {
  locks : Lock_table.t;
  mutable wait_count : int;
  mutable deadlock_count : int;
  mutable dfs_visit_count : int;
  debug_check : bool;
  (* DFS scratch state, reused across detections: [stamp.(owner) = gen]
     marks [owner] visited in the current traversal. Owner ids are small
     dense ints (transaction ids), so an array beats a fresh hash table per
     blocked request. *)
  mutable stamp : int array;
  mutable gen : int;
}

type outcome = Granted | Waiting | Deadlock of int list

(* DANGERS_LOCK_DEBUG=1 turns the reference cross-check on everywhere, e.g.
   for a CI run of the full suite against the incremental detector. *)
let env_debug =
  match Sys.getenv_opt "DANGERS_LOCK_DEBUG" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let create ?obs ?(debug_check = env_debug) () =
  let t =
    {
      locks = Lock_table.create ();
      wait_count = 0;
      deadlock_count = 0;
      dfs_visit_count = 0;
      debug_check;
      stamp = Array.make 64 0;
      gen = 0;
    }
  in
  (match obs with
  | None -> ()
  | Some registry ->
      Dangers_obs.Metrics.register_source registry (fun () ->
          [
            Dangers_obs.Metrics.Count ("lock.waits_total", t.wait_count);
            Dangers_obs.Metrics.Count ("lock.deadlocks_total", t.deadlock_count);
            Dangers_obs.Metrics.Count
              ("lock.deadlock_dfs_visits_total", t.dfs_visit_count);
          ]));
  t

let visited t owner =
  if owner >= Array.length t.stamp then begin
    let size = max (owner + 1) (2 * Array.length t.stamp) in
    let stamp = Array.make size 0 in
    Array.blit t.stamp 0 stamp 0 (Array.length t.stamp);
    t.stamp <- stamp;
    false
  end
  else t.stamp.(owner) = t.gen

(* Same traversal as [Waits_for.find_cycle] — successors explored in order,
   visited nodes pruned, the start node itself never marked — but over the
   lock table's memoized blocker lists and with the reusable stamp array, so
   a blocked request costs no per-probe allocation beyond the path list. *)
let find_cycle_incremental t ~start =
  t.gen <- t.gen + 1;
  let rec dfs node path =
    t.dfs_visit_count <- t.dfs_visit_count + 1;
    let rec explore = function
      | [] -> None
      | successor :: rest ->
          if successor = start then Some (List.rev path)
          else if visited t successor then explore rest
          else begin
            t.stamp.(successor) <- t.gen;
            match dfs successor (successor :: path) with
            | Some _ as found -> found
            | None -> explore rest
          end
    in
    explore (Lock_table.blockers t.locks ~owner:node)
  in
  dfs start [ start ]

let cross_check t ~start result =
  let successors owner = Lock_table.blockers_fresh t.locks ~owner in
  let reference = Waits_for.find_cycle ~successors ~start in
  if result <> reference then
    failwith
      (Printf.sprintf
         "Lock_manager: incremental waits-for diverged from reference DFS \
          for owner %d (incremental: %s, reference: %s)"
         start
         (match result with
         | None -> "no cycle"
         | Some c -> String.concat "->" (List.map string_of_int c))
         (match reference with
         | None -> "no cycle"
         | Some c -> String.concat "->" (List.map string_of_int c)))

let request t ~owner ~resource ~mode ~on_grant =
  match Lock_table.acquire t.locks ~owner ~resource ~mode ~on_grant with
  | Lock_table.Granted -> Granted
  | Lock_table.Queued -> (
      t.wait_count <- t.wait_count + 1;
      let result = find_cycle_incremental t ~start:owner in
      if t.debug_check then cross_check t ~start:owner result;
      match result with
      | None -> Waiting
      | Some cycle ->
          t.deadlock_count <- t.deadlock_count + 1;
          Lock_table.cancel_wait t.locks ~owner;
          Deadlock cycle)

let release_all t ~owner = Lock_table.release_all t.locks ~owner
let table t = t.locks
let waits t = t.wait_count
let deadlocks t = t.deadlock_count
let dfs_visits t = t.dfs_visit_count

let reset_counters t =
  t.wait_count <- 0;
  t.deadlock_count <- 0;
  t.dfs_visit_count <- 0
