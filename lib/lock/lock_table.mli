(** Lock table: granted sets and FIFO wait queues per resource.

    Resources and owners are integers; the transaction layer encodes
    (node, object) pairs into resource ids. An owner (a transaction) waits
    on at most one resource at a time — transactions execute their actions
    sequentially — which the table enforces.

    Grant discipline is strict FIFO: a release grants waiters from the front
    of the queue until the first one that conflicts, which prevents
    starvation and makes wait order deterministic. Lock upgrades (held S,
    requested X) jump to the front of the queue. *)

type t

val create : unit -> t

type outcome =
  | Granted
  | Queued
      (** The request waits; the caller learns who blocks it via
          [blockers]. *)

val acquire :
  t -> owner:int -> resource:int -> mode:Mode.t -> on_grant:(unit -> unit) ->
  outcome
(** Re-entrant: a request covered by a lock already held is granted without
    a new entry. [on_grant] fires (possibly later, from [release_all] or
    [cancel_wait]) only for [Queued] requests.
    @raise Invalid_argument if [owner] is already waiting on some
    resource. *)

val blockers : t -> owner:int -> int list
(** Owners that must release before this owner's queued request can be
    granted: conflicting holders plus conflicting waiters queued ahead.
    Empty when the owner is not waiting. Deduplicated, unspecified order.

    The result is memoized per waiting owner and invalidated by the
    mutations that can change it (grants, releases, cancellations,
    front-of-queue upgrades), so repeated waits-for probes between state
    changes are O(1). *)

val blockers_fresh : t -> owner:int -> int list
(** [blockers] recomputed from the lock state, bypassing (and not touching)
    the memoized copy. For debug cross-checks and tests: the two must always
    agree. *)

val is_waiting : t -> owner:int -> bool
val waiting_resource : t -> owner:int -> int option

val cancel_wait : t -> owner:int -> unit
(** Drop the owner's queued request (it will never be granted); grants any
    waiters the departure unblocks. No-op when not waiting. *)

val release_all : t -> owner:int -> unit
(** Release every lock the owner holds, granting unblocked waiters (their
    [on_grant] callbacks run before this returns, oldest first).
    Also cancels the owner's queued request if any. *)

val holds : t -> owner:int -> resource:int -> Mode.t option
val held_resources : t -> owner:int -> int list
val grants_outstanding : t -> int
(** Total (owner, resource) grants — an invariant-check hook for tests. *)
