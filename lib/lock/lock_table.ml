(* Array-backed lock table.

   This is the hottest structure in every simulator leg: the paper predicts
   waits and deadlocks growing as the cube of the node count, so a nodes=10
   eager run performs millions of acquire / blockers / release operations.
   The representation is chosen for that load:

   - Granted entries live in a pair of parallel compact arrays (owner ids
     and modes), unordered; removal swaps the last entry in. All the
     consumers ([blockers], [grantable], upgrades) are order-insensitive.
   - The FIFO wait queue is a power-of-two ring buffer: O(1) append at the
     tail, O(1) upgrade push at the front, O(1) pop, cache-friendly scans.
   - Each waiting owner carries a memoized blocker list, invalidated by a
     per-lock version counter. The version is bumped only by mutations that
     can change an existing waiter's blocker set (grants, releases,
     cancellations, front-of-queue upgrades) — a plain tail enqueue cannot,
     so the common contention pattern keeps every cache warm. [blockers]
     therefore recomputes only after a real state change, instead of on
     every waits-for probe as the association-list version did.

   Lock records are never removed from the table once created: the backing
   arrays are reused on the next conflict over the same resource, and the
   resource space is bounded (nodes x db_size) in every simulator use. *)

type waiter = { w_owner : int; w_mode : Mode.t; on_grant : unit -> unit }

let dummy_waiter = { w_owner = min_int; w_mode = Mode.X; on_grant = ignore }

type lock = {
  (* granted set: parallel arrays, [g_n] live entries, unordered *)
  mutable g_owner : int array;
  mutable g_mode : Mode.t array;
  mutable g_n : int;
  (* wait queue: ring buffer, capacity a power of two, [q_head] is front *)
  mutable q_buf : waiter array;
  mutable q_head : int;
  mutable q_n : int;
  (* bumped by any mutation that can change an existing waiter's blockers *)
  mutable version : int;
}

(* Memoized blocker set of one waiting owner; valid while [ws_version]
   matches the lock's version. *)
type wait_state = {
  ws_resource : int;
  ws_lock : lock; (* the resource's lock record, cached to skip a lookup *)
  mutable ws_version : int;
  mutable ws_blockers : int list;
}

type t = {
  locks : (int, lock) Hashtbl.t;
  held : (int, (int, Mode.t) Hashtbl.t) Hashtbl.t; (* owner -> resource -> mode *)
  waiting : (int, wait_state) Hashtbl.t; (* owner -> wait state *)
  mutable grants : int;
  (* retired per-owner held tables, cleared and ready for reuse: owner ids
     are never recycled (each retry is a fresh transaction id), so without
     a pool every attempt would allocate a table just to discard it *)
  mutable held_pool : (int, Mode.t) Hashtbl.t list;
}

type outcome = Granted | Queued

let create () =
  { locks = Hashtbl.create 1024; held = Hashtbl.create 64;
    waiting = Hashtbl.create 64; grants = 0; held_pool = [] }

let lock_for t resource =
  match Hashtbl.find_opt t.locks resource with
  | Some lock -> lock
  | None ->
      let lock =
        { g_owner = [||]; g_mode = [||]; g_n = 0;
          q_buf = [||]; q_head = 0; q_n = 0; version = 0 }
      in
      Hashtbl.add t.locks resource lock;
      lock

let bump lock = lock.version <- lock.version + 1

(* --- granted-set primitives --- *)

let g_find lock owner =
  let rec scan i = if i >= lock.g_n then -1 else if lock.g_owner.(i) = owner then i else scan (i + 1) in
  scan 0

let g_add lock owner mode =
  let cap = Array.length lock.g_owner in
  if lock.g_n = cap then begin
    let cap' = if cap = 0 then 4 else 2 * cap in
    let owners = Array.make cap' 0 and modes = Array.make cap' Mode.X in
    Array.blit lock.g_owner 0 owners 0 lock.g_n;
    Array.blit lock.g_mode 0 modes 0 lock.g_n;
    lock.g_owner <- owners;
    lock.g_mode <- modes
  end;
  lock.g_owner.(lock.g_n) <- owner;
  lock.g_mode.(lock.g_n) <- mode;
  lock.g_n <- lock.g_n + 1

let g_remove lock i =
  let last = lock.g_n - 1 in
  lock.g_owner.(i) <- lock.g_owner.(last);
  lock.g_mode.(i) <- lock.g_mode.(last);
  lock.g_n <- last

(* --- ring-buffer queue primitives --- *)

let q_get lock i = lock.q_buf.((lock.q_head + i) land (Array.length lock.q_buf - 1))

let q_grow lock =
  let cap = Array.length lock.q_buf in
  let cap' = if cap = 0 then 4 else 2 * cap in
  let buf = Array.make cap' dummy_waiter in
  for i = 0 to lock.q_n - 1 do
    buf.(i) <- q_get lock i
  done;
  lock.q_buf <- buf;
  lock.q_head <- 0

let q_push_back lock w =
  if lock.q_n = Array.length lock.q_buf then q_grow lock;
  lock.q_buf.((lock.q_head + lock.q_n) land (Array.length lock.q_buf - 1)) <- w;
  lock.q_n <- lock.q_n + 1

let q_push_front lock w =
  if lock.q_n = Array.length lock.q_buf then q_grow lock;
  let head = (lock.q_head - 1) land (Array.length lock.q_buf - 1) in
  lock.q_buf.(head) <- w;
  lock.q_head <- head;
  lock.q_n <- lock.q_n + 1

let q_pop_front lock =
  let w = lock.q_buf.(lock.q_head) in
  lock.q_buf.(lock.q_head) <- dummy_waiter;
  lock.q_head <- (lock.q_head + 1) land (Array.length lock.q_buf - 1);
  lock.q_n <- lock.q_n - 1;
  w

(* Remove the owner's (unique) queue entry, preserving the order of the
   rest. O(queue), but only deadlock victims and aborts take this path. *)
let q_remove_owner lock owner =
  let mask = Array.length lock.q_buf - 1 in
  let rec find i = if i >= lock.q_n then -1 else if (q_get lock i).w_owner = owner then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    for j = i to lock.q_n - 2 do
      lock.q_buf.((lock.q_head + j) land mask) <- q_get lock (j + 1)
    done;
    lock.q_buf.((lock.q_head + lock.q_n - 1) land mask) <- dummy_waiter;
    lock.q_n <- lock.q_n - 1
  end

(* --- held map --- *)

let held_table t owner =
  match Hashtbl.find_opt t.held owner with
  | Some table -> table
  | None ->
      let table =
        match t.held_pool with
        | table :: rest ->
            t.held_pool <- rest;
            table
        | [] -> Hashtbl.create 8
      in
      Hashtbl.add t.held owner table;
      table

let record_grant t ~owner ~resource ~mode =
  Hashtbl.replace (held_table t owner) resource mode;
  t.grants <- t.grants + 1

let record_upgrade t ~owner ~resource =
  Hashtbl.replace (held_table t owner) resource Mode.X

(* A waiter is grantable when its mode is compatible with every grant held by
   a different owner (its own grant is ignored: that is the upgrade case). *)
let grantable lock waiter =
  let rec check i =
    i >= lock.g_n
    || ((lock.g_owner.(i) = waiter.w_owner
         || Mode.compatible lock.g_mode.(i) waiter.w_mode)
        && check (i + 1))
  in
  check 0

let grant_waiter t resource lock waiter =
  (match g_find lock waiter.w_owner with
  | -1 ->
      g_add lock waiter.w_owner waiter.w_mode;
      record_grant t ~owner:waiter.w_owner ~resource ~mode:waiter.w_mode
  | i ->
      lock.g_mode.(i) <- waiter.w_mode;
      record_upgrade t ~owner:waiter.w_owner ~resource);
  Hashtbl.remove t.waiting waiter.w_owner

(* Strict FIFO pump: grant from the front until the first waiter that still
   conflicts. Returns the grant callbacks to run once state is settled. *)
let pump t resource lock =
  let rec loop acc =
    if lock.q_n > 0 && grantable lock (q_get lock 0) then begin
      let waiter = q_pop_front lock in
      grant_waiter t resource lock waiter;
      bump lock;
      loop (waiter.on_grant :: acc)
    end
    else List.rev acc
  in
  loop []

let start_wait t ~owner ~resource lock =
  Hashtbl.replace t.waiting owner
    { ws_resource = resource; ws_lock = lock; ws_version = lock.version - 1;
      ws_blockers = [] }

let acquire t ~owner ~resource ~mode ~on_grant =
  if Hashtbl.mem t.waiting owner then
    invalid_arg "Lock_table.acquire: owner is already waiting";
  let lock = lock_for t resource in
  let gi = g_find lock owner in
  if gi >= 0 then begin
    if Mode.covers ~held:lock.g_mode.(gi) ~requested:mode then Granted
    else begin
      (* Upgrade S -> X. Sole holder upgrades in place; otherwise the upgrade
         waits at the front of the queue so it cannot deadlock behind new
         arrivals. *)
      let rec sole i = i >= lock.g_n || (lock.g_owner.(i) = owner && sole (i + 1)) in
      if sole 0 then begin
        for i = 0 to lock.g_n - 1 do
          lock.g_mode.(i) <- Mode.X
        done;
        record_upgrade t ~owner ~resource;
        bump lock;
        Granted
      end
      else begin
        q_push_front lock { w_owner = owner; w_mode = mode; on_grant };
        bump lock;
        start_wait t ~owner ~resource lock;
        Queued
      end
    end
  end
  else begin
    let rec compatible_with_granted i =
      i >= lock.g_n
      || (Mode.compatible lock.g_mode.(i) mode && compatible_with_granted (i + 1))
    in
    if lock.q_n = 0 && compatible_with_granted 0 then begin
      g_add lock owner mode;
      record_grant t ~owner ~resource ~mode;
      (* queue is empty, so no waiter cache can depend on this lock *)
      Granted
    end
    else begin
      (* A tail enqueue cannot change the blockers of anyone queued ahead,
         so the caches on this lock stay valid: no version bump. *)
      q_push_back lock { w_owner = owner; w_mode = mode; on_grant };
      start_wait t ~owner ~resource lock;
      Queued
    end
  end

(* An owner recorded as waiting must be present in its resource's queue; the
   two are updated together. If the invariant ever breaks we keep the old
   defensive answer (treat the request as X, the most conservative mode) but
   say so once instead of silently hiding incremental-graph divergence. The
   warn-once registry also counts the hit, so metrics snapshots surface it
   as [warnings_total] even when stderr scrolled away. *)
let missing_waiter ~owner ~resource =
  Dangers_obs.Warnings.warn ~key:"lock_table.missing_waiter"
    (Printf.sprintf
       "Lock_table invariant violation: owner %d is registered as waiting \
        on resource %d but has no queue entry; defaulting its mode to X"
       owner resource);
  Mode.X

let recompute_blockers lock ~owner ~resource =
  (* Position and mode of the owner's own queue entry. *)
  let rec find i =
    if i >= lock.q_n then (lock.q_n, missing_waiter ~owner ~resource)
    else
      let w = q_get lock i in
      if w.w_owner = owner then (i, w.w_mode) else find (i + 1)
  in
  let ahead, my_mode = find 0 in
  let acc = ref [] in
  for i = 0 to lock.g_n - 1 do
    let o = lock.g_owner.(i) in
    if o <> owner && not (Mode.compatible lock.g_mode.(i) my_mode) then
      acc := o :: !acc
  done;
  for i = 0 to ahead - 1 do
    let w = q_get lock i in
    if not (Mode.compatible w.w_mode my_mode) then acc := w.w_owner :: !acc
  done;
  List.sort_uniq Int.compare !acc

let blockers t ~owner =
  match Hashtbl.find_opt t.waiting owner with
  | None -> []
  | Some ws ->
      let lock = ws.ws_lock in
      if ws.ws_version = lock.version then ws.ws_blockers
      else begin
        let b = recompute_blockers lock ~owner ~resource:ws.ws_resource in
        ws.ws_version <- lock.version;
        ws.ws_blockers <- b;
        b
      end

let blockers_fresh t ~owner =
  match Hashtbl.find_opt t.waiting owner with
  | None -> []
  | Some ws -> recompute_blockers ws.ws_lock ~owner ~resource:ws.ws_resource

let is_waiting t ~owner = Hashtbl.mem t.waiting owner

let waiting_resource t ~owner =
  Option.map (fun ws -> ws.ws_resource) (Hashtbl.find_opt t.waiting owner)

let cancel_wait t ~owner =
  match Hashtbl.find_opt t.waiting owner with
  | None -> ()
  | Some ws ->
      let lock = ws.ws_lock in
      q_remove_owner lock owner;
      bump lock;
      Hashtbl.remove t.waiting owner;
      let callbacks = pump t ws.ws_resource lock in
      List.iter (fun callback -> callback ()) callbacks

let release_all t ~owner =
  cancel_wait t ~owner;
  match Hashtbl.find_opt t.held owner with
  | None -> ()
  | Some table ->
      Hashtbl.remove t.held owner;
      let resources = Hashtbl.fold (fun resource _ acc -> resource :: acc) table [] in
      let callbacks =
        List.concat_map
          (fun resource ->
            match Hashtbl.find_opt t.locks resource with
            | None -> []
            | Some lock ->
                (match g_find lock owner with
                | -1 -> ()
                | i -> g_remove lock i);
                t.grants <- t.grants - 1;
                bump lock;
                pump t resource lock)
          (List.sort Int.compare resources)
      in
      (* [clear] keeps the bucket array, so a pooled table re-enters
         service at its grown size *)
      Hashtbl.clear table;
      t.held_pool <- table :: t.held_pool;
      List.iter (fun callback -> callback ()) callbacks

let holds t ~owner ~resource =
  match Hashtbl.find_opt t.held owner with
  | None -> None
  | Some table -> Hashtbl.find_opt table resource

let held_resources t ~owner =
  match Hashtbl.find_opt t.held owner with
  | None -> []
  | Some table ->
      Hashtbl.fold (fun resource _ acc -> resource :: acc) table []
      |> List.sort Int.compare

let grants_outstanding t = t.grants
