(** The BENCH_micro.json file format.

    A single JSON object:
    {v
    {"schema": "dangers/bench-micro/v1",
     "host_cores": N, "quick": false,
     "benchmarks": [{"name": ..., "warmup": ..., "samples": ..., "runs": ...,
                     "mean_ns": ..., "stddev_ns": ..., "p50_ns": ...,
                     "p99_ns": ..., "min_ns": ..., "max_ns": ...}, ...]}
    v}
    All times are nanoseconds per run. Encoded with the runner's tiny JSON
    printer, so floats round-trip exactly. *)

val schema_id : string

type t = {
  host_cores : int;
  quick : bool;
  benchmarks : Harness.stats list;
}

val to_json : t -> Dangers_runner.Export.json

val of_json : Dangers_runner.Export.json -> t
(** @raise Dangers_runner.Export.Parse_error on a malformed or
    wrong-schema value. *)

val save : string -> t -> unit

val load : string -> t
(** @raise Dangers_runner.Export.Parse_error or [Sys_error]. *)
