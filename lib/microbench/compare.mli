(** Regression check between two benchmark result files.

    Benchmarks are matched by name; the verdict for each pair is the ratio
    of mean times [new /. old]. A ratio above [1 + threshold] is a
    regression, below [1 - threshold] an improvement, anything else
    stable. A benchmark present in the baseline but absent from the new
    run also fails the check — losing coverage must not pass silently. *)

type change = {
  name : string;
  old_mean : float;
  new_mean : float;
  ratio : float;  (** [new_mean /. old_mean] *)
}

type report = {
  threshold : float;
  regressions : change list;
  improvements : change list;
  stable : change list;
  only_old : string list;  (** in the baseline, missing from the new run *)
  only_new : string list;
}

val diff : threshold:float -> Bench_file.t -> Bench_file.t -> report
(** [diff ~threshold old new]. [threshold] is a fraction ([0.20] = 20%).
    @raise Invalid_argument if [threshold <= 0]. *)

val ok : report -> bool
(** No regressions and no lost benchmarks. *)

val print : Format.formatter -> report -> unit
