(** Regression check between two benchmark result files.

    Benchmarks are matched by name; the verdict for each pair is the ratio
    of mean times [new /. old]. A ratio above [1 + threshold] is a
    regression, below [1 - threshold] an improvement, anything else
    stable. A benchmark present in the baseline but absent from the new
    run is tolerated — it is listed in [only_old], printed as [missing],
    and reported through the process-wide warn-once registry under the
    key ["bench.compare.missing"] — but it does not fail the check, so a
    trimmed quick run can still be compared against a full baseline.
    Gate on [only_old] directly if lost coverage must be fatal. *)

type change = {
  name : string;
  old_mean : float;
  new_mean : float;
  ratio : float;  (** [new_mean /. old_mean] *)
}

type report = {
  threshold : float;
  regressions : change list;
  improvements : change list;
  stable : change list;
  only_old : string list;  (** in the baseline, missing from the new run *)
  only_new : string list;
}

val diff : threshold:float -> Bench_file.t -> Bench_file.t -> report
(** [diff ~threshold old new]. [threshold] is a fraction ([0.20] = 20%).
    @raise Invalid_argument if [threshold <= 0]. *)

val ok : report -> bool
(** No regressions. Benchmarks only in the baseline do not fail. *)

val print : Format.formatter -> report -> unit
