module Export = Dangers_runner.Export

let schema_id = "dangers/bench-micro/v1"

type t = {
  host_cores : int;
  quick : bool;
  benchmarks : Harness.stats list;
}

let to_json t =
  let stat (s : Harness.stats) =
    Export.Obj
      [
        ("name", Export.Str s.Harness.s_name);
        ("warmup", Export.Num (float_of_int s.Harness.s_warmup));
        ("samples", Export.Num (float_of_int s.Harness.s_samples));
        ("runs", Export.Num (float_of_int s.Harness.s_runs));
        ("mean_ns", Export.json_of_float s.Harness.mean);
        ("stddev_ns", Export.json_of_float s.Harness.stddev);
        ("p50_ns", Export.json_of_float s.Harness.p50);
        ("p99_ns", Export.json_of_float s.Harness.p99);
        ("min_ns", Export.json_of_float s.Harness.min);
        ("max_ns", Export.json_of_float s.Harness.max);
      ]
  in
  Export.Obj
    [
      ("schema", Export.Str schema_id);
      ("host_cores", Export.Num (float_of_int t.host_cores));
      ("quick", Export.Bool t.quick);
      ("benchmarks", Export.Arr (List.map stat t.benchmarks));
    ]

let fail msg = raise (Export.Parse_error ("bench-micro: " ^ msg))

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> fail ("missing field " ^ name)

let num fields name =
  match field fields name with
  | Export.Num n -> n
  | _ -> fail (name ^ " is not a number")

let of_json json =
  match json with
  | Export.Obj fields ->
      (match field fields "schema" with
      | Export.Str s when String.equal s schema_id -> ()
      | Export.Str s -> fail ("unsupported schema " ^ s)
      | _ -> fail "schema is not a string");
      let quick =
        match field fields "quick" with
        | Export.Bool b -> b
        | _ -> fail "quick is not a bool"
      in
      let stat = function
        | Export.Obj fs ->
            let name =
              match field fs "name" with
              | Export.Str s -> s
              | _ -> fail "benchmark name is not a string"
            in
            {
              Harness.s_name = name;
              s_warmup = int_of_float (num fs "warmup");
              s_samples = int_of_float (num fs "samples");
              s_runs = int_of_float (num fs "runs");
              mean = Export.float_of_json (field fs "mean_ns");
              stddev = Export.float_of_json (field fs "stddev_ns");
              p50 = Export.float_of_json (field fs "p50_ns");
              p99 = Export.float_of_json (field fs "p99_ns");
              min = Export.float_of_json (field fs "min_ns");
              max = Export.float_of_json (field fs "max_ns");
            }
        | _ -> fail "benchmark entry is not an object"
      in
      let benchmarks =
        match field fields "benchmarks" with
        | Export.Arr entries -> List.map stat entries
        | _ -> fail "benchmarks is not an array"
      in
      { host_cores = int_of_float (num fields "host_cores"); quick; benchmarks }
  | _ -> fail "top level is not an object"

let save path t =
  let oc = open_out path in
  output_string oc (Export.json_to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  of_json (Export.json_of_string (String.trim contents))
