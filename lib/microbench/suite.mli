(** The micro-benchmark suite: lock-table fast path, contended FIFO and
    deadlock detection, engine event throughput and cancel churn, heap
    reuse, and one end-to-end eager-group run at nodes=10 (the paper's
    unstable regime and this repo's optimization acceptance bar).

    [quick] shrinks sample counts only — never workloads — so quick-mode
    results compare meaningfully against full-mode baselines, just with
    wider error bars. *)

val benches : quick:bool -> Harness.bench list
