(* The benchmark suite: one entry per hot path the paper's cubic laws
   lean on, plus one end-to-end run. Workloads are fixed — quick mode only
   trims sample counts (see [Harness.with_samples]) so numbers from quick
   and full runs stay comparable. *)

module Mode = Dangers_lock.Mode
module Lock_manager = Dangers_lock.Lock_manager
module Engine = Dangers_sim.Engine
module Heap = Dangers_sim.Heap
module Observe = Dangers_sim.Observe
module Par_engine = Dangers_sim.Par_engine
module Params = Dangers_analytic.Params
module Scheme = Dangers_experiments.Scheme

(* Uncontended acquire/release: 100 owners each take 4 private X locks and
   drop them — the fast path of every action that meets no conflict. *)
let lock_acquire_release () =
  let locks = Lock_manager.create () in
  for owner = 0 to 99 do
    for r = 0 to 3 do
      ignore
        (Lock_manager.request locks ~owner
           ~resource:((owner * 4) + r)
           ~mode:Mode.X ~on_grant:ignore)
    done;
    Lock_manager.release_all locks ~owner
  done

(* 64 writers pile up on one object: every blocked request probes the
   waits-for graph down the whole queue, then the release cascade pumps
   the FIFO one grant at a time. *)
let lock_contended_fifo () =
  let locks = Lock_manager.create () in
  for owner = 0 to 63 do
    ignore
      (Lock_manager.request locks ~owner ~resource:0 ~mode:Mode.X
         ~on_grant:ignore)
  done;
  for owner = 0 to 63 do
    Lock_manager.release_all locks ~owner
  done

(* Deadlock detection under contention: owner i holds object i and waits
   for object i+1, so each new wait walks an ever longer chain; the last
   request closes the cycle and must be detected and withdrawn. *)
let lock_deadlock_chain () =
  let n = 32 in
  let locks = Lock_manager.create () in
  for i = 0 to n - 1 do
    ignore
      (Lock_manager.request locks ~owner:i ~resource:i ~mode:Mode.X
         ~on_grant:ignore)
  done;
  for i = 0 to n - 2 do
    ignore
      (Lock_manager.request locks ~owner:i ~resource:(i + 1) ~mode:Mode.X
         ~on_grant:ignore)
  done;
  (match
     Lock_manager.request locks ~owner:(n - 1) ~resource:0 ~mode:Mode.X
       ~on_grant:ignore
   with
  | Lock_manager.Deadlock _ -> ()
  | Lock_manager.Granted | Lock_manager.Waiting ->
      failwith "Suite.lock_deadlock_chain: cycle not detected");
  for i = 0 to n - 1 do
    Lock_manager.release_all locks ~owner:i
  done

(* Raw event throughput: 8 interleaved self-rescheduling chains firing
   100k events — the schedule/step cycle with no simulation payload. *)
let engine_event_throughput () =
  let engine = Engine.create () in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    if !fired < 100_000 then ignore (Engine.schedule engine ~delay:0.001 tick)
  in
  for _ = 1 to 8 do
    ignore (Engine.schedule engine ~delay:0.0005 tick)
  done;
  Engine.run engine;
  if !fired < 100_000 then failwith "Suite.engine_event_throughput: short run"

(* Schedule-then-cancel churn: half the scheduled work is cancelled before
   it fires, the pattern of timeouts and disconnect cycles. *)
let engine_cancel_churn () =
  let engine = Engine.create () in
  for round = 1 to 100 do
    let keep = Engine.schedule engine ~delay:(float_of_int round) ignore in
    for _ = 1 to 50 do
      let doomed = Engine.schedule engine ~delay:2000. ignore in
      Engine.cancel engine doomed
    done;
    ignore keep
  done;
  Engine.run engine

(* Heap reuse: fill/drain a shared heap through [clear]; with a
   capacity-preserving [clear] the backing array is allocated once. *)
let shared_heap = Heap.create ~cmp:Int.compare ()

let heap_reuse_after_clear () =
  Heap.clear shared_heap;
  for i = 0 to 9_999 do
    Heap.push shared_heap (i * 7919 mod 10_000)
  done;
  while not (Heap.is_empty shared_heap) do
    ignore (Heap.pop shared_heap)
  done

(* The acceptance-bar benchmark: a full eager-group run in the unstable
   regime the paper warns about (nodes=10, small hot database), dominated
   by lock waits, deadlock detection and restarts. *)
let e2e_eager_group () =
  let params = { Params.default with Params.nodes = 10; db_size = 500 } in
  ignore
    (Scheme.run_named "eager-group" (Scheme.spec params) ~seed:7 ~warmup:0.
       ~span:30.)

(* Pure window-synchronization machinery: 8 partitions pass a token around
   a ring with every hop at exactly the lookahead bound, so each window
   fires one event and drains one message — all barrier and merge
   overhead, no simulation payload. This is the cost a parallel run must
   amortize against its per-window batch. *)
let parsim_window_ring () =
  let parts = 8 in
  let t = Par_engine.create ~parts ~lookahead:0.01 () in
  Par_engine.set_handler t (fun ~src:_ ~dst ~time hops ->
      ignore
        (Engine.schedule_at (Par_engine.engine t dst) ~time (fun () ->
             if hops < 10_000 then
               Par_engine.post t ~src:dst ~dst:((dst + 1) mod parts)
                 ~delay:0.01 (hops + 1))));
  Par_engine.post t ~src:0 ~dst:1 ~delay:0.01 0;
  Par_engine.run t;
  if Par_engine.events_fired t < 10_000 then
    failwith "Suite.parsim_window_ring: short run"

(* The partitioned update-anywhere scheme at the paper's headline scale
   (100 nodes): every update X-locks all 100 replicas and broadcasts its
   apply, so the run is dominated by cross-partition message routing and
   per-partition event heaps — exactly what --sim-domains spreads across
   cores. Benchmarked at one domain and at four so BENCH_micro records the
   measured speedup next to [host_cores]; on a single-core host the two
   entries are expected to tie (see docs/PARALLEL_SIM.md). *)
let par_eager_n100_params =
  { Params.default with Params.nodes = 100; db_size = 10_000; tps = 1. }

let e2e_par_eager ~domains () =
  Observe.with_domains domains (fun () ->
      ignore
        (Scheme.run_named "par-eager-group"
           (Scheme.spec par_eager_n100_params)
           ~seed:7 ~warmup:0. ~span:4.))

let benches ~quick =
  let scale full b =
    Harness.with_samples (if quick then max 2 (full / 5) else full) b
  in
  [
    scale 20 (Harness.bench ~runs:10 "lock/acquire-release" lock_acquire_release);
    scale 20 (Harness.bench ~runs:10 "lock/contended-fifo" lock_contended_fifo);
    scale 20 (Harness.bench ~runs:10 "lock/deadlock-chain" lock_deadlock_chain);
    scale 10 (Harness.bench "engine/event-throughput" engine_event_throughput);
    scale 20 (Harness.bench ~runs:10 "engine/cancel-churn" engine_cancel_churn);
    scale 20 (Harness.bench ~runs:10 "heap/reuse-after-clear" heap_reuse_after_clear);
    scale 10 (Harness.bench "parsim/window-ring" parsim_window_ring);
    scale 5 (Harness.bench ~warmup:1 "e2e/eager-group-n10" e2e_eager_group);
    scale 4
      (Harness.bench ~warmup:1 "e2e/par-eager-n100-d1" (e2e_par_eager ~domains:1));
    scale 4
      (Harness.bench ~warmup:1 "e2e/par-eager-n100-d4" (e2e_par_eager ~domains:4));
  ]
