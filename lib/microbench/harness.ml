(* Criterion-style measurement core: warm up, then time [samples] batches
   of [runs] calls each on the monotonic clock, and summarize the per-run
   times. Nothing here is statistical rocket science — the point is a
   stable, dependency-light way to see where simulator time goes and to
   catch regressions in CI. *)

type bench = {
  name : string;
  warmup : int;
  samples : int;
  runs : int;
  f : unit -> unit;
}

let bench ?(warmup = 3) ?(samples = 10) ?(runs = 1) name f =
  if warmup < 0 then invalid_arg "Harness.bench: negative warmup";
  if samples < 1 then invalid_arg "Harness.bench: need at least one sample";
  if runs < 1 then invalid_arg "Harness.bench: need at least one run";
  { name; warmup; samples; runs; f }

let with_samples samples b = { b with samples = max 1 samples }

type stats = {
  s_name : string;
  s_warmup : int;
  s_samples : int;
  s_runs : int;
  mean : float;  (** ns per run *)
  stddev : float;
  p50 : float;
  p99 : float;
  min : float;
  max : float;
}

(* One timed batch: ns per run, averaged over [runs] back-to-back calls so
   sub-microsecond benches are not swamped by clock granularity. *)
let time_ns f runs =
  let t0 = Monotonic_clock.now () in
  for _ = 1 to runs do
    f ()
  done;
  let t1 = Monotonic_clock.now () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int runs

(* Linear interpolation between closest ranks, as in numpy's default. *)
let percentile sorted p =
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else sorted.(lo) +. ((rank -. float_of_int lo) *. (sorted.(hi) -. sorted.(lo)))

let of_samples ~name ~warmup ~runs xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Harness.of_samples: no samples";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let mean = Array.fold_left ( +. ) 0. sorted /. float_of_int n in
  let stddev =
    if n < 2 then 0.
    else
      let sq = Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. sorted in
      sqrt (sq /. float_of_int (n - 1))
  in
  {
    s_name = name;
    s_warmup = warmup;
    s_samples = n;
    s_runs = runs;
    mean;
    stddev;
    p50 = percentile sorted 50.;
    p99 = percentile sorted 99.;
    min = sorted.(0);
    max = sorted.(n - 1);
  }

let run b =
  for _ = 1 to b.warmup do
    ignore (time_ns b.f b.runs)
  done;
  let xs = Array.init b.samples (fun _ -> time_ns b.f b.runs) in
  of_samples ~name:b.name ~warmup:b.warmup ~runs:b.runs xs

let pp_stats ppf s =
  let scale v =
    if v >= 1e9 then Printf.sprintf "%.3fs" (v /. 1e9)
    else if v >= 1e6 then Printf.sprintf "%.3fms" (v /. 1e6)
    else if v >= 1e3 then Printf.sprintf "%.3fus" (v /. 1e3)
    else Printf.sprintf "%.0fns" v
  in
  Format.fprintf ppf "%-28s mean %10s  +/-%9s  p50 %10s  p99 %10s" s.s_name
    (scale s.mean) (scale s.stddev) (scale s.p50) (scale s.p99)
