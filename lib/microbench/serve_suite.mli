(** The serving-path benchmark suite ([dangers bench --suite serve]): one
    end-to-end [e2e/serve-load-1k] entry that boots the live two-tier
    {!Dangers_live.Server} on a private socket, replays a 1k-transaction
    {!Dangers_live.Load_gen} churn workload against it, and shuts it down
    — the tracked baseline for the live serving path
    (BENCH_serve.json). *)

val benches : quick:bool -> Harness.bench list
