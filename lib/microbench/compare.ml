type change = {
  name : string;
  old_mean : float;
  new_mean : float;
  ratio : float;
}

type report = {
  threshold : float;
  regressions : change list;
  improvements : change list;
  stable : change list;
  only_old : string list;
  only_new : string list;
}

let change ~name ~old_mean ~new_mean =
  { name; old_mean; new_mean; ratio = new_mean /. old_mean }

let diff ~threshold (old_file : Bench_file.t) (new_file : Bench_file.t) =
  if threshold <= 0. then invalid_arg "Compare.diff: threshold must be positive";
  let mean_of (s : Harness.stats) = (s.Harness.s_name, s.Harness.mean) in
  let old_means = List.map mean_of old_file.Bench_file.benchmarks in
  let new_means = List.map mean_of new_file.Bench_file.benchmarks in
  let regressions = ref [] and improvements = ref [] and stable = ref [] in
  let only_new = ref [] in
  List.iter
    (fun (name, new_mean) ->
      match List.assoc_opt name old_means with
      | None -> only_new := name :: !only_new
      | Some old_mean ->
          let c = change ~name ~old_mean ~new_mean in
          if c.ratio > 1. +. threshold then regressions := c :: !regressions
          else if c.ratio < 1. -. threshold then improvements := c :: !improvements
          else stable := c :: !stable)
    new_means;
  let only_old =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_means then None else Some name)
      old_means
  in
  (match only_old with
  | [] -> ()
  | names ->
      (* Tolerated, not fatal: a trimmed quick run or a renamed benchmark
         should not fail the gate, but losing coverage must stay visible. *)
      Dangers_obs.Warnings.warn ~key:"bench.compare.missing"
        (Printf.sprintf
           "%d baseline benchmark(s) not in this run: %s"
           (List.length names)
           (String.concat ", " names)));
  {
    threshold;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    stable = List.rev !stable;
    only_old;
    only_new = List.rev !only_new;
  }

let ok report = report.regressions = []

let print ppf report =
  let pct ratio = (ratio -. 1.) *. 100. in
  let line verdict c =
    Format.fprintf ppf "%-12s %-28s %+7.1f%%  (%.0fns -> %.0fns)@." verdict
      c.name (pct c.ratio) c.old_mean c.new_mean
  in
  List.iter (line "REGRESSION") report.regressions;
  List.iter (line "improvement") report.improvements;
  List.iter (line "ok") report.stable;
  List.iter
    (Format.fprintf ppf "missing      %-28s (in baseline, not re-run)@.")
    report.only_old;
  List.iter (Format.fprintf ppf "new          %-28s (no baseline)@.")
    report.only_new;
  if ok report then
    Format.fprintf ppf "compare: ok (threshold %.0f%%%s)@."
      (report.threshold *. 100.)
      (match report.only_old with
      | [] -> ""
      | names ->
          Printf.sprintf ", %d baseline bench(es) not re-run"
            (List.length names))
  else
    Format.fprintf ppf
      "compare: FAILED — %d regression(s) (threshold %.0f%%)@."
      (List.length report.regressions)
      (report.threshold *. 100.)
