module Task_pool = Dangers_runner.Task_pool

let run_suite ?(suite = `Micro) ~quick () =
  let benches =
    match suite with
    | `Micro -> Suite.benches ~quick
    | `Serve -> Serve_suite.benches ~quick
  in
  let benchmarks =
    List.map
      (fun b ->
        let stats = Harness.run b in
        Format.printf "%a@." Harness.pp_stats stats;
        stats)
      benches
  in
  { Bench_file.host_cores = Task_pool.host_cores (); quick; benchmarks }

let main ?suite ~quick ~out ~input ~baseline ~threshold () =
  let results =
    match input with
    | Some path -> Bench_file.load path
    | None ->
        let results = run_suite ?suite ~quick () in
        (match out with
        | Some path ->
            Bench_file.save path results;
            Format.printf "wrote %s@." path
        | None -> ());
        results
  in
  match baseline with
  | None -> 0
  | Some path ->
      let old_results = Bench_file.load path in
      let report = Compare.diff ~threshold old_results results in
      Compare.print Format.std_formatter report;
      if Compare.ok report then 0 else 1
