(** Criterion-style micro-benchmark core.

    A benchmark is a nullary closure timed on bechamel's monotonic clock:
    [warmup] untimed batches, then [samples] timed batches of [runs]
    back-to-back calls each; the recorded unit is nanoseconds per run.
    Summaries are mean/stddev (sample, n-1)/p50/p99/min/max over the
    batches. *)

type bench

val bench :
  ?warmup:int -> ?samples:int -> ?runs:int -> string -> (unit -> unit) ->
  bench
(** Defaults: [warmup = 3], [samples = 10], [runs = 1].
    @raise Invalid_argument on a non-positive sample or run count. *)

val with_samples : int -> bench -> bench
(** Override the sample count (clamped to >= 1); quick mode shrinks sample
    counts but never the workload, so results stay comparable across
    modes. *)

type stats = {
  s_name : string;
  s_warmup : int;
  s_samples : int;
  s_runs : int;
  mean : float;  (** ns per run *)
  stddev : float;
  p50 : float;
  p99 : float;
  min : float;
  max : float;
}

val run : bench -> stats

val of_samples :
  name:string -> warmup:int -> runs:int -> float array -> stats
(** Summarize raw per-run nanosecond samples; exposed for tests.
    @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with linear interpolation between closest ranks;
    [sorted] must be ascending and non-empty. *)

val pp_stats : Format.formatter -> stats -> unit
(** One aligned human-readable line (no trailing newline). *)
