(* The serving-path benchmark: a whole live two-tier service driven
   end-to-end. Each run boots a Server on a private Unix socket in its own
   domain, replays the Load_gen churn workload (1k transactions across two
   clients: disconnect, tentative burst, reconnect-and-sync), and joins the
   server after [Shutdown]. The measured number is dominated by the
   request/response path — codec framing, the select idle waiter, base
   replays — which is exactly the surface the live-telemetry work touches,
   so BENCH_serve.json tracks it as its own baseline. *)

module Params = Dangers_analytic.Params
module Server = Dangers_live.Server
module Load_gen = Dangers_live.Load_gen

let db_size = 1000
let nodes = 5
let base_nodes = 1

let socket_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dangers-bench-serve-%d.sock" (Unix.getpid ()))

let server_config =
  {
    Server.socket_path;
    base_nodes;
    params = { Params.default with Params.nodes; db_size };
    seed = 7;
    metrics_out = None;
    series_out = None;
    sample_interval = 1.0;
    quiet = true;
    print_summary = false;
  }

let load_config =
  {
    Load_gen.socket_path;
    clients = 2;
    txns = 1_000;
    burst = 25;
    ops_per_txn = 2;
    db_size;
    seed = 7;
    shutdown = true;
  }

let wait_for_socket path =
  let rec wait budget =
    if Sys.file_exists path then ()
    else if budget <= 0 then
      failwith "Serve_suite: server socket never appeared"
    else begin
      Unix.sleepf 0.01;
      wait (budget - 1)
    end
  in
  wait 1_000

let serve_load_1k () =
  let server = Domain.spawn (fun () -> Server.serve server_config) in
  match
    wait_for_socket socket_path;
    Load_gen.run load_config
  with
  | report ->
      ignore (Domain.join server);
      (match report.Load_gen.errors with
      | [] -> ()
      | err :: _ -> failwith ("Serve_suite: load error: " ^ err))
  | exception exn ->
      (* Don't leave the server domain parked on a dead socket. *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.connect fd (Unix.ADDR_UNIX socket_path);
         Dangers_live.Protocol.send fd Dangers_live.Protocol.request
           Dangers_live.Protocol.Shutdown;
         Unix.close fd
       with _ -> ());
      ignore (Domain.join server);
      raise exn

let benches ~quick =
  let scale full b =
    Harness.with_samples (if quick then max 2 (full / 5) else full) b
  in
  [ scale 5 (Harness.bench ~warmup:1 "e2e/serve-load-1k" serve_load_1k) ]
