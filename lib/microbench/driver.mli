(** Entry point shared by [dangers bench] and the standalone
    [bench/micro] runner. *)

val run_suite : ?suite:[ `Micro | `Serve ] -> quick:bool -> unit -> Bench_file.t
(** Run every benchmark of the chosen suite (default [`Micro]; [`Serve]
    is {!Serve_suite}'s end-to-end serving path), printing one summary
    line each. *)

val main :
  ?suite:[ `Micro | `Serve ] ->
  quick:bool ->
  out:string option ->
  input:string option ->
  baseline:string option ->
  threshold:float ->
  unit ->
  int
(** Returns a process exit code. With [input], results are loaded from
    that file instead of running the suite (for offline comparison);
    otherwise the chosen suite runs and is saved to [out] if given. With
    [baseline], the results are diffed against the baseline file at
    [threshold] (a fraction: 0.2 flags >20% mean-time regressions) and
    the exit code is 1 when the check fails. *)
