module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (Value : VALUE) = struct
  type value = Value.t
  type entry = { mutable value : value; mutable stamp : Timestamp.t }

  type t = {
    entries : entry array;
    mutable observers : (Oid.t -> value -> Timestamp.t -> unit) list;
  }

  let create ~db_size ~init =
    if db_size <= 0 then invalid_arg "Store.create: db_size must be positive";
    {
      entries =
        Array.init db_size (fun i ->
            { value = init (Oid.of_int i); stamp = Timestamp.zero });
      observers = [];
    }

  let db_size t = Array.length t.entries
  let entry t oid = t.entries.(Oid.to_int oid)
  let read t oid = (entry t oid).value
  let stamp t oid = (entry t oid).stamp
  let on_write t f = t.observers <- f :: t.observers

  let notify t oid value ts =
    match t.observers with
    | [] -> ()
    | observers -> List.iter (fun f -> f oid value ts) observers

  let write t oid value ts =
    let e = entry t oid in
    e.value <- value;
    e.stamp <- ts;
    notify t oid value ts

  let apply_if_current t oid ~old_stamp value ts =
    let e = entry t oid in
    if Timestamp.equal e.stamp old_stamp then begin
      e.value <- value;
      e.stamp <- ts;
      notify t oid value ts;
      `Applied
    end
    else `Dangerous

  let apply_if_newer t oid value ts =
    let e = entry t oid in
    if Timestamp.newer ts ~than:e.stamp then begin
      e.value <- value;
      e.stamp <- ts;
      notify t oid value ts;
      `Applied
    end
    else `Stale

  let iter t f =
    Array.iteri (fun i e -> f (Oid.of_int i) e.value e.stamp) t.entries

  let fold t ~init ~f =
    let acc = ref init in
    iter t (fun oid value ts -> acc := f !acc oid value ts);
    !acc

  let check_same_size a b name =
    if db_size a <> db_size b then
      invalid_arg (name ^ ": stores of different sizes")

  let divergent_oids a b =
    check_same_size a b "Store.divergent_oids";
    let diffs = ref [] in
    for i = db_size a - 1 downto 0 do
      let ea = a.entries.(i) and eb = b.entries.(i) in
      if not (Value.equal ea.value eb.value && Timestamp.equal ea.stamp eb.stamp)
      then diffs := Oid.of_int i :: !diffs
    done;
    !diffs

  let content_equal a b =
    db_size a = db_size b && divergent_oids a b = []

  let copy t =
    {
      entries =
        Array.map (fun e -> { value = e.value; stamp = e.stamp }) t.entries;
      observers = [];
    }

  let overwrite_from t ~src =
    check_same_size t src "Store.overwrite_from";
    Array.iteri
      (fun i e ->
        let s = src.entries.(i) in
        e.value <- s.value;
        e.stamp <- s.stamp;
        notify t (Oid.of_int i) s.value s.stamp)
      t.entries
end

module Float_value = struct
  type t = float

  let equal = Float.equal
  let pp ppf v = Format.fprintf ppf "%g" v
end

module Fstore = Make (Float_value)
