(** Per-node versioned object store.

    Each node replicates all [DB_Size] objects (Table 2). Every object
    carries the timestamp of its most recent update, which is all the lazy
    schemes need to detect dangerous updates (§4) and discard stale ones
    (§5). The store is functorized over the value type: the simulator uses
    the [float] instance below; richer example applications can instantiate
    their own. *)

module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (Value : VALUE) : sig
  type value = Value.t
  type t

  val create : db_size:int -> init:(Oid.t -> value) -> t
  (** @raise Invalid_argument if [db_size <= 0]. *)

  val db_size : t -> int

  val read : t -> Oid.t -> value
  val stamp : t -> Oid.t -> Timestamp.t

  val write : t -> Oid.t -> value -> Timestamp.t -> unit
  (** Unconditional overwrite — for the owning node's committed updates. *)

  val on_write : t -> (Oid.t -> value -> Timestamp.t -> unit) -> unit
  (** Register an observer fired after every state change ([write], a
      successful [apply_if_current]/[apply_if_newer], and each object of an
      [overwrite_from]). The fault-injection recovery journal uses this to
      capture a node's durable write history; a store without observers
      pays nothing. Observers do not survive [copy]. *)

  val apply_if_current : t -> Oid.t -> old_stamp:Timestamp.t -> value ->
    Timestamp.t -> [ `Applied | `Dangerous ]
  (** The lazy-group rule: apply only when the replica's timestamp equals the
      update's [old_stamp]; otherwise the update is dangerous and must be
      reconciled. *)

  val apply_if_newer : t -> Oid.t -> value -> Timestamp.t ->
    [ `Applied | `Stale ]
  (** The lazy-master slave rule (Thomas write rule): apply only when the
      update's timestamp is newer than the replica's. *)

  val iter : t -> (Oid.t -> value -> Timestamp.t -> unit) -> unit
  val fold : t -> init:'acc -> f:('acc -> Oid.t -> value -> Timestamp.t -> 'acc) -> 'acc

  val content_equal : t -> t -> bool
  (** Same values and timestamps at every object — the convergence test. *)

  val divergent_oids : t -> t -> Oid.t list
  (** Objects at which two replicas disagree (value or timestamp); empty iff
      [content_equal]. @raise Invalid_argument on stores of different
      sizes. *)

  val copy : t -> t

  val overwrite_from : t -> src:t -> unit
  (** Replace all content with [src]'s — a mobile node refreshing its replica
      from a base node. @raise Invalid_argument on different sizes. *)
end

module Float_value : VALUE with type t = float

module Fstore : module type of Make (Float_value)
(** The store instance used throughout the simulator: objects are numeric
    values (balances, quantities, quotes). *)
