(* Lint engine tests: each rule against its seeded fixture in
   test/lintfx/, suppression accounting, baseline round-trips, and the
   dangers/lint/v1 report shape.

   The fixtures are a separate library so dune has already produced
   their .cmt files by the time this binary links; the loader scans the
   build tree relative to the test's cwd (_build/default/test). *)

module Loader = Dangers_lint.Loader
module Engine = Dangers_lint.Engine
module Rules = Dangers_lint.Rules
module Rule = Dangers_lint.Rule
module Finding = Dangers_lint.Finding
module Baseline = Dangers_lint.Baseline
module Report = Dangers_lint.Report
module Json = Dangers_obs.Json

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let fixture_prefix = "test/lintfx/"
let fixtures = lazy (Loader.load ~build_dir:"." ~prefixes:[ fixture_prefix ])

let results =
  lazy
    (let loaded = Lazy.force fixtures in
     Engine.check_sources ~all_files:true ~rules:Rules.all
       loaded.Loader.sources)

let findings () = fst (Lazy.force results)
let suppressed () = snd (Lazy.force results)

let in_file base f = Filename.basename f.Finding.file = base

let by rule base =
  List.filter
    (fun f -> f.Finding.rule = rule && in_file base f)
    (findings ())

let mentions sub f =
  let m = f.Finding.message and n = String.length sub in
  let rec go i =
    i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
  in
  go 0

let test_loader_finds_fixtures () =
  let loaded = Lazy.force fixtures in
  checki "eight fixture units" 8 (List.length loaded.Loader.sources);
  checkb "all cmts readable" true (loaded.Loader.unreadable = []);
  checkb "paths keep the build-root prefix" true
    (List.for_all
       (fun (s : Loader.source) ->
         String.length s.Loader.path > String.length fixture_prefix
         && String.sub s.Loader.path 0 (String.length fixture_prefix)
            = fixture_prefix)
       loaded.Loader.sources)

let test_d1_seeded () =
  let fs = by "D1" "fx_d1.ml" in
  checki "four banned calls" 4 (List.length fs);
  checkb "self_init named" true (List.exists (mentions "Random.self_init") fs);
  checkb "gettimeofday named" true
    (List.exists (mentions "Unix.gettimeofday") fs);
  checkb "Sys.time named" true (List.exists (mentions "Sys.time") fs);
  checkb "Hashtbl.hash named" true (List.exists (mentions "Hashtbl.hash") fs);
  checkb "report order follows the file" true
    (let lines = List.map (fun f -> f.Finding.line) fs in
     lines = List.sort compare lines)

let test_d2_seeded () =
  let fs = by "D2" "fx_d2.ml" in
  checki "two iters and the unsorted fold" 3 (List.length fs);
  checkb "iter flagged" true (List.exists (mentions "Hashtbl.iter") fs);
  checkb "unsorted fold flagged" true
    (List.exists (mentions "Hashtbl.fold") fs)

let test_d3_seeded () =
  let fs = by "D3" "fx_d3.ml" in
  checki "float instantiations only" 4 (List.length fs);
  checkb "= flagged twice (direct and through list)" true
    (List.length (List.filter (mentions "polymorphic =") fs) = 2);
  checkb "compare flagged" true
    (List.exists (mentions "polymorphic compare") fs);
  checkb "max flagged" true (List.exists (mentions "polymorphic max") fs)

let test_r1_seeded () =
  let fs = by "R1" "fx_r1.ml" in
  checki "unguarded state incl. nested module" 4 (List.length fs);
  List.iter
    (fun name ->
      checkb (name ^ " named") true (List.exists (mentions ("'" ^ name ^ "'")) fs))
    [ "cache"; "counter"; "lazy_state"; "buf" ]

let test_r1_mutex_guard () =
  checki "mutex-bearing structure is exempt" 0
    (List.length (List.filter (in_file "fx_r1_guarded.ml") (findings ())))

let test_rt1_seeded () =
  let fs = by "RT1" "fx_rt1.ml" in
  checki "two engine calls and a wall-clock read" 3 (List.length fs);
  checkb "Engine.now named" true (List.exists (mentions "Engine.now") fs);
  checkb "Engine.schedule named" true
    (List.exists (mentions "Engine.schedule") fs);
  checkb "gettimeofday named" true
    (List.exists (mentions "Unix.gettimeofday") fs)

let test_p1_seeded () =
  let fs = by "P1" "fx_p1.ml" in
  checki "all four partials" 4 (List.length fs);
  List.iter
    (fun name ->
      checkb (name ^ " flagged") true (List.exists (mentions name) fs))
    [ "List.hd"; "List.tl"; "List.nth"; "Option.get" ]

let test_suppression_accounting () =
  checki "one allow per rule fixture plus two file-wide" 8 (suppressed ());
  checki "file-wide allow silences the whole unit" 0
    (List.length (List.filter (in_file "fx_filewide.ml") (findings ())))

let test_scope_filter () =
  (* Without all_files the fixtures match no rule's scope (they live
     under test/, the rules watch lib/), so a scoped run is silent. *)
  let loaded = Lazy.force fixtures in
  let fs, supp = Engine.check_sources ~rules:Rules.all loaded.Loader.sources in
  checki "nothing in scope" 0 (List.length fs);
  checki "no suppressions counted" 0 supp

let test_baseline_round_trip () =
  let fs = findings () in
  let b = Baseline.of_findings fs in
  let applied = Baseline.apply b fs in
  checki "everything absorbed" (List.length fs) applied.Baseline.baselined;
  checkb "nothing fresh" true (applied.Baseline.fresh = []);
  checkb "nothing stale" true (applied.Baseline.stale = []);
  checkb "json round-trips" true (Baseline.of_json (Baseline.to_json b) = b);
  checkb "duplicate keys collapse to a counted entry" true
    (List.exists
       (fun (e : Baseline.entry) -> e.Baseline.count = 2)
       b.Baseline.entries)

let test_baseline_stale_and_fresh () =
  let d1 = by "D1" "fx_d1.ml" and p1 = by "P1" "fx_p1.ml" in
  let b = Baseline.of_findings d1 in
  let applied = Baseline.apply b p1 in
  checki "unbaselined findings stay fresh" (List.length p1)
    (List.length applied.Baseline.fresh);
  checki "nothing absorbed" 0 applied.Baseline.baselined;
  checki "every entry is stale" (List.length b.Baseline.entries)
    (List.length applied.Baseline.stale)

let test_baseline_count_is_a_budget () =
  (* fx_d3 carries two identical '=' findings; a baseline allowing one
     must absorb exactly one and fail the other. *)
  let dups =
    List.filter (mentions "polymorphic =") (by "D3" "fx_d3.ml")
  in
  checki "two duplicate findings" 2 (List.length dups);
  match Baseline.of_findings dups with
  | { Baseline.entries = [ entry ] } ->
      let b = { Baseline.entries = [ { entry with Baseline.count = 1 } ] } in
      let applied = Baseline.apply b dups in
      checki "one absorbed" 1 applied.Baseline.baselined;
      checki "one fresh" 1 (List.length applied.Baseline.fresh)
  | _ -> Alcotest.fail "expected a single merged baseline entry"

let test_report_json_schema () =
  let report =
    Engine.run ~all_files:true ~rules:Rules.all ~build_dir:"."
      ~prefixes:[ fixture_prefix ] ()
  in
  checkb "fixtures are not clean" false (Report.clean report);
  checki "exit code 1" 1 (Report.exit_code report);
  let json = Report.to_json report in
  checks "schema id" "dangers/lint/v1" (Json.string_of (Json.member "schema" json));
  checki "findings serialized" (List.length report.Report.findings)
    (List.length (Json.list_of (Json.member "findings" json)));
  checki "suppressed count serialized" (suppressed ())
    (Json.int_of (Json.member "suppressed" json));
  checkb "clean flag serialized" true
    (Json.member "clean" json = Json.Bool false)

let test_report_clean_exit () =
  let fs = findings () in
  let report =
    Engine.run ~all_files:true ~rules:Rules.all
      ~baseline:(Baseline.of_findings fs) ~build_dir:"."
      ~prefixes:[ fixture_prefix ] ()
  in
  checkb "baselined run is clean" true (Report.clean report);
  checki "exit code 0" 0 (Report.exit_code report);
  checki "everything baselined" (List.length fs) report.Report.baselined

let test_rules_registry () =
  Alcotest.check (Alcotest.list Alcotest.string) "id order"
    [ "D1"; "D2"; "D3"; "R1"; "P1"; "RT1" ] (Rules.ids ());
  checkb "lookup is case-insensitive" true
    (match Rules.find "d3" with
    | Some r -> r.Rule.id = "D3"
    | None -> false);
  checkb "unknown rule is None" true (Rules.find "Z9" = None)

let test_finding_format () =
  match findings () with
  | [] -> Alcotest.fail "fixtures produced no findings"
  | f :: _ ->
      let line = Format.asprintf "%a" Finding.pp f in
      let expected_prefix =
        Printf.sprintf "%s:%d:%d: [%s]" f.Finding.file f.Finding.line
          f.Finding.col f.Finding.rule
      in
      checkb "pp is compiler-style" true
        (String.length line >= String.length expected_prefix
        && String.sub line 0 (String.length expected_prefix) = expected_prefix);
      checks "baseline key is rule|file|message"
        (f.Finding.rule ^ "|" ^ f.Finding.file ^ "|" ^ f.Finding.message)
        (Finding.key f);
      checkb "finding json round-trips" true
        (Finding.of_json (Finding.to_json f) = f)

let suite =
  [
    Alcotest.test_case "loader finds fixtures" `Quick test_loader_finds_fixtures;
    Alcotest.test_case "D1 flags banned calls" `Quick test_d1_seeded;
    Alcotest.test_case "D2 flags unordered iteration" `Quick test_d2_seeded;
    Alcotest.test_case "D3 flags float compares" `Quick test_d3_seeded;
    Alcotest.test_case "R1 flags unguarded state" `Quick test_r1_seeded;
    Alcotest.test_case "R1 honors a module mutex" `Quick test_r1_mutex_guard;
    Alcotest.test_case "P1 flags partial functions" `Quick test_p1_seeded;
    Alcotest.test_case "RT1 flags direct engine use" `Quick test_rt1_seeded;
    Alcotest.test_case "suppressions are honored" `Quick
      test_suppression_accounting;
    Alcotest.test_case "rule scopes filter files" `Quick test_scope_filter;
    Alcotest.test_case "baseline round-trips" `Quick test_baseline_round_trip;
    Alcotest.test_case "baseline reports stale entries" `Quick
      test_baseline_stale_and_fresh;
    Alcotest.test_case "baseline counts are budgets" `Quick
      test_baseline_count_is_a_budget;
    Alcotest.test_case "report json matches dangers/lint/v1" `Quick
      test_report_json_schema;
    Alcotest.test_case "baselined report exits clean" `Quick
      test_report_clean_exit;
    Alcotest.test_case "rule registry lookup" `Quick test_rules_registry;
    Alcotest.test_case "finding format and key" `Quick test_finding_format;
  ]
