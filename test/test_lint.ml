(* Lint engine tests: each rule against its seeded fixture in
   test/lintfx/, the interprocedural DR rules against their seeded
   data-race fixtures, suppression accounting, baseline round-trips,
   the summary cache, and the dangers/lint/v2 report shape.

   The fixtures are a separate library so dune has already produced
   their .cmt files by the time this binary links; the loader scans the
   build tree relative to the test's cwd (_build/default/test). *)

module Loader = Dangers_lint.Loader
module Engine = Dangers_lint.Engine
module Rules = Dangers_lint.Rules
module Rule = Dangers_lint.Rule
module Finding = Dangers_lint.Finding
module Baseline = Dangers_lint.Baseline
module Report = Dangers_lint.Report
module Json = Dangers_obs.Json

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let fixture_prefix = "test/lintfx/"
let fixtures = lazy (Loader.load ~build_dir:"." ~prefixes:[ fixture_prefix ])

let results =
  lazy
    (let loaded = Lazy.force fixtures in
     Engine.check_sources ~all_files:true ~rules:Rules.all
       loaded.Loader.sources)

let findings () = fst (Lazy.force results)
let suppressed () = snd (Lazy.force results)

let in_file base f = Filename.basename f.Finding.file = base

let by rule base =
  List.filter
    (fun f -> f.Finding.rule = rule && in_file base f)
    (findings ())

let mentions sub f =
  let m = f.Finding.message and n = String.length sub in
  let rec go i =
    i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
  in
  go 0

let test_loader_finds_fixtures () =
  let loaded = Lazy.force fixtures in
  checki "thirteen fixture units" 13 (List.length loaded.Loader.sources);
  checkb "all cmts readable" true (loaded.Loader.unreadable = []);
  checkb "paths keep the build-root prefix" true
    (List.for_all
       (fun (s : Loader.source) ->
         String.length s.Loader.path > String.length fixture_prefix
         && String.sub s.Loader.path 0 (String.length fixture_prefix)
            = fixture_prefix)
       loaded.Loader.sources)

let test_d1_seeded () =
  let fs = by "D1" "fx_d1.ml" in
  checki "four banned calls" 4 (List.length fs);
  checkb "self_init named" true (List.exists (mentions "Random.self_init") fs);
  checkb "gettimeofday named" true
    (List.exists (mentions "Unix.gettimeofday") fs);
  checkb "Sys.time named" true (List.exists (mentions "Sys.time") fs);
  checkb "Hashtbl.hash named" true (List.exists (mentions "Hashtbl.hash") fs);
  checkb "report order follows the file" true
    (let lines = List.map (fun f -> f.Finding.line) fs in
     lines = List.sort compare lines)

let test_d2_seeded () =
  let fs = by "D2" "fx_d2.ml" in
  checki "two iters and the unsorted fold" 3 (List.length fs);
  checkb "iter flagged" true (List.exists (mentions "Hashtbl.iter") fs);
  checkb "unsorted fold flagged" true
    (List.exists (mentions "Hashtbl.fold") fs)

let test_d3_seeded () =
  let fs = by "D3" "fx_d3.ml" in
  checki "float instantiations only" 4 (List.length fs);
  checkb "= flagged twice (direct and through list)" true
    (List.length (List.filter (mentions "polymorphic =") fs) = 2);
  checkb "compare flagged" true
    (List.exists (mentions "polymorphic compare") fs);
  checkb "max flagged" true (List.exists (mentions "polymorphic max") fs)

let test_r1_seeded () =
  let fs = by "R1" "fx_r1.ml" in
  checki "unguarded state incl. nested module" 4 (List.length fs);
  List.iter
    (fun name ->
      checkb (name ^ " named") true (List.exists (mentions ("'" ^ name ^ "'")) fs))
    [ "cache"; "counter"; "lazy_state"; "buf" ]

let test_r1_mutex_guard () =
  checki "mutex-bearing structure is exempt" 0
    (List.length (List.filter (in_file "fx_r1_guarded.ml") (findings ())))

let test_rt1_seeded () =
  let fs = by "RT1" "fx_rt1.ml" in
  checki "two engine calls and a wall-clock read" 3 (List.length fs);
  checkb "Engine.now named" true (List.exists (mentions "Engine.now") fs);
  checkb "Engine.schedule named" true
    (List.exists (mentions "Engine.schedule") fs);
  checkb "gettimeofday named" true
    (List.exists (mentions "Unix.gettimeofday") fs)

let test_p1_seeded () =
  let fs = by "P1" "fx_p1.ml" in
  checki "all four partials" 4 (List.length fs);
  List.iter
    (fun name ->
      checkb (name ^ " flagged") true (List.exists (mentions name) fs))
    [ "List.hd"; "List.tl"; "List.nth"; "Option.get" ]

let lines fs = List.sort compare (List.map (fun f -> f.Finding.line) fs)
let checkil = Alcotest.check (Alcotest.list Alcotest.int)

let test_dr1_seeded () =
  let fs = by "DR1" "fx_dr1.ml" in
  checkil "five crossings, pinned lines" [ 16; 22; 27; 33; 40 ] (lines fs);
  checkb "local ref capture named" true
    (List.exists (mentions "mutable local 'counter'") fs);
  checkb "parameter read named" true
    (List.exists (mentions "'tasks' is read") fs);
  checkb "pool worker write crosses Domain_pool.parallel_for" true
    (List.exists (mentions "Domain_pool.parallel_for") fs);
  checkb "direct global capture named" true
    (List.exists (mentions "unguarded module-level 'Fx_dr1.journal'") fs);
  checkb "one-hop reach goes through the callee" true
    (List.exists (mentions "calls Fx_dr1.append") fs);
  checkb "the allow-annotated spawn is silent" true
    (List.for_all (fun f -> f.Finding.line <> 46) fs)

let test_dr2_seeded () =
  let fs = by "DR2" "fx_dr2.ml" in
  checkil "three lost updates, pinned lines" [ 6; 10; 13 ] (lines fs);
  checkb "set-over-get named" true
    (List.exists (mentions "Atomic.set over Atomic.get") fs);
  checkb "exchange-over-get named" true
    (List.exists (mentions "Atomic.exchange over Atomic.get") fs);
  checkb "distinct-atomic copy is clean" true
    (List.for_all (fun f -> not (mentions "fine_copy" f)) fs)

let test_dr3_seeded () =
  let fs = by "DR3" "fx_dr3.ml" in
  checkil "five discipline breaks, pinned lines" [ 11; 19; 25; 31; 38 ]
    (lines fs);
  checkb "branch imbalance (if without else) named" true
    (List.exists (mentions "unbalanced across branches") fs);
  checkb "raise while holding named" true
    (List.exists (mentions "failwith while holding 'm'") fs);
  checkb "loop imbalance named" true
    (List.exists (mentions "loop body changes the lock balance") fs);
  checkb "return while holding named" true
    (List.exists (mentions "still holding 'm'") fs);
  checkb "blocking under lock is the one warning" true
    (match List.filter (fun f -> f.Finding.severity = Finding.Warning) fs with
    | [ w ] -> w.Finding.line = 25 && mentions "Unix.sleepf" w
    | _ -> false)

let test_dr4_seeded () =
  let fs = by "DR4" "fx_dr4.ml" in
  checkil "one bidirectional cell, pinned at its definition" [ 5 ] (lines fs);
  checkb "both sides named" true
    (List.exists
       (fun f ->
         mentions "'Fx_dr4.stats'" f
         && mentions "fx_dr4.ml:11" f
         && mentions "'Fx_dr4.record'" f)
       fs);
  checkil "the crossing side carries its own DR1s" [ 11; 16 ]
    (lines (by "DR1" "fx_dr4.ml"));
  checkil "fx_dr1's journal is also bidirectional" [ 30 ]
    (lines (by "DR4" "fx_dr1.ml"))

let test_dr_true_negatives () =
  checki "synchronized sharing produces nothing" 0
    (List.length (List.filter (in_file "fx_dr_clean.ml") (findings ())))

let test_severity_split () =
  let fs = findings () in
  let warnings =
    List.filter (fun f -> f.Finding.severity = Finding.Warning) fs
  in
  checki "exactly one warning (blocking under lock)" 1 (List.length warnings);
  checki "everything else is an error"
    (List.length fs - 1)
    (List.length
       (List.filter (fun f -> f.Finding.severity = Finding.Error) fs))

let test_fail_on_threshold () =
  let warning_only =
    {
      Report.rules = [ "DR3" ];
      sources = 1;
      findings =
        [
          Finding.at ~severity:Finding.Warning ~rule:"DR3" ~file:"x.ml" ~line:1
            ~col:0 ~message:"blocking call under lock" ();
        ];
      suppressed = 0;
      baselined = 0;
      stale = [];
      unreadable = [];
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  checki "default gate fails on a warning" 1 (Report.exit_code warning_only);
  checki "--fail-on error lets warnings through" 0
    (Report.exit_code ~fail_on:Finding.Error warning_only);
  checki "errors counted" 0 (Report.errors warning_only);
  checki "warnings counted" 1 (Report.warnings warning_only);
  let with_errors =
    Engine.run ~all_files:true ~rules:Rules.all ~build_dir:"."
      ~prefixes:[ fixture_prefix ] ()
  in
  checki "--fail-on error still fails on errors" 1
    (Report.exit_code ~fail_on:Finding.Error with_errors)

let test_summary_cache_round_trip () =
  let cache_file = Filename.temp_file "dangers-lint-cache" ".json" in
  let run () =
    Engine.run ~all_files:true ~rules:Rules.all ~build_dir:"." ~cache_file
      ~prefixes:[ fixture_prefix ] ()
  in
  let cold = run () in
  checki "cold run misses every unit" 13 cold.Report.cache_misses;
  checki "cold run hits nothing" 0 cold.Report.cache_hits;
  let warm = run () in
  checki "warm run hits every unit" 13 warm.Report.cache_hits;
  checki "warm run recomputes nothing" 0 warm.Report.cache_misses;
  checkb "cached findings are identical" true
    (warm.Report.findings = cold.Report.findings);
  checki "suppressions still applied from typedtrees" cold.Report.suppressed
    warm.Report.suppressed;
  Sys.remove cache_file

let test_graph_out () =
  let graph_file = Filename.temp_file "dangers-lint-graph" ".json" in
  let _ =
    Engine.run ~all_files:true ~rules:Rules.all ~build_dir:"." ~use_cache:false
      ~graph_out:graph_file ~prefixes:[ fixture_prefix ] ()
  in
  let ic = open_in_bin graph_file in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove graph_file;
  let json = Json.of_string raw in
  checks "graph schema id" "dangers/lint-graph/v1"
    (Json.string_of (Json.member "schema" json));
  let cells = Json.list_of (Json.member "cells" json) in
  let cell_names =
    List.map (fun c -> Json.string_of (Json.member "key" c)) cells
  in
  checkb "journal and stats are graph cells" true
    (List.exists (fun n -> n = "test/Fx_dr1.journal") cell_names
    && List.exists (fun n -> n = "test/Fx_dr4.stats") cell_names);
  checkb "nodes and edges present" true
    (Json.list_of (Json.member "nodes" json) <> []
    && Json.list_of (Json.member "edges" json) <> [])

let test_suppression_accounting () =
  checki "one allow per rule fixture plus two file-wide" 9 (suppressed ());
  checki "file-wide allow silences the whole unit" 0
    (List.length (List.filter (in_file "fx_filewide.ml") (findings ())))

let test_scope_filter () =
  (* Without all_files the fixtures match no rule's scope (they live
     under test/, the rules watch lib/), so a scoped run is silent. *)
  let loaded = Lazy.force fixtures in
  let fs, supp = Engine.check_sources ~rules:Rules.all loaded.Loader.sources in
  checki "nothing in scope" 0 (List.length fs);
  checki "no suppressions counted" 0 supp

let test_baseline_round_trip () =
  let fs = findings () in
  let b = Baseline.of_findings fs in
  let applied = Baseline.apply b fs in
  checki "everything absorbed" (List.length fs) applied.Baseline.baselined;
  checkb "nothing fresh" true (applied.Baseline.fresh = []);
  checkb "nothing stale" true (applied.Baseline.stale = []);
  checkb "json round-trips" true (Baseline.of_json (Baseline.to_json b) = b);
  checkb "duplicate keys collapse to a counted entry" true
    (List.exists
       (fun (e : Baseline.entry) -> e.Baseline.count = 2)
       b.Baseline.entries)

let test_baseline_stale_and_fresh () =
  let d1 = by "D1" "fx_d1.ml" and p1 = by "P1" "fx_p1.ml" in
  let b = Baseline.of_findings d1 in
  let applied = Baseline.apply b p1 in
  checki "unbaselined findings stay fresh" (List.length p1)
    (List.length applied.Baseline.fresh);
  checki "nothing absorbed" 0 applied.Baseline.baselined;
  checki "every entry is stale" (List.length b.Baseline.entries)
    (List.length applied.Baseline.stale)

let test_baseline_count_is_a_budget () =
  (* fx_d3 carries two identical '=' findings; a baseline allowing one
     must absorb exactly one and fail the other. *)
  let dups =
    List.filter (mentions "polymorphic =") (by "D3" "fx_d3.ml")
  in
  checki "two duplicate findings" 2 (List.length dups);
  match Baseline.of_findings dups with
  | { Baseline.entries = [ entry ] } ->
      let b = { Baseline.entries = [ { entry with Baseline.count = 1 } ] } in
      let applied = Baseline.apply b dups in
      checki "one absorbed" 1 applied.Baseline.baselined;
      checki "one fresh" 1 (List.length applied.Baseline.fresh)
  | _ -> Alcotest.fail "expected a single merged baseline entry"

let test_report_json_schema () =
  let report =
    Engine.run ~all_files:true ~rules:Rules.all ~build_dir:"."
      ~prefixes:[ fixture_prefix ] ()
  in
  checkb "fixtures are not clean" false (Report.clean report);
  checki "exit code 1" 1 (Report.exit_code report);
  let json = Report.to_json report in
  checks "schema id" "dangers/lint/v2" (Json.string_of (Json.member "schema" json));
  checki "findings serialized" (List.length report.Report.findings)
    (List.length (Json.list_of (Json.member "findings" json)));
  checki "suppressed count serialized" (suppressed ())
    (Json.int_of (Json.member "suppressed" json));
  checki "errors serialized" (Report.errors report)
    (Json.int_of (Json.member "errors" json));
  checki "warnings serialized" (Report.warnings report)
    (Json.int_of (Json.member "warnings" json));
  checkb "cache counters serialized" true
    (Json.member_opt "hits" (Json.member "cache" json) <> None);
  checkb "clean flag serialized" true
    (Json.member "clean" json = Json.Bool false)

let test_report_clean_exit () =
  let fs = findings () in
  let report =
    Engine.run ~all_files:true ~rules:Rules.all
      ~baseline:(Baseline.of_findings fs) ~build_dir:"."
      ~prefixes:[ fixture_prefix ] ()
  in
  checkb "baselined run is clean" true (Report.clean report);
  checki "exit code 0" 0 (Report.exit_code report);
  checki "everything baselined" (List.length fs) report.Report.baselined

let test_rules_registry () =
  Alcotest.check (Alcotest.list Alcotest.string) "id order"
    [ "D1"; "D2"; "D3"; "R1"; "P1"; "RT1"; "DR1"; "DR2"; "DR3"; "DR4" ]
    (Rules.ids ());
  checkb "lookup is case-insensitive" true
    (match Rules.find "d3" with
    | Some r -> r.Rule.id = "D3"
    | None -> false);
  checkb "dr lookup is case-insensitive" true
    (match Rules.find "dr1" with
    | Some r -> r.Rule.id = "DR1"
    | None -> false);
  checkb "unknown rule is None" true (Rules.find "Z9" = None)

let test_finding_format () =
  match findings () with
  | [] -> Alcotest.fail "fixtures produced no findings"
  | f :: _ ->
      let line = Format.asprintf "%a" Finding.pp f in
      let expected_prefix =
        Printf.sprintf "%s:%d:%d: %s [%s]" f.Finding.file f.Finding.line
          f.Finding.col
          (Finding.severity_to_string f.Finding.severity)
          f.Finding.rule
      in
      checkb "pp is compiler-style" true
        (String.length line >= String.length expected_prefix
        && String.sub line 0 (String.length expected_prefix) = expected_prefix);
      checks "baseline key is rule|file|message"
        (f.Finding.rule ^ "|" ^ f.Finding.file ^ "|" ^ f.Finding.message)
        (Finding.key f);
      checkb "finding json round-trips" true
        (Finding.of_json (Finding.to_json f) = f)

let suite =
  [
    Alcotest.test_case "loader finds fixtures" `Quick test_loader_finds_fixtures;
    Alcotest.test_case "D1 flags banned calls" `Quick test_d1_seeded;
    Alcotest.test_case "D2 flags unordered iteration" `Quick test_d2_seeded;
    Alcotest.test_case "D3 flags float compares" `Quick test_d3_seeded;
    Alcotest.test_case "R1 flags unguarded state" `Quick test_r1_seeded;
    Alcotest.test_case "R1 honors a module mutex" `Quick test_r1_mutex_guard;
    Alcotest.test_case "P1 flags partial functions" `Quick test_p1_seeded;
    Alcotest.test_case "RT1 flags direct engine use" `Quick test_rt1_seeded;
    Alcotest.test_case "DR1 flags unsynchronized crossings" `Quick
      test_dr1_seeded;
    Alcotest.test_case "DR2 flags atomic RMW windows" `Quick test_dr2_seeded;
    Alcotest.test_case "DR3 flags mutex discipline breaks" `Quick
      test_dr3_seeded;
    Alcotest.test_case "DR4 flags bidirectional cells" `Quick test_dr4_seeded;
    Alcotest.test_case "synchronized sharing stays silent" `Quick
      test_dr_true_negatives;
    Alcotest.test_case "severities split errors from warnings" `Quick
      test_severity_split;
    Alcotest.test_case "fail-on threshold gates the exit code" `Quick
      test_fail_on_threshold;
    Alcotest.test_case "summary cache round-trips" `Quick
      test_summary_cache_round_trip;
    Alcotest.test_case "graph export names the cells" `Quick test_graph_out;
    Alcotest.test_case "suppressions are honored" `Quick
      test_suppression_accounting;
    Alcotest.test_case "rule scopes filter files" `Quick test_scope_filter;
    Alcotest.test_case "baseline round-trips" `Quick test_baseline_round_trip;
    Alcotest.test_case "baseline reports stale entries" `Quick
      test_baseline_stale_and_fresh;
    Alcotest.test_case "baseline counts are budgets" `Quick
      test_baseline_count_is_a_budget;
    Alcotest.test_case "report json matches dangers/lint/v2" `Quick
      test_report_json_schema;
    Alcotest.test_case "baselined report exits clean" `Quick
      test_report_clean_exit;
    Alcotest.test_case "rule registry lookup" `Quick test_rules_registry;
    Alcotest.test_case "finding format and key" `Quick test_finding_format;
  ]
